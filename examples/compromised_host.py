#!/usr/bin/env python
"""Threat scenarios: what attestation catches, and what only a TPM catches.

Four scenarios on the same deployment shape:

1. a pristine host enrols successfully;
2. a host with a tampered container runtime fails appraisal, so its VNFs
   never receive credentials;
3. a root adversary who tampers *and sanitizes the measurement log* evades
   appraisal on a plain-IMA host — the gap the paper's §4 names;
4. the same log-sanitizing adversary is caught when the IML is rooted in a
   TPM (the paper's future-work configuration, implemented here).

Run:  python examples/compromised_host.py
"""

from repro.core import Deployment
from repro.core.enrollment import EnrollmentSession
from repro.errors import AppraisalFailed


def enroll_first_vnf(deployment: Deployment) -> str:
    """Try the full workflow for vnf-1; returns a verdict string."""
    session = EnrollmentSession(
        vm=deployment.vm,
        agent=deployment.agent_client,
        host_name=deployment.host.name,
        vnf_name="vnf-1",
        controller_address=str(deployment.controller_address()),
        sim_now=deployment.clock.now,
    )
    try:
        session.attest_host()
    except AppraisalFailed as exc:
        return f"REJECTED at host appraisal: {exc}"
    session.provision()
    session.connect(deployment.enclave_client("vnf-1"))
    return "ENROLLED"


def main() -> None:
    print("scenario 1: pristine host")
    pristine = Deployment(seed=b"scenario-1", vnf_count=1)
    print(f"  -> {enroll_first_vnf(pristine)}\n")

    print("scenario 2: tampered container runtime (measured honestly)")
    tampered = Deployment(seed=b"scenario-2", vnf_count=1)
    tampered.host.tamper_file("/usr/bin/dockerd", b"dockerd-with-rootkit")
    verdict = enroll_first_vnf(tampered)
    print(f"  -> {verdict[:100]}\n")

    print("scenario 3: root adversary sanitizes the IML (plain IMA)")
    stealthy = Deployment(seed=b"scenario-3", vnf_count=1)
    stealthy.host.tamper_file("/usr/bin/dockerd", b"dockerd-with-rootkit")
    stealthy.host.hide_measurement("/usr/bin/dockerd")
    verdict = enroll_first_vnf(stealthy)
    print(f"  -> {verdict}  (the paper's stated gap: root can forge the log)\n")

    print("scenario 4: same adversary, TPM-rooted IML (paper future work)")
    rooted = Deployment(seed=b"scenario-4", vnf_count=1, with_tpm=True)
    rooted.host.tamper_file("/usr/bin/dockerd", b"dockerd-with-rootkit")
    rooted.host.hide_measurement("/usr/bin/dockerd")
    verdict = enroll_first_vnf(rooted)
    print(f"  -> {verdict[:110]}")


if __name__ == "__main__":
    main()
