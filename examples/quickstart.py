#!/usr/bin/env python
"""Quickstart: the paper's Figure 1, end to end, in ~20 lines of API.

Builds a complete deployment (controller + IAS + Verification Manager +
SGX container host with two containerized VNFs), runs the six-step
enrolment workflow for both VNFs, and then uses the enclave-protected
credentials to drive the controller.

Run:  python examples/quickstart.py
"""

from repro.core import Deployment


def main() -> None:
    deployment = Deployment(seed=b"quickstart", vnf_count=2)
    trace = deployment.run_workflow()

    print("Figure 1 workflow, per-step timing:")
    for vnf_name, timings in trace.per_vnf.items():
        print(f"  {vnf_name}:")
        for timing in timings:
            print(
                f"    {timing.step:45s}"
                f" sim={timing.simulated_seconds * 1000:8.3f} ms"
                f" wall={timing.wall_seconds * 1000:8.2f} ms"
            )
    print(f"  total simulated: {trace.simulated_seconds * 1000:.3f} ms")

    # The VNF now authenticates to the controller through its enclave; the
    # private key and TLS session keys never leave the enclave boundary.
    client = deployment.enclave_client("vnf-1")
    client.push_flow(
        switch="00:00:01",
        name="quickstart-allow",
        match={"eth_src": "h1", "eth_dst": "h2"},
        actions="output:3",
    )
    summary = client.summary()
    print(f"\ncontroller summary after enrolment: {summary}")

    audit = deployment.vm.audit.counts()
    print(f"verification-manager audit log: {audit}")


if __name__ == "__main__":
    main()
