#!/usr/bin/env python
"""An outage drill: enrolling a VNF fleet through injected failures.

At fleet scale, partial failure is the steady state: the Intel
Attestation Service rate-limits and brown-outs, host agents restart
mid-provisioning, connections drop.  This drill injects all of that with
a deterministic :class:`repro.net.faults.FaultPlan` and shows how the
retry/backoff layer (:class:`repro.net.retry.RetryPolicy`) and the
workflow's partial-failure semantics keep the deployment moving:

1. transient faults (IAS 503 burst, refused connect, mid-stream drop)
   are absorbed by retries — every VNF still enrolls;
2. a permanently dead host exhausts its retry budget — its VNFs are
   recorded in ``WorkflowTrace.failed`` while the rest of the fleet
   enrolls;
3. the re-attestation monitor distinguishes that *unreachable* host
   (kept, retried) from an *untrustworthy* one (revoked).

Run:  python examples/outage_drill.py
"""

from repro.core import Deployment
from repro.core.revocation import ReattestationMonitor
from repro.core.workflow import IAS_ADDRESS
from repro.net.faults import FaultPlan
from repro.net.retry import RetryPolicy


def main() -> None:
    policy = RetryPolicy(max_attempts=4, base_backoff=0.05, multiplier=2.0,
                         max_backoff=1.0, jitter=0.1)
    deployment = Deployment(seed=b"outage-drill", vnf_count=4, host_count=2,
                            retry_policy=policy)
    deployment.enable_telemetry()

    # ------------------------------------------------- transient faults
    print("Drill 1: transient faults, retried")
    plan = (FaultPlan(seed=b"drill")
            .http_error(IAS_ADDRESS, 503, count=2)
            .refuse_connections(deployment.agent.address, count=1)
            .drop_after_sends(deployment.agent.address, sends=5,
                              connections=1))
    deployment.install_faults(plan)
    trace = deployment.run_workflow()
    print(f"  enrolled: {sorted(trace.per_vnf)}  failed: {dict(trace.failed)}")
    print(f"  injected faults: {dict(plan.injected)}")
    backoff = trace.clock_charges.get("retry-backoff", 0.0)
    print(f"  simulated backoff charged: {backoff * 1000:.1f} ms")
    attempts = deployment.telemetry.retry_attempts
    for labels, child in attempts.children():
        print(f"  retry_attempts{{operation={labels[0]!r}}} = "
              f"{child.value:.0f}")

    # -------------------------------------------- a permanently dead host
    print("\nDrill 2: one host stays dark — partial failure, not an abort")
    fleet = Deployment(seed=b"outage-drill-2", vnf_count=4, host_count=2,
                       retry_policy=RetryPolicy(max_attempts=3,
                                                base_backoff=0.05,
                                                jitter=0.0))
    dead = fleet.hosts[1]
    fleet.install_faults(
        FaultPlan().refuse_connections(fleet.agents[dead.name].address)
    )
    trace = fleet.run_workflow()
    print(f"  enrolled: {sorted(trace.per_vnf)}")
    for vnf_name, error in sorted(trace.failed.items()):
        print(f"  failed: {vnf_name}: {error.splitlines()[0]}")

    # ------------------------------------- unreachable is not untrustworthy
    print("\nDrill 3: the monitor keeps an unreachable host's credentials")
    monitor = ReattestationMonitor(fleet.vm, ias_service=fleet.ias)
    for host in fleet.hosts:
        monitor.watch(host.name, fleet.agent_clients[host.name])
    for outcome in monitor.sweep():
        print(f"  {outcome.host_name}: status={outcome.status} "
              f"trustworthy={outcome.trustworthy} "
              f"revoked={outcome.revoked_vnfs} "
              f"streak={outcome.consecutive_unreachable}")

    # The network heals: the dead host comes back and is re-attested.
    fleet.install_faults(None)
    print("  ...network heals...")
    for outcome in monitor.sweep():
        print(f"  {outcome.host_name}: status={outcome.status} "
              f"trustworthy={outcome.trustworthy}")


if __name__ == "__main__":
    main()
