#!/usr/bin/env python
"""The paper's two demonstrated use cases, step by step.

Use case 1 — integrity attestation of a VNF: request a quote from the
attestation enclave, verify it with IAS, and match measurements against
expected values.

Use case 2 — enrolment: generate a key and certificate at the Verification
Manager, sign with its CA, provision the enclave, and open an
authenticated session to the SDN controller.

Run:  python examples/attest_and_enroll.py
"""

from repro.core import Deployment


def main() -> None:
    deployment = Deployment(seed=b"use-cases", vnf_count=1)
    vm = deployment.vm

    # ---------------------------------------------------------- use case 1
    print("Use case 1: integrity attestation")
    result = vm.attest_host(deployment.agent_client, deployment.host.name)
    print(f"  host appraisal: trustworthy={result.trustworthy}, "
          f"{result.entries_checked} IML entries checked")

    delivery_key = vm.attest_vnf(deployment.agent_client,
                                 deployment.host.name, "vnf-1")
    print(f"  vnf-1 enclave attested; delivery key bound in quote "
          f"({len(delivery_key)} bytes)")

    # ---------------------------------------------------------- use case 2
    print("\nUse case 2: enrolment")
    certificate = vm.enroll_vnf(
        deployment.agent_client, deployment.host.name, "vnf-1",
        str(deployment.controller_address()),
    )
    print(f"  issued certificate: subject={certificate.subject}, "
          f"serial={certificate.serial}, signed by {certificate.issuer}")

    enclave = deployment.credential_enclaves["vnf-1"]
    print(f"  enclave holds credentials: {enclave.has_credentials()}")

    client = deployment.enclave_client("vnf-1")
    summary = client.summary()
    print(f"  authenticated controller call: {summary['controller']} "
          f"v{summary['version']}")

    # The controller validates only the CA signature — no per-client
    # keystore entry was ever created (the paper's key design point):
    print(f"  controller keystore entries: {len(deployment.keystore)} "
          "(trusted-CA mode needs none)")

    # An entity without credentials cannot enrol (end of use case 2).
    from repro.errors import ReproError
    anonymous = deployment.baseline_client(mode="trusted-https")
    try:
        anonymous.summary()
        raise AssertionError("anonymous access should have failed")
    except ReproError as exc:
        print(f"  anonymous client rejected: {type(exc).__name__}")


if __name__ == "__main__":
    main()
