#!/usr/bin/env python
"""Credential persistence across enclave restarts, via SGX sealing.

A VNF enclave restarts (host reboot, container reschedule).  Rather than
re-running the full attestation + provisioning protocol, the enclave seals
its credential bundle to its own identity; after restart, the new enclave
instance — same measurement, same platform — unseals and resumes.  A
different enclave, or the same enclave on a different platform, cannot.

Run:  python examples/sealed_credentials.py
"""

from repro.core import Deployment
from repro.core.credential_enclave import CredentialEnclave
from repro.errors import SealingError


def main() -> None:
    deployment = Deployment(seed=b"sealing-demo", vnf_count=1)
    deployment.run_workflow()
    enclave = deployment.credential_enclaves["vnf-1"]

    sealed = enclave.seal_credentials()
    print(f"sealed credential bundle: {len(sealed)} bytes "
          "(host-visible, safe to store on disk)")

    # Simulate the restart: destroy the enclave, launch a fresh instance.
    deployment.host.platform.destroy_enclave(enclave.enclave)
    fresh = CredentialEnclave(deployment.host, deployment.vendor_key,
                              deployment.network, "vnf-1")
    print(f"fresh enclave instance launched: has_credentials="
          f"{fresh.has_credentials()}")

    subject = fresh.restore_credentials(sealed)
    print(f"unsealed and restored credentials for {subject!r}")
    summary = fresh.client.summary()
    print(f"controller reachable again without re-provisioning: "
          f"{summary['controller']} v{summary['version']}")

    # A *different* platform cannot unseal the blob: the sealing key is
    # derived from that platform's fuse key.
    other = Deployment(seed=b"sealing-demo-other", vnf_count=1)
    foreign = other.credential_enclaves["vnf-1"]
    try:
        foreign.restore_credentials(sealed)
        raise AssertionError("cross-platform unseal must fail")
    except SealingError as exc:
        print(f"cross-platform unseal refused: {exc}")


if __name__ == "__main__":
    main()
