#!/usr/bin/env python
"""Floodlight's three northbound security modes, compared live.

Shows what each mode does and does not protect: plain HTTP accepts flow
writes from anyone; HTTPS authenticates the controller but still accepts
anonymous writes; trusted HTTPS requires a client certificate signed by
the Verification Manager's CA.  Also contrasts the two client-validation
models (per-client keystore vs. trusted CA) from the paper's section 3.

Run:  python examples/controller_security_modes.py
"""

from repro.core import Deployment
from repro.errors import ReproError
from repro.sdn import MODE_HTTP, MODE_HTTPS, MODE_TRUSTED


def main() -> None:
    deployment = Deployment(seed=b"modes-demo", vnf_count=1)
    deployment.run_workflow()

    flow = dict(switch="00:00:01", name="probe",
                match={"eth_src": "h1", "eth_dst": "h2"},
                actions="output:3")

    print("mode 1: plain HTTP — anyone on the network can program flows")
    http = deployment.baseline_client(mode=MODE_HTTP)
    http.push_flow(**flow)
    http.delete_flow("probe")
    endpoint = deployment.endpoints[MODE_HTTP]
    print(f"  unauthenticated writes accepted: "
          f"{endpoint.unauthenticated_writes}")

    print("\nmode 2: HTTPS — server authenticated, clients still anonymous")
    https = deployment.baseline_client(mode=MODE_HTTPS)
    https.push_flow(**flow)
    https.delete_flow("probe")
    endpoint = deployment.endpoints[MODE_HTTPS]
    print(f"  unauthenticated writes accepted: "
          f"{endpoint.unauthenticated_writes} "
          "(eavesdropping prevented, access control still absent)")

    print("\nmode 3: trusted HTTPS — client certificate required")
    try:
        deployment.baseline_client(mode=MODE_TRUSTED).summary()
        raise AssertionError("anonymous client must be rejected")
    except ReproError as exc:
        print(f"  anonymous client rejected: {type(exc).__name__}")

    enclave_client = deployment.enclave_client("vnf-1")
    enclave_client.push_flow(**flow)
    print("  enrolled VNF (enclave-held credential) accepted; flow pushed")
    trusted = deployment.endpoints[MODE_TRUSTED]
    print(f"  unauthenticated writes on trusted endpoint: "
          f"{trusted.unauthenticated_writes}")

    print("\nvalidation models for trusted HTTPS:")
    print(f"  this deployment: trusted-CA — controller keystore has "
          f"{len(deployment.keystore)} entries regardless of fleet size")
    keystore_dep = Deployment(seed=b"modes-keystore", vnf_count=3,
                              client_validation="keystore")
    keystore_dep.run_workflow()
    print(f"  stock Floodlight: per-client keystore — "
          f"{len(keystore_dep.keystore)} entries for 3 VNFs, one update "
          "per newly issued credential")


if __name__ == "__main__":
    main()
