#!/usr/bin/env python
"""Credential lifecycle: enrolment, revocation, and platform distrust.

Demonstrates the Verification Manager's "provision *or revoke*
authentication keys ... as long as the container host is trustworthy"
(paper §2): a VNF is enrolled and serving, its credential is revoked (CRL
push + TLS session eviction), and finally the whole host is distrusted by
the re-attestation monitor after on-host tampering, revoking every
credential it held and revoking the platform's EPID key at IAS.

Run:  python examples/credential_revocation.py
"""

from repro.core import Deployment
from repro.core.revocation import ReattestationMonitor
from repro.errors import ReproError
from repro.ias.service import QuoteStatus


def main() -> None:
    deployment = Deployment(seed=b"revocation-demo", vnf_count=2)
    deployment.run_workflow()
    print("both VNFs enrolled")

    client_1 = deployment.enclave_client("vnf-1")
    client_2 = deployment.enclave_client("vnf-2")
    assert client_1.summary()["controller"] == "floodlight"
    assert client_2.summary()["controller"] == "floodlight"
    print("both VNFs can reach the controller")

    # ------------------------------------------------- revoke one credential
    deployment.vm.revoke_vnf("vnf-1", reason="key-compromise")
    client_1.close()  # drop the live session; resumption is also evicted
    try:
        client_1.summary()
        raise AssertionError("revoked VNF should be rejected")
    except ReproError as exc:
        print(f"vnf-1 revoked and rejected: {type(exc).__name__}")
    assert client_2.summary()["controller"] == "floodlight"
    print("vnf-2 still serving")

    # ------------------------------------------- distrust the whole platform
    monitor = ReattestationMonitor(deployment.vm, ias_service=deployment.ias)
    monitor.watch(deployment.host.name, deployment.agent_client)

    sweep_1 = monitor.sweep()
    print(f"re-attestation sweep while pristine: "
          f"trustworthy={sweep_1[0].trustworthy}")

    deployment.host.tamper_file("/usr/sbin/sshd", b"backdoored-sshd")
    sweep_2 = monitor.sweep()
    outcome = sweep_2[0]
    print(f"after tamper: trustworthy={outcome.trustworthy}, "
          f"revoked VNFs={outcome.revoked_vnfs}")

    client_2.close()
    try:
        client_2.summary()
        raise AssertionError("vnf-2 should be revoked with its host")
    except ReproError as exc:
        print(f"vnf-2 rejected after host distrust: {type(exc).__name__}")

    # The platform's EPID key is now revoked at IAS: future attestations
    # of this host fail before appraisal even starts.
    evidence = deployment.agent_client.attest_host(
        b"\x00" * 16, deployment.vm.policy.basename
    )
    avr = deployment.ias_client.verify_quote(evidence.quote.to_bytes())
    print(f"IAS verdict for the distrusted platform: {avr.quote_status}")
    assert avr.quote_status == QuoteStatus.KEY_REVOKED

    print(f"\naudit log: {deployment.vm.audit.counts()}")


if __name__ == "__main__":
    main()
