#!/usr/bin/env python
"""Fleet operations: multiple hosts, placement, and containment.

Runs a 2-host, 4-VNF deployment, enrols everything, then compromises one
host and shows that the blast radius is exactly that host's VNFs — the
other host keeps serving, and the Verification Manager's audit log tells
the whole story.

Run:  python examples/fleet_operations.py
"""

from repro.core import Deployment
from repro.core.revocation import ReattestationMonitor
from repro.errors import ReproError


def main() -> None:
    deployment = Deployment(seed=b"fleet-demo", vnf_count=4, host_count=2)
    deployment.run_workflow()

    print("fleet layout:")
    for vnf_name in deployment.vnf_names:
        host = deployment.vnf_host[vnf_name]
        serial = deployment.vm.issued_certificate(vnf_name).serial
        print(f"  {vnf_name} on {host.name} (credential serial {serial})")

    monitor = ReattestationMonitor(deployment.vm, ias_service=deployment.ias)
    for host in deployment.hosts:
        monitor.watch(host.name, deployment.agent_clients[host.name])

    outcomes = monitor.sweep()
    print(f"\nsweep 1 (all pristine): "
          f"{[(o.host_name, o.trustworthy) for o in outcomes]}")

    print("\ncompromising container-host-2's container runtime...")
    deployment.hosts[1].tamper_file("/usr/bin/runc", b"escape-exploit")
    outcomes = monitor.sweep()
    for outcome in outcomes:
        print(f"  {outcome.host_name}: trustworthy={outcome.trustworthy} "
              f"revoked={outcome.revoked_vnfs}")

    print("\nservice check after containment:")
    for vnf_name in deployment.vnf_names:
        client = deployment.enclave_client(vnf_name)
        client.close()
        try:
            client.summary()
            status = "serving"
        except ReproError as exc:
            status = f"locked out ({type(exc).__name__})"
        print(f"  {vnf_name} ({deployment.vnf_host[vnf_name].name}): "
              f"{status}")

    print(f"\naudit log: {deployment.vm.audit.counts()}")


if __name__ == "__main__":
    main()
