"""Unit tests for the retry/backoff executor (repro.net.retry)."""

import pytest

from repro.crypto.rng import HmacDrbg
from repro.errors import ConnectionRefused, VnfSgxError
from repro.net.clock import VirtualClock
from repro.net.retry import (
    BACKOFF_ACCOUNT,
    NO_RETRY,
    RetryPolicy,
    retry_call,
)


class Flaky:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures, exc=None):
        self.failures = failures
        self.exc = exc if exc is not None else ConnectionRefused("refused")
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok"


def test_policy_validation():
    with pytest.raises(VnfSgxError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(VnfSgxError):
        RetryPolicy(base_backoff=-1.0)
    with pytest.raises(VnfSgxError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(VnfSgxError):
        RetryPolicy(jitter=1.0)


def test_backoff_series_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=6, base_backoff=0.1, multiplier=2.0,
                         max_backoff=0.35, jitter=0.0)
    series = [policy.backoff_before(attempt) for attempt in range(1, 7)]
    assert series == [0.0, 0.1, 0.2, pytest.approx(0.35),
                      pytest.approx(0.35), pytest.approx(0.35)]


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_backoff=1.0, jitter=0.25)
    draws_a = [policy.backoff_before(2, HmacDrbg(b"s")) for _ in range(1)]
    draws_b = [policy.backoff_before(2, HmacDrbg(b"s")) for _ in range(1)]
    assert draws_a == draws_b  # same DRBG stream, same jitter
    for _ in range(32):
        value = policy.backoff_before(2, HmacDrbg(b"other"))
        assert 0.75 <= value <= 1.25


def test_no_retry_needs_no_clock():
    flaky = Flaky(0)
    assert retry_call(flaky, policy=NO_RETRY, clock=None,
                      operation="x") == "ok"
    assert retry_call(lambda: 7, policy=None, clock=None, operation="x") == 7


def test_retries_until_success_and_charges_backoff():
    clock = VirtualClock()
    flaky = Flaky(2)
    policy = RetryPolicy(max_attempts=4, base_backoff=0.1, multiplier=2.0,
                         jitter=0.0)
    assert retry_call(flaky, policy=policy, clock=clock,
                      operation="t") == "ok"
    assert flaky.calls == 3
    assert clock.charges()[BACKOFF_ACCOUNT] == pytest.approx(0.1 + 0.2)


def test_giveup_reraises_original_exception():
    clock = VirtualClock()
    original = ConnectionRefused("still down")
    flaky = Flaky(99, exc=original)
    policy = RetryPolicy(max_attempts=3, base_backoff=0.0, jitter=0.0)
    with pytest.raises(ConnectionRefused) as excinfo:
        retry_call(flaky, policy=policy, clock=clock, operation="t")
    assert excinfo.value is original
    assert flaky.calls == 3


def test_non_retryable_propagates_immediately():
    clock = VirtualClock()
    flaky = Flaky(99, exc=ValueError("logic bug"))
    policy = RetryPolicy(max_attempts=5)
    with pytest.raises(ValueError):
        retry_call(flaky, policy=policy, clock=clock, operation="t")
    assert flaky.calls == 1


def test_deadline_gates_further_attempts():
    clock = VirtualClock()

    def slow_failure():
        clock.advance(10.0, "work")
        raise ConnectionRefused("down")

    policy = RetryPolicy(max_attempts=100, base_backoff=0.0, jitter=0.0,
                         deadline=25.0)
    with pytest.raises(ConnectionRefused):
        retry_call(slow_failure, policy=policy, clock=clock, operation="t")
    # 10s + 10s + 10s >= 25s: the third failure gives up.
    assert clock.now() == pytest.approx(30.0)


def test_on_retry_hook_observes_each_reattempt():
    clock = VirtualClock()
    flaky = Flaky(2)
    seen = []
    policy = RetryPolicy(max_attempts=4, base_backoff=0.0, jitter=0.0)
    retry_call(flaky, policy=policy, clock=clock, operation="t",
               on_retry=lambda attempt, exc: seen.append(attempt))
    assert seen == [1, 2]


def test_retry_metrics_and_span_events():
    from repro.obs import MetricsRegistry, Telemetry

    clock = VirtualClock()
    telemetry = Telemetry(registry=MetricsRegistry(), now=clock.now)
    policy = RetryPolicy(max_attempts=2, base_backoff=0.5, jitter=0.0)
    flaky = Flaky(99)
    with telemetry.span("op") as span:
        with pytest.raises(ConnectionRefused):
            retry_call(flaky, policy=policy, clock=clock, operation="demo",
                       telemetry=telemetry)
    assert telemetry.retry_attempts.labels(operation="demo").value == 1
    assert telemetry.retry_giveups.labels(operation="demo").value == 1
    names = [event["name"] for event in span.events]
    assert names == ["retry", "retry-giveup"]
