"""End-to-end resilience of the enrollment pipeline under injected faults.

These are the tentpole's acceptance tests:

(a) enrollment completes under transient IAS 503 bursts and dropped
    host-agent connections, with the re-attempts visible in ``/metrics``;
(b) a fleet workflow with one permanently failed host returns a partial
    trace (survivors enrolled, failure recorded) instead of raising;
(c) identical seeds plus an identical fault plan give byte-identical
    workflow traces.
"""

import json

import pytest

from repro.core.workflow import IAS_ADDRESS, Deployment
from repro.errors import ConnectionRefused, VnfSgxError
from repro.net.faults import FaultPlan
from repro.net.retry import RetryPolicy

POLICY = RetryPolicy(max_attempts=4, base_backoff=0.05, multiplier=2.0,
                     max_backoff=1.0, jitter=0.1)


def canonical(trace) -> bytes:
    """A trace's deterministic wire form (wall-clock fields excluded)."""
    return json.dumps({
        "per_vnf": {
            vnf: [[t.step, t.simulated_seconds] for t in timings]
            for vnf, timings in trace.per_vnf.items()
        },
        "failed": dict(trace.failed),
        "simulated_seconds": trace.simulated_seconds,
        "clock_charges": dict(trace.clock_charges),
    }, sort_keys=True).encode("utf-8")


def test_enrollment_survives_transient_ias_and_agent_faults():
    """(a): 503 bursts at IAS and a mid-stream agent drop are absorbed by
    retry + backoff; the workflow completes and /metrics shows the
    re-attempts."""
    deployment = Deployment(seed=b"resilience", vnf_count=2,
                            retry_policy=POLICY)
    deployment.enable_telemetry()
    plan = (FaultPlan(seed=b"resilience-plan")
            .http_error(IAS_ADDRESS, 503, count=2)
            .refuse_connections(deployment.agent.address, count=1)
            .drop_after_sends(deployment.agent.address, sends=3,
                              connections=1))
    deployment.install_faults(plan)

    trace = deployment.run_workflow()

    assert trace.fully_succeeded
    assert sorted(trace.per_vnf) == ["vnf-1", "vnf-2"]
    assert sum(plan.injected.values()) >= 4
    # Backoff sleeps were charged to the virtual clock.
    assert trace.clock_charges.get("retry-backoff", 0.0) > 0.0
    metrics = deployment.scrape_metrics()
    assert 'vnf_sgx_retry_attempts_total{operation="ias-verify"}' in metrics
    assert 'vnf_sgx_retry_attempts_total{operation="host-agent"}' in metrics
    assert "vnf_sgx_retry_giveups_total" in metrics
    assert deployment.telemetry.workflow_vnf_failures.value == 0


def test_fleet_workflow_records_partial_failure():
    """(b): one permanently unreachable host fails its VNFs' enrollment,
    the rest of the fleet enrolls, and nothing raises."""
    deployment = Deployment(seed=b"fleet", vnf_count=4, host_count=2,
                            retry_policy=RetryPolicy(max_attempts=2,
                                                     base_backoff=0.01,
                                                     jitter=0.0))
    deployment.enable_telemetry()
    dead_host = deployment.hosts[1]
    plan = FaultPlan().refuse_connections(
        deployment.agents[dead_host.name].address
    )
    deployment.install_faults(plan)

    trace = deployment.run_workflow()

    # Round-robin placement: vnf-1/vnf-3 on host 1, vnf-2/vnf-4 on host 2.
    assert sorted(trace.per_vnf) == ["vnf-1", "vnf-3"]
    assert sorted(trace.failed) == ["vnf-2", "vnf-4"]
    for message in trace.failed.values():
        assert "ConnectionRefused" in message
        assert "injected fault" in message
    assert not trace.fully_succeeded
    assert deployment.telemetry.workflow_vnf_failures.value == 2
    # Survivors hold working credentials.
    assert deployment.enclave_client("vnf-1").summary()
    assert deployment.enclave_client("vnf-3").summary()
    # The failed VNFs never enrolled.
    with pytest.raises(VnfSgxError):
        deployment.vm.issued_certificate("vnf-2")


def test_identical_seed_and_plan_give_identical_traces():
    """(c): determinism end to end — equal seeds + equal fault plans give
    byte-identical workflow traces, including retry backoff charges."""

    def run() -> bytes:
        deployment = Deployment(seed=b"determinism", vnf_count=3,
                                host_count=2, retry_policy=POLICY)
        plan = (FaultPlan(seed=b"determinism-plan")
                .http_error(IAS_ADDRESS, 503, count=1)
                .delay_connect(deployment.agent.address, 0.2, count=2)
                .drop_after_sends(deployment.agent.address, sends=5,
                                  connections=1))
        deployment.install_faults(plan)
        return canonical(deployment.run_workflow())

    first, second = run(), run()
    assert first == second


def test_different_plan_seed_changes_the_trace():
    """Counter-check for (c): perturbing only the fault plan's schedule
    perturbs the trace, so the equality above is meaningful."""

    def run(drop_probability_seed: bytes) -> bytes:
        deployment = Deployment(seed=b"determinism", vnf_count=2,
                                retry_policy=POLICY)
        plan = FaultPlan(seed=drop_probability_seed).drop_send_probability(
            deployment.agent.address, 0.2, count=40,
        )
        deployment.install_faults(plan)
        return canonical(deployment.run_workflow())

    assert run(b"plan-A") != run(b"plan-B")


def test_zero_tolerance_without_policy_is_preserved():
    """Without a retry policy the pre-retry contract holds: the first
    injected refusal propagates out of run_workflow... recorded as a
    per-VNF failure, and a direct enroll() raises."""
    deployment = Deployment(seed=b"no-policy", vnf_count=1)
    deployment.install_faults(
        FaultPlan().refuse_connections(deployment.agent.address)
    )
    with pytest.raises(ConnectionRefused):
        deployment.enroll("vnf-1")
