"""Unit tests for the deterministic fault plan (repro.net.faults)."""

import pytest

from repro.errors import ChannelClosed, ConnectionRefused, VnfSgxError
from repro.net.address import Address
from repro.net.faults import (
    FAULT_ACCOUNT,
    KIND_DROP,
    KIND_HTTP_ERROR,
    KIND_PARTITION,
    KIND_REFUSAL,
    FaultPlan,
)
from repro.net.framing import send_frame, try_recv_frame
from repro.net.simnet import Network

SERVER = Address("server", 9000)


def echo_listener(network):
    """A frame-echo server on SERVER."""

    def accept(channel):
        def on_data(ch):
            while True:
                frame = try_recv_frame(ch)
                if frame is None:
                    return
                send_frame(ch, b"echo:" + frame)

        channel.on_receive(on_data)

    network.listen(SERVER, accept)


def test_refuse_connections_count_budget(network):
    echo_listener(network)
    plan = FaultPlan().refuse_connections(SERVER, count=2)
    network.install_faults(plan)
    for _ in range(2):
        with pytest.raises(ConnectionRefused, match="injected fault"):
            network.connect("client", SERVER)
    # Budget spent: the third connect goes through.
    channel = network.connect("client", SERVER)
    send_frame(channel, b"hi")
    assert try_recv_frame(channel) == b"echo:hi"
    assert plan.injected[KIND_REFUSAL] == 2


def test_refuse_connections_time_window(network):
    echo_listener(network)
    plan = FaultPlan().refuse_connections(SERVER, for_seconds=5.0)
    network.install_faults(plan)
    with pytest.raises(ConnectionRefused):
        network.connect("client", SERVER)
    network.clock.advance(4.0, "test")
    with pytest.raises(ConnectionRefused):
        network.connect("client", SERVER)
    network.clock.advance(2.0, "test")  # window closed
    assert network.connect("client", SERVER) is not None


def test_connect_and_send_delays_charged_to_fault_account(network):
    echo_listener(network)
    plan = (FaultPlan()
            .delay_connect(SERVER, 0.25, count=1)
            .delay_send(SERVER, 0.5, count=1))
    network.install_faults(plan)
    network.clock.reset_charges()
    channel = network.connect("client", SERVER)
    send_frame(channel, b"hi")
    assert try_recv_frame(channel) == b"echo:hi"
    charged = network.clock.charges().get(FAULT_ACCOUNT, 0.0)
    assert charged == pytest.approx(0.75)


def test_drop_after_sends_tears_down_mid_stream(network):
    echo_listener(network)
    # The send budget covers *both* directions of the connection: one
    # request/response exchange is two sends, so sends=3 drops the
    # connection on the second client request.
    plan = FaultPlan().drop_after_sends(SERVER, sends=3, connections=1)
    network.install_faults(plan)
    channel = network.connect("client", SERVER)
    send_frame(channel, b"one")
    assert try_recv_frame(channel) == b"echo:one"
    with pytest.raises(ChannelClosed, match="injected fault"):
        send_frame(channel, b"two")
    assert channel.closed
    assert plan.injected[KIND_DROP] == 1
    # Only one connection was budgeted; a reconnect works end to end.
    channel = network.connect("client", SERVER)
    send_frame(channel, b"three")
    assert try_recv_frame(channel) == b"echo:three"


def test_drop_send_probability_is_deterministic(network):
    def run(seed):
        net = Network()
        echo_listener(net)
        plan = FaultPlan(seed=seed).drop_send_probability(SERVER, 0.5)
        net.install_faults(plan)
        outcomes = []
        for _ in range(16):
            try:
                channel = net.connect("client", SERVER)
                send_frame(channel, b"x")
                try_recv_frame(channel)
                outcomes.append("ok")
            except ChannelClosed:
                outcomes.append("drop")
        return outcomes

    first = run(b"seed-A")
    assert first == run(b"seed-A")  # same seed, same trace
    assert "drop" in first and "ok" in first
    assert first != run(b"seed-B")  # different seed, different trace


def test_http_error_bursts_drain_in_order():
    plan = (FaultPlan()
            .http_error(SERVER, 503, count=2)
            .http_error(SERVER, 429, count=1))
    assert plan.next_http_error(SERVER) == 503
    assert plan.next_http_error(SERVER) == 503
    assert plan.next_http_error(SERVER) == 429
    assert plan.next_http_error(SERVER) is None
    assert plan.injected[KIND_HTTP_ERROR] == 3


def test_clear_removes_faults(network):
    echo_listener(network)
    plan = FaultPlan().refuse_connections(SERVER)
    network.install_faults(plan)
    with pytest.raises(ConnectionRefused):
        network.connect("client", SERVER)
    plan.clear(SERVER)
    assert network.connect("client", SERVER) is not None
    network.install_faults(None)  # uninstall entirely
    assert network.faults is None


def test_crash_host_refuses_every_port(network):
    echo_listener(network)
    other_port = Address(SERVER.host, SERVER.port + 1)
    network.listen(other_port, lambda ch: None)
    plan = FaultPlan().crash_host(SERVER.host)
    network.install_faults(plan)
    with pytest.raises(ConnectionRefused, match="host server is down"):
        network.connect("client", SERVER)
    with pytest.raises(ConnectionRefused):
        network.connect("client", other_port)
    assert plan.injected[KIND_REFUSAL] == 2
    # Revival restores every port at once.
    plan.revive_host(SERVER.host)
    channel = network.connect("client", SERVER)
    send_frame(channel, b"up")
    assert try_recv_frame(channel) == b"echo:up"


def test_crash_host_time_window_expires(network):
    echo_listener(network)
    plan = FaultPlan().crash_host(SERVER.host, for_seconds=3.0)
    network.install_faults(plan)
    with pytest.raises(ConnectionRefused):
        network.connect("client", SERVER)
    network.clock.advance(4.0, "test")
    assert network.connect("client", SERVER) is not None


def test_partition_is_pairwise_and_symmetric(network):
    echo_listener(network)
    plan = FaultPlan().partition("client-a", SERVER.host)
    network.install_faults(plan)
    with pytest.raises(ConnectionRefused, match="partitioned"):
        network.connect("client-a", SERVER)
    # Order-insensitive: the reverse direction is the same pair.
    with pytest.raises(ConnectionRefused):
        network.connect("client-a", SERVER)
    assert plan.injected[KIND_PARTITION] == 2
    # A third host is unaffected — the asymmetry that distinguishes a
    # partition from a crash.
    channel = network.connect("client-b", SERVER)
    send_frame(channel, b"ok")
    assert try_recv_frame(channel) == b"echo:ok"
    plan.heal_partition(SERVER.host, "client-a")
    assert network.connect("client-a", SERVER) is not None


def test_address_clear_keeps_host_faults(network):
    echo_listener(network)
    plan = (FaultPlan()
            .refuse_connections(SERVER)
            .crash_host(SERVER.host))
    network.install_faults(plan)
    plan.clear(SERVER)  # clears the port-level refusal only
    with pytest.raises(ConnectionRefused, match="host server is down"):
        network.connect("client", SERVER)
    plan.clear()  # the no-argument form clears host faults too
    assert network.connect("client", SERVER) is not None


def test_invalid_installations_rejected():
    plan = FaultPlan()
    with pytest.raises(VnfSgxError):
        plan.refuse_connections(SERVER, count=0)
    with pytest.raises(VnfSgxError):
        plan.delay_connect(SERVER, -1.0)
    with pytest.raises(VnfSgxError):
        plan.drop_after_sends(SERVER, sends=0)
    with pytest.raises(VnfSgxError):
        plan.drop_send_probability(SERVER, 1.5)
    with pytest.raises(VnfSgxError):
        plan.http_error(SERVER, status=200)
