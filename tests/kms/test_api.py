"""The REST surface: verbs, statuses, fault injection, telemetry."""

import json

import pytest

from repro.errors import (
    KmsUnavailable,
    SecretNotFound,
    TenantAuthError,
    TenantQuotaExceeded,
)
from repro.kms import KmsClient, TenantQuota
from repro.kms.api import API_PREFIX
from repro.net.faults import FaultPlan
from repro.net.rest import HttpParser, HttpRequest
from repro.obs import MetricsRegistry, Telemetry

from tests.kms.conftest import KMS_ADDRESS, make_world


# ----------------------------------------------------------------- verbs


def test_rest_roundtrip(world, alpha):
    alpha.store("db-password", b"hunter2")
    assert alpha.fetch("db-password") == b"hunter2"
    alpha.generate("api-key", 16)
    assert sorted(alpha.names()) == ["api-key", "db-password"]
    assert len(alpha.fetch("api-key")) == 16
    alpha.delete("db-password")
    assert alpha.names() == ["api-key"]
    with pytest.raises(SecretNotFound):
        alpha.fetch("db-password")


def test_cross_tenant_fetch_denied_over_rest(world, alpha, beta):
    alpha.store("db", b"alpha-only")
    intruder = KmsClient(world.network, KMS_ADDRESS, "alpha",
                         world.tokens["beta"], "client.example.org")
    with pytest.raises(TenantAuthError):
        intruder.fetch("db")
    status, _ = intruder.fetch_raw(
        "GET", f"{API_PREFIX}/alpha/secrets/db")
    assert status == 403


def test_missing_token_is_401(world):
    raw = _raw_request(world, HttpRequest(
        "GET", f"{API_PREFIX}/alpha/secrets"))
    assert raw.status == 401


def test_unknown_routes_and_methods(world, alpha):
    status, _ = alpha.fetch_raw("GET", "/nothing/here")
    assert status == 404
    status, _ = alpha.fetch_raw("PUT", f"{API_PREFIX}/alpha/secrets/x")
    assert status == 405
    status, _ = alpha.fetch_raw("DELETE", f"{API_PREFIX}/alpha/secrets")
    assert status == 405
    status, _ = alpha.fetch_raw("GET", f"{API_PREFIX}/alpha/generate/x")
    assert status == 405


def test_malformed_store_body_is_400(world, alpha):
    status, body = alpha.fetch_raw(
        "POST", f"{API_PREFIX}/alpha/secrets/x", b"not json")
    assert status == 400 and b"malformed" in body
    status, _ = alpha.fetch_raw(
        "POST", f"{API_PREFIX}/alpha/secrets/x",
        json.dumps({"value": "zz-not-hex"}).encode())
    assert status == 400


def test_quota_maps_to_429():
    world = make_world(quota=TenantQuota(max_secrets=1))
    client = KmsClient(world.network, KMS_ADDRESS, "alpha",
                       world.tokens["alpha"], "client.example.org")
    client.store("one", b"v")
    with pytest.raises(TenantQuotaExceeded):
        client.store("two", b"v")
    status, _ = client.fetch_raw(
        "POST", f"{API_PREFIX}/alpha/secrets/two",
        json.dumps({"value": "00"}).encode())
    assert status == 429


def _raw_request(world, request: HttpRequest):
    channel = world.network.connect("client.example.org", KMS_ADDRESS)
    try:
        channel.send(request.encode())
        return HttpParser(is_server_side=False).feed(
            channel.recv_available())[0]
    finally:
        channel.close()


# --------------------------------------------------------- fault injection


def test_fault_plan_brownout_then_recovery(world, alpha):
    """An injected 503 burst surfaces as KmsUnavailable at the client and
    never reaches the service; once drained, requests succeed again."""
    alpha.store("db", b"v")
    served_before = world.endpoint.requests_served
    audit_before = len(world.service.audit_trail("alpha"))

    plan = FaultPlan()
    plan.http_error(KMS_ADDRESS, status=503, count=2)
    world.network.install_faults(plan)
    for _ in range(2):
        with pytest.raises(KmsUnavailable, match="503"):
            alpha.fetch("db")
    # Brown-out: the endpoint answered, the service never dispatched.
    assert world.endpoint.requests_served == served_before + 2
    assert len(world.service.audit_trail("alpha")) == audit_before
    assert plan.injected.get("http-error") == 2

    # Burst drained: the same persistent client recovers.
    assert alpha.fetch("db") == b"v"


def test_client_survives_channel_drop(world, alpha):
    alpha.store("db", b"v")
    plan = FaultPlan()
    plan.drop_after_sends(KMS_ADDRESS, sends=1)
    world.network.install_faults(plan)
    # The drop kills the persistent channel mid-request; the client
    # reconnects and replays transparently.
    assert alpha.fetch("db") == b"v"


# --------------------------------------------------------------- telemetry


def test_requests_metered_and_spanned(world, alpha):
    telemetry = Telemetry(registry=MetricsRegistry(), now=world.clock.now)
    world.endpoint.instrument(telemetry)
    alpha.store("db", b"v")
    alpha.fetch("db")
    with pytest.raises(TenantAuthError):
        KmsClient(world.network, KMS_ADDRESS, "alpha",
                  world.tokens["beta"], "client.example.org").fetch("db")

    assert telemetry.kms_requests.labels(op="store", status="201").value == 1
    assert telemetry.kms_requests.labels(op="fetch", status="200").value == 1
    assert telemetry.kms_requests.labels(op="fetch", status="403").value == 1
    histogram = telemetry.kms_request_seconds.labels(op="store")
    assert histogram.count == 1
    # The shard gauge mirrors resident secrets per shard.
    owner = world.service.store_backend.shard_for("alpha", "db")
    assert telemetry.kms_secrets.labels(shard=owner.label).value == 1
    # Spans were recorded on the simulated clock.
    assert telemetry.tracer.find("kms.store") is not None
    assert telemetry.tracer.find("kms.fetch") is not None
    world.endpoint.instrument(None)


def test_audit_counter_mirrors_tenant_trails(world, alpha):
    telemetry = Telemetry(registry=MetricsRegistry(), now=world.clock.now)
    world.endpoint.instrument(telemetry)
    alpha.store("db", b"v")
    assert telemetry.audit_events.labels(kind="kms-store").value == 1
