"""The service layer: isolation, audit trails, keystore integration."""

import pytest

from repro.errors import (
    KeystoreError,
    KeyStoreError,
    SecretNotFound,
    TenantAuthError,
)

from tests.kms.conftest import make_world


# -------------------------------------------------------------- isolation


def test_cross_tenant_access_always_denied(world):
    """A token minted for beta opens nothing in alpha, whatever the op."""
    service = world.service
    service.store("alpha", world.tokens["alpha"], "db", b"secret")
    foreign = world.tokens["beta"]
    for attempt in (
        lambda: service.fetch("alpha", foreign, "db"),
        lambda: service.store("alpha", foreign, "db", b"overwrite"),
        lambda: service.delete("alpha", foreign, "db"),
        lambda: service.names("alpha", foreign),
        lambda: service.generate("alpha", foreign, "new"),
    ):
        with pytest.raises(TenantAuthError):
            attempt()
    # The victim's data is untouched.
    assert service.fetch("alpha", world.tokens["alpha"], "db") == b"secret"


def test_same_secret_name_isolated_between_tenants(world):
    service = world.service
    service.store("alpha", world.tokens["alpha"], "shared-name", b"alpha-v")
    service.store("beta", world.tokens["beta"], "shared-name", b"beta-v")
    assert service.fetch("alpha", world.tokens["alpha"],
                         "shared-name") == b"alpha-v"
    assert service.fetch("beta", world.tokens["beta"],
                         "shared-name") == b"beta-v"
    service.delete("alpha", world.tokens["alpha"], "shared-name")
    assert service.fetch("beta", world.tokens["beta"],
                         "shared-name") == b"beta-v"


# ------------------------------------------------------------ audit trail


def test_audit_trail_records_every_operation(world):
    service, token = world.service, world.tokens["alpha"]
    service.store("alpha", token, "db", b"v")
    service.fetch("alpha", token, "db")
    service.names("alpha", token)
    service.generate("alpha", token, "gen")
    service.delete("alpha", token, "db")
    with pytest.raises(TenantAuthError):
        service.fetch("alpha", world.tokens["beta"], "db")

    kinds = [event.kind for event in service.audit_trail("alpha")]
    for expected in ("kms-namespace-created", "kms-authorized", "kms-store",
                     "kms-fetch", "kms-list", "kms-generate", "kms-delete",
                     "kms-denied"):
        assert expected in kinds, f"missing {expected} in {kinds}"
    # The denial landed in the *target* tenant's trail, not the caller's.
    beta_kinds = [e.kind for e in service.audit_trail("beta")]
    assert "kms-denied" not in beta_kinds


def test_audit_events_carry_subject_and_simulated_time(world):
    service, token = world.service, world.tokens["alpha"]
    world.clock.advance(1.5, account="test")
    service.store("alpha", token, "db", b"v")
    stores = [e for e in service.audit_trail("alpha")
              if e.kind == "kms-store"]
    assert stores and stores[-1].subject == "db"
    assert stores[-1].timestamp >= 1.5


# --------------------------------------------------------------- keystore


def test_shard_identities_parked_in_keystore(world):
    """Every shard's CA-issued server identity is a keystore key entry."""
    service = world.service
    for shard in service.store_backend.shards():
        key, certificate = service.keystore.get_key_entry(f"kms-{shard.label}")
        assert certificate.public_key_bytes == key.public.to_bytes()
        assert world.ca.is_issued(certificate.serial)


def test_keystore_missing_alias_raises_explicitly(world):
    with pytest.raises(KeystoreError, match="no key entry"):
        world.service.keystore.get_key_entry("kms-shard-99")
    # The Java-style alias names the same class.
    assert KeyStoreError is KeystoreError


def test_keystore_get_or_create_returns_one_winner(world):
    keystore = world.service.keystore
    first = keystore.get_key_entry("kms-shard-0")
    calls = []

    def factory():
        calls.append(1)
        raise AssertionError("factory must not run for an existing alias")

    again = keystore.get_or_create("kms-shard-0", factory)
    assert again == first and not calls


# ------------------------------------------------------------ replacement


def test_delete_then_fetch_raises(world):
    service, token = world.service, world.tokens["alpha"]
    service.store("alpha", token, "db", b"v")
    service.delete("alpha", token, "db")
    with pytest.raises(SecretNotFound):
        service.fetch("alpha", token, "db")


def test_generate_roundtrip_matches_registry_stream():
    """generate() stores exactly the bytes the tenant's deterministic
    stream produces (verified against an identically seeded world)."""
    first = make_world(seed=b"gen-roundtrip")
    second = make_world(seed=b"gen-roundtrip")
    first.service.generate("alpha", first.tokens["alpha"], "key", 24)
    stored = first.service.fetch("alpha", first.tokens["alpha"], "key")
    expected = second.service.registry.generate_secret("alpha", 24)
    assert stored == expected and len(stored) == 24
