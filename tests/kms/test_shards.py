"""Shards: sealing at rest, consistent-hash placement, rebalancing."""

import pytest

from repro.errors import KmsError, SecretNotFound
from repro.kms import HashRing
from repro.kms.hashring import DEFAULT_VNODES

from tests.kms.conftest import make_world


# --------------------------------------------------------- sealed at rest


def test_secrets_are_sealed_at_rest(world):
    service = world.service
    plaintext = b"the-database-password"
    service.store("alpha", world.tokens["alpha"], "db", plaintext)
    shard = service.store_backend.shard_for("alpha", "db")
    blob = shard.sealed_blob("alpha/db")
    # The host-visible form is AES-GCM ciphertext bound to the shard
    # enclave's identity, never the plaintext.
    assert plaintext not in blob.ciphertext
    assert plaintext not in blob.nonce + blob.key_id
    assert service.store_backend.fetch("alpha", "db") == plaintext


def test_unseal_requires_matching_shard_identity(world):
    service = world.service
    service.store("alpha", world.tokens["alpha"], "db", b"x")
    shards = service.store_backend.shards()
    owner = service.store_backend.shard_for("alpha", "db")
    other = next(s for s in shards if s.label != owner.label)
    blob = owner.sealed_blob("alpha/db")
    from repro.errors import SealingError
    from repro.sgx.sealing import unseal

    with pytest.raises(SealingError):
        unseal(other._fuse_key, other.identity, blob)


def test_missing_secret_raises(world):
    with pytest.raises(SecretNotFound):
        world.service.store_backend.fetch("alpha", "ghost")
    with pytest.raises(SecretNotFound):
        world.service.store_backend.delete("alpha", "ghost")


# ------------------------------------------------------------- placement


KEYS = [f"tenant-{t}/secret-{i}" for t in range(4) for i in range(64)]


def test_placement_is_deterministic_across_instances():
    """Equal shard sets place equally — the rebalancing determinism the
    fleet relies on (same DRBG seed ⇒ same world ⇒ same placement)."""
    first = make_world(seed=b"placement")
    second = make_world(seed=b"placement")
    ring_a = first.service.store_backend.ring()
    ring_b = second.service.store_backend.ring()
    assert ring_a.placement(KEYS) == ring_b.placement(KEYS)

    # And the observed store-side placement matches too.
    for world in (first, second):
        for index in range(16):
            world.service.store("alpha", world.tokens["alpha"],
                                f"s{index}", b"v")
    assert (first.service.store_backend.secret_counts()
            == second.service.store_backend.secret_counts())


def test_vnodes_spread_load():
    """With the default vnode count no shard owns a runaway share."""
    ring = HashRing([f"shard-{i}" for i in range(4)], vnodes=DEFAULT_VNODES)
    placement = ring.placement(KEYS)
    counts = {shard: 0 for shard in ring.shard_ids()}
    for shard in placement.values():
        counts[shard] += 1
    assert all(count > 0 for count in counts.values())
    assert max(counts.values()) / len(KEYS) < 0.45  # fair, not perfect


def test_rebalancing_moves_a_minority_of_keys():
    """Adding one shard to four moves roughly 1/5 of the keys — never
    the wholesale reshuffle a modulo scheme would cause."""
    before = HashRing([f"shard-{i}" for i in range(4)])
    after = HashRing([f"shard-{i}" for i in range(5)])
    moved = before.moved_keys(KEYS, after)
    assert 0 < len(moved) < len(KEYS) // 2
    # Unmoved keys keep their exact owner.
    placement_before = before.placement(KEYS)
    placement_after = after.placement(KEYS)
    for key in KEYS:
        if key not in moved:
            assert placement_before[key] == placement_after[key]
    # Every moved key landed on the new shard (pure consistent hashing).
    assert {placement_after[key] for key in moved} == {"shard-4"}


def test_ring_topology_errors():
    ring = HashRing(["a", "b"])
    with pytest.raises(KmsError, match="already on the ring"):
        ring.add_shard("a")
    with pytest.raises(KmsError, match="not on the ring"):
        ring.remove_shard("zzz")
    ring.remove_shard("b")
    with pytest.raises(KmsError, match="last shard"):
        ring.remove_shard("a")
    with pytest.raises(KmsError, match="at least one shard"):
        HashRing([])


# ---------------------------------------------------------- the pipeline


def test_shard_pipeline_overlaps_work():
    """Sealing charges the owning shard's private timeline; the global
    clock only pays serialized dispatch until quiesce() drains the
    slowest shard."""
    world = make_world(shard_count=4)
    service = world.service
    cost = service.store_backend.cost_model
    start = world.clock.now()
    for index in range(32):
        service.store("alpha", world.tokens["alpha"], f"s{index}", b"v")
    dispatched = world.clock.now() - start
    assert dispatched == pytest.approx(32 * cost.dispatch_seconds)

    drained = service.quiesce() - start
    counts = service.store_backend.secret_counts()
    busiest = max(counts.values())
    # The pipeline drains at the busiest shard's completion time, which
    # divides the serial seal bill by the effective parallelism.
    expected = busiest * cost.seal_seconds
    assert drained == pytest.approx(expected, rel=0.05)
    assert drained < 32 * cost.seal_seconds / 2
