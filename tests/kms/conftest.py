"""Shared fixtures for the key-manager tests.

One small, fully deterministic KMS world: a CA, a four-shard service, a
REST endpoint on the simulated network, and two tenants (``alpha`` and
``beta``) each authorized through a CA-issued credential.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

import pytest

from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.kms import KeyManagerService, KmsClient, KmsEndpoint, TenantQuota
from repro.net.address import Address
from repro.net.clock import VirtualClock
from repro.net.simnet import Network
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.pki.name import DistinguishedName

KMS_ADDRESS = Address("kms.example.org", 7100)


class KmsWorld(NamedTuple):
    """Everything a KMS test needs, pre-wired."""

    clock: VirtualClock
    network: Network
    ca: CertificateAuthority
    service: KeyManagerService
    endpoint: KmsEndpoint
    certificates: Dict[str, Certificate]
    tokens: Dict[str, str]


def make_world(shard_count: int = 4, seed: bytes = b"kms-test",
               quota: TenantQuota = TenantQuota()) -> KmsWorld:
    clock = VirtualClock()
    network = Network(clock)
    rng = HmacDrbg(b"kms-test-ca")
    ca = CertificateAuthority(DistinguishedName("Test-CA", "test"), now=0,
                              rng=rng)
    service = KeyManagerService(ca, clock, seed=seed,
                                shard_count=shard_count)
    endpoint = KmsEndpoint(service, network, KMS_ADDRESS)
    certificates: Dict[str, Certificate] = {}
    tokens: Dict[str, str] = {}
    for tenant in ("alpha", "beta"):
        service.create_tenant(tenant, quota)
        key = generate_keypair(rng)
        certificate = ca.issue(DistinguishedName(f"vnf-{tenant}", "vnf"),
                               key.public.to_bytes(), now=0)
        certificates[tenant] = certificate
        tokens[tenant] = service.authorize(tenant, certificate)
    return KmsWorld(clock, network, ca, service, endpoint, certificates,
                    tokens)


@pytest.fixture
def world() -> KmsWorld:
    return make_world()


@pytest.fixture
def alpha(world: KmsWorld) -> KmsClient:
    return KmsClient(world.network, KMS_ADDRESS, "alpha",
                     world.tokens["alpha"], "client.example.org")


@pytest.fixture
def beta(world: KmsWorld) -> KmsClient:
    return KmsClient(world.network, KMS_ADDRESS, "beta",
                     world.tokens["beta"], "client.example.org")
