"""The ``repro kms`` command and the E13 experiment-index row."""

import io

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_kms_command_smoke():
    code, output = run_cli("kms", "--tenants", "2", "--shards", "4",
                           "--secrets", "3", "--seed", "cli-kms")
    assert code == 0
    assert "tenant-0: authorized via vnf-1" in output
    assert "tenant-1: authorized via vnf-2" in output
    assert "tenant-0: 3 secret(s)" in output
    assert "shard placement: shard-0=" in output
    assert "2 tenant(s) x 3 secret(s) over 4 shard(s)" in output


def test_kms_command_is_deterministic():
    first = run_cli("kms", "--tenants", "2", "--shards", "2",
                    "--secrets", "2", "--seed", "cli-kms-det")
    second = run_cli("kms", "--tenants", "2", "--shards", "2",
                     "--secrets", "2", "--seed", "cli-kms-det")
    assert first == second and first[0] == 0


def test_experiments_listing_includes_e13():
    code, output = run_cli("experiments")
    assert code == 0
    assert "E13" in output
    assert "key manager" in output
