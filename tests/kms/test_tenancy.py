"""Tenancy: namespaces, credential-rooted tokens, and quotas."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import (
    NamespaceError,
    TenantAuthError,
    TenantQuotaExceeded,
)
from repro.kms import TenantQuota
from repro.kms.tenancy import valid_name
from repro.pki.name import DistinguishedName

from tests.kms.conftest import make_world


# ------------------------------------------------------------- namespaces


def test_namespace_collision_rejected(world):
    with pytest.raises(NamespaceError, match="already exists"):
        world.service.create_tenant("alpha")


@pytest.mark.parametrize("bad", ["", "a/b", "x y", "a" * 129, "tenänt"])
def test_invalid_tenant_names_rejected(world, bad):
    assert not valid_name(bad)
    with pytest.raises(NamespaceError):
        world.service.create_tenant(bad)


def test_unknown_namespace_raises(world):
    with pytest.raises(NamespaceError, match="unknown namespace"):
        world.service.registry.authenticate("gamma", "00" * 32)


# ------------------------------------------------------------ authorization


def test_token_is_bound_to_namespace(world):
    registry = world.service.registry
    registry.authenticate("alpha", world.tokens["alpha"])
    with pytest.raises(TenantAuthError):
        registry.authenticate("alpha", world.tokens["beta"])
    with pytest.raises(TenantAuthError):
        registry.authenticate("beta", world.tokens["alpha"])


def test_missing_or_malformed_token_denied(world):
    registry = world.service.registry
    with pytest.raises(TenantAuthError, match="missing"):
        registry.authenticate("alpha", None)
    with pytest.raises(TenantAuthError, match="malformed"):
        registry.authenticate("alpha", "not-hex!")


def test_foreign_certificate_cannot_authorize(world):
    """A certificate the CA never issued mints nothing."""
    from repro.crypto.rng import HmacDrbg
    from repro.pki.ca import CertificateAuthority

    other_ca = CertificateAuthority(DistinguishedName("Rogue-CA", "rogue"),
                                    now=0, rng=HmacDrbg(b"rogue"))
    key = generate_keypair(HmacDrbg(b"rogue-key"))
    forged = other_ca.issue(DistinguishedName("intruder", "vnf"),
                            key.public.to_bytes(), now=0)
    # Denied either way: an unknown serial, or (when the rogue CA's
    # serial counter collides with ours) a fingerprint mismatch.
    with pytest.raises(TenantAuthError,
                       match="not issued|does not match"):
        world.service.authorize("alpha", forged)


def test_revoked_certificate_cannot_authorize(world):
    certificate = world.certificates["alpha"]
    world.ca.revoke(certificate.serial, now=0)
    with pytest.raises(TenantAuthError, match="revoked"):
        world.service.authorize("alpha", certificate)


# ------------------------------------------------------------ count quota


def test_count_quota_exhaustion():
    world = make_world(quota=TenantQuota(max_secrets=3))
    service = world.service
    token = world.tokens["alpha"]
    for index in range(3):
        service.store("alpha", token, f"s{index}", b"v")
    with pytest.raises(TenantQuotaExceeded, match="3/3"):
        service.store("alpha", token, "s3", b"v")
    # Replacing an existing secret does not consume a new slot.
    service.store("alpha", token, "s0", b"v2")
    # Deleting frees a slot.
    service.delete("alpha", token, "s1")
    service.store("alpha", token, "s3", b"v")
    assert service.registry.secret_count("alpha") == 3


def test_quotas_are_per_namespace():
    world = make_world(quota=TenantQuota(max_secrets=1))
    world.service.store("alpha", world.tokens["alpha"], "only", b"a")
    # Alpha being full does not affect beta.
    world.service.store("beta", world.tokens["beta"], "only", b"b")
    with pytest.raises(TenantQuotaExceeded):
        world.service.store("alpha", world.tokens["alpha"], "two", b"x")


# ------------------------------------------------------------- rate quota


def test_rate_quota_token_bucket():
    world = make_world(quota=TenantQuota(max_secrets=100,
                                         ops_per_second=10.0, burst=3))
    service, token = world.service, world.tokens["alpha"]
    # The burst admits 3 back-to-back requests at t=0...
    for index in range(3):
        service.store("alpha", token, f"s{index}", b"v")
    # ...then the bucket is dry (store ops advance sim time by far less
    # than the 0.1 s one refill token needs).
    with pytest.raises(TenantQuotaExceeded, match="10.0/s"):
        service.store("alpha", token, "s3", b"v")
    # Advancing simulated time refills deterministically.
    world.clock.advance(0.25, account="test")
    service.store("alpha", token, "s3", b"v")
    service.store("alpha", token, "s4", b"v")
    with pytest.raises(TenantQuotaExceeded):
        service.store("alpha", token, "s5", b"v")


# ------------------------------------------------------------- generation


def test_generate_is_deterministic_per_seed():
    first = make_world(seed=b"gen-seed")
    second = make_world(seed=b"gen-seed")
    a = first.service.registry.generate_secret("alpha", 32)
    b = second.service.registry.generate_secret("alpha", 32)
    assert a == b
    # The stream advances: a second draw differs from the first.
    assert first.service.registry.generate_secret("alpha", 32) != a
    # Different tenants draw from independent streams.
    assert second.service.registry.generate_secret("beta", 32) != b


def test_generate_length_bounds(world):
    with pytest.raises(NamespaceError, match="out of range"):
        world.service.registry.generate_secret("alpha", 0)
    with pytest.raises(NamespaceError, match="out of range"):
        world.service.registry.generate_secret("alpha", 4096)
