"""The host agent protocol."""

import pytest

from repro.errors import VnfSgxError
from repro.ima.iml import MeasurementList


def test_attest_host_roundtrip(deployment):
    evidence = deployment.agent_client.attest_host(b"\x01" * 16, b"basename")
    assert MeasurementList.from_bytes(evidence.iml_bytes)
    assert evidence.quote.basename == b"basename"


def test_provisioning_operations(deployment):
    agent = deployment.agent_client
    public = agent.begin_provisioning("vnf-1", b"\x02" * 16)
    assert len(public) == 65
    quote_bytes = agent.quote_vnf("vnf-1", b"basename")
    from repro.sgx.quote import Quote

    quote = Quote.from_bytes(quote_bytes)
    assert quote.mrenclave == (
        deployment.credential_enclaves["vnf-1"].enclave.mrenclave
    )


def test_unknown_vnf_surfaces_as_error(deployment):
    with pytest.raises(VnfSgxError) as excinfo:
        deployment.agent_client.begin_provisioning("ghost-vnf", b"\x00" * 16)
    assert "ghost-vnf" in str(excinfo.value)


def test_malformed_provisioning_message_surfaces(deployment):
    deployment.agent_client.begin_provisioning("vnf-1", b"\x00" * 16)
    with pytest.raises(VnfSgxError):
        deployment.agent_client.complete_provisioning("vnf-1", b"junk")


def test_agent_survives_errors(deployment):
    # After a failed call the agent keeps serving.
    with pytest.raises(VnfSgxError):
        deployment.agent_client.begin_provisioning("ghost", b"\x00" * 16)
    evidence = deployment.agent_client.attest_host(b"\x03" * 16, b"b")
    assert evidence.quote is not None


def test_client_reconnects_after_channel_close(deployment):
    deployment.agent_client.attest_host(b"\x00" * 16, b"b")
    deployment.agent_client._channel.close()
    evidence = deployment.agent_client.attest_host(b"\x04" * 16, b"b")
    assert evidence.quote is not None
