"""The CSR provisioning variant: keys generated inside the enclave."""

import pytest

from repro.errors import AttestationFailed, ProvisioningError, ReproError


@pytest.fixture
def attested(deployment):
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    return deployment


def test_csr_enrollment_end_to_end(attested):
    certificate = attested.vm.enroll_vnf_csr(
        attested.agent_client, attested.host.name, "vnf-1",
        str(attested.controller_address()),
    )
    certificate.verify_signature(attested.vm.ca.certificate.public_key)
    assert attested.credential_enclaves["vnf-1"].has_credentials()
    assert attested.enclave_client("vnf-1").summary()["controller"] == (
        "floodlight"
    )


def test_csr_requires_trusted_host(deployment):
    with pytest.raises(AttestationFailed):
        deployment.vm.enroll_vnf_csr(
            deployment.agent_client, deployment.host.name, "vnf-1",
            str(deployment.controller_address()),
        )


def test_csr_key_never_leaves_enclave(attested):
    attested.vm.enroll_vnf_csr(
        attested.agent_client, attested.host.name, "vnf-1",
        str(attested.controller_address()),
    )
    from repro.errors import EnclaveMemoryViolation

    enclave = attested.credential_enclaves["vnf-1"].enclave
    with pytest.raises(EnclaveMemoryViolation):
        enclave.memory.read("csr_key")
    with pytest.raises(EnclaveMemoryViolation):
        enclave.memory.read("bundle")


def test_install_certificate_checks_key_match(attested, pki):
    # Get a CSR flow started, then try installing a certificate for a
    # *different* key: the enclave must refuse.
    enclave = attested.credential_enclaves["vnf-1"]
    enclave.generate_csr("vnf-1", b"\x00" * 16)
    with pytest.raises(ProvisioningError):
        enclave.install_certificate(
            pki.client_cert.to_bytes(), (pki.ca.certificate.to_bytes(),),
            "controller:9443",
        )


def test_install_without_csr_refused(attested):
    enclave = attested.credential_enclaves["vnf-1"]
    with pytest.raises(ProvisioningError):
        enclave.enclave.ecall("install_certificate", b"cert", (), "x:1")


def test_csr_revocation_works_like_standard(attested):
    attested.vm.enroll_vnf_csr(
        attested.agent_client, attested.host.name, "vnf-1",
        str(attested.controller_address()),
    )
    client = attested.enclave_client("vnf-1")
    assert client.summary()
    attested.vm.revoke_vnf("vnf-1")
    client.close()
    with pytest.raises(ReproError):
        client.summary()


def test_csr_audit_marks_variant(attested):
    attested.vm.enroll_vnf_csr(
        attested.agent_client, attested.host.name, "vnf-1",
        str(attested.controller_address()),
    )
    events = attested.vm.audit.events("credential-issued")
    assert any("(csr)" in event.details for event in events)
