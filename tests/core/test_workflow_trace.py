"""The WorkflowTrace object and Deployment accessors."""

import pytest

from repro.core import Deployment
from repro.core.workflow import WorkflowTrace
from repro.sdn.northbound import MODE_HTTP, MODE_HTTPS, MODE_TRUSTED


def test_trace_step_totals_sum(two_vnf_deployment):
    trace = two_vnf_deployment.run_workflow()
    per_step = trace.step_totals()
    per_vnf_total = sum(
        timing.simulated_seconds
        for timings in trace.per_vnf.values()
        for timing in timings
    )
    assert sum(per_step.values()) == pytest.approx(per_vnf_total)


def test_trace_wall_time_positive(two_vnf_deployment):
    trace = two_vnf_deployment.run_workflow()
    assert trace.wall_seconds > 0


def test_empty_trace():
    trace = WorkflowTrace()
    assert trace.step_totals() == {}


def test_controller_address_per_mode(deployment):
    assert deployment.controller_address(MODE_HTTP).port == 8080
    assert deployment.controller_address(MODE_HTTPS).port == 8443
    assert deployment.controller_address(MODE_TRUSTED).port == 9443


def test_selected_modes_only():
    deployment = Deployment(seed=b"modes-subset", vnf_count=1,
                            modes=(MODE_TRUSTED,))
    assert set(deployment.endpoints) == {MODE_TRUSTED}
    assert not deployment.network.is_listening(
        deployment.controller_address(MODE_HTTP)
    )


def test_deterministic_construction():
    a = Deployment(seed=b"same-seed", vnf_count=1)
    b = Deployment(seed=b"same-seed", vnf_count=1)
    assert (a.vm.ca.certificate.public_key_bytes
            == b.vm.ca.certificate.public_key_bytes)
    assert (a.credential_enclaves["vnf-1"].enclave.mrenclave
            == b.credential_enclaves["vnf-1"].enclave.mrenclave)


def test_different_seeds_different_keys():
    a = Deployment(seed=b"seed-a", vnf_count=1)
    b = Deployment(seed=b"seed-b", vnf_count=1)
    assert (a.vm.ca.certificate.public_key_bytes
            != b.vm.ca.certificate.public_key_bytes)
