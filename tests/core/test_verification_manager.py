"""The Verification Manager: attestation decisions, issuance, revocation."""

import pytest

from repro.core import events as ev
from repro.errors import AttestationFailed, RevocationError, VnfSgxError


def test_attest_host_success(deployment):
    result = deployment.vm.attest_host(deployment.agent_client,
                                       deployment.host.name)
    assert result.trustworthy
    assert deployment.vm.host_trusted(deployment.host.name)
    assert deployment.vm.audit.events(ev.EVENT_HOST_ATTESTED)


def test_attest_host_tampered_fails_appraisal(deployment):
    deployment.host.tamper_file("/usr/bin/dockerd", b"rootkit")
    result = deployment.vm.attest_host(deployment.agent_client,
                                       deployment.host.name)
    assert not result.trustworthy
    assert not deployment.vm.host_trusted(deployment.host.name)
    assert deployment.vm.audit.events(ev.EVENT_APPRAISAL_FAILED)


def test_vnf_attestation_requires_trusted_host(deployment):
    with pytest.raises(AttestationFailed):
        deployment.vm.attest_vnf(deployment.agent_client,
                                 deployment.host.name, "vnf-1")


def test_vnf_attestation_returns_bound_key(deployment):
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    delivery_public = deployment.vm.attest_vnf(
        deployment.agent_client, deployment.host.name, "vnf-1"
    )
    assert len(delivery_public) == 65  # SEC1 uncompressed point


def test_enroll_issues_and_provisions(deployment):
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    certificate = deployment.vm.enroll_vnf(
        deployment.agent_client, deployment.host.name, "vnf-1",
        str(deployment.controller_address()),
    )
    assert certificate.subject.common_name == "vnf-1"
    certificate.verify_signature(deployment.vm.ca.certificate.public_key)
    assert deployment.credential_enclaves["vnf-1"].has_credentials()
    assert deployment.vm.issued_certificate("vnf-1") == certificate


def test_revoked_platform_cannot_attest(deployment):
    deployment.ias.revoke_platform(deployment.host.name)
    with pytest.raises(AttestationFailed) as excinfo:
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)
    assert "KEY_REVOKED" in str(excinfo.value)


def test_wrong_enclave_identity_rejected(deployment):
    # Point the policy at a different expected measurement: the genuine
    # enclave must now be refused (models a stale/typo policy).
    deployment.vm.policy.expected_attestation_mrenclave = b"\x00" * 32
    with pytest.raises(AttestationFailed) as excinfo:
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)
    assert "MRENCLAVE" in str(excinfo.value)


def test_svn_floor_enforced(deployment):
    deployment.vm.policy.min_isv_svn = 99
    with pytest.raises(AttestationFailed) as excinfo:
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)
    assert "SVN" in str(excinfo.value)


def test_revoke_vnf_updates_crl(deployment):
    deployment.enroll("vnf-1")
    certificate = deployment.vm.issued_certificate("vnf-1")
    deployment.vm.revoke_vnf("vnf-1")
    crl = deployment.vm.ca.current_crl(0)
    assert crl.is_revoked(certificate.serial)
    assert deployment.vm.audit.events(ev.EVENT_CREDENTIAL_REVOKED)


def test_revoke_unknown_vnf_raises(deployment):
    with pytest.raises(RevocationError):
        deployment.vm.revoke_vnf("ghost")


def test_distrust_host_revokes_everything(two_vnf_deployment):
    deployment = two_vnf_deployment
    deployment.run_workflow()
    revoked = deployment.vm.distrust_host(deployment.host.name)
    assert set(revoked) == {"vnf-1", "vnf-2"}
    assert not deployment.vm.host_trusted(deployment.host.name)
    crl = deployment.vm.ca.current_crl(0)
    for vnf_name in revoked:
        assert crl.is_revoked(
            deployment.vm.issued_certificate(vnf_name).serial
        )


def test_distrust_unattested_host_raises(deployment):
    with pytest.raises(RevocationError):
        deployment.vm.distrust_host("never-seen")


def test_issued_certificate_unknown_vnf(deployment):
    with pytest.raises(VnfSgxError):
        deployment.vm.issued_certificate("ghost")


def test_controller_truststore_contains_only_ca(deployment):
    anchors = deployment.vm.controller_truststore().anchors()
    assert len(anchors) == 1
    assert anchors[0] == deployment.vm.ca.certificate
