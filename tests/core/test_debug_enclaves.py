"""DEBUG-attribute enclaves: host-readable memory, so never trusted."""

import pytest

from repro.core.credential_enclave import (
    CredentialEnclave,
    credential_enclave_image,
)
from repro.errors import AttestationFailed
from repro.sgx.enclave import ATTRIBUTE_DEBUG
from repro.sgx.measurement import measure_image
from repro.sgx.sigstruct import sign_image


@pytest.fixture
def debug_vnf(deployment):
    """Replace vnf-1's enclave with a DEBUG-mode build of the same code."""
    image = credential_enclave_image(deployment.network,
                                     deployment.host.name)
    sigstruct = sign_image(deployment.vendor_key, image.code,
                           vendor="RISE-credentials", isv_prod_id=200,
                           isv_svn=1, attributes=ATTRIBUTE_DEBUG)
    debug_enclave = CredentialEnclave.__new__(CredentialEnclave)
    debug_enclave.host = deployment.host
    debug_enclave.vnf_name = "vnf-1"
    debug_enclave.enclave = deployment.host.platform.create_enclave(
        image, sigstruct, label="debug-tee"
    )
    deployment.agent.register_vnf(debug_enclave)
    return deployment


def test_debug_identity_flagged(debug_vnf):
    enclave = debug_vnf.agent.credential_enclave("vnf-1").enclave
    assert enclave.identity.debug


def test_debug_quote_carries_attribute(debug_vnf):
    debug_vnf.vm.attest_host(debug_vnf.agent_client, debug_vnf.host.name)
    # Even with a policy that expects the DEBUG build's measurement...
    debug_vnf.vm.policy.expected_credential_mrenclave = measure_image(
        credential_enclave_image(debug_vnf.network,
                                 debug_vnf.host.name).code,
        attributes=ATTRIBUTE_DEBUG,
    )
    # ...the default policy still refuses it because of the DEBUG bit.
    with pytest.raises(AttestationFailed) as excinfo:
        debug_vnf.vm.attest_vnf(debug_vnf.agent_client,
                                debug_vnf.host.name, "vnf-1")
    assert "DEBUG" in str(excinfo.value)


def test_debug_allowed_when_policy_permits(debug_vnf):
    debug_vnf.vm.policy.allow_debug_enclaves = True
    debug_vnf.vm.policy.expected_credential_mrenclave = measure_image(
        credential_enclave_image(debug_vnf.network,
                                 debug_vnf.host.name).code,
        attributes=ATTRIBUTE_DEBUG,
    )
    debug_vnf.vm.attest_host(debug_vnf.agent_client, debug_vnf.host.name)
    delivery_key = debug_vnf.vm.attest_vnf(debug_vnf.agent_client,
                                           debug_vnf.host.name, "vnf-1")
    assert len(delivery_key) == 65  # dev-mode deployments can opt in


def test_production_enclaves_are_not_debug(deployment):
    for enclave in deployment.credential_enclaves.values():
        assert not enclave.enclave.identity.debug
    assert not deployment.attestation_enclave.enclave.identity.debug
