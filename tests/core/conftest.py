"""Core-layer fixtures: a compact deployment per test."""

import pytest

from repro.core import Deployment


@pytest.fixture
def deployment():
    """A fresh 1-VNF deployment (not yet enrolled)."""
    return Deployment(seed=b"core-tests", vnf_count=1)


@pytest.fixture
def two_vnf_deployment():
    """A fresh 2-VNF deployment (not yet enrolled)."""
    return Deployment(seed=b"core-tests-2", vnf_count=2)
