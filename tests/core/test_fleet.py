"""The worker-pool fleet scheduler: equivalence, single-flight, failures.

The central property (asserted for several pool widths and DRBG-shuffled
submission orders): ``enroll_fleet(names, workers=k)`` is observably
equivalent to a serial :meth:`Deployment.enroll` loop over the same
``names`` — byte-identical certificates, identical serial assignment,
identical post-revocation state.
"""

import pytest

from repro.core import Deployment, FleetScheduler
from repro.core import events as ev
from repro.errors import VnfSgxError
from repro.net.faults import FaultPlan
from repro.net.retry import RetryPolicy


def _shuffled(names, seed: bytes):
    """Deterministic DRBG-seeded shuffle (Fisher-Yates)."""
    from repro.crypto.rng import HmacDrbg

    rng = HmacDrbg(seed, personalization=b"fleet-shuffle")
    order = list(names)
    for i in range(len(order) - 1, 0, -1):
        j = rng.random_int(i + 1)
        order[i], order[j] = order[j], order[i]
    return order


def _serial_reference(seed: bytes, vnf_count: int, order, revoke=()):
    """Enroll ``order`` serially; returns {name: cert bytes} + CA."""
    dep = Deployment(seed=seed, vnf_count=vnf_count)
    for name in order:
        dep.enroll(name)
    for name in revoke:
        dep.vm.revoke_vnf(name)
    certs = {name: dep.vm.issued_certificate(name).to_bytes()
             for name in order}
    return dep, certs


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_fleet_equals_serial_loop(workers):
    """Same submission order => byte-identical certificates at any pool
    width, plus identical serial numbers and revocation behaviour."""
    seed, count = b"fleet-equivalence", 6
    order = _shuffled([f"vnf-{i}" for i in range(1, count + 1)],
                      seed + bytes([workers]))
    revoke = order[:2]

    serial_dep, serial_certs = _serial_reference(seed, count, order,
                                                 revoke=revoke)

    fleet_dep = Deployment(seed=seed, vnf_count=count)
    report = fleet_dep.enroll_fleet(order, workers=workers)
    assert report.fully_succeeded, report.failed
    assert list(report.results) == order  # submission order preserved
    for name in revoke:
        fleet_dep.vm.revoke_vnf(name)

    fleet_certs = {name: fleet_dep.vm.issued_certificate(name).to_bytes()
                   for name in order}
    assert fleet_certs == serial_certs

    # Serial assignment matches the serial loop's allocation order.
    for name in order:
        assert (fleet_dep.vm.issued_certificate(name).serial
                == serial_dep.vm.issued_certificate(name).serial)
        assert (report.results[name].certificate_serial
                == serial_dep.vm.issued_certificate(name).serial)

    # Revocation state: the same serials are revoked in both worlds.
    now = int(fleet_dep.clock.now())
    serial_crl = serial_dep.vm.ca.current_crl(now)
    fleet_crl = fleet_dep.vm.ca.current_crl(now)
    for name in order:
        serial_no = serial_dep.vm.issued_certificate(name).serial
        assert (fleet_crl.is_revoked(serial_no)
                == serial_crl.is_revoked(serial_no)
                == (name in revoke))


def test_fleet_single_flight_host_attestation():
    """One host, many VNFs: the fleet attests the host exactly once and
    reuses one IAS connection, where the serial loop repeats both."""
    dep = Deployment(seed=b"fleet-single-flight", vnf_count=8)
    report = dep.enroll_fleet(workers=4)
    assert report.fully_succeeded, report.failed
    attested = dep.vm.audit.events(kind=ev.EVENT_HOST_ATTESTED)
    assert len(attested) == 1
    assert set(report.host_attestations) == {dep.host.name}
    # 1 host quote + 8 VNF quotes over a single pooled connection.
    assert report.ias_connects == 1
    assert report.ias_reused_exchanges == 8


def test_fleet_multi_host_partial_failure():
    """A tampered host fails its VNFs; the rest of the fleet proceeds
    (partial-failure semantics, mirroring run_workflow)."""
    dep = Deployment(seed=b"fleet-partial", vnf_count=4, host_count=2)
    bad_host = dep.hosts[1]
    bad_host.tamper_file("/usr/bin/dockerd", b"evil")
    report = dep.enroll_fleet(workers=4)
    on_bad = {name for name, host in dep.vnf_host.items()
              if host is bad_host}
    assert set(report.failed) == on_bad
    assert not report.fully_succeeded
    for name in set(dep.vnf_names) - on_bad:
        assert report.results[name].succeeded
        assert dep.vm.issued_certificate(name) is not None


def test_fleet_validates_submission():
    dep = Deployment(seed=b"fleet-validate", vnf_count=2)
    with pytest.raises(VnfSgxError, match="unknown"):
        dep.enroll_fleet(["vnf-1", "vnf-99"])
    with pytest.raises(VnfSgxError, match="duplicate"):
        dep.enroll_fleet(["vnf-1", "vnf-1"])
    with pytest.raises(VnfSgxError, match="worker"):
        FleetScheduler(dep, workers=0)
    # An empty submission is a successful no-op report.
    report = dep.enroll_fleet([])
    assert report.fully_succeeded and not report.results


def test_pooled_ias_survives_transient_faults():
    """An injected IAS brown-out mid-fleet is absorbed by the retry
    layer; the pooled connection is reused across the recovery."""
    from repro.core.workflow import IAS_ADDRESS

    dep = Deployment(seed=b"fleet-faults", vnf_count=4)
    dep.install_faults(FaultPlan().http_error(IAS_ADDRESS, 503, count=2))
    policy = RetryPolicy(max_attempts=4, base_backoff=0.01, jitter=0.0)
    report = dep.enroll_fleet(workers=2, retry_policy=policy)
    assert report.fully_succeeded, report.failed


def test_pooled_ias_surfaces_service_error_not_stale_transport():
    """Regression: when a brown-out outlasts the retry deadline, the
    caller must see the underlying ``IasUnavailable`` — not the
    ``ChannelClosed`` from the stale pooled connection that happened to
    be the first casualty."""
    from repro.core import PooledIasClient
    from repro.core.workflow import IAS_ADDRESS
    from repro.errors import ChannelClosed, IasUnavailable

    dep = Deployment(seed=b"fleet-stale-surface", vnf_count=1)
    quote_bytes = dep.attestation_enclave.collect_quoted_evidence(
        b"\x05" * 16, b"fleet-stale-surface").quote.to_bytes()

    pool = PooledIasClient(
        dep.network, IAS_ADDRESS, dep.ias_http.ias_truststore,
        dep.ias.report_signing_public_key, rng=dep.rng,
    )
    pool.configure_retries(
        RetryPolicy(max_attempts=3, base_backoff=0.01, jitter=0.0),
        rng=dep.rng,
    )
    # Warm the pooled connection with a healthy exchange.
    assert pool.verify_quote(quote_bytes, nonce="warm").ok
    assert pool.connects == 1

    # The server silently drops the idle connection (it is now stale),
    # and the service brown-out outlasts the whole retry budget.
    pool._pooled_conn._channel.peer.close()
    dep.install_faults(FaultPlan().http_error(IAS_ADDRESS, 503, count=10))

    with pytest.raises(IasUnavailable) as excinfo:
        pool.verify_quote(quote_bytes, nonce="browned-out")
    assert not isinstance(excinfo.value, ChannelClosed)
    # The stale connection was replaced within the first attempt, so the
    # 503 verdicts (not the transport) drove every retry.
    assert pool.connects >= 2

    # Once the brown-out clears the same client recovers.
    dep.install_faults(None)
    assert pool.verify_quote(quote_bytes, nonce="recovered").ok
    pool.close()


def test_pooled_ias_fresh_connection_fault_still_propagates():
    """A transport fault on a *fresh* connection is genuine (nothing
    stale to blame) and must reach the retry layer unchanged."""
    from repro.core import PooledIasClient
    from repro.core.workflow import IAS_ADDRESS
    from repro.errors import ChannelClosed

    dep = Deployment(seed=b"fleet-fresh-fault", vnf_count=1)
    quote_bytes = dep.attestation_enclave.collect_quoted_evidence(
        b"\x06" * 16, b"fleet-fresh-fault").quote.to_bytes()
    # Every connection to IAS drops mid-stream, from the very first send.
    dep.install_faults(
        FaultPlan().drop_after_sends(IAS_ADDRESS, sends=1, connections=99))

    pool = PooledIasClient(
        dep.network, IAS_ADDRESS, dep.ias_http.ias_truststore,
        dep.ias.report_signing_public_key, rng=dep.rng,
    )
    pool.configure_retries(
        RetryPolicy(max_attempts=2, base_backoff=0.01, jitter=0.0),
        rng=dep.rng,
    )
    with pytest.raises(ChannelClosed):
        pool.verify_quote(quote_bytes)
    pool.close()


def test_fleet_without_pooling_still_equivalent():
    """pooled_ias=False keeps the per-verification dialling behaviour
    but must not change any issued byte."""
    seed, count = b"fleet-no-pool", 3
    order = [f"vnf-{i}" for i in range(1, count + 1)]
    _, serial_certs = _serial_reference(seed, count, order)
    dep = Deployment(seed=seed, vnf_count=count)
    report = dep.enroll_fleet(order, workers=2, pooled_ias=False)
    assert report.fully_succeeded
    assert report.ias_connects == 0 and report.ias_reused_exchanges == 0
    certs = {name: dep.vm.issued_certificate(name).to_bytes()
             for name in order}
    assert certs == serial_certs


def test_fleet_with_process_kernels_byte_identical():
    """processes=N moves the verify/sign math to worker processes and
    batches IAS exchanges — without changing a single issued byte."""
    seed, count = b"fleet-processes", 4
    order = [f"vnf-{i}" for i in range(1, count + 1)]
    _, serial_certs = _serial_reference(seed, count, order)

    dep = Deployment(seed=seed, vnf_count=count)
    report = dep.enroll_fleet(order, workers=4, processes=2)
    assert report.fully_succeeded, report.failed
    assert report.processes == 2
    assert report.kernel_dispatches + report.kernel_inline_calls > 0
    certs = {name: dep.vm.issued_certificate(name).to_bytes()
             for name in order}
    assert certs == serial_certs
    # The pool is scoped to the run: everything is detached afterwards.
    assert dep.ias._kernel_pool is None

    with pytest.raises(VnfSgxError, match="process"):
        FleetScheduler(dep, processes=-1)


def test_fleet_keystore_validation_model():
    """The stock-Floodlight keystore model works under the pool: every
    enrolled VNF lands in the keystore before its first connection."""
    dep = Deployment(seed=b"fleet-keystore", vnf_count=3,
                     client_validation="keystore")
    report = dep.enroll_fleet(workers=3)
    assert report.fully_succeeded, report.failed
    for name in dep.vnf_names:
        assert name in dep.keystore.trusted_aliases()
        assert dep.keystore.contains_certificate(
            dep.vm.issued_certificate(name)
        )


def test_fleet_report_mirrors_workflow_trace_shape():
    """FleetReport exposes the WorkflowTrace surface the experiment
    harness consumes: per_vnf, failed, step_totals."""
    dep = Deployment(seed=b"fleet-shape", vnf_count=2)
    report = dep.enroll_fleet(workers=2)
    assert set(report.per_vnf) == set(dep.vnf_names)
    assert report.failed == {}
    totals = report.step_totals()
    assert any("host-attestation" in step for step in totals)
    assert any("provisioning" in step for step in totals)
    assert report.simulated_seconds > 0.0
    assert report.clock_charges
