"""Audit log and deployment policy."""

from repro.core.events import AuditLog
from repro.core.policy import DeploymentPolicy


def test_audit_records_and_filters():
    times = iter([1.0, 2.0, 3.0])
    log = AuditLog(now=lambda: next(times))
    log.record("host-attested", "host-1")
    log.record("vnf-attested", "vnf-1", "details")
    log.record("host-attested", "host-2")
    assert len(log) == 3
    assert [e.subject for e in log.events("host-attested")] == ["host-1",
                                                                "host-2"]
    assert log.events(subject="vnf-1")[0].details == "details"
    assert log.events("host-attested", subject="host-2")[0].timestamp == 3.0
    assert log.counts() == {"host-attested": 2, "vnf-attested": 1}


def test_policy_defaults_match_reference_enclaves():
    from repro.core.attestation_enclave import reference_measurement as att
    from repro.core.credential_enclave import reference_measurement as cred

    policy = DeploymentPolicy()
    assert policy.expected_attestation_mrenclave == att()
    assert policy.expected_credential_mrenclave == cred()
    assert policy.expected_attestation_mrenclave != (
        policy.expected_credential_mrenclave
    )


def test_policy_svn_floor():
    policy = DeploymentPolicy(min_isv_svn=3)
    assert policy.check_enclave_svn(3)
    assert policy.check_enclave_svn(4)
    assert not policy.check_enclave_svn(2)
