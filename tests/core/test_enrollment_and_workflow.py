"""The enrolment state machine and the executable Figure 1 workflow."""

import pytest

from repro.core.enrollment import (
    STATE_ENROLLED,
    STATE_FAILED,
    STATE_HOST_ATTESTED,
    STATE_INIT,
    EnrollmentSession,
)
from repro.errors import AppraisalFailed, EnrollmentError


def make_session(deployment, vnf_name="vnf-1"):
    return EnrollmentSession(
        vm=deployment.vm,
        agent=deployment.agent_client,
        host_name=deployment.host.name,
        vnf_name=vnf_name,
        controller_address=str(deployment.controller_address()),
        sim_now=deployment.clock.now,
    )


def test_state_progression(deployment):
    session = make_session(deployment)
    assert session.state == STATE_INIT
    session.attest_host()
    assert session.state == STATE_HOST_ATTESTED
    session.provision()
    session.connect(deployment.enclave_client("vnf-1"))
    assert session.state == STATE_ENROLLED
    assert session.certificate_serial is not None


def test_steps_must_run_in_order(deployment):
    session = make_session(deployment)
    with pytest.raises(EnrollmentError):
        session.provision()
    with pytest.raises(EnrollmentError):
        session.connect(deployment.enclave_client("vnf-1"))


def test_failure_marks_session(deployment):
    deployment.host.tamper_file("/usr/bin/dockerd", b"rootkit")
    session = make_session(deployment)
    with pytest.raises(AppraisalFailed):
        session.attest_host()
    assert session.state == STATE_FAILED


def test_timings_recorded_per_step(deployment):
    session = make_session(deployment)
    session.run(deployment.enclave_client("vnf-1"))
    assert len(session.timings) == 3
    steps = [timing.step for timing in session.timings]
    assert "host-attestation (steps 1-2)" in steps[0]
    assert all(t.simulated_seconds > 0 for t in session.timings)
    assert session.total_simulated_seconds == pytest.approx(
        sum(t.simulated_seconds for t in session.timings)
    )


def test_run_workflow_all_vnfs(two_vnf_deployment):
    trace = two_vnf_deployment.run_workflow()
    assert set(trace.per_vnf) == {"vnf-1", "vnf-2"}
    assert trace.simulated_seconds > 0
    assert "network" in trace.clock_charges
    assert "enclave-transitions" in trace.clock_charges
    totals = trace.step_totals()
    assert len(totals) == 3


def test_workflow_is_deterministic():
    from repro.core import Deployment

    a = Deployment(seed=b"det", vnf_count=1).run_workflow()
    b = Deployment(seed=b"det", vnf_count=1).run_workflow()
    assert a.simulated_seconds == pytest.approx(b.simulated_seconds)
    for step_a, step_b in zip(a.per_vnf["vnf-1"], b.per_vnf["vnf-1"]):
        assert step_a.simulated_seconds == pytest.approx(
            step_b.simulated_seconds
        )


def test_keystore_mode_populates_keystore():
    from repro.core import Deployment
    from repro.core.workflow import VALIDATION_KEYSTORE

    deployment = Deployment(seed=b"ks", vnf_count=2,
                            client_validation=VALIDATION_KEYSTORE)
    deployment.run_workflow()
    assert len(deployment.keystore) == 2
    assert deployment.enclave_client("vnf-1").summary()


def test_ca_mode_keystore_stays_empty(two_vnf_deployment):
    two_vnf_deployment.run_workflow()
    assert len(two_vnf_deployment.keystore) == 0


def test_invalid_validation_model_rejected():
    from repro.core import Deployment
    from repro.errors import VnfSgxError

    with pytest.raises(VnfSgxError):
        Deployment(client_validation="blockchain")


def test_run_workflow_equals_sequential_enroll():
    """run_workflow() is enroll() in a loop — not a diverging copy of its
    body.  Two identically seeded deployments, one driven by
    run_workflow() and one by sequential enroll() calls, must produce
    identical per-VNF timings."""
    from repro.core import Deployment

    via_workflow = Deployment(seed=b"dedup", vnf_count=2)
    trace = via_workflow.run_workflow()

    via_enroll = Deployment(seed=b"dedup", vnf_count=2)
    sessions = {name: via_enroll.enroll(name)
                for name in via_enroll.vnf_names}

    assert set(trace.per_vnf) == set(sessions)
    for vnf_name, session in sessions.items():
        workflow_steps = trace.per_vnf[vnf_name]
        assert [t.step for t in workflow_steps] == \
            [t.step for t in session.timings]
        for from_workflow, from_enroll in zip(workflow_steps,
                                              session.timings):
            assert from_workflow.simulated_seconds == pytest.approx(
                from_enroll.simulated_seconds
            )


def test_partial_failure_recorded_not_raised():
    """A VNF that cannot enrol lands in WorkflowTrace.failed; the rest of
    the fleet still enrolls."""
    from repro.core import Deployment

    deployment = Deployment(seed=b"partial", vnf_count=3)
    # vnf-2's enclave disappears (e.g. its container was killed).
    del deployment.agent._credential_enclaves["vnf-2"]
    trace = deployment.run_workflow()
    assert sorted(trace.per_vnf) == ["vnf-1", "vnf-3"]
    assert list(trace.failed) == ["vnf-2"]
    assert "vnf-2" in trace.failed["vnf-2"]
    assert not trace.fully_succeeded
