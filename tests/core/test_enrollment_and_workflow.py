"""The enrolment state machine and the executable Figure 1 workflow."""

import pytest

from repro.core.enrollment import (
    STATE_ENROLLED,
    STATE_FAILED,
    STATE_HOST_ATTESTED,
    STATE_INIT,
    EnrollmentSession,
)
from repro.errors import AppraisalFailed, EnrollmentError


def make_session(deployment, vnf_name="vnf-1"):
    return EnrollmentSession(
        vm=deployment.vm,
        agent=deployment.agent_client,
        host_name=deployment.host.name,
        vnf_name=vnf_name,
        controller_address=str(deployment.controller_address()),
        sim_now=deployment.clock.now,
    )


def test_state_progression(deployment):
    session = make_session(deployment)
    assert session.state == STATE_INIT
    session.attest_host()
    assert session.state == STATE_HOST_ATTESTED
    session.provision()
    session.connect(deployment.enclave_client("vnf-1"))
    assert session.state == STATE_ENROLLED
    assert session.certificate_serial is not None


def test_steps_must_run_in_order(deployment):
    session = make_session(deployment)
    with pytest.raises(EnrollmentError):
        session.provision()
    with pytest.raises(EnrollmentError):
        session.connect(deployment.enclave_client("vnf-1"))


def test_failure_marks_session(deployment):
    deployment.host.tamper_file("/usr/bin/dockerd", b"rootkit")
    session = make_session(deployment)
    with pytest.raises(AppraisalFailed):
        session.attest_host()
    assert session.state == STATE_FAILED


def test_timings_recorded_per_step(deployment):
    session = make_session(deployment)
    session.run(deployment.enclave_client("vnf-1"))
    assert len(session.timings) == 3
    steps = [timing.step for timing in session.timings]
    assert "host-attestation (steps 1-2)" in steps[0]
    assert all(t.simulated_seconds > 0 for t in session.timings)
    assert session.total_simulated_seconds == pytest.approx(
        sum(t.simulated_seconds for t in session.timings)
    )


def test_run_workflow_all_vnfs(two_vnf_deployment):
    trace = two_vnf_deployment.run_workflow()
    assert set(trace.per_vnf) == {"vnf-1", "vnf-2"}
    assert trace.simulated_seconds > 0
    assert "network" in trace.clock_charges
    assert "enclave-transitions" in trace.clock_charges
    totals = trace.step_totals()
    assert len(totals) == 3


def test_workflow_is_deterministic():
    from repro.core import Deployment

    a = Deployment(seed=b"det", vnf_count=1).run_workflow()
    b = Deployment(seed=b"det", vnf_count=1).run_workflow()
    assert a.simulated_seconds == pytest.approx(b.simulated_seconds)
    for step_a, step_b in zip(a.per_vnf["vnf-1"], b.per_vnf["vnf-1"]):
        assert step_a.simulated_seconds == pytest.approx(
            step_b.simulated_seconds
        )


def test_keystore_mode_populates_keystore():
    from repro.core import Deployment
    from repro.core.workflow import VALIDATION_KEYSTORE

    deployment = Deployment(seed=b"ks", vnf_count=2,
                            client_validation=VALIDATION_KEYSTORE)
    deployment.run_workflow()
    assert len(deployment.keystore) == 2
    assert deployment.enclave_client("vnf-1").summary()


def test_ca_mode_keystore_stays_empty(two_vnf_deployment):
    two_vnf_deployment.run_workflow()
    assert len(two_vnf_deployment.keystore) == 0


def test_invalid_validation_model_rejected():
    from repro.core import Deployment
    from repro.errors import VnfSgxError

    with pytest.raises(VnfSgxError):
        Deployment(client_validation="blockchain")
