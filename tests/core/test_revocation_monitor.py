"""The re-attestation monitor."""

import pytest

from repro.core.revocation import ReattestationMonitor
from repro.errors import ReproError


def test_pristine_sweep_keeps_trust(deployment):
    deployment.enroll("vnf-1")
    monitor = ReattestationMonitor(deployment.vm)
    monitor.watch(deployment.host.name, deployment.agent_client)
    [outcome] = monitor.sweep()
    assert outcome.trustworthy
    assert outcome.revoked_vnfs == []
    assert monitor.sweeps == 1


def test_tampered_host_gets_revoked(deployment):
    deployment.enroll("vnf-1")
    monitor = ReattestationMonitor(deployment.vm, ias_service=deployment.ias)
    monitor.watch(deployment.host.name, deployment.agent_client)
    deployment.host.tamper_file("/usr/sbin/sshd", b"backdoor")
    [outcome] = monitor.sweep()
    assert not outcome.trustworthy
    assert outcome.revoked_vnfs == ["vnf-1"]
    assert outcome.failures
    # Platform EPID key revoked at IAS too.
    from repro.ias.service import QuoteStatus

    evidence = deployment.agent_client.attest_host(b"\x00" * 16,
                                                   b"vnf-sgx-deployment")
    avr = deployment.ias_client.verify_quote(evidence.quote.to_bytes())
    assert avr.quote_status == QuoteStatus.KEY_REVOKED


def test_revoked_vnf_cannot_reconnect(deployment):
    deployment.enroll("vnf-1")
    client = deployment.enclave_client("vnf-1")
    assert client.summary()
    monitor = ReattestationMonitor(deployment.vm)
    monitor.watch(deployment.host.name, deployment.agent_client)
    deployment.host.tamper_file("/usr/sbin/sshd", b"backdoor")
    monitor.sweep()
    client.close()
    with pytest.raises(ReproError):
        client.summary()


def test_unreachable_host_is_not_revoked(deployment):
    """A transport failure is an availability problem, not a trust
    verdict: the host keeps its credentials and the monitor retries."""
    from repro.core.host_agent import HostAgentClient
    from repro.core.revocation import STATUS_UNREACHABLE
    from repro.net.faults import FaultPlan

    deployment.enroll("vnf-1")
    agent_client = HostAgentClient(deployment.network,
                                   deployment.agent.address)
    monitor = ReattestationMonitor(deployment.vm, ias_service=deployment.ias)
    monitor.watch(deployment.host.name, agent_client)

    plan = FaultPlan().refuse_connections(deployment.agent.address)
    deployment.install_faults(plan)
    for expected_streak in (1, 2):
        [outcome] = monitor.sweep()
        assert not outcome.reachable
        assert outcome.status == STATUS_UNREACHABLE
        assert outcome.trustworthy  # last-known status preserved
        assert outcome.revoked_vnfs == []
        assert outcome.consecutive_unreachable == expected_streak
        assert "host unreachable (retrying)" in outcome.failures[0]
    assert deployment.vm.host_trusted(deployment.host.name)

    # The network heals: the next sweep re-attests and resets the streak.
    deployment.install_faults(None)
    [outcome] = monitor.sweep()
    assert outcome.reachable and outcome.trustworthy
    assert monitor.unreachable_streak(deployment.host.name) == 0


def test_punish_tolerates_unregistered_platform(deployment):
    """IAS revocation of a platform IAS never registered must not mask
    the (already completed) local revocation."""
    from repro.ias.service import IasService

    empty_ias = IasService(rng=deployment.rng,
                           now=deployment.clock.now_seconds)
    deployment.enroll("vnf-1")
    monitor = ReattestationMonitor(deployment.vm, ias_service=empty_ias)
    monitor.watch(deployment.host.name, deployment.agent_client)
    deployment.host.tamper_file("/usr/sbin/sshd", b"backdoor")
    [outcome] = monitor.sweep()
    assert not outcome.trustworthy
    assert outcome.revoked_vnfs == ["vnf-1"]


def test_punish_propagates_unexpected_errors(deployment):
    """Only IAS-level errors are tolerated during punishment; anything
    else is a monitor bug and must surface."""

    class ExplodingIas:
        def revoke_platform(self, platform_name):
            raise RuntimeError("ias stub exploded")

    deployment.enroll("vnf-1")
    monitor = ReattestationMonitor(deployment.vm, ias_service=ExplodingIas())
    monitor.watch(deployment.host.name, deployment.agent_client)
    deployment.host.tamper_file("/usr/sbin/sshd", b"backdoor")
    with pytest.raises(RuntimeError, match="ias stub exploded"):
        monitor.sweep()
