"""The re-attestation monitor."""

import pytest

from repro.core.revocation import ReattestationMonitor
from repro.errors import ReproError


def test_pristine_sweep_keeps_trust(deployment):
    deployment.enroll("vnf-1")
    monitor = ReattestationMonitor(deployment.vm)
    monitor.watch(deployment.host.name, deployment.agent_client)
    [outcome] = monitor.sweep()
    assert outcome.trustworthy
    assert outcome.revoked_vnfs == []
    assert monitor.sweeps == 1


def test_tampered_host_gets_revoked(deployment):
    deployment.enroll("vnf-1")
    monitor = ReattestationMonitor(deployment.vm, ias_service=deployment.ias)
    monitor.watch(deployment.host.name, deployment.agent_client)
    deployment.host.tamper_file("/usr/sbin/sshd", b"backdoor")
    [outcome] = monitor.sweep()
    assert not outcome.trustworthy
    assert outcome.revoked_vnfs == ["vnf-1"]
    assert outcome.failures
    # Platform EPID key revoked at IAS too.
    from repro.ias.service import QuoteStatus

    evidence = deployment.agent_client.attest_host(b"\x00" * 16,
                                                   b"vnf-sgx-deployment")
    avr = deployment.ias_client.verify_quote(evidence.quote.to_bytes())
    assert avr.quote_status == QuoteStatus.KEY_REVOKED


def test_revoked_vnf_cannot_reconnect(deployment):
    deployment.enroll("vnf-1")
    client = deployment.enclave_client("vnf-1")
    assert client.summary()
    monitor = ReattestationMonitor(deployment.vm)
    monitor.watch(deployment.host.name, deployment.agent_client)
    deployment.host.tamper_file("/usr/sbin/sshd", b"backdoor")
    monitor.sweep()
    client.close()
    with pytest.raises(ReproError):
        client.summary()
