"""Multi-host deployments: placement, per-host trust, containment."""

import pytest

from repro.core import Deployment
from repro.errors import ReproError, VnfSgxError


@pytest.fixture
def fleet():
    return Deployment(seed=b"multihost-tests", vnf_count=4, host_count=2)


def test_round_robin_placement(fleet):
    assert fleet.vnf_host["vnf-1"].name == "container-host-1"
    assert fleet.vnf_host["vnf-2"].name == "container-host-2"
    assert fleet.vnf_host["vnf-3"].name == "container-host-1"
    assert fleet.vnf_host["vnf-4"].name == "container-host-2"


def test_all_vnfs_enroll_across_hosts(fleet):
    trace = fleet.run_workflow()
    assert set(trace.per_vnf) == {"vnf-1", "vnf-2", "vnf-3", "vnf-4"}
    for vnf_name in fleet.vnf_names:
        assert fleet.enclave_client(vnf_name).summary()


def test_hosts_have_distinct_platforms(fleet):
    a, b = fleet.hosts
    assert a.platform is not b.platform
    assert a.platform._fuse_key != b.platform._fuse_key


def test_single_host_aliases_still_work(fleet):
    assert fleet.host is fleet.hosts[0]
    assert fleet.agent_client is fleet.agent_clients[fleet.host.name]


def test_distrust_contains_blast_radius(fleet):
    fleet.run_workflow()
    revoked = fleet.vm.distrust_host("container-host-2")
    assert set(revoked) == {"vnf-2", "vnf-4"}
    # Host-1 VNFs keep working.
    assert fleet.enclave_client("vnf-1").summary()
    assert fleet.enclave_client("vnf-3").summary()
    # Host-2 VNFs are locked out.
    for victim in ("vnf-2", "vnf-4"):
        client = fleet.enclave_client(victim)
        client.close()
        with pytest.raises(ReproError):
            client.summary()


def test_one_tampered_host_does_not_poison_the_other(fleet):
    fleet.hosts[1].tamper_file("/usr/bin/dockerd", b"rootkit")
    # Host 1 enrols fine.
    session = fleet.enroll("vnf-1")
    assert session.state == "enrolled"
    # Host 2 fails appraisal.
    from repro.errors import AppraisalFailed

    with pytest.raises(AppraisalFailed):
        fleet.enroll("vnf-2")
    assert fleet.vm.host_trusted("container-host-1")
    assert not fleet.vm.host_trusted("container-host-2")


def test_cross_host_sealed_blobs_do_not_transfer(fleet):
    fleet.enroll("vnf-1")  # on host 1
    sealed = fleet.credential_enclaves["vnf-1"].seal_credentials()
    from repro.core.credential_enclave import CredentialEnclave
    from repro.errors import SealingError

    foreign = CredentialEnclave(fleet.hosts[1], fleet.vendor_key,
                                fleet.network, "vnf-1")
    with pytest.raises(SealingError):
        foreign.restore_credentials(sealed)


def test_invalid_host_count_rejected():
    with pytest.raises(VnfSgxError):
        Deployment(host_count=0)
