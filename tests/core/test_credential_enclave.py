"""The VNF credential enclave: provisioning, in-enclave TLS, sealing."""

import pytest

from repro.core.credential_enclave import (
    CredentialEnclave,
    reference_measurement,
)
from repro.core.provisioning import binding_hash
from repro.errors import (
    EnclaveMemoryViolation,
    ProvisioningError,
    SealingError,
)


@pytest.fixture
def enrolled(deployment):
    deployment.enroll("vnf-1")
    return deployment


def test_measurement_matches_reference(deployment):
    enclave = deployment.credential_enclaves["vnf-1"]
    assert enclave.enclave.mrenclave == reference_measurement()


def test_binding_quote_covers_delivery_key(deployment):
    enclave = deployment.credential_enclaves["vnf-1"]
    vm_nonce = b"\x01" * 16
    public = enclave.begin_provisioning(vm_nonce)
    quote = enclave.quote_binding(b"deployment-basename")
    assert quote.report_data == binding_hash(public, vm_nonce)


def test_binding_report_requires_begin(deployment):
    enclave = deployment.credential_enclaves["vnf-1"]
    with pytest.raises(ProvisioningError):
        enclave.quote_binding(b"basename")


def test_has_credentials_lifecycle(deployment):
    enclave = deployment.credential_enclaves["vnf-1"]
    assert not enclave.has_credentials()
    deployment.enroll("vnf-1")
    assert enclave.has_credentials()
    assert enclave.enclave.ecall("credential_subject") == "vnf-1"


def test_request_through_enclave(enrolled):
    client = enrolled.enclave_client("vnf-1")
    assert client.summary()["controller"] == "floodlight"
    client.push_flow("00:00:01", "ce-rule", {"eth_src": "h1"}, "drop")
    assert "00:00:01" in client.list_flows()
    client.delete_flow("ce-rule")


def test_request_without_credentials_fails(deployment):
    client = deployment.enclave_client("vnf-1")
    with pytest.raises(ProvisioningError):
        client.summary()


def test_credentials_unreachable_from_host(enrolled):
    enclave = enrolled.credential_enclaves["vnf-1"].enclave
    for key in ("bundle", "tls_client", "conn"):
        with pytest.raises(EnclaveMemoryViolation):
            enclave.memory.read(key)


def test_connection_reuse(enrolled):
    client = enrolled.enclave_client("vnf-1")
    client.summary()
    connections_before = enrolled.network.connections_opened
    client.summary()
    client.summary()
    assert enrolled.network.connections_opened == connections_before


def test_disconnect_then_reconnect(enrolled):
    client = enrolled.enclave_client("vnf-1")
    client.summary()
    client.close()
    assert client.summary()["controller"] == "floodlight"


def test_seal_restore_cycle(enrolled):
    enclave = enrolled.credential_enclaves["vnf-1"]
    sealed = enclave.seal_credentials()
    enrolled.host.platform.destroy_enclave(enclave.enclave)
    fresh = CredentialEnclave(enrolled.host, enrolled.vendor_key,
                              enrolled.network, "vnf-1")
    assert not fresh.has_credentials()
    assert fresh.restore_credentials(sealed) == "vnf-1"
    assert fresh.client.summary()["controller"] == "floodlight"


def test_sealed_blob_useless_on_other_platform(enrolled):
    from repro.core import Deployment

    sealed = enrolled.credential_enclaves["vnf-1"].seal_credentials()
    other = Deployment(seed=b"other-platform", vnf_count=1)
    foreign = other.credential_enclaves["vnf-1"]
    with pytest.raises(SealingError):
        foreign.restore_credentials(sealed)


def test_wipe_credentials(enrolled):
    enclave = enrolled.credential_enclaves["vnf-1"]
    enclave.wipe()
    assert not enclave.has_credentials()
    with pytest.raises(ProvisioningError):
        enclave.client.summary()


def test_delivery_key_is_single_use(enrolled):
    # After provisioning completes, the delivery key is erased; replaying
    # the provisioning message cannot re-install credentials.
    enclave = enrolled.credential_enclaves["vnf-1"]
    with pytest.raises(ProvisioningError):
        enclave.enclave.ecall("complete_provisioning", b"\x00" * 32)
