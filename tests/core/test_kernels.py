"""Kernel purity: byte-identity with the in-process paths, picklability,
and the KernelPool's inline/fallback contract (docs/PARALLELISM.md)."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    KernelPool,
    encode_verification_snapshot,
    seal_blob_kernel,
    sign_cert_kernel,
    verify_quote_kernel,
    verify_quotes_kernel,
)
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import ReproError
from repro.ias.service import IasService, QuoteStatus
from repro.net.clock import VirtualClock
from repro.sgx.enclave import EnclaveIdentity, EnclaveImage
from repro.sgx.platform import SgxPlatform
from repro.sgx.report import Report
from repro.sgx.sealing import POLICY_MRENCLAVE, seal
from repro.sgx.sigstruct import sign_image


class _Quotable:
    ECALLS = ("get_report",)

    def __init__(self, api):
        self._api = api

    def get_report(self, target, report_data):
        return self._api.create_report(target, report_data).to_bytes()


def ias_world(seed=b"kernel-tests"):
    """An IAS + one registered platform + one verifiable quote."""
    rng = HmacDrbg(seed)
    clock = VirtualClock()
    ias = IasService(rng=rng, now=clock.now_seconds)
    platform = SgxPlatform("host", clock=clock, rng=rng)
    ias.register_platform(platform)
    image = EnclaveImage.from_behavior_class(_Quotable, "quotable")
    enclave = platform.create_enclave(
        image, sign_image(generate_keypair(rng), image.code, "v")
    )
    qe = platform.quoting_enclave
    report = Report.from_bytes(
        enclave.ecall("get_report", qe.target_info(), b"\x01" * 64)
    )
    quote = qe.generate(report, b"deployment")
    return rng, ias, platform, quote


def fill_sigrl(ias, rng, count):
    ias.sig_rl.entries = [
        (b"deployment", rng.random_bytes(32)) for _ in range(count)
    ]
    ias.sig_rl.version = count


# --------------------------------------------------------------------------
# Purity: kernel inputs and outputs survive the pickle boundary
# --------------------------------------------------------------------------


class TestPicklability:
    def test_kernel_functions_are_picklable(self):
        for kernel in (verify_quote_kernel, verify_quotes_kernel,
                       sign_cert_kernel, seal_blob_kernel):
            assert pickle.loads(pickle.dumps(kernel)) is kernel

    def test_verify_inputs_and_outputs_round_trip(self):
        _, ias, _, quote = ias_world()
        args = (quote.to_bytes(), "nonce-1", ias.verification_snapshot(),
                ias._report_key.to_bytes(), "avr-00000001", 0)
        assert pickle.loads(pickle.dumps(args)) == args
        result = verify_quote_kernel(*args)
        assert pickle.loads(pickle.dumps(result)) == result

    def test_snapshot_is_plain_bytes(self):
        _, ias, _, _ = ias_world()
        snapshot = ias.verification_snapshot()
        assert isinstance(snapshot, bytes)
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


# --------------------------------------------------------------------------
# Byte-identity with the in-process implementations
# --------------------------------------------------------------------------


class TestByteIdentity:
    def test_verify_quote_kernel_matches_service(self):
        _, ias, _, quote = ias_world()
        quote_bytes = quote.to_bytes()
        snapshot = ias.verification_snapshot()
        expected = ias.verify_quote(quote_bytes, nonce="n-0")
        avr_bytes, status, scanned = verify_quote_kernel(
            quote_bytes, "n-0", snapshot, ias._report_key.to_bytes(),
            report_id=expected.report_id, timestamp=expected.timestamp,
        )
        assert avr_bytes == expected.to_json()
        assert status == expected.quote_status == QuoteStatus.OK
        assert scanned == 0  # both RLs empty

    def test_verify_quote_kernel_matches_revoked_verdicts(self):
        rng, ias, _, quote = ias_world()
        quote_bytes = quote.to_bytes()
        ias.revoke_quote_signature(quote)
        expected = ias.verify_quote(quote_bytes, nonce="n-r")
        avr_bytes, status, _ = verify_quote_kernel(
            quote_bytes, "n-r", ias.verification_snapshot(),
            ias._report_key.to_bytes(),
            report_id=expected.report_id, timestamp=expected.timestamp,
        )
        assert status == QuoteStatus.SIGNATURE_REVOKED
        assert avr_bytes == expected.to_json()

    def test_batch_kernel_rows_match_single_kernel(self):
        rng, ias, _, quote = ias_world()
        fill_sigrl(ias, rng, 64)
        quote_bytes = quote.to_bytes()
        snapshot = ias.verification_snapshot()
        key_bytes = ias._report_key.to_bytes()
        rows = [(quote_bytes, f"n-{i}", f"avr-{i + 1:08d}", 0)
                for i in range(4)]
        batch_results, batch_scanned = verify_quotes_kernel(
            tuple(rows), snapshot, key_bytes)
        single_scanned = 0
        for (avr_bytes, status), row in zip(batch_results, rows):
            one_bytes, one_status, one_scanned = verify_quote_kernel(
                row[0], row[1], snapshot, key_bytes,
                report_id=row[2], timestamp=row[3])
            assert avr_bytes == one_bytes
            assert status == one_status
            single_scanned += one_scanned
        # Amortization: the batch builds each RL table once instead of
        # scanning per quote.
        assert batch_scanned < single_scanned

    def test_sign_cert_kernel_matches_direct_sign(self):
        key = generate_keypair(HmacDrbg(b"sign-kernel"))
        tbs = b"to-be-signed certificate body"
        assert sign_cert_kernel(tbs, key.to_bytes(), 7) == key.sign(tbs)

    def test_sign_cert_kernel_rejects_bad_serial(self):
        key = generate_keypair(HmacDrbg(b"sign-kernel"))
        with pytest.raises(ReproError):
            sign_cert_kernel(b"tbs", key.to_bytes(), -1)
        with pytest.raises(ReproError):
            sign_cert_kernel(b"tbs", key.to_bytes(), "1")

    def test_seal_blob_kernel_matches_seal(self):
        identity = EnclaveIdentity(mrenclave=b"\x11" * 32,
                                   mrsigner=b"\x22" * 32,
                                   isv_prod_id=9, isv_svn=3)
        fuse_key = b"\x33" * 16
        plaintext = b"tenant secret"
        rng = HmacDrbg(b"seal-kernel")
        expected = seal(fuse_key, identity, plaintext, rng=rng)
        # Same DRBG stream, split draws: caller pre-draws, kernel seals.
        rng2 = HmacDrbg(b"seal-kernel")
        key_id = rng2.random_bytes(16)
        nonce = rng2.random_bytes(12)
        blob_bytes = seal_blob_kernel(
            fuse_key, identity.mrenclave, identity.mrsigner,
            identity.isv_prod_id, identity.isv_svn, plaintext,
            POLICY_MRENCLAVE, key_id, nonce,
        )
        assert blob_bytes == expected.to_bytes()


# --------------------------------------------------------------------------
# Property: the kernel is IasService.verify_quote over any snapshot state
# --------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    nonce=st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                  max_size=16),
    sigrl_size=st.integers(min_value=0, max_value=32),
    revoke_signature=st.booleans(),
    revoke_key=st.booleans(),
    tcb_floor=st.integers(min_value=0, max_value=3),
)
def test_verify_quote_kernel_equals_service(nonce, sigrl_size,
                                            revoke_signature, revoke_key,
                                            tcb_floor):
    rng, ias, _, quote = ias_world(b"kernel-prop")
    fill_sigrl(ias, rng, sigrl_size)
    if revoke_signature:
        ias.revoke_quote_signature(quote)
    if revoke_key:
        ias.revoke_platform("host")
    ias.raise_tcb_floor(tcb_floor)
    quote_bytes = quote.to_bytes()
    snapshot = ias.verification_snapshot()
    expected = ias.verify_quote(quote_bytes, nonce=nonce)
    avr_bytes, status, _ = verify_quote_kernel(
        quote_bytes, nonce, snapshot, ias._report_key.to_bytes(),
        report_id=expected.report_id, timestamp=expected.timestamp,
    )
    assert avr_bytes == expected.to_json()
    assert status == expected.quote_status


# --------------------------------------------------------------------------
# KernelPool: inline default, process dispatch, fallback
# --------------------------------------------------------------------------


def _unpicklable_kernel():  # pragma: no cover - never actually runs remotely
    raise AssertionError("should not execute")


class TestKernelPool:
    def test_workers_zero_runs_inline(self):
        pool = KernelPool(workers=0)
        key = generate_keypair(HmacDrbg(b"pool-inline"))
        assert pool.sign_cert(b"tbs", key.to_bytes(), 1) == key.sign(b"tbs")
        assert pool.inline_calls == 1
        assert pool.dispatched == 0

    def test_worker_dispatch_is_byte_identical(self):
        pool = KernelPool(workers=1)
        try:
            key = generate_keypair(HmacDrbg(b"pool-dispatch"))
            pooled = pool.sign_cert(b"tbs", key.to_bytes(), 1)
            assert pooled == key.sign(b"tbs")
            assert pool.dispatched == 1
        finally:
            pool.shutdown()

    def test_unpicklable_work_falls_back_inline(self):
        pool = KernelPool(workers=1)
        try:
            key = generate_keypair(HmacDrbg(b"pool-fallback"))
            # A closure cannot cross the process boundary; the pool must
            # degrade to inline execution, not raise.
            result = pool.run(lambda: key.sign(b"tbs"))
            assert result == key.sign(b"tbs")
            assert pool.fallbacks == 1
            # The pool is marked broken: later calls run inline too.
            assert pool.sign_cert(b"t", key.to_bytes(), 2) == key.sign(b"t")
            assert pool.inline_calls == 1
            assert pool.dispatched == 0
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = KernelPool(workers=1)
        key = generate_keypair(HmacDrbg(b"pool-shutdown"))
        pool.sign_cert(b"tbs", key.to_bytes(), 1)
        pool.shutdown()
        pool.shutdown()
        # Lazy respawn after shutdown still produces correct bytes.
        assert pool.sign_cert(b"tbs", key.to_bytes(), 1) == key.sign(b"tbs")
        pool.shutdown()
