"""Verification cache: memoised IAS verdicts for byte-identical evidence.

Unit tests pin the :class:`~repro.core.verification_cache.VerificationCache`
contract (LRU bounds, ``max_age`` expiry, subject/predicate invalidation,
counter semantics, evidence-key injectivity).  Integration tests drive the
Verification Manager with captured real evidence and prove (a) a replayed
quote+nonce pair skips the IAS round trip, (b) the binding and verdict
checks still run on a cache hit — a poisoned cache cannot launder a
mismatched AVR — and (c) revocation (``revoke_vnf`` / ``distrust_host``)
flushes exactly the affected subjects' verdicts.
"""

import pytest

from repro.core.verification_cache import VerificationCache, evidence_key
from repro.errors import AttestationFailed


class _FakeAvr:
    """Stand-in verdict; the cache never introspects what it stores."""

    def __init__(self, tag):
        self.tag = tag


class _Clock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


# ------------------------------------------------------------------ unit


def test_store_then_lookup_hits_and_counts():
    cache = VerificationCache(capacity=4)
    avr = _FakeAvr("a")
    assert cache.lookup(b"quote", "nonce") is None
    cache.store(b"quote", "nonce", "host-1", avr)
    assert cache.lookup(b"quote", "nonce") is avr
    assert cache.lookup(b"quote", "other-nonce") is None
    assert cache.lookup(b"other-quote", "nonce") is None
    assert (cache.hits, cache.misses) == (1, 3)
    assert len(cache) == 1


def test_evidence_key_is_injective_across_the_split():
    # Length prefix: moving bytes between quote and nonce changes the key.
    assert evidence_key(b"ab", "c") != evidence_key(b"a", "bc")
    assert evidence_key(b"", "abc") != evidence_key(b"abc", "")
    assert evidence_key(b"q", "n") != evidence_key(b"q", "m")
    assert evidence_key(b"q", "n") != evidence_key(b"r", "n")
    assert evidence_key(b"q", "n") == evidence_key(b"q", "n")


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        VerificationCache(capacity=0)


def test_lru_eviction_at_capacity():
    cache = VerificationCache(capacity=2)
    cache.store(b"q1", "n", "s", _FakeAvr(1))
    cache.store(b"q2", "n", "s", _FakeAvr(2))
    # Touch q1 so q2 becomes the LRU-oldest entry.
    assert cache.lookup(b"q1", "n") is not None
    cache.store(b"q3", "n", "s", _FakeAvr(3))
    assert len(cache) == 2
    assert cache.lookup(b"q2", "n") is None   # evicted
    assert cache.lookup(b"q1", "n") is not None
    assert cache.lookup(b"q3", "n") is not None


def test_restoring_existing_key_does_not_evict():
    cache = VerificationCache(capacity=2)
    cache.store(b"q1", "n", "s", _FakeAvr(1))
    cache.store(b"q2", "n", "s", _FakeAvr(2))
    fresh = _FakeAvr("fresh")
    cache.store(b"q1", "n", "s", fresh)       # overwrite, not insert
    assert len(cache) == 2
    assert cache.lookup(b"q1", "n") is fresh
    assert cache.lookup(b"q2", "n") is not None


def test_max_age_expiry_drops_on_access():
    clock = _Clock()
    cache = VerificationCache(capacity=4, max_age=10.0, now=clock.now)
    cache.store(b"q", "n", "s", _FakeAvr("a"))
    clock.t = 9.0
    assert cache.lookup(b"q", "n") is not None
    clock.t = 20.0
    assert cache.lookup(b"q", "n") is None    # expired -> miss
    assert len(cache) == 0                    # dropped, not just hidden
    assert (cache.hits, cache.misses) == (1, 1)


def test_invalidate_subject_and_where():
    cache = VerificationCache(capacity=8)
    cache.store(b"q1", "n", "host-1", _FakeAvr(1))
    cache.store(b"q2", "n", "vnf-1", _FakeAvr(2))
    cache.store(b"q3", "n", "vnf-1", _FakeAvr(3))
    assert cache.invalidate_subject("vnf-1") == 2
    assert cache.invalidate_subject("vnf-1") == 0
    assert len(cache) == 1
    assert cache.invalidate_where(lambda e: e.subject.startswith("host")) == 1
    assert len(cache) == 0


def test_clear_keeps_counters():
    cache = VerificationCache(capacity=4)
    cache.store(b"q", "n", "s", _FakeAvr("a"))
    cache.lookup(b"q", "n")
    cache.lookup(b"zzz", "n")
    cache.clear()
    assert len(cache) == 0
    assert (cache.hits, cache.misses) == (1, 1)


# ------------------------------------------------------------ integration


class _CountingIas:
    """Wraps the VM's IAS client, counting ``verify_quote`` round trips."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def verify_quote(self, quote_bytes, nonce):
        self.calls += 1
        return self._inner.verify_quote(quote_bytes, nonce=nonce)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _captured_evidence(deployment):
    """A real (quote, nonce) pair, collected outside the VM (the VM's own
    flows draw a fresh DRBG nonce per attestation, so byte-identical
    replays only occur on *retries* — which tests drive explicitly)."""
    nonce = b"\x42" * 16
    evidence = deployment.agent_client.attest_host(
        nonce, deployment.vm.policy.basename
    )
    return evidence.quote, nonce


def test_replayed_evidence_skips_ias_round_trip(deployment):
    vm = deployment.vm
    counting = _CountingIas(vm._ias)
    vm._ias = counting
    quote, nonce = _captured_evidence(deployment)

    vm._verify_quote_with_ias(quote, nonce, deployment.host.name)
    assert counting.calls == 1
    assert vm.verification_cache.misses >= 1
    hits_before = vm.verification_cache.hits

    # Byte-identical retry: verdict served from cache, no IAS traffic.
    vm._verify_quote_with_ias(quote, nonce, deployment.host.name)
    assert counting.calls == 1
    assert vm.verification_cache.hits == hits_before + 1

    # Different nonce over the same quote is new evidence: IAS again.
    other_nonce = b"\x43" * 16
    other = deployment.agent_client.attest_host(other_nonce,
                                                vm.policy.basename)
    vm._verify_quote_with_ias(other.quote, other_nonce,
                              deployment.host.name)
    assert counting.calls == 2


def test_binding_check_runs_even_on_cache_hit(deployment):
    # Poison the cache: a verdict for quote A stored under quote B's key
    # must still be rejected by the unconditional body-binding check.
    vm = deployment.vm
    quote_a, nonce_a = _captured_evidence(deployment)
    vm._verify_quote_with_ias(quote_a, nonce_a, deployment.host.name)
    avr_a = vm.verification_cache.lookup(quote_a.to_bytes(), nonce_a.hex())
    assert avr_a is not None

    nonce_b = b"\x99" * 16
    quote_b = deployment.agent_client.attest_host(
        nonce_b, vm.policy.basename
    ).quote
    vm.verification_cache.store(quote_b.to_bytes(), nonce_b.hex(),
                                deployment.host.name, avr_a)
    with pytest.raises(AttestationFailed, match="different quote body"):
        vm._verify_quote_with_ias(quote_b, nonce_b, deployment.host.name)


def test_rejected_verdicts_are_never_cached(deployment):
    vm = deployment.vm
    deployment.ias.revoke_platform(deployment.host.name)
    quote, nonce = _captured_evidence(deployment)
    for _ in range(2):
        with pytest.raises(AttestationFailed):
            vm._verify_quote_with_ias(quote, nonce, deployment.host.name)
    assert len(vm.verification_cache) == 0
    assert vm.verification_cache.hits == 0
    assert vm.verification_cache.misses == 2  # second try re-faced IAS


def test_revoke_vnf_flushes_only_that_subject(deployment):
    deployment.enroll("vnf-1")
    vm = deployment.vm
    cache = vm.verification_cache
    subjects = {entry.subject for entry in cache._entries.values()}
    assert "vnf-1" in subjects
    assert deployment.host.name in subjects
    vm.revoke_vnf("vnf-1")
    remaining = {entry.subject for entry in cache._entries.values()}
    assert "vnf-1" not in remaining
    assert deployment.host.name in remaining  # host verdict untouched


def test_distrust_host_flushes_host_and_its_vnfs(deployment):
    deployment.enroll("vnf-1")
    vm = deployment.vm
    assert len(vm.verification_cache) >= 2   # host + vnf verdicts
    vm.distrust_host(deployment.host.name)
    assert len(vm.verification_cache) == 0


def test_telemetry_counts_cache_hits_and_misses(deployment):
    telemetry = deployment.enable_telemetry(serve=False)
    vm = deployment.vm
    quote, nonce = _captured_evidence(deployment)
    vm._verify_quote_with_ias(quote, nonce, deployment.host.name)
    vm._verify_quote_with_ias(quote, nonce, deployment.host.name)
    events = telemetry.verification_cache_events
    assert events.labels(result="miss").value >= 1
    assert events.labels(result="hit").value == 1
