"""The encrypted credential-delivery protocol."""

import pytest

from repro.core.provisioning import (
    CredentialBundle,
    ProvisioningMessage,
    binding_hash,
    decrypt_bundle,
    encrypt_bundle,
)
from repro.crypto.keys import generate_keypair
from repro.errors import ProvisioningError


@pytest.fixture
def bundle(pki):
    return CredentialBundle(
        private_key_bytes=pki.client_key.to_bytes(),
        certificate_chain=(pki.client_cert.to_bytes(),),
        controller_anchors=(pki.ca.certificate.to_bytes(),),
        controller_address="controller:9443",
    )


def test_bundle_roundtrip(bundle):
    restored = CredentialBundle.from_bytes(bundle.to_bytes())
    assert restored == bundle
    assert restored.leaf_certificate().subject.common_name == "client"


def test_empty_bundle_has_no_leaf():
    empty = CredentialBundle(b"", (), (), "x:1")
    with pytest.raises(ProvisioningError):
        empty.leaf_certificate()


def test_encrypt_decrypt(bundle, rng):
    enclave_key = generate_keypair(rng)
    message = encrypt_bundle(enclave_key.public.to_bytes(), bundle, rng)
    recovered = decrypt_bundle(enclave_key.scalar,
                               enclave_key.public.to_bytes(), message)
    assert recovered == bundle


def test_message_serialization(bundle, rng):
    enclave_key = generate_keypair(rng)
    message = encrypt_bundle(enclave_key.public.to_bytes(), bundle, rng)
    restored = ProvisioningMessage.from_bytes(message.to_bytes())
    assert decrypt_bundle(enclave_key.scalar,
                          enclave_key.public.to_bytes(), restored) == bundle


def test_wrong_enclave_key_cannot_decrypt(bundle, rng):
    right = generate_keypair(rng)
    wrong = generate_keypair(rng)
    message = encrypt_bundle(right.public.to_bytes(), bundle, rng)
    with pytest.raises(ProvisioningError):
        decrypt_bundle(wrong.scalar, wrong.public.to_bytes(), message)


def test_tampered_message_rejected(bundle, rng):
    key = generate_keypair(rng)
    message = encrypt_bundle(key.public.to_bytes(), bundle, rng)
    import dataclasses

    tampered = dataclasses.replace(
        message, ciphertext=message.ciphertext[:-1] + b"\x00"
    )
    with pytest.raises(ProvisioningError):
        decrypt_bundle(key.scalar, key.public.to_bytes(), tampered)


def test_bundle_confidential_on_the_wire(bundle, rng):
    key = generate_keypair(rng)
    message = encrypt_bundle(key.public.to_bytes(), bundle, rng)
    assert bundle.private_key_bytes not in message.to_bytes()


def test_binding_hash_properties(rng):
    key = generate_keypair(rng)
    pub = key.public.to_bytes()
    assert len(binding_hash(pub, b"nonce")) == 64
    assert binding_hash(pub, b"nonce") == binding_hash(pub, b"nonce")
    assert binding_hash(pub, b"nonce") != binding_hash(pub, b"other")
    other = generate_keypair(rng).public.to_bytes()
    assert binding_hash(pub, b"nonce") != binding_hash(other, b"nonce")
