"""RA-TLS enrollment end to end: the attested channel replaces steps 3-6.

Integration tests over a full :class:`~repro.core.Deployment`: local
credential preparation, in-handshake attestation at the ``ratls-https``
northbound endpoint, verdict reuse across reconnects, and
resumption-safe revocation through the Verification Manager.
"""

import pytest

from repro.core import Deployment
from repro.core.ratls_enrollment import (
    STATE_ENROLLED,
    RatlsEnrollmentSession,
)
from repro.core.workflow import CONTROLLER_HOST
from repro.errors import RevocationError, TlsAlert
from repro.sdn.northbound import MODE_RATLS


def _reconnect(deployment, vnf_name):
    enclave = deployment.credential_enclaves[vnf_name].enclave
    enclave.ecall("disconnect")
    enclave.ecall("request", "GET",
                  "/wm/core/controller/summary/json", b"")


class TestEnrollment:
    def test_enrolls_without_vm_round_trips(self, deployment):
        verifier = deployment.build_ratls()
        machinery_before = (deployment.network.messages_sent
                            - deployment.network.messages_to(
                                CONTROLLER_HOST))
        session = deployment.enroll_ratls("vnf-1")
        assert session.state == STATE_ENROLLED
        assert [t.step for t in session.timings] == [
            "ratls-credential-preparation", "ratls-attested-connect",
        ]
        # One IAS verification, performed by the *verifier* during the
        # handshake; no agent/VM/CA provisioning traffic at all beyond it.
        assert deployment.ias.quotes_verified == 1
        assert verifier.validations == verifier.accepted == 1
        machinery_after = (deployment.network.messages_sent
                          - deployment.network.messages_to(CONTROLLER_HOST))
        assert machinery_after - machinery_before <= 8  # IAS only

    def test_build_ratls_is_idempotent(self, deployment):
        assert deployment.build_ratls() is deployment.build_ratls()
        assert MODE_RATLS in deployment.endpoints

    def test_verifier_uses_pooled_ias_connection(self, deployment):
        deployment.build_ratls()
        for name in deployment.vnf_names:
            deployment.enroll_ratls(name)
        assert deployment.ratls_ias_pool.connects == 1

    def test_prepare_is_network_silent(self, deployment):
        verifier = deployment.build_ratls()
        anchors = tuple(
            a.to_bytes()
            for a in deployment.vm.controller_truststore().anchors()
        )
        session = RatlsEnrollmentSession(
            enclave=deployment.credential_enclaves["vnf-1"],
            verifier=verifier,
            basename=deployment.policy.basename,
            anchors=anchors,
            controller_address=str(
                deployment.controller_address(MODE_RATLS)),
            sim_now=deployment.clock.now,
        )
        before = deployment.network.messages_sent
        session.prepare()
        assert deployment.network.messages_sent == before
        assert verifier.knows_subject("vnf-1")

    def test_standard_enrollment_still_works_alongside(
            self, two_vnf_deployment):
        dep = two_vnf_deployment
        dep.enroll_ratls("vnf-1")
        standard = dep.enroll("vnf-2")
        assert standard.state == "enrolled"
        assert dep.vm.issued_certificate("vnf-2") is not None


class TestReconnects:
    def test_reconnects_are_ias_free(self, deployment):
        verifier = deployment.build_ratls()
        deployment.enroll_ratls("vnf-1")
        for _ in range(5):
            _reconnect(deployment, "vnf-1")
        assert deployment.ias.quotes_verified == 1
        assert verifier.validations == 1       # resumed, not re-validated
        assert verifier.resumption_checks == 5
        assert verifier.resumptions_denied == 0


class TestRevocation:
    def test_revoke_vnf_blocks_reconnect(self, deployment):
        verifier = deployment.build_ratls()
        deployment.enroll_ratls("vnf-1")
        deployment.vm.revoke_vnf("vnf-1", reason="key-compromise")
        with pytest.raises(TlsAlert):
            _reconnect(deployment, "vnf-1")
        assert verifier.rejected == 1

    def test_revoke_vnf_without_any_credential_still_errors(
            self, deployment):
        deployment.build_ratls()
        with pytest.raises(RevocationError):
            deployment.vm.revoke_vnf("vnf-unknown")

    def test_distrust_host_revokes_ratls_identities(self, deployment):
        deployment.build_ratls()
        deployment.enroll_ratls("vnf-1")
        host = deployment.vnf_host["vnf-1"]
        revoked = deployment.vm.distrust_host(host.name)
        assert "vnf-1" in revoked
        with pytest.raises(TlsAlert):
            _reconnect(deployment, "vnf-1")

    def test_enrollment_memoizes_verdict_under_subject(self, deployment):
        deployment.build_ratls()
        deployment.enroll_ratls("vnf-1")
        cache = deployment.vm.verification_cache
        assert cache.invalidate_subject("vnf-1") == 1

    def test_revocation_also_purges_verification_cache(self, deployment):
        deployment.build_ratls()
        deployment.enroll_ratls("vnf-1")
        deployment.vm.revoke_vnf("vnf-1")
        # Nothing left to purge: revocation already dropped the verdict.
        assert deployment.vm.verification_cache.invalidate_subject(
            "vnf-1") == 0


class TestTelemetry:
    def test_ratls_metrics_exported(self):
        deployment = Deployment(seed=b"ratls-telemetry", vnf_count=1)
        deployment.enable_telemetry()
        deployment.build_ratls()
        deployment.enroll_ratls("vnf-1")
        _reconnect(deployment, "vnf-1")
        scrape = deployment.scrape_metrics()
        assert 'vnf_sgx_ratls_validations_total{result="accepted"} 1' in scrape
        assert ('vnf_sgx_ratls_resumption_checks_total{result="allowed"} 1'
                in scrape)
        deployment.disable_telemetry()
