"""The host-side integrity attestation enclave."""

from repro.core.attestation_enclave import (
    QuotedEvidence,
    attestation_report_data,
    reference_measurement,
)
from repro.ima.iml import MeasurementList


def test_evidence_collection(deployment):
    evidence = deployment.attestation_enclave.collect_quoted_evidence(
        b"\x01" * 16, b"deployment"
    )
    iml = MeasurementList.from_bytes(evidence.iml_bytes)
    assert len(iml) == len(deployment.host.ima.iml)
    assert evidence.aggregate == deployment.host.ima.iml.aggregate()
    assert evidence.quote.basename == b"deployment"


def test_report_data_binds_evidence(deployment):
    nonce = b"\x02" * 16
    evidence = deployment.attestation_enclave.collect_quoted_evidence(
        nonce, b"d"
    )
    assert evidence.quote.report_data == attestation_report_data(
        evidence.iml_bytes, evidence.aggregate, evidence.tpm_quote_bytes,
        nonce,
    )


def test_nonce_changes_binding(deployment):
    a = deployment.attestation_enclave.collect_quoted_evidence(b"\x01" * 16,
                                                               b"d")
    b = deployment.attestation_enclave.collect_quoted_evidence(b"\x02" * 16,
                                                               b"d")
    assert a.quote.report_data != b.quote.report_data


def test_measurement_matches_reference(deployment):
    assert (deployment.attestation_enclave.enclave.mrenclave
            == reference_measurement())


def test_no_tpm_evidence_without_tpm(deployment):
    evidence = deployment.attestation_enclave.collect_quoted_evidence(
        b"\x00" * 16, b"d"
    )
    assert evidence.tpm_quote_bytes == b""


def test_tpm_evidence_with_tpm():
    from repro.core import Deployment
    from repro.tpm.quote import TpmQuote

    deployment = Deployment(seed=b"att-tpm", vnf_count=1, with_tpm=True)
    nonce = b"\x03" * 16
    evidence = deployment.attestation_enclave.collect_quoted_evidence(
        nonce, b"d"
    )
    quote = TpmQuote.from_bytes(evidence.tpm_quote_bytes)
    quote.verify(deployment.host.tpm.aik_public)
    assert quote.nonce == nonce
    assert quote.value_of(10) == evidence.aggregate


def test_evidence_serialization_roundtrip(deployment):
    evidence = deployment.attestation_enclave.collect_quoted_evidence(
        b"\x04" * 16, b"d"
    )
    restored = QuotedEvidence.from_bytes(evidence.to_bytes())
    assert restored.iml_bytes == evidence.iml_bytes
    assert restored.aggregate == evidence.aggregate
    assert restored.quote == evidence.quote


def test_evidence_reflects_later_tampering(deployment):
    before = deployment.attestation_enclave.collect_quoted_evidence(
        b"\x05" * 16, b"d"
    )
    deployment.host.tamper_file("/usr/bin/dockerd", b"evil")
    after = deployment.attestation_enclave.collect_quoted_evidence(
        b"\x06" * 16, b"d"
    )
    assert len(MeasurementList.from_bytes(after.iml_bytes)) == (
        len(MeasurementList.from_bytes(before.iml_bytes)) + 1
    )
