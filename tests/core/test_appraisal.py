"""The appraisal engine: expected values, consistency, TPM rooting."""

import pytest

from repro.core.appraisal import AppraisalEngine, ExpectedValues
from repro.crypto.sha256 import sha256
from repro.errors import AppraisalFailed
from repro.ima.iml import ImaEntry, MeasurementList
from repro.tpm.tpm import TpmDevice


def build_iml(files):
    iml = MeasurementList()
    iml.boot_aggregate(sha256(b"boot"))
    for path, content in files.items():
        iml.append(ImaEntry(10, sha256(content), path))
    return iml


@pytest.fixture
def golden():
    expected = ExpectedValues()
    expected.allow_content("/usr/bin/dockerd", b"docker")
    expected.allow_content("/usr/bin/runc", b"runc")
    return expected


def test_clean_host_passes(golden):
    iml = build_iml({"/usr/bin/dockerd": b"docker", "/usr/bin/runc": b"runc"})
    engine = AppraisalEngine(golden)
    result = engine.appraise(iml.to_bytes(), iml.aggregate())
    assert result.trustworthy
    assert result.entries_checked == 3
    result.raise_if_failed()


def test_modified_file_fails(golden):
    iml = build_iml({"/usr/bin/dockerd": b"evil"})
    result = AppraisalEngine(golden).appraise(iml.to_bytes(), iml.aggregate())
    assert not result.trustworthy
    assert any("hash mismatch" in failure for failure in result.failures)
    with pytest.raises(AppraisalFailed):
        result.raise_if_failed("host-x")


def test_unexpected_path_fails(golden):
    iml = build_iml({"/usr/bin/rootkit": b"x"})
    result = AppraisalEngine(golden).appraise(iml.to_bytes(), iml.aggregate())
    assert any("unexpected measured path" in f for f in result.failures)


def test_allow_unknown_prefix(golden):
    golden.allow_unknown_under("/opt/scratch/")
    iml = build_iml({"/opt/scratch/tempfile": b"whatever"})
    result = AppraisalEngine(golden).appraise(iml.to_bytes(), iml.aggregate())
    assert result.trustworthy


def test_multiple_golden_versions(golden):
    golden.allow_content("/usr/bin/dockerd", b"docker-v2")  # second allowed
    for content in (b"docker", b"docker-v2"):
        iml = build_iml({"/usr/bin/dockerd": content})
        assert AppraisalEngine(golden).appraise(
            iml.to_bytes(), iml.aggregate()
        ).trustworthy


def test_missing_boot_aggregate_fails(golden):
    iml = MeasurementList()
    iml.append(ImaEntry(10, sha256(b"docker"), "/usr/bin/dockerd"))
    result = AppraisalEngine(golden).appraise(iml.to_bytes(), iml.aggregate())
    assert any("boot_aggregate" in f for f in result.failures)


def test_inconsistent_aggregate_fails(golden):
    iml = build_iml({"/usr/bin/dockerd": b"docker"})
    result = AppraisalEngine(golden).appraise(iml.to_bytes(), sha256(b"lie"))
    assert any("internally inconsistent" in f for f in result.failures)


def test_tpm_policy_requires_quote(golden):
    engine = AppraisalEngine(golden, require_tpm=True)
    iml = build_iml({"/usr/bin/dockerd": b"docker"})
    result = engine.appraise(iml.to_bytes(), iml.aggregate())
    assert any("TPM quote required" in f for f in result.failures)


def test_tpm_quote_validates(golden, rng):
    tpm = TpmDevice(rng)
    iml = MeasurementList()
    iml.boot_aggregate(sha256(b"boot"))
    tpm.extend(10, iml.entries[0].template_hash())
    entry = ImaEntry(10, sha256(b"docker"), "/usr/bin/dockerd")
    iml.append(entry)
    tpm.extend(10, entry.template_hash())

    engine = AppraisalEngine(golden, require_tpm=True)
    quote = tpm.quote([10], nonce=b"challenge")
    result = engine.appraise(iml.to_bytes(), iml.aggregate(),
                             tpm_quote_bytes=quote.to_bytes(),
                             aik_public=tpm.aik_public, nonce=b"challenge")
    assert result.trustworthy
    assert result.tpm_verified


def test_tpm_detects_rewritten_log(golden, rng):
    tpm = TpmDevice(rng)
    iml = MeasurementList()
    iml.boot_aggregate(sha256(b"boot"))
    tpm.extend(10, iml.entries[0].template_hash())
    evil = ImaEntry(10, sha256(b"evil"), "/usr/bin/dockerd")
    tpm.extend(10, evil.template_hash())  # hardware saw the rootkit
    # ...but the shipped log claims the golden hash, self-consistently.
    iml.append(ImaEntry(10, sha256(b"docker"), "/usr/bin/dockerd"))

    engine = AppraisalEngine(golden, require_tpm=True)
    quote = tpm.quote([10], nonce=b"n")
    result = engine.appraise(iml.to_bytes(), iml.aggregate(),
                             tpm_quote_bytes=quote.to_bytes(),
                             aik_public=tpm.aik_public, nonce=b"n")
    assert not result.trustworthy
    assert any("rewritten" in f for f in result.failures)


def test_tpm_nonce_replay_detected(golden, rng):
    tpm = TpmDevice(rng)
    iml = build_iml({"/usr/bin/dockerd": b"docker"})
    for entry in iml.entries:
        tpm.extend(10, entry.template_hash())
    old_quote = tpm.quote([10], nonce=b"old")
    engine = AppraisalEngine(golden, require_tpm=True)
    result = engine.appraise(iml.to_bytes(), iml.aggregate(),
                             tpm_quote_bytes=old_quote.to_bytes(),
                             aik_public=tpm.aik_public, nonce=b"fresh")
    assert any("nonce" in f for f in result.failures)


def test_tpm_missing_aik(golden, rng):
    tpm = TpmDevice(rng)
    iml = build_iml({"/usr/bin/dockerd": b"docker"})
    engine = AppraisalEngine(golden, require_tpm=True)
    result = engine.appraise(iml.to_bytes(), iml.aggregate(),
                             tpm_quote_bytes=tpm.quote([10], b"n").to_bytes(),
                             aik_public=None, nonce=b"n")
    assert any("AIK" in f for f in result.failures)
