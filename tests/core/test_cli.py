"""The command-line interface."""

import io

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_demo():
    code, output = run_cli("demo", "--vnfs", "1", "--seed", "cli-test")
    assert code == 0
    assert "Figure 1 workflow complete" in output
    assert "vnf-1" in output
    assert "total simulated" in output


def test_attest_clean_host():
    code, output = run_cli("attest", "--seed", "cli-attest")
    assert code == 0
    assert "TRUSTED" in output


def test_attest_tampered_host_nonzero_exit():
    code, output = run_cli("attest", "--seed", "cli-tamper",
                           "--tamper", "/usr/bin/dockerd")
    assert code == 1
    assert "REJECTED" in output
    assert "hash mismatch" in output


def test_attest_hidden_tamper_with_tpm():
    code, output = run_cli("attest", "--seed", "cli-hide", "--tpm",
                           "--tamper", "/usr/bin/dockerd", "--hide")
    assert code == 1
    assert "rewritten" in output


def test_attest_hidden_tamper_without_tpm_passes():
    # The paper's §4 gap, visible from the CLI.
    code, output = run_cli("attest", "--seed", "cli-hide2",
                           "--tamper", "/usr/bin/dockerd", "--hide")
    assert code == 0
    assert "TRUSTED" in output


def test_enroll_standard_and_csr():
    code, output = run_cli("enroll", "--vnfs", "1", "--seed", "cli-enroll")
    assert code == 0
    assert "VM-generated keys" in output
    code, output = run_cli("enroll", "--vnfs", "1", "--csr",
                           "--seed", "cli-enroll-csr")
    assert code == 0
    assert "CSR (in-enclave keys)" in output


def test_enroll_multihost():
    code, output = run_cli("enroll", "--vnfs", "2", "--hosts", "2",
                           "--seed", "cli-mh")
    assert code == 0
    assert "container-host-2" in output


def test_fleet_with_processes():
    code, output = run_cli("fleet", "--vnfs", "3", "--workers", "3",
                           "--processes", "2", "--seed", "cli-fleet-proc")
    assert code == 0
    assert "kernel pool: 2 process(es)" in output
    assert "IAS verifications batched" in output
    assert "fleet of 3 VNF(s)" in output


def test_fleet_without_processes_prints_no_pool_line():
    code, output = run_cli("fleet", "--vnfs", "2", "--seed", "cli-fleet-std")
    assert code == 0
    assert "kernel pool" not in output


def test_kms_with_seal_workers():
    code, output = run_cli("kms", "--tenants", "1", "--shards", "2",
                           "--secrets", "2", "--seal-workers", "2",
                           "--seed", "cli-kms-seal")
    assert code == 0
    assert "seal kernel pool: 2 process(es)" in output
    assert "1 tenant(s) x 2 secret(s)" in output


def test_metrics_dumps_scrape_text():
    code, output = run_cli("metrics", "--vnfs", "1", "--seed", "cli-metrics")
    assert code == 0
    assert "# TYPE vnf_sgx_workflow_step_seconds histogram" in output
    assert 'vnf_sgx_credentials_issued_total{variant="delivery"} 1' in output
    assert "vnf_sgx_enrolled_vnfs 1" in output


def test_metrics_traces_mode_emits_json():
    import json

    code, output = run_cli("metrics", "--vnfs", "1", "--seed", "cli-traces",
                           "--traces")
    assert code == 0
    traces = json.loads(output)
    assert traces[0]["name"] == "figure1-workflow"
    assert traces[0]["children"][0]["name"] == "enrollment"


def test_experiments_listing():
    code, output = run_cli("experiments")
    assert code == 0
    for exp_id in ("E1", "E4", "E7", "E8", "E11"):
        assert exp_id in output
