"""The simulated filesystem."""

import pytest

from repro.errors import ImaError
from repro.ima.filesystem import SimulatedFilesystem


@pytest.fixture
def fs():
    return SimulatedFilesystem()


def test_write_read(fs):
    fs.write_file("/usr/bin/tool", b"binary")
    assert fs.read_file("/usr/bin/tool") == b"binary"
    assert fs.exists("/usr/bin/tool")
    assert "/usr/bin/tool" in fs


def test_relative_paths_rejected(fs):
    with pytest.raises(ImaError):
        fs.write_file("relative/path", b"x")


def test_missing_file_raises(fs):
    with pytest.raises(ImaError):
        fs.read_file("/absent")
    with pytest.raises(ImaError):
        fs.delete_file("/absent")


def test_generation_counter(fs):
    assert fs.generation("/f") == 0
    fs.write_file("/f", b"v1")
    assert fs.generation("/f") == 1
    fs.write_file("/f", b"v2")
    assert fs.generation("/f") == 2
    fs.delete_file("/f")
    assert fs.generation("/f") == 0


def test_list_files_by_prefix(fs):
    fs.write_file("/usr/bin/a", b"")
    fs.write_file("/usr/bin/b", b"")
    fs.write_file("/etc/conf", b"")
    assert fs.list_files("/usr/bin/") == ["/usr/bin/a", "/usr/bin/b"]
    assert len(fs) == 3


def test_walk_is_sorted(fs):
    for name in ("/z", "/a", "/m"):
        fs.write_file(name, b"")
    assert list(fs.walk()) == ["/a", "/m", "/z"]
