"""Software PCR semantics."""

import pytest

from repro.crypto.sha256 import sha256
from repro.ima.pcr import INITIAL_VALUE, Pcr


def test_initial_value():
    assert Pcr().read() == INITIAL_VALUE


def test_extend_is_hash_chain():
    pcr = Pcr()
    digest = sha256(b"event")
    pcr.extend(digest)
    assert pcr.read() == sha256(INITIAL_VALUE + digest)
    assert pcr.extend_count == 1


def test_extend_order_matters():
    a, b = Pcr(), Pcr()
    d1, d2 = sha256(b"1"), sha256(b"2")
    a.extend(d1)
    a.extend(d2)
    b.extend(d2)
    b.extend(d1)
    assert a.read() != b.read()


def test_extend_requires_digest_size():
    with pytest.raises(ValueError):
        Pcr().extend(b"short")


def test_reset():
    pcr = Pcr()
    pcr.extend(sha256(b"x"))
    pcr.reset()
    assert pcr.read() == INITIAL_VALUE
    assert pcr.extend_count == 0
