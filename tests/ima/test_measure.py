"""The measurement agent: policy application, change detection, TPM hookup."""

import pytest

from repro.crypto.sha256 import sha256
from repro.ima.filesystem import SimulatedFilesystem
from repro.ima.measure import IMA_PCR_INDEX, MeasurementAgent
from repro.ima.policy import ImaPolicy
from repro.tpm.tpm import TpmDevice


@pytest.fixture
def fs():
    fs = SimulatedFilesystem()
    fs.write_file("/usr/bin/dockerd", b"docker")
    fs.write_file("/usr/bin/runc", b"runc")
    fs.write_file("/var/log/syslog", b"noise")
    return fs


@pytest.fixture
def agent(fs):
    return MeasurementAgent(fs, ImaPolicy.default_host_policy())


def test_boot_aggregate_created(agent):
    assert len(agent.iml) == 1
    assert agent.iml.entries[0].path == "boot_aggregate"


def test_measure_all_respects_policy(agent):
    agent.measure_all()
    paths = {e.path for e in agent.iml}
    assert "/usr/bin/dockerd" in paths
    assert "/usr/bin/runc" in paths
    assert "/var/log/syslog" not in paths


def test_unchanged_files_not_remeasured(agent):
    agent.measure_all()
    count = len(agent.iml)
    agent.measure_all()
    assert len(agent.iml) == count


def test_changed_file_remeasured(agent, fs):
    agent.measure_all()
    count = len(agent.iml)
    fs.write_file("/usr/bin/dockerd", b"docker-v2")
    agent.on_file_accessed("/usr/bin/dockerd")
    assert len(agent.iml) == count + 1
    assert agent.iml.find("/usr/bin/dockerd").file_hash == sha256(b"docker-v2")


def test_unmeasured_path_returns_none(agent):
    assert agent.on_file_accessed("/var/log/syslog") is None


def test_tpm_extended_in_lockstep(fs):
    tpm = TpmDevice()
    agent = MeasurementAgent(fs, ImaPolicy.default_host_policy(), tpm=tpm)
    agent.measure_all()
    assert agent.tpm_anchored
    assert tpm.read_pcr(IMA_PCR_INDEX) == agent.iml.aggregate()


def test_without_tpm_not_anchored(agent):
    assert not agent.tpm_anchored
