"""IMA policy rules and parsing."""

import pytest

from repro.errors import PolicyError
from repro.ima.policy import (
    ACTION_DONT_MEASURE,
    ACTION_MEASURE,
    ImaPolicy,
    MATCH_EXACT,
    MATCH_PREFIX,
    MATCH_SUFFIX,
    PolicyRule,
)


def test_first_match_wins():
    policy = ImaPolicy([
        PolicyRule(ACTION_DONT_MEASURE, MATCH_PREFIX, "/usr/bin/skip-"),
        PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/usr/bin/"),
    ])
    assert not policy.should_measure("/usr/bin/skip-me")
    assert policy.should_measure("/usr/bin/keep-me")


def test_default_deny():
    assert not ImaPolicy().should_measure("/anything")


def test_match_types():
    assert PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/a/").applies_to("/a/b")
    assert PolicyRule(ACTION_MEASURE, MATCH_SUFFIX, ".so").applies_to("/x.so")
    assert PolicyRule(ACTION_MEASURE, MATCH_EXACT, "/one").applies_to("/one")
    assert not PolicyRule(ACTION_MEASURE, MATCH_EXACT, "/one").applies_to(
        "/one/two"
    )


def test_invalid_rules_rejected():
    with pytest.raises(PolicyError):
        PolicyRule("observe", MATCH_PREFIX, "/")
    with pytest.raises(PolicyError):
        PolicyRule(ACTION_MEASURE, "regex", "/")


def test_parse_policy_text():
    policy = ImaPolicy.from_text(
        """
        # comment line
        dont_measure prefix /var/log/
        measure prefix /usr/bin/   # trailing comment
        measure suffix .ko
        """
    )
    assert len(policy) == 3
    assert policy.should_measure("/usr/bin/dockerd")
    assert not policy.should_measure("/var/log/syslog")
    assert policy.should_measure("/lib/modules/x.ko")


def test_parse_rejects_malformed_lines():
    with pytest.raises(PolicyError):
        ImaPolicy.from_text("measure /usr/bin/")


def test_default_host_policy_covers_the_deployment():
    policy = ImaPolicy.default_host_policy()
    assert policy.should_measure("/usr/bin/dockerd")
    assert policy.should_measure("/boot/vmlinuz")
    assert policy.should_measure("/var/lib/containers/ctr-0001/usr/bin/vnf")
    assert not policy.should_measure("/var/log/audit.log")
    assert not policy.should_measure("/tmp/scratch")


def test_add_rule_appends_lowest_priority():
    policy = ImaPolicy([PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/a/")])
    policy.add_rule(PolicyRule(ACTION_DONT_MEASURE, MATCH_PREFIX, "/a/"))
    assert policy.should_measure("/a/x")  # first rule still wins
