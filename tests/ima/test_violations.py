"""Measurement violations (ToMToU) and their appraisal consequences."""

import pytest

from repro.core.appraisal import AppraisalEngine, ExpectedValues
from repro.ima.filesystem import SimulatedFilesystem
from repro.ima.iml import VIOLATION_HASH
from repro.ima.measure import MeasurementAgent
from repro.ima.policy import ImaPolicy


@pytest.fixture
def agent():
    fs = SimulatedFilesystem()
    fs.write_file("/usr/bin/dockerd", b"docker")
    agent = MeasurementAgent(fs, ImaPolicy.default_host_policy())
    agent.measure_all()
    return agent


def test_violation_entry_has_zero_hash(agent):
    entry = agent.record_violation("/usr/bin/dockerd")
    assert entry.file_hash == VIOLATION_HASH
    assert agent.iml.find("/usr/bin/dockerd").file_hash == VIOLATION_HASH


def test_violation_forces_remeasure(agent):
    agent.record_violation("/usr/bin/dockerd")
    # Next access re-measures even though the generation did not change.
    entry = agent.on_file_accessed("/usr/bin/dockerd")
    assert entry is not None
    assert entry.file_hash != VIOLATION_HASH


def test_violation_extends_aggregate(agent):
    before = agent.iml.aggregate()
    agent.record_violation("/usr/bin/dockerd")
    assert agent.iml.aggregate() != before


def test_appraisal_rejects_violations(agent):
    expected = ExpectedValues()
    expected.allow_content("/usr/bin/dockerd", b"docker")
    agent.record_violation("/usr/bin/dockerd")
    engine = AppraisalEngine(expected)
    result = engine.appraise(agent.iml.to_bytes(), agent.iml.aggregate())
    assert not result.trustworthy
    assert any("violation" in f for f in result.failures)


def test_violation_extends_tpm_too():
    from repro.tpm.tpm import TpmDevice

    fs = SimulatedFilesystem()
    fs.write_file("/usr/bin/dockerd", b"docker")
    tpm = TpmDevice()
    agent = MeasurementAgent(fs, ImaPolicy.default_host_policy(), tpm=tpm)
    agent.measure_all()
    agent.record_violation("/usr/bin/dockerd")
    assert tpm.read_pcr(10) == agent.iml.aggregate()
