"""The measurement list: aggregates, serialization, adversarial mutation."""

import pytest

from repro.crypto.sha256 import sha256
from repro.errors import ImaError
from repro.ima.iml import BOOT_AGGREGATE_PATH, ImaEntry, MeasurementList
from repro.ima.pcr import Pcr


def entry(path: str, content: bytes = b"x") -> ImaEntry:
    return ImaEntry(pcr_index=10, file_hash=sha256(content), path=path)


@pytest.fixture
def iml():
    iml = MeasurementList()
    iml.boot_aggregate(sha256(b"boot"))
    iml.append(entry("/usr/bin/a", b"aa"))
    iml.append(entry("/usr/bin/b", b"bb"))
    return iml


def test_boot_aggregate_must_be_first():
    iml = MeasurementList()
    iml.append(entry("/early"))
    with pytest.raises(ImaError):
        iml.boot_aggregate(sha256(b"boot"))


def test_aggregate_tracks_appends(iml):
    manual = Pcr()
    for e in iml.entries:
        manual.extend(e.template_hash())
    assert iml.aggregate() == manual.read()


def test_compute_aggregate_matches_live(iml):
    assert MeasurementList.compute_aggregate(iml.entries) == iml.aggregate()


def test_order_matters():
    a = [entry("/1", b"1"), entry("/2", b"2")]
    b = [entry("/2", b"2"), entry("/1", b"1")]
    assert (MeasurementList.compute_aggregate(a)
            != MeasurementList.compute_aggregate(b))


def test_serialization_roundtrip(iml):
    restored = MeasurementList.from_bytes(iml.to_bytes())
    assert restored.entries == iml.entries
    assert restored.aggregate() == iml.aggregate()


def test_find_returns_latest(iml):
    iml.append(entry("/usr/bin/a", b"updated"))
    assert iml.find("/usr/bin/a").file_hash == sha256(b"updated")
    assert iml.find("/ghost") is None


def test_replace_entry_breaks_consistency(iml):
    before = iml.aggregate()
    iml.replace_entry("/usr/bin/a", sha256(b"forged"))
    assert iml.aggregate() == before  # PCR cannot be rewound...
    assert MeasurementList.compute_aggregate(iml.entries) != before  # ...but the list changed


def test_rewrite_restores_internal_consistency(iml):
    iml.replace_entry("/usr/bin/a", sha256(b"forged"))
    iml.rewrite()
    assert MeasurementList.compute_aggregate(iml.entries) == iml.aggregate()


def test_remove_entry(iml):
    iml.remove_entry("/usr/bin/a")
    assert iml.find("/usr/bin/a") is None
    with pytest.raises(ImaError):
        iml.remove_entry("/usr/bin/a")


def test_replace_missing_entry_raises(iml):
    with pytest.raises(ImaError):
        iml.replace_entry("/ghost", sha256(b"x"))


def test_template_hash_binds_path_and_hash():
    assert entry("/a", b"c").template_hash() != entry("/b", b"c").template_hash()
    assert entry("/a", b"c").template_hash() != entry("/a", b"d").template_hash()


def test_len_and_iter(iml):
    assert len(iml) == 3
    assert [e.path for e in iml][0] == BOOT_AGGREGATE_PATH
