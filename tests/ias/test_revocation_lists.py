"""PrivRL / SigRL semantics."""

import pytest

from repro.ias.revocation_lists import PrivRl, SigRl
from repro.sgx.epid import EpidGroup, epid_sign


@pytest.fixture
def group(rng):
    return EpidGroup(b"g", rng.random_bytes(32))


def test_privrl_matches_revoked_member(group, rng):
    member = group.issue_member(rng)
    signature = epid_sign(member, group.sealing_key(), b"m", b"base", rng)
    rl = PrivRl()
    rl.add(member.member_id)
    assert rl.matches(signature, group.derive_member_secret) == (
        member.member_id
    )


def test_privrl_ignores_other_members(group, rng):
    honest = group.issue_member(rng)
    revoked = group.issue_member(rng)
    signature = epid_sign(honest, group.sealing_key(), b"m", b"base", rng)
    rl = PrivRl()
    rl.add(revoked.member_id)
    assert rl.matches(signature, group.derive_member_secret) is None


def test_privrl_versioning_and_idempotence():
    rl = PrivRl()
    rl.add(b"member-1")
    rl.add(b"member-1")
    rl.add(b"member-2")
    assert rl.version == 2
    assert len(rl) == 2


def test_privrl_serialization():
    rl = PrivRl()
    rl.add(b"m1")
    rl.add(b"m2")
    restored = PrivRl.from_bytes(rl.to_bytes())
    assert restored.version == rl.version
    assert restored.revoked_member_ids == rl.revoked_member_ids


def test_sigrl_links_same_basename(group, rng):
    member = group.issue_member(rng)
    original = epid_sign(member, group.sealing_key(), b"m1", b"base", rng)
    later = epid_sign(member, group.sealing_key(), b"m2", b"base", rng)
    rl = SigRl()
    rl.add(original)
    assert rl.matches(later)


def test_sigrl_does_not_link_other_basename(group, rng):
    member = group.issue_member(rng)
    original = epid_sign(member, group.sealing_key(), b"m", b"base-a", rng)
    other = epid_sign(member, group.sealing_key(), b"m", b"base-b", rng)
    rl = SigRl()
    rl.add(original)
    assert not rl.matches(other)


def test_sigrl_does_not_match_other_members(group, rng):
    mallory = group.issue_member(rng)
    honest = group.issue_member(rng)
    rl = SigRl()
    rl.add(epid_sign(mallory, group.sealing_key(), b"m", b"base", rng))
    assert not rl.matches(
        epid_sign(honest, group.sealing_key(), b"m", b"base", rng)
    )


def test_sigrl_serialization(group, rng):
    member = group.issue_member(rng)
    rl = SigRl()
    rl.add(epid_sign(member, group.sealing_key(), b"m", b"base", rng))
    restored = SigRl.from_bytes(rl.to_bytes())
    assert restored.entries == rl.entries
    assert restored.version == rl.version
