"""The IAS core: verdicts, revocation order, AVR integrity."""

import pytest

from repro.errors import IasError
from repro.ias.report import AttestationVerificationReport
from repro.ias.service import QuoteStatus


def test_good_quote_gets_ok(ias, quote):
    avr = ias.verify_quote(quote.to_bytes(), nonce="n-1")
    assert avr.ok
    assert avr.quote_status == QuoteStatus.OK
    assert avr.nonce == "n-1"
    assert avr.isv_enclave_quote_body == quote.body_bytes().hex()


def test_avr_signature_verifies(ias, quote):
    avr = ias.verify_quote(quote.to_bytes())
    avr.verify(ias.report_signing_public_key)


def test_avr_tamper_detected(ias, quote, rng):
    avr = ias.verify_quote(quote.to_bytes())
    import dataclasses

    forged = dataclasses.replace(avr, quote_status="OK",
                                 nonce="injected")
    from repro.errors import InvalidSignature

    with pytest.raises(InvalidSignature):
        forged.verify(ias.report_signing_public_key)


def test_avr_json_roundtrip(ias, quote):
    avr = ias.verify_quote(quote.to_bytes(), nonce="x")
    restored = AttestationVerificationReport.from_json(avr.to_json())
    assert restored == avr
    restored.verify(ias.report_signing_public_key)


def test_malformed_avr_json_rejected():
    with pytest.raises(IasError):
        AttestationVerificationReport.from_json(b"{not json")
    with pytest.raises(IasError):
        AttestationVerificationReport.from_json(b"{}")


def test_forged_quote_signature_invalid(ias, quote):
    raw = bytearray(quote.to_bytes())
    raw[-1] ^= 1
    avr = ias.verify_quote(bytes(raw))
    assert avr.quote_status == QuoteStatus.SIGNATURE_INVALID


def test_tampered_quote_body_signature_invalid(ias, quote):
    import dataclasses

    forged = dataclasses.replace(quote, mrenclave=b"\x99" * 32)
    avr = ias.verify_quote(forged.to_bytes())
    assert avr.quote_status == QuoteStatus.SIGNATURE_INVALID


def test_key_revocation(ias, quote, platform):
    ias.revoke_platform(platform.name)
    avr = ias.verify_quote(quote.to_bytes())
    assert avr.quote_status == QuoteStatus.KEY_REVOKED


def test_revoke_unknown_platform_raises(ias):
    with pytest.raises(IasError):
        ias.revoke_platform("ghost-host")
    with pytest.raises(IasError):
        ias.revoke_member(b"unknown-member")


def test_signature_revocation_same_basename(ias, quote, platform, enclave):
    ias.revoke_quote_signature(quote)
    # A *fresh* quote from the same platform under the same basename links
    # to the revoked signature.
    from repro.sgx.report import Report

    qe = platform.quoting_enclave
    report = Report.from_bytes(
        enclave.ecall("get_report", qe.target_info(), b"\x0b" * 64)
    )
    fresh = qe.generate(report, b"test-deployment")
    avr = ias.verify_quote(fresh.to_bytes())
    assert avr.quote_status == QuoteStatus.SIGNATURE_REVOKED


def test_signature_revocation_other_basename_unlinkable(ias, quote, platform,
                                                        enclave):
    ias.revoke_quote_signature(quote)
    from repro.sgx.report import Report

    qe = platform.quoting_enclave
    report = Report.from_bytes(
        enclave.ecall("get_report", qe.target_info(), b"\x0c" * 64)
    )
    other = qe.generate(report, b"another-deployment")
    avr = ias.verify_quote(other.to_bytes())
    assert avr.quote_status == QuoteStatus.OK  # EPID unlinkability


def test_group_revocation_dominates(ias, quote):
    ias.revoke_group()
    avr = ias.verify_quote(quote.to_bytes())
    assert avr.quote_status == QuoteStatus.GROUP_REVOKED


def test_platform_name_lookup(ias, platform, quote):
    member_id = ias.group.verify(quote.signature(), quote.body_bytes())
    assert ias.platform_name(member_id) == platform.name


def test_quotes_verified_counter(ias, quote):
    before = ias.quotes_verified
    ias.verify_quote(quote.to_bytes())
    assert ias.quotes_verified == before + 1


def test_tcb_floor_raises_group_out_of_date(ias, quote):
    from repro.sgx.quote import QE_SVN

    ias.raise_tcb_floor(QE_SVN + 1)
    avr = ias.verify_quote(quote.to_bytes())
    assert avr.quote_status == QuoteStatus.GROUP_OUT_OF_DATE
    # Lowering the floor restores service.
    ias.raise_tcb_floor(QE_SVN)
    assert ias.verify_quote(quote.to_bytes()).quote_status == QuoteStatus.OK


def test_tcb_floor_blocks_enrollment_end_to_end():
    from repro.core import Deployment
    from repro.errors import AttestationFailed
    from repro.sgx.quote import QE_SVN

    import pytest as _pytest

    deployment = Deployment(seed=b"tcb-floor", vnf_count=1)
    deployment.ias.raise_tcb_floor(QE_SVN + 1)
    with _pytest.raises(AttestationFailed) as excinfo:
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)
    assert "GROUP_OUT_OF_DATE" in str(excinfo.value)
