"""IAS fixtures: a service, a registered platform, and a quotable enclave."""

from __future__ import annotations

import pytest

from repro.crypto.keys import generate_keypair
from repro.ias.service import IasService
from repro.net.clock import VirtualClock
from repro.sgx.enclave import EnclaveImage
from repro.sgx.platform import SgxPlatform
from repro.sgx.report import Report
from repro.sgx.sigstruct import sign_image


class EchoBehavior:
    """Minimal quotable enclave."""

    ECALLS = ("get_report",)

    def __init__(self, api):
        self._api = api

    def get_report(self, target, report_data: bytes) -> bytes:
        return self._api.create_report(target, report_data).to_bytes()


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def ias(rng, clock):
    return IasService(rng=rng, now=clock.now_seconds)


@pytest.fixture
def platform(clock, rng, ias):
    platform = SgxPlatform("attested-host", clock=clock, rng=rng)
    ias.register_platform(platform)
    return platform


@pytest.fixture
def enclave(platform, rng):
    image = EnclaveImage.from_behavior_class(EchoBehavior, "echo")
    sigstruct = sign_image(generate_keypair(rng), image.code, "vendor")
    return platform.create_enclave(image, sigstruct)


@pytest.fixture
def quote(platform, enclave):
    qe = platform.quoting_enclave
    report = Report.from_bytes(
        enclave.ecall("get_report", qe.target_info(), b"\x0a" * 64)
    )
    return qe.generate(report, b"test-deployment")
