"""The IAS REST/TLS binding."""

import pytest

from repro.errors import IasError
from repro.ias.api import IasClient, IasHttpService
from repro.ias.service import QuoteStatus
from repro.net.address import Address
from repro.net.simnet import Network


@pytest.fixture
def wired(ias, rng, clock):
    network = Network(clock=clock)
    address = Address("ias.example", 443)
    http = IasHttpService(ias, network, address, rng=rng)
    client = IasClient(network, address, http.ias_truststore,
                       ias.report_signing_public_key, rng=rng)
    return network, http, client


def test_verify_over_https(wired, quote):
    _, _, client = wired
    avr = client.verify_quote(quote.to_bytes(), nonce="hello")
    assert avr.ok
    assert avr.nonce == "hello"


def test_verdicts_travel_intact(wired, quote, ias, platform):
    _, _, client = wired
    ias.revoke_platform(platform.name)
    avr = client.verify_quote(quote.to_bytes())
    assert avr.quote_status == QuoteStatus.KEY_REVOKED


def test_nonce_mismatch_detected(wired, quote, ias, monkeypatch):
    network, http, client = wired

    original = ias.verify_quote

    def echo_wrong_nonce(quote_bytes, nonce=""):
        return original(quote_bytes, "stale-nonce")

    monkeypatch.setattr(ias, "verify_quote", echo_wrong_nonce)
    with pytest.raises(IasError):
        client.verify_quote(quote.to_bytes(), nonce="fresh-nonce")


def test_malformed_request_gets_400(wired, quote):
    network, http, _ = wired
    # Hand-roll a bad request over TLS to check the endpoint's hardening.
    from repro.net.rest import HttpParser, HttpRequest
    from repro.tls import TlsClient, TlsConfig

    tls_client = TlsClient(TlsConfig(
        truststore=http.ias_truststore, now=network.clock.now_seconds,
    ))
    conn = tls_client.connect(network.connect("vm", http.address))
    conn.send(HttpRequest("POST", "/attestation/v4/report",
                          body=b"not json").encode())
    parser = HttpParser(is_server_side=False)
    [response] = parser.feed(conn.recv_available())
    assert response.status == 400


def test_sigrl_endpoint(wired, ias, quote):
    network, http, _ = wired
    ias.revoke_quote_signature(quote)
    from repro.net.rest import HttpParser, HttpRequest
    from repro.tls import TlsClient, TlsConfig

    tls_client = TlsClient(TlsConfig(
        truststore=http.ias_truststore, now=network.clock.now_seconds,
    ))
    conn = tls_client.connect(network.connect("vm", http.address))
    conn.send(HttpRequest("GET", "/attestation/v4/sigrl").encode())
    parser = HttpParser(is_server_side=False)
    [response] = parser.feed(conn.recv_available())
    assert response.status == 200
    from repro.ias.revocation_lists import SigRl

    sigrl = SigRl.from_bytes(bytes.fromhex(response.body.decode()))
    assert len(sigrl) == 1
