"""Concurrency stress tests: no torn state under a worker pool.

Every shared structure the fleet scheduler leans on is hammered from
many threads and then checked against exact, deterministic invariants —
counts that must add up, serials that must be unique, caches that must
stay within capacity.  CPython's GIL hides most races most of the time,
so each test does *many* small operations per thread to maximise
interleaving, and CI runs this module repeatedly (see the ``concurrency``
job in ``.github/workflows/ci.yml``).

The lock rules these tests enforce are documented in
``docs/CONCURRENCY.md``.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

THREADS = 8
ROUNDS = 200


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on ``threads`` threads; re-raise failures."""
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()  # maximise overlap
        return worker(index)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        return [f for f in pool.map(run, range(threads))]


# ---------------------------------------------------------------- clock


def test_virtual_clock_concurrent_advances_add_up():
    from repro.net.clock import VirtualClock

    clock = VirtualClock()
    locals_seen = {}

    def worker(index):
        for _ in range(ROUNDS):
            clock.advance(0.001, account=f"acct-{index % 2}")
        locals_seen[index] = clock.local_seconds()

    _hammer(worker)
    total = THREADS * ROUNDS * 0.001
    assert clock.now() == pytest.approx(total)
    assert sum(clock.charges().values()) == pytest.approx(total)
    # Per-thread accounting: each worker saw exactly its own advances.
    for elapsed in locals_seen.values():
        assert elapsed == pytest.approx(ROUNDS * 0.001)


# ------------------------------------------------------------------ CA


def test_ca_concurrent_issuance_unique_serials():
    from repro.crypto.rng import HmacDrbg
    from repro.pki.ca import CertificateAuthority
    from repro.pki.name import DistinguishedName

    ca = CertificateAuthority(DistinguishedName("stress-ca", "tests"),
                              rng=HmacDrbg(b"ca-stress"))
    key_bytes = ca.certificate.public_key_bytes  # any valid point
    issued = []
    lock = threading.Lock()

    def worker(index):
        mine = []
        for i in range(25):
            cert = ca.issue(
                subject=DistinguishedName(f"leaf-{index}-{i}", "tests"),
                public_key_bytes=key_bytes, now=0,
            )
            mine.append(cert.serial)
        with lock:
            issued.extend(mine)

    _hammer(worker)
    assert len(issued) == THREADS * 25
    assert len(set(issued)) == len(issued)  # no double-issued serial
    assert ca.issued_count == len(issued) + 1  # + the root


def test_ca_reserved_serials_are_disjoint():
    from repro.crypto.rng import HmacDrbg
    from repro.pki.ca import CertificateAuthority
    from repro.pki.name import DistinguishedName

    ca = CertificateAuthority(DistinguishedName("reserve-ca", "tests"),
                              rng=HmacDrbg(b"reserve-stress"))
    results = _hammer(
        lambda index: [ca.reserve_serial() for _ in range(50)]
    )
    flat = [serial for chunk in results for serial in chunk]
    assert len(set(flat)) == len(flat)


# -------------------------------------------------------------- caches


def test_verification_cache_concurrent_accounting():
    from repro.core.verification_cache import VerificationCache

    class FakeAvr:
        pass

    cache = VerificationCache(capacity=64)
    avr = FakeAvr()

    def worker(index):
        for i in range(ROUNDS):
            quote = b"quote-%d-%d" % (index, i % 100)
            cache.lookup(quote, "nonce")
            cache.store(quote, "nonce", f"subject-{index}", avr)
            # Concurrent stores may LRU-evict the entry before the
            # readback (capacity 64 < live keyspace) — the cache promises
            # "the stored verdict or a miss", never a foreign object.
            got = cache.lookup(quote, "nonce")
            assert got is avr or got is None

    _hammer(worker)
    assert len(cache) <= 64
    assert cache.hits + cache.misses == THREADS * ROUNDS * 2
    # Predicate sweeps are exhaustive: a second sweep finds nothing.
    cache.invalidate_subject("subject-0")
    assert cache.invalidate_subject("subject-0") == 0


def test_session_cache_concurrent_store_and_sweep():
    from repro.tls.ciphersuites import SUPPORTED_SUITES
    from repro.tls.session import SessionCache, TlsSession

    cache = SessionCache(capacity=128)
    suite = next(iter(SUPPORTED_SUITES.values()))

    def worker(index):
        for i in range(ROUNDS):
            sid = b"%d:%d" % (index, i % 64)
            cache.store(TlsSession(sid, b"\x00" * 48, suite))
            cache.lookup(sid)
            if i % 16 == 0:
                cache.invalidate_where(
                    lambda s, prefix=b"%d:" % index:
                    s.session_id.startswith(prefix) and False
                )

    _hammer(worker)
    assert len(cache) <= 128


# --------------------------------------------------------------- crypto


def test_ec_validation_cache_concurrent():
    from repro.crypto.ec import P256
    from repro.crypto.keys import generate_keypair
    from repro.crypto.rng import HmacDrbg

    rng = HmacDrbg(b"ec-stress")
    points = [generate_keypair(rng).public.point for _ in range(16)]
    P256.reset_validation_cache()

    def worker(index):
        for i in range(ROUNDS):
            assert P256.validate_public(points[(index + i) % len(points)])

    _hammer(worker)
    stats = P256.stats.snapshot()
    assert (stats["validation_cache_hits"]
            + stats["validation_cache_misses"]) > 0
    assert P256.validation_cache_size <= P256.validation_cache_capacity


# ------------------------------------------------------------ telemetry


def test_metrics_registry_concurrent_get_or_create_and_inc():
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()

    def worker(index):
        for i in range(ROUNDS):
            # Same family + child from every thread: the get-or-create
            # race, if present, loses increments to orphaned children.
            registry.counter("stress_total", "stress",
                             labelnames=("worker",)).labels(
                worker="shared"
            ).inc()
            registry.histogram("stress_seconds", "stress",
                               labelnames=("worker",)).labels(
                worker=str(index)
            ).observe(0.001 * i)

    _hammer(worker)
    counter = registry.counter("stress_total", "stress",
                               labelnames=("worker",)).labels(
        worker="shared"
    )
    assert counter.value == THREADS * ROUNDS


def test_tracer_concurrent_span_stacks_are_thread_local():
    from repro.obs.tracing import Tracer

    tracer = Tracer(now=lambda: 0.0)

    def worker(index):
        for i in range(50):
            with tracer.span(f"outer-{index}"):
                with tracer.span(f"inner-{index}", iteration=i):
                    pass

    _hammer(worker)
    assert tracer.open_depth() == 0
    roots = tracer.roots()
    assert len(roots) == THREADS * 50
    for root in roots:
        assert len(root.children) == 1  # nesting never crossed threads


def test_audit_log_concurrent_records():
    from repro.core.events import AuditLog

    log = AuditLog()

    def worker(index):
        for i in range(ROUNDS):
            log.record("stress", f"subject-{index}", details=str(i))

    _hammer(worker)
    assert len(log) == THREADS * ROUNDS
    assert log.counts() == {"stress": THREADS * ROUNDS}
    for index in range(THREADS):
        assert len(log.events(subject=f"subject-{index}")) == ROUNDS


# ----------------------------------------------------------- end to end


def test_fleet_enrollment_repeated_runs_are_stable():
    """Two pooled runs from the same seed produce identical certificate
    bytes — worker interleaving never leaks into issued credentials."""
    from repro.core import Deployment

    def run_once():
        dep = Deployment(seed=b"stress-fleet", vnf_count=4)
        report = dep.enroll_fleet(workers=4)
        assert report.fully_succeeded, report.failed
        return {name: dep.vm.issued_certificate(name).to_bytes()
                for name in dep.vnf_names}

    assert run_once() == run_once()
