"""Fork safety of the kernel pool.

A ``fork()`` copies the parent's memory at an arbitrary instant: any lock
another thread held at that instant is copied *held forever* in the child,
and a copied ``ProcessPoolExecutor``'s queue-management threads simply do
not exist there.  :class:`repro.core.kernels.KernelPool` defends with an
``os.register_at_fork`` hook (fresh lock, dropped executor) plus an
owner-PID check on dispatch.  These tests fork for real and prove the
child can still use the pool — which is exactly the hazard lint rule
HYG005 exists to contain to that one module.
"""

import os
import threading
import time

import pytest

from repro.core.kernels import KernelPool
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="requires POSIX fork")

CHILD_DEADLINE_SECONDS = 60


def _wait_for_child(pid):
    """Reap ``pid``, killing it if it deadlocks (so CI fails fast
    instead of hanging)."""
    deadline = time.perf_counter() + CHILD_DEADLINE_SECONDS
    while time.perf_counter() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.05)
    os.kill(pid, 9)
    os.waitpid(pid, 0)
    pytest.fail("forked child deadlocked using the kernel pool")


def _child_signs(pool, key, expected):
    """Fork; the child must produce correct bytes through ``pool``."""
    pid = os.fork()
    if pid == 0:  # child
        status = 1
        try:
            if pool.sign_cert(b"tbs", key.to_bytes(), 1) == expected:
                status = 0
        finally:
            try:
                pool.shutdown()
            finally:
                os._exit(status)
    return _wait_for_child(pid)


def test_fork_while_another_thread_holds_the_pool_lock():
    """Hammer the pool lock from a thread while forking: the child's
    reset lock must never be inherited in the held state."""
    pool = KernelPool(workers=1)
    key = generate_keypair(HmacDrbg(b"fork-stress"))
    expected = key.sign(b"tbs")
    pool.sign_cert(b"tbs", key.to_bytes(), 1)  # warm: executor exists

    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            with pool._lock:
                pool.inline_calls += 0

    thread = threading.Thread(target=hammer, daemon=True)
    thread.start()
    try:
        for _ in range(5):
            assert _child_signs(pool, key, expected) == 0
    finally:
        stop.set()
        thread.join()
        pool.shutdown()
    # The parent's pool still works after all those forks.
    assert pool.sign_cert(b"tbs", key.to_bytes(), 1) == expected


def test_fork_while_this_thread_holds_the_pool_lock():
    """Fork with the lock explicitly held: without the at-fork reset the
    child would self-deadlock on first dispatch."""
    pool = KernelPool(workers=1)
    key = generate_keypair(HmacDrbg(b"fork-held"))
    expected = key.sign(b"tbs")
    pool.sign_cert(b"tbs", key.to_bytes(), 1)

    with pool._lock:
        code = _child_signs(pool, key, expected)
    assert code == 0
    pool.shutdown()


def test_child_does_not_reuse_parent_executor():
    """The inherited executor is unusable; the child must discard it
    (owner-PID check) and still return correct bytes."""
    pool = KernelPool(workers=1)
    key = generate_keypair(HmacDrbg(b"fork-executor"))
    expected = key.sign(b"tbs")
    pool.sign_cert(b"tbs", key.to_bytes(), 1)
    parent_pid = os.getpid()

    pid = os.fork()
    if pid == 0:  # child
        status = 1
        try:
            assert os.getpid() != parent_pid
            if (pool._executor is None
                    and pool.sign_cert(b"t", key.to_bytes(), 2)
                    == key.sign(b"t")):
                status = 0
        finally:
            try:
                pool.shutdown()
            finally:
                os._exit(status)
    assert _wait_for_child(pid) == 0
    pool.shutdown()
