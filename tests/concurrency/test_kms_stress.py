"""KMS under a worker pool: exact accounting across tenants and shards.

Eight threads hammer the service layer directly (the REST endpoint
serializes per-channel, so the interesting interleavings are below it):
two tenants spread over four shards, every thread storing, fetching,
replacing, and deleting against its own key range plus one contended
shared key per tenant.  Afterwards everything must add up exactly —
secret counts, quota accounting, audit trails, placement — and no
thread may ever have seen another tenant's bytes.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import SecretNotFound, TenantAuthError, TenantQuotaExceeded
from repro.kms import TenantQuota

from tests.kms.conftest import make_world

THREADS = 8
ROUNDS = 50
TENANTS = ("alpha", "beta")


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on ``threads`` threads; re-raise failures."""
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()  # maximise overlap
        return worker(index)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        return [f for f in pool.map(run, range(threads))]


def test_kms_store_fetch_hammer_counts_add_up():
    world = make_world(shard_count=4,
                       quota=TenantQuota(max_secrets=1024))
    service = world.service

    def worker(index):
        tenant = TENANTS[index % len(TENANTS)]
        token = world.tokens[tenant]
        for round_index in range(ROUNDS):
            name = f"w{index}-s{round_index}"
            value = f"{tenant}:{index}:{round_index}".encode()
            service.store(tenant, token, name, value)
            assert service.fetch(tenant, token, name) == value
            # Replace in place: must not consume a second quota slot.
            service.store(tenant, token, name, value + b"+2")
            assert service.fetch(tenant, token, name) == value + b"+2"
        return index

    assert _hammer(worker) == list(range(THREADS))

    per_tenant = THREADS // len(TENANTS) * ROUNDS
    for tenant in TENANTS:
        names = service.names(tenant, world.tokens[tenant])
        assert len(names) == per_tenant
        assert service.registry.secret_count(tenant) == per_tenant
        # Exact payloads survived the interleaving.
        for index in range(THREADS):
            if TENANTS[index % len(TENANTS)] != tenant:
                continue
            for round_index in range(0, ROUNDS, 10):
                value = service.fetch(tenant, world.tokens[tenant],
                                      f"w{index}-s{round_index}")
                assert value == (
                    f"{tenant}:{index}:{round_index}".encode() + b"+2")
    # Every secret landed on exactly one shard.
    assert (sum(service.store_backend.secret_counts().values())
            == per_tenant * len(TENANTS))


def test_kms_contended_replace_and_delete_stays_exact():
    """All threads fight over ONE key per tenant; the count quota must
    end exact whatever the interleaving of creates and deletes."""
    world = make_world(shard_count=4)
    service = world.service

    def worker(index):
        tenant = TENANTS[index % len(TENANTS)]
        token = world.tokens[tenant]
        for round_index in range(ROUNDS):
            service.store(tenant, token, "contended",
                          f"{index}:{round_index}".encode())
            try:
                service.delete(tenant, token, "contended")
            except SecretNotFound:
                pass  # another thread deleted it first — fine
        return index

    _hammer(worker)

    for tenant in TENANTS:
        token = world.tokens[tenant]
        live = service.names(tenant, token)
        count = service.registry.secret_count(tenant)
        assert count == len(live), (tenant, count, live)
        # And the namespace still works at the end.
        service.store(tenant, token, "after", b"ok")
        assert service.fetch(tenant, token, "after") == b"ok"


def test_kms_isolation_holds_under_contention():
    world = make_world(shard_count=4,
                       quota=TenantQuota(max_secrets=1024))
    service = world.service
    denials = []
    lock = threading.Lock()

    def worker(index):
        tenant = TENANTS[index % len(TENANTS)]
        other = TENANTS[(index + 1) % len(TENANTS)]
        token = world.tokens[tenant]
        for round_index in range(ROUNDS):
            service.store(tenant, token, f"mine-{index}-{round_index}",
                          tenant.encode())
            # A foreign token must never open this namespace.
            try:
                service.fetch(tenant, world.tokens[other],
                              f"mine-{index}-{round_index}")
            except TenantAuthError:
                with lock:
                    denials.append(index)
            else:  # pragma: no cover - the failure we are hunting
                raise AssertionError("cross-tenant fetch succeeded")
        return index

    _hammer(worker)
    assert len(denials) == THREADS * ROUNDS
    # The audit trail recorded every denial in the *target* namespace.
    for tenant in TENANTS:
        events = service.audit_trail(tenant)
        denied = [e for e in events if e.kind == "kms-denied"]
        stores = [e for e in events if e.kind == "kms-store"]
        expected = THREADS // len(TENANTS) * ROUNDS
        assert len(denied) == expected
        assert len(stores) == expected


def test_kms_quota_never_overshoots_under_contention():
    quota = TenantQuota(max_secrets=16)
    world = make_world(shard_count=4, quota=quota)
    service = world.service

    def worker(index):
        token = world.tokens["alpha"]
        admitted = 0
        for round_index in range(ROUNDS):
            try:
                service.store("alpha", token,
                              f"q-{index}-{round_index}", b"v")
                admitted += 1
            except TenantQuotaExceeded:
                pass
        return admitted

    admitted = sum(_hammer(worker))
    assert admitted == quota.max_secrets
    assert service.registry.secret_count("alpha") == quota.max_secrets
    assert len(service.names("alpha", world.tokens["alpha"])) \
        == quota.max_secrets
