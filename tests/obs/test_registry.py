"""The metrics registry: families, labels, histograms, reset semantics."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


# ------------------------------------------------------------------ counters


def test_counter_unlabelled_inc(registry):
    c = registry.counter("requests_total", "requests")
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)


def test_counter_rejects_negative(registry):
    c = registry.counter("requests_total")
    with pytest.raises(ObservabilityError):
        c.inc(-1)


def test_counter_labels_create_children_lazily(registry):
    c = registry.counter("verdicts_total", labelnames=("status",))
    assert c.children() == []
    c.labels(status="OK").inc()
    c.labels(status="OK").inc()
    c.labels(status="REVOKED").inc()
    assert c.labels(status="OK").value == 2
    assert c.labels(status="REVOKED").value == 1
    assert c.total() == 3
    assert [values for values, _ in c.children()] == [("OK",), ("REVOKED",)]


def test_labels_must_match_declared_names(registry):
    c = registry.counter("verdicts_total", labelnames=("status",))
    with pytest.raises(ObservabilityError):
        c.labels(stauts="OK")
    with pytest.raises(ObservabilityError):
        c.labels()
    with pytest.raises(ObservabilityError):
        c.labels(status="OK", extra="x")


def test_unlabelled_access_on_labelled_family_rejected(registry):
    c = registry.counter("verdicts_total", labelnames=("status",))
    with pytest.raises(ObservabilityError):
        c.inc()


def test_le_label_reserved(registry):
    with pytest.raises(ObservabilityError):
        registry.histogram("h_seconds", labelnames=("le",))


def test_invalid_metric_name_rejected(registry):
    with pytest.raises(ObservabilityError):
        registry.counter("bad-name")


# -------------------------------------------------------------------- gauges


def test_gauge_set_inc_dec(registry):
    g = registry.gauge("enrolled")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3


# ---------------------------------------------------------------- histograms


def test_histogram_buckets_cumulative(registry):
    h = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    child = h.labels()
    assert child.cumulative_buckets() == [
        (0.1, 1), (1.0, 3), (10.0, 4), (math.inf, 5),
    ]
    assert child.count == 5
    assert child.sum == pytest.approx(56.05)


def test_histogram_percentiles_nearest_rank(registry):
    h = registry.histogram("lat_seconds", buckets=(1.0,))
    for v in (5.0, 1.0, 3.0, 2.0, 4.0):  # deliberately unsorted
        h.observe(v)
    assert h.percentile(50) == 3.0
    assert h.percentile(90) == 5.0
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 5.0
    summary = h.labels().summary()
    assert summary["count"] == 5
    assert summary["p50"] == 3.0


def test_histogram_percentile_errors(registry):
    h = registry.histogram("lat_seconds")
    with pytest.raises(ObservabilityError):
        h.percentile(50)  # empty
    h.observe(1.0)
    with pytest.raises(ObservabilityError):
        h.percentile(101)


def test_histogram_default_buckets(registry):
    h = registry.histogram("lat_seconds")
    assert h.buckets == DEFAULT_BUCKETS


def test_histogram_bucket_validation(registry):
    with pytest.raises(ObservabilityError):
        registry.histogram("a_seconds", buckets=())
    with pytest.raises(ObservabilityError):
        registry.histogram("b_seconds", buckets=(1.0, 1.0))
    with pytest.raises(ObservabilityError):
        registry.histogram("c_seconds", buckets=(1.0, math.inf))


def test_histogram_total_count_across_labels(registry):
    h = registry.histogram("lat_seconds", labelnames=("step",))
    h.labels(step="a").observe(1.0)
    h.labels(step="b").observe(2.0)
    h.labels(step="b").observe(3.0)
    assert h.total_count() == 3


# ------------------------------------------------------------------ registry


def test_registry_deduplicates_by_name(registry):
    a = registry.counter("x_total", labelnames=("k",))
    b = registry.counter("x_total", labelnames=("k",))
    assert a is b


def test_registry_type_conflict(registry):
    registry.counter("x_total")
    with pytest.raises(ObservabilityError):
        registry.gauge("x_total")


def test_registry_labelname_conflict(registry):
    registry.counter("x_total", labelnames=("a",))
    with pytest.raises(ObservabilityError):
        registry.counter("x_total", labelnames=("b",))


def test_registry_get_and_contains(registry):
    registry.gauge("g")
    assert "g" in registry
    assert isinstance(registry.get("g"), type(registry.gauge("g")))
    with pytest.raises(ObservabilityError):
        registry.get("missing")


def test_registry_collect_sorted(registry):
    registry.counter("zzz_total")
    registry.gauge("aaa")
    assert [f.name for f in registry.collect()] == ["aaa", "zzz_total"]


def test_registry_reset_keeps_registrations(registry):
    c = registry.counter("x_total", labelnames=("k",))
    c.labels(k="v").inc(5)
    registry.reset()
    assert "x_total" in registry
    assert c.total() == 0


def test_registry_unregister(registry):
    registry.counter("x_total")
    registry.unregister("x_total")
    assert "x_total" not in registry


def test_default_registry_swap():
    first = default_registry()
    first.counter("probe_total").inc()
    fresh = reset_default_registry()
    assert fresh is default_registry()
    assert fresh is not first
    assert "probe_total" not in fresh


def test_families_are_typed(registry):
    assert isinstance(registry.counter("c_total"), Counter)
    assert isinstance(registry.histogram("h_seconds"), Histogram)
