"""Prometheus text rendering, parsing, and the simulated-network endpoint."""

import pytest

from repro.errors import ConnectionRefused, RestError
from repro.net.address import Address
from repro.net.simnet import Network
from repro.obs import (
    MetricsRegistry,
    Telemetry,
    TelemetryEndpoint,
    parse_prometheus,
    render_prometheus,
    scrape_text,
    scrape_traces,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


# ----------------------------------------------------------------- rendering


def test_render_counter_with_help_and_type(registry):
    c = registry.counter("requests_total", "total requests",
                         labelnames=("mode",))
    c.labels(mode="https").inc(3)
    text = render_prometheus(registry)
    assert "# HELP requests_total total requests" in text
    assert "# TYPE requests_total counter" in text
    assert 'requests_total{mode="https"} 3' in text
    assert text.endswith("\n")


def test_render_gauge_float_formatting(registry):
    g = registry.gauge("temperature")
    g.set(1.5)
    assert "temperature 1.5" in render_prometheus(registry)
    g.set(2.0)  # integral floats render without a decimal point
    assert "temperature 2\n" in render_prometheus(registry)


def test_render_histogram_series(registry):
    h = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    text = render_prometheus(registry)
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_sum 5.55" in text
    assert "lat_seconds_count 3" in text


def test_render_escapes_label_values(registry):
    c = registry.counter("odd_total", labelnames=("path",))
    c.labels(path='a"b\\c\nd').inc()
    text = render_prometheus(registry)
    assert 'path="a\\"b\\\\c\\nd"' in text


def test_render_empty_registry_is_empty_string(registry):
    assert render_prometheus(registry) == ""


def test_families_render_in_name_order(registry):
    registry.counter("zzz_total").inc()
    registry.gauge("aaa").set(1)
    text = render_prometheus(registry)
    assert text.index("aaa") < text.index("zzz_total")


# ------------------------------------------------------------------- parsing


def test_parse_round_trip(registry):
    c = registry.counter("requests_total", labelnames=("mode", "status"))
    c.labels(mode="https", status="200").inc(7)
    h = registry.histogram("lat_seconds", buckets=(0.5,))
    h.observe(0.25)
    h.observe(0.75)
    parsed = parse_prometheus(render_prometheus(registry))
    assert parsed["requests_total"][
        (("mode", "https"), ("status", "200"))
    ] == 7
    assert parsed["lat_seconds_bucket"][(("le", "0.5"),)] == 1
    assert parsed["lat_seconds_bucket"][(("le", "+Inf"),)] == 2
    assert parsed["lat_seconds_count"][()] == 2
    assert parsed["lat_seconds_sum"][()] == pytest.approx(1.0)


def test_parse_unescapes_label_values(registry):
    c = registry.counter("odd_total", labelnames=("path",))
    value = 'a"b\\c\nd'
    c.labels(path=value).inc()
    parsed = parse_prometheus(render_prometheus(registry))
    assert parsed["odd_total"][(("path", value),)] == 1


def test_parse_skips_comments_and_blanks():
    parsed = parse_prometheus("# HELP x y\n\n# TYPE x counter\nx 4\n")
    assert parsed == {"x": {(): 4.0}}


# ------------------------------------------------------------------ endpoint


@pytest.fixture
def served(registry):
    network = Network()
    telemetry = Telemetry(registry=registry, now=network.clock.now)
    address = Address("vm", 9100)
    endpoint = TelemetryEndpoint(telemetry, network, address)
    return network, telemetry, address, endpoint


def test_scrape_metrics_over_simulated_network(served, registry):
    network, telemetry, address, endpoint = served
    telemetry.credentials_issued.labels(variant="delivery").inc(2)
    text = scrape_text(network, address)
    parsed = parse_prometheus(text)
    assert parsed["vnf_sgx_credentials_issued_total"][
        (("variant", "delivery"),)
    ] == 2
    assert endpoint.scrapes_served == 1


def test_scrape_traces_over_simulated_network(served):
    network, telemetry, address, endpoint = served
    with telemetry.span("workflow", vnfs=2):
        with telemetry.span("step"):
            network.clock.advance(0.5)
    traces = scrape_traces(network, address)
    assert traces[0]["name"] == "workflow"
    assert traces[0]["attributes"] == {"vnfs": 2}
    assert traces[0]["children"][0]["name"] == "step"
    assert traces[0]["children"][0]["duration"] == pytest.approx(0.5)


def test_scrape_refused_when_nothing_listens(served):
    network, _, address, _ = served
    with pytest.raises(ConnectionRefused):
        scrape_text(network, Address("vm", 9999))  # nothing listening


def test_endpoint_404_on_unroutable_path(served):
    network, _, address, _ = served
    from repro.obs.exposition import scrape

    with pytest.raises(RestError):
        scrape(network, address, path="/nope")


def test_endpoint_close_stops_listening(served):
    network, _, address, endpoint = served
    endpoint.close()
    with pytest.raises(ConnectionRefused):
        scrape_text(network, address)
