"""The span tracer: nesting, virtual-clock timestamps, determinism, export."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.net.clock import VirtualClock
from repro.obs import Tracer


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def tracer(clock: VirtualClock) -> Tracer:
    return Tracer(now=clock.now)


def test_span_timestamps_come_from_the_clock(tracer, clock):
    with tracer.span("outer") as span:
        clock.advance(1.5)
    assert span.start == 0.0
    assert span.end == pytest.approx(1.5)
    assert span.duration == pytest.approx(1.5)
    assert span.finished


def test_nesting_builds_a_tree(tracer, clock):
    with tracer.span("workflow"):
        with tracer.span("attest"):
            clock.advance(0.2)
            with tracer.span("ias"):
                clock.advance(0.3)
        with tracer.span("provision"):
            clock.advance(0.1)
    roots = tracer.roots()
    assert [r.name for r in roots] == ["workflow"]
    workflow = roots[0]
    assert [c.name for c in workflow.children] == ["attest", "provision"]
    ias = workflow.children[0].children[0]
    assert ias.name == "ias"
    assert ias.parent_id == workflow.children[0].span_id
    assert ias.trace_id == workflow.trace_id
    assert workflow.parent_id is None
    assert tracer.open_depth() == 0


def test_sequential_roots_get_distinct_trace_ids(tracer):
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    a, b = tracer.roots()
    assert a.trace_id != b.trace_id
    assert a.trace_id == "trace-0001"
    assert b.trace_id == "trace-0002"


def test_identifiers_are_deterministic_sequence_numbers():
    def build() -> str:
        clock = VirtualClock()
        tracer = Tracer(now=clock.now)
        with tracer.span("a", k="v"):
            clock.advance(0.25)
            with tracer.span("b"):
                clock.advance(0.5)
        return tracer.export_json()

    assert build() == build()


def test_attributes_and_set_attribute(tracer):
    with tracer.span("s", host="ch-1") as span:
        span.set_attribute("verdict", "trusted")
    assert span.attributes == {"host": "ch-1", "verdict": "trusted"}


def test_exception_marks_error_and_propagates(tracer):
    with pytest.raises(ValueError):
        with tracer.span("failing") as span:
            raise ValueError("boom")
    assert span.attributes["error"] == "ValueError: boom"
    assert span.finished
    assert tracer.open_depth() == 0


def test_end_span_requires_innermost(tracer):
    outer = tracer.start_span("outer")
    tracer.start_span("inner")
    with pytest.raises(ObservabilityError):
        tracer.end_span(outer)


def test_find_searches_depth_first(tracer):
    with tracer.span("root"):
        with tracer.span("child"):
            with tracer.span("leaf"):
                pass
    assert tracer.find("leaf").name == "leaf"
    assert tracer.find("missing") is None
    assert tracer.roots()[0].find("child").name == "child"


def test_export_nested_and_flat(tracer, clock):
    with tracer.span("root"):
        clock.advance(1.0)
        with tracer.span("child"):
            clock.advance(0.5)
    nested = tracer.export()
    assert len(nested) == 1
    assert nested[0]["children"][0]["name"] == "child"
    flat = tracer.export_flat()
    assert [record["name"] for record in flat] == ["root", "child"]
    assert all("children" not in record for record in flat)
    # JSON export parses back to the nested form.
    assert json.loads(tracer.export_json()) == json.loads(
        json.dumps(nested, sort_keys=True)
    )


def test_reset_refuses_with_open_spans(tracer):
    tracer.start_span("open")
    with pytest.raises(ObservabilityError):
        tracer.reset()


def test_reset_restarts_counters(tracer):
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.roots() == []
    with tracer.span("b") as span:
        pass
    assert span.span_id == "span-0001"
    assert span.trace_id == "trace-0001"
