"""End-to-end telemetry: the Figure 1 workflow observed through obs.

The acceptance bar for the subsystem:

* a telemetry-enabled ``run_workflow()`` yields a non-empty, deterministic
  trace covering steps 1-6,
* a ``/metrics`` scrape over the simulated network carries the
  attestation / IAS / provisioning / TLS histograms with counts matching
  the number of enrolled VNFs,
* telemetry disabled leaves behaviour and simulated timings unchanged.
"""

import pytest

from repro.core import Deployment
from repro.errors import VnfSgxError
from repro.obs import parse_prometheus


@pytest.fixture(scope="module")
def observed():
    """One telemetry-enabled deployment with a completed workflow."""
    deployment = Deployment(seed=b"obs-e2e", vnf_count=2)
    deployment.enable_telemetry()
    trace = deployment.run_workflow()
    yield deployment, trace
    deployment.disable_telemetry()


# -------------------------------------------------------------------- traces


def test_trace_covers_figure1_steps(observed):
    deployment, _ = observed
    roots = deployment.telemetry.tracer.roots()
    assert [r.name for r in roots] == ["figure1-workflow"]
    workflow = roots[0]
    assert workflow.attributes == {"vnfs": 2}
    enrollments = [c for c in workflow.children if c.name == "enrollment"]
    assert [e.attributes["vnf"] for e in enrollments] == ["vnf-1", "vnf-2"]
    for enrollment in enrollments:
        # Steps 1-2, 3-5 and 6 as emitted by EnrollmentSession._timed.
        step_names = [c.name for c in enrollment.children]
        assert step_names == [
            "host-attestation (steps 1-2)",
            "vnf-attestation+provisioning (steps 3-5)",
            "controller-session (step 6)",
        ]
        # The deeper protocol spans hang off the right steps.
        assert enrollment.find("ias-verification") is not None
        assert enrollment.find("credential-provisioning") is not None
        assert enrollment.find("enclave-attestation") is not None
        assert enrollment.find("credential-issuance") is not None
        assert enrollment.find("tls-handshake") is not None
    assert deployment.telemetry.tracer.open_depth() == 0


def test_trace_spans_are_clock_timed_and_nested(observed):
    deployment, trace = observed
    workflow = deployment.telemetry.tracer.roots()[0]
    assert workflow.duration == pytest.approx(trace.simulated_seconds)
    for enrollment in workflow.children:
        for child in enrollment.children:
            assert enrollment.start <= child.start <= child.end \
                <= enrollment.end


def test_trace_is_deterministic_across_runs():
    def run() -> str:
        deployment = Deployment(seed=b"obs-determinism", vnf_count=1)
        deployment.enable_telemetry(serve=False)
        deployment.run_workflow()
        exported = deployment.telemetry.tracer.export_json()
        deployment.disable_telemetry()
        return exported

    assert run() == run()


def test_traces_scrape_matches_export(observed):
    deployment, _ = observed
    scraped = deployment.scrape_traces()
    assert scraped == deployment.telemetry.tracer.export()


# ------------------------------------------------------------------- metrics


def test_metrics_scrape_counts_match_enrolled_vnfs(observed):
    deployment, _ = observed
    parsed = parse_prometheus(deployment.scrape_metrics())
    vnfs = len(deployment.vnf_names)

    assert parsed["vnf_sgx_host_attestation_seconds_count"][
        (("result", "trusted"),)
    ] == vnfs
    assert parsed["vnf_sgx_vnf_attestation_seconds_count"][
        (("variant", "delivery"),)
    ] == vnfs
    assert parsed["vnf_sgx_provisioning_seconds_count"][
        (("variant", "delivery"),)
    ] == vnfs
    assert parsed["vnf_sgx_credentials_issued_total"][
        (("variant", "delivery"),)
    ] == vnfs
    # One IAS verification per host attestation + one per enclave quote.
    assert parsed["vnf_sgx_ias_verification_seconds_count"][()] == 2 * vnfs
    assert parsed["vnf_sgx_enrolled_vnfs"][()] == vnfs
    assert parsed["vnf_sgx_workflows_total"][()] == 1
    for step in ("host-attestation (steps 1-2)",
                 "vnf-attestation+provisioning (steps 3-5)",
                 "controller-session (step 6)"):
        assert parsed["vnf_sgx_workflow_step_seconds_count"][
            (("step", step),)
        ] == vnfs
    # TLS: every handshake lands in the histogram, full and resumed split.
    full = parsed["vnf_sgx_tls_handshake_seconds_count"][
        (("resumed", "false"), ("role", "client"))
    ]
    assert full >= vnfs
    # Enclave transition counters are labelled by platform (= host name).
    assert parsed["vnf_sgx_enclave_ecalls_total"][
        (("platform", deployment.host.name),)
    ] > 0


def test_audit_counter_mirrors_audit_log(observed):
    deployment, _ = observed
    parsed = parse_prometheus(deployment.scrape_metrics())
    for kind, count in deployment.vm.audit.counts().items():
        assert parsed["vnf_sgx_audit_events_total"][
            (("kind", kind),)
        ] == count


def test_northbound_requests_counted(observed):
    deployment, _ = observed
    parsed = parse_prometheus(deployment.scrape_metrics())
    assert parsed["vnf_sgx_northbound_requests_total"][
        (("method", "GET"), ("mode", "trusted-https"), ("status", "200"))
    ] >= len(deployment.vnf_names)


def test_step_histogram_sums_match_workflow_trace(observed):
    deployment, trace = observed
    telemetry = deployment.telemetry
    hist = telemetry.workflow_step_seconds
    for step, total in trace.step_totals().items():
        child = hist.labels(step=step)
        assert child.sum == pytest.approx(total)


# ------------------------------------------------- disabled-telemetry parity


def test_disabled_telemetry_changes_nothing():
    plain = Deployment(seed=b"obs-parity", vnf_count=2)
    trace_plain = plain.run_workflow()

    observed = Deployment(seed=b"obs-parity", vnf_count=2)
    observed.enable_telemetry()
    trace_observed = observed.run_workflow()
    observed.disable_telemetry()

    assert trace_observed.simulated_seconds == trace_plain.simulated_seconds
    assert trace_observed.clock_charges == trace_plain.clock_charges
    for vnf_name, timings in trace_plain.per_vnf.items():
        got = trace_observed.per_vnf[vnf_name]
        assert [t.step for t in got] == [t.step for t in timings]
        assert [t.simulated_seconds for t in got] == \
            [t.simulated_seconds for t in timings]


def test_scrape_requires_serving_endpoint():
    deployment = Deployment(seed=b"obs-noserve", vnf_count=1)
    deployment.enable_telemetry(serve=False)
    try:
        with pytest.raises(VnfSgxError):
            deployment.scrape_metrics()
        with pytest.raises(VnfSgxError):
            deployment.scrape_traces()
    finally:
        deployment.disable_telemetry()


def test_enable_telemetry_is_idempotent():
    deployment = Deployment(seed=b"obs-idem", vnf_count=1)
    first = deployment.enable_telemetry(serve=False)
    second = deployment.enable_telemetry(serve=False)
    try:
        assert first is second
    finally:
        deployment.disable_telemetry()
