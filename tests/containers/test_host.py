"""The container host: boot measurement, deployment, adversarial API."""

import pytest

from repro.containers.host import ContainerHost
from repro.containers.image import build_image
from repro.containers.registry import Registry
from repro.crypto.sha256 import sha256


@pytest.fixture
def registry():
    registry = Registry()
    registry.push(build_image("vnf", "1.0", {"/usr/bin/vnf": b"bin"}))
    return registry


@pytest.fixture
def host(rng):
    host = ContainerHost("host-t", rng=rng)
    host.boot()
    return host


def test_boot_measures_os_files(host):
    measured = {entry.path for entry in host.ima.iml}
    assert "/usr/bin/dockerd" in measured
    assert "boot_aggregate" in measured
    assert host.booted


def test_boot_is_idempotent(host):
    count = len(host.ima.iml)
    host.boot()
    assert len(host.ima.iml) == count


def test_deploy_measures_container_files(host, registry):
    before = len(host.ima.iml)
    container = host.deploy(registry, "vnf:1.0")
    assert container.running
    assert len(host.ima.iml) > before
    assert host.ima.iml.find(container.root_path + "/usr/bin/vnf") is not None


def test_tamper_file_lands_in_iml(host):
    host.tamper_file("/usr/bin/dockerd", b"evil")
    assert host.ima.iml.find("/usr/bin/dockerd").file_hash == sha256(b"evil")


def test_tamper_without_remeasure_keeps_stale_entry(host):
    original = host.ima.iml.find("/usr/bin/dockerd").file_hash
    host.tamper_file("/usr/bin/dockerd", b"evil", re_measure=False)
    assert host.ima.iml.find("/usr/bin/dockerd").file_hash == original


def test_hide_measurement_restores_consistency(host):
    host.tamper_file("/usr/bin/dockerd", b"evil")
    host.hide_measurement("/usr/bin/dockerd")
    from repro.ima.iml import MeasurementList

    assert host.ima.iml.find("/usr/bin/dockerd") is None
    assert (MeasurementList.compute_aggregate(host.ima.iml.entries)
            == host.ima.iml.aggregate())


def test_tpm_configuration(rng):
    host = ContainerHost("host-tpm", rng=rng, with_tpm=True)
    host.boot()
    assert host.tpm is not None
    assert host.tpm.read_pcr(10) == host.ima.iml.aggregate()
    # hide_measurement desynchronizes software log from hardware PCR
    host.tamper_file("/usr/bin/dockerd", b"evil")
    host.hide_measurement("/usr/bin/dockerd")
    assert host.tpm.read_pcr(10) != host.ima.iml.aggregate()


def test_custom_os_files(rng):
    host = ContainerHost("min", rng=rng,
                         os_files={"/usr/bin/only": b"one"})
    host.boot()
    assert {e.path for e in host.ima.iml} == {"boot_aggregate",
                                              "/usr/bin/only"}
