"""Images: digests, layering, flattening."""

import pytest

from repro.containers.image import ContainerImage, Layer, build_image
from repro.errors import ContainerError


def test_digest_deterministic():
    a = build_image("vnf", "1.0", {"/usr/bin/vnf": b"bin"})
    b = build_image("vnf", "1.0", {"/usr/bin/vnf": b"bin"})
    assert a.digest() == b.digest()


def test_digest_sensitive_to_content():
    a = build_image("vnf", "1.0", {"/usr/bin/vnf": b"bin"})
    b = build_image("vnf", "1.0", {"/usr/bin/vnf": b"bin2"})
    assert a.digest() != b.digest()


def test_digest_sensitive_to_metadata():
    a = build_image("vnf", "1.0", {"/f": b"x"})
    b = build_image("vnf", "1.1", {"/f": b"x"})
    assert a.digest() != b.digest()


def test_layer_override_order():
    base = Layer.from_dict({"/etc/conf": b"default", "/usr/bin/vnf": b"v1"})
    patch = Layer.from_dict({"/etc/conf": b"tuned"})
    image = ContainerImage("vnf", "2.0", (base, patch))
    merged = image.flatten()
    assert merged["/etc/conf"] == b"tuned"
    assert merged["/usr/bin/vnf"] == b"v1"


def test_reference_format():
    assert build_image("vnf", "1.0", {"/f": b""}).reference == "vnf:1.0"


def test_validation():
    with pytest.raises(ContainerError):
        ContainerImage("", "1.0", (Layer.from_dict({"/f": b""}),))
    with pytest.raises(ContainerError):
        ContainerImage("vnf", "1.0", ())


def test_layer_digest_canonical_order():
    a = Layer.from_dict({"/a": b"1", "/b": b"2"})
    b = Layer(tuple(reversed(sorted({"/a": b"1", "/b": b"2"}.items()))))
    # from_dict sorts; a manually reversed layer digests differently,
    # proving the digest covers order (from_dict canonicalizes it).
    assert a.digest() != b.digest()
