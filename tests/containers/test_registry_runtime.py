"""Registry pulls, runtime lifecycle, measurement integration."""

import pytest

from repro.containers.container import STATE_RUNNING, STATE_STOPPED
from repro.containers.image import build_image
from repro.containers.registry import Registry
from repro.containers.runtime import ContainerRuntime
from repro.errors import ContainerError, ContainerStateError, ImageNotFound
from repro.ima.filesystem import SimulatedFilesystem


@pytest.fixture
def registry():
    registry = Registry()
    registry.push(build_image("vnf", "1.0", {"/usr/bin/vnf": b"bin"}))
    return registry


@pytest.fixture
def runtime():
    return ContainerRuntime(SimulatedFilesystem())


def test_pull_known_image(registry):
    image = registry.pull("vnf:1.0")
    assert image.reference == "vnf:1.0"
    assert len(registry) == 1
    assert registry.catalog() == ["vnf:1.0"]


def test_pull_unknown_raises(registry):
    with pytest.raises(ImageNotFound):
        registry.pull("ghost:latest")
    with pytest.raises(ImageNotFound):
        registry.digest_of("ghost:latest")


def test_pinned_digest_checked(registry):
    good = registry.digest_of("vnf:1.0")
    assert registry.pull("vnf:1.0", expected_digest=good)
    # Supply-chain attack: registry content replaced after pinning.
    registry.push(build_image("vnf", "1.0", {"/usr/bin/vnf": b"trojan"}))
    with pytest.raises(ContainerError):
        registry.pull("vnf:1.0", expected_digest=good)


def test_lifecycle(runtime, registry):
    container = runtime.create(registry.pull("vnf:1.0"), labels={"app": "fw"})
    assert container.state == "created"
    runtime.start(container)
    assert container.state == STATE_RUNNING
    runtime.stop(container)
    assert container.state == STATE_STOPPED
    runtime.remove(container)
    assert len(runtime) == 0


def test_invalid_transitions(runtime, registry):
    container = runtime.create(registry.pull("vnf:1.0"))
    with pytest.raises(ContainerStateError):
        container.mark_stopped()  # not running yet
    runtime.start(container)
    with pytest.raises(ContainerStateError):
        runtime.remove(container)  # must stop first


def test_start_materializes_files(runtime, registry):
    container = runtime.create(registry.pull("vnf:1.0"))
    runtime.start(container)
    path = container.root_path + "/usr/bin/vnf"
    assert runtime._fs.read_file(path) == b"bin"


def test_remove_cleans_files(runtime, registry):
    container = runtime.create(registry.pull("vnf:1.0"))
    runtime.start(container)
    runtime.stop(container)
    runtime.remove(container)
    assert runtime._fs.list_files("/var/lib/containers/") == []


def test_file_write_hook_fires(registry):
    seen = []
    runtime = ContainerRuntime(SimulatedFilesystem(),
                               on_file_written=seen.append)
    runtime.start(runtime.create(registry.pull("vnf:1.0")))
    assert any(path.endswith("/usr/bin/vnf") for path in seen)


def test_container_ids_unique(runtime, registry):
    image = registry.pull("vnf:1.0")
    a, b = runtime.create(image), runtime.create(image)
    assert a.container_id != b.container_id
    assert runtime.get(a.container_id) is a
    with pytest.raises(ContainerError):
        runtime.get("ctr-9999")


def test_list_running_only(runtime, registry):
    image = registry.pull("vnf:1.0")
    a, b = runtime.create(image), runtime.create(image)
    runtime.start(a)
    assert runtime.list_containers(running_only=True) == [a]
    assert len(runtime.list_containers()) == 2
