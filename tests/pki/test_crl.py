"""Certificate revocation lists."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import CertificateRevoked, InvalidSignature
from repro.pki.crl import (
    CertificateRevocationList,
    REASON_KEY_COMPROMISE,
    RevokedEntry,
    sign_crl,
)
from repro.pki.name import DistinguishedName


@pytest.fixture
def crl(rng):
    key = generate_keypair(rng)
    issuer = DistinguishedName("CRL-Issuer")
    entries = [RevokedEntry(5, 100, REASON_KEY_COMPROMISE),
               RevokedEntry(9, 200)]
    return key, sign_crl(key, issuer, issued_at=250, next_update=350,
                         entries=entries)


def test_roundtrip(crl):
    _, signed = crl
    restored = CertificateRevocationList.from_bytes(signed.to_bytes())
    assert restored == signed


def test_signature(crl, rng):
    key, signed = crl
    signed.verify_signature(key.public)
    with pytest.raises(InvalidSignature):
        signed.verify_signature(generate_keypair(rng).public)


def test_is_revoked_and_check(crl):
    _, signed = crl
    assert signed.is_revoked(5)
    assert signed.is_revoked(9)
    assert not signed.is_revoked(6)
    signed.check(6)
    with pytest.raises(CertificateRevoked):
        signed.check(5)


def test_revocation_reason_preserved(crl):
    _, signed = crl
    restored = CertificateRevocationList.from_bytes(signed.to_bytes())
    assert restored.entries[0].reason == REASON_KEY_COMPROMISE


def test_empty_crl(rng):
    key = generate_keypair(rng)
    signed = sign_crl(key, DistinguishedName("I"), 0, 100, [])
    assert len(signed.entries) == 0
    signed.check(12345)  # nothing revoked
