"""Certificate signing requests and proof of possession."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import InvalidSignature
from repro.pki.csr import CertificateSigningRequest, create_csr
from repro.pki.name import DistinguishedName


def test_roundtrip(rng):
    key = generate_keypair(rng)
    csr = create_csr(key, DistinguishedName("vnf-9"), san=("ctr-9",))
    restored = CertificateSigningRequest.from_bytes(csr.to_bytes())
    assert restored == csr


def test_proof_of_possession_verifies(rng):
    key = generate_keypair(rng)
    create_csr(key, DistinguishedName("vnf-9")).verify_proof_of_possession()


def test_wrong_key_fails_pop(rng):
    holder = generate_keypair(rng)
    claimed = generate_keypair(rng)
    # Attacker claims someone else's public key but signs with its own.
    forged = CertificateSigningRequest(
        subject=DistinguishedName("mallory"),
        public_key_bytes=claimed.public.to_bytes(),
        signature=create_csr(holder, DistinguishedName("mallory")).signature,
    )
    with pytest.raises(InvalidSignature):
        forged.verify_proof_of_possession()


def test_tampered_subject_fails_pop(rng):
    key = generate_keypair(rng)
    csr = create_csr(key, DistinguishedName("honest"))
    forged = CertificateSigningRequest(
        subject=DistinguishedName("impostor"),
        public_key_bytes=csr.public_key_bytes,
        san=csr.san,
        signature=csr.signature,
    )
    with pytest.raises(InvalidSignature):
        forged.verify_proof_of_possession()
