"""Keystore and truststore semantics (the two validation models of E3)."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import KeystoreError, UntrustedCertificate
from repro.pki.keystore import Keystore
from repro.pki.name import DistinguishedName
from repro.pki.truststore import Truststore


def test_trusted_entries(pki):
    ks = Keystore()
    ks.add_trusted("client", pki.client_cert)
    assert ks.contains_certificate(pki.client_cert)
    assert not ks.contains_certificate(pki.server_cert)
    assert ks.trusted_aliases() == ["client"]
    ks.remove_trusted("client")
    assert not ks.contains_certificate(pki.client_cert)


def test_remove_missing_alias_raises(pki):
    with pytest.raises(KeystoreError):
        Keystore().remove_trusted("nope")


def test_empty_alias_rejected(pki):
    with pytest.raises(KeystoreError):
        Keystore().add_trusted("", pki.client_cert)


def test_key_entry_roundtrip(pki):
    ks = Keystore()
    ks.set_key_entry("server", pki.server_key, pki.server_cert)
    key, cert = ks.get_key_entry("server")
    assert key is pki.server_key and cert is pki.server_cert
    assert len(ks) == 1


def test_key_entry_mismatch_rejected(pki, rng):
    ks = Keystore()
    other = generate_keypair(rng)
    with pytest.raises(KeystoreError):
        ks.set_key_entry("server", other, pki.server_cert)


def test_missing_key_entry(pki):
    with pytest.raises(KeystoreError):
        Keystore().get_key_entry("absent")


def test_truststore_membership(pki):
    ts = pki.truststore
    assert pki.ca.certificate.subject in ts
    assert len(ts) == 1
    assert ts.find(pki.ca.certificate.subject) == pki.ca.certificate
    assert ts.find(DistinguishedName("ghost")) is None
    with pytest.raises(UntrustedCertificate):
        ts.require(DistinguishedName("ghost"))


def test_truststore_rejects_non_ca(pki):
    with pytest.raises(KeystoreError):
        Truststore([pki.client_cert])


def test_truststore_remove(pki):
    ts = Truststore([pki.ca.certificate])
    ts.remove(pki.ca.certificate.subject)
    assert len(ts) == 0
    with pytest.raises(KeystoreError):
        ts.remove(pki.ca.certificate.subject)
