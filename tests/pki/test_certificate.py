"""Certificates: structure, validity, signatures, serialization."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import (
    CertificateError,
    CertificateExpired,
    EncodingError,
    InvalidSignature,
)
from repro.pki.certificate import Certificate, KEY_USAGE_CLIENT_AUTH
from repro.pki.name import DistinguishedName


def test_roundtrip(pki):
    cert = pki.client_cert
    restored = Certificate.from_bytes(cert.to_bytes())
    assert restored == cert
    assert restored.fingerprint() == cert.fingerprint()


def test_signature_verifies(pki):
    pki.client_cert.verify_signature(pki.ca.certificate.public_key)


def test_signature_rejects_wrong_issuer_key(pki, rng):
    other = generate_keypair(rng)
    with pytest.raises(InvalidSignature):
        pki.client_cert.verify_signature(other.public)


def test_tampered_body_fails_verification(pki):
    import dataclasses

    tampered = dataclasses.replace(pki.client_cert, not_after=9999999999)
    with pytest.raises(InvalidSignature):
        tampered.verify_signature(pki.ca.certificate.public_key)


def test_validity_window(pki):
    cert = pki.client_cert
    cert.check_validity(cert.not_before)
    cert.check_validity(cert.not_after)
    with pytest.raises(CertificateExpired):
        cert.check_validity(cert.not_after + 1)
    with pytest.raises(CertificateExpired):
        cert.check_validity(cert.not_before - 1)


def test_inverted_validity_rejected(pki):
    with pytest.raises(CertificateError):
        Certificate(
            serial=1,
            subject=DistinguishedName("x"),
            issuer=DistinguishedName("y"),
            public_key_bytes=pki.client_cert.public_key_bytes,
            not_before=100,
            not_after=50,
        )


def test_key_usage_semantics(pki):
    assert pki.client_cert.allows_usage(KEY_USAGE_CLIENT_AUTH)
    assert not pki.client_cert.allows_usage("server-auth")
    unrestricted = Certificate(
        serial=2,
        subject=DistinguishedName("x"),
        issuer=DistinguishedName("y"),
        public_key_bytes=pki.client_cert.public_key_bytes,
        not_before=0,
        not_after=10,
    )
    assert unrestricted.allows_usage("anything")


def test_self_signed_detection(pki):
    assert pki.ca.certificate.is_self_signed()
    assert not pki.client_cert.is_self_signed()


def test_malformed_bytes_rejected():
    with pytest.raises(EncodingError):
        Certificate.from_bytes(b"garbage")
    from repro.pki import der

    with pytest.raises(EncodingError):
        Certificate.from_bytes(der.encode([1, 2, 3]))


def test_public_key_property(pki):
    assert (pki.client_cert.public_key.to_bytes()
            == pki.client_key.public.to_bytes())


def test_san_preserved(pki, rng):
    key = generate_keypair(rng)
    cert = pki.ca.issue(
        DistinguishedName("with-san"), key.public.to_bytes(), now=0,
        san=("container-1", "10.0.0.5"),
    )
    assert Certificate.from_bytes(cert.to_bytes()).san == ("container-1",
                                                           "10.0.0.5")
