"""Distinguished names."""

import pytest

from repro.errors import EncodingError
from repro.pki.name import DistinguishedName


def test_str_rendering():
    dn = DistinguishedName("vnf-1", "RISE", "security", "SE")
    assert str(dn) == "CN=vnf-1,O=RISE,OU=security,C=SE"
    assert str(DistinguishedName("x")) == "CN=x"


def test_roundtrip():
    dn = DistinguishedName("vnf-1", "RISE")
    assert DistinguishedName.from_bytes(dn.to_bytes()) == dn


def test_requires_common_name():
    with pytest.raises(EncodingError):
        DistinguishedName("")


def test_equality_and_ordering():
    assert DistinguishedName("a") == DistinguishedName("a")
    assert DistinguishedName("a") != DistinguishedName("b")
    assert DistinguishedName("a") < DistinguishedName("b")


def test_usable_as_dict_key():
    table = {DistinguishedName("x"): 1}
    assert table[DistinguishedName("x")] == 1


def test_from_list_validation():
    with pytest.raises(EncodingError):
        DistinguishedName.from_list(["only-two", "items"])
    with pytest.raises(EncodingError):
        DistinguishedName.from_list(["a", "b", "c", 4])
