"""The certificate authority: issuance, serials, revocation."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import CertificateError, InvalidSignature, RevocationError
from repro.pki.certificate import (
    KEY_USAGE_CERT_SIGN,
    KEY_USAGE_CLIENT_AUTH,
    KEY_USAGE_SERVER_AUTH,
)
from repro.pki.csr import create_csr
from repro.pki.name import DistinguishedName


def test_root_is_self_signed_ca(pki):
    root = pki.ca.certificate
    assert root.is_ca
    assert root.is_self_signed()
    root.verify_signature(root.public_key)
    assert root.allows_usage(KEY_USAGE_CERT_SIGN)


def test_serials_are_unique_and_monotonic(pki, rng):
    serials = [
        pki.ca.issue(DistinguishedName(f"s{i}"),
                     generate_keypair(rng).public.to_bytes(), now=0).serial
        for i in range(5)
    ]
    assert serials == sorted(serials)
    assert len(set(serials)) == 5


def test_issue_from_csr_checks_pop(pki, rng):
    key = generate_keypair(rng)
    csr = create_csr(key, DistinguishedName("vnf"))
    cert = pki.ca.issue_from_csr(csr, now=0)
    assert cert.subject.common_name == "vnf"
    assert cert.key_usage == (KEY_USAGE_CLIENT_AUTH,)

    import dataclasses

    bad = dataclasses.replace(csr, subject=DistinguishedName("other"))
    with pytest.raises(InvalidSignature):
        pki.ca.issue_from_csr(bad, now=0)


def test_server_certificates_get_server_usage(pki):
    assert pki.server_cert.key_usage == (KEY_USAGE_SERVER_AUTH,)


def test_issued_lookup(pki):
    found = pki.ca.issued_certificate(pki.client_cert.serial)
    assert found == pki.client_cert
    with pytest.raises(CertificateError):
        pki.ca.issued_certificate(99999)


def test_revocation_appears_in_crl(pki):
    pki.ca.revoke(pki.client_cert.serial, now=50, reason="key-compromise")
    crl = pki.ca.current_crl(now=60)
    assert crl.is_revoked(pki.client_cert.serial)
    assert not crl.is_revoked(pki.server_cert.serial)
    crl.verify_signature(pki.ca.certificate.public_key)


def test_revocation_is_idempotent(pki):
    pki.ca.revoke(pki.client_cert.serial, now=50)
    pki.ca.revoke(pki.client_cert.serial, now=51)
    crl = pki.ca.current_crl(now=60)
    assert sum(1 for e in crl.entries
               if e.serial == pki.client_cert.serial) == 1


def test_cannot_revoke_unknown_or_root(pki):
    with pytest.raises(RevocationError):
        pki.ca.revoke(424242, now=0)
    with pytest.raises(RevocationError):
        pki.ca.revoke(pki.ca.certificate.serial, now=0)


def test_issued_count(pki):
    before = pki.ca.issued_count
    pki.ca.issue(DistinguishedName("another"),
                 pki.client_cert.public_key_bytes, now=0)
    assert pki.ca.issued_count == before + 1
