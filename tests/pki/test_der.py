"""DER-lite: canonical encoding, decoding, and malformed-input rejection."""

import pytest

from repro.errors import EncodingError
from repro.pki import der


@pytest.mark.parametrize("value", [
    None,
    True,
    False,
    0,
    1,
    -1,
    127,
    128,
    -128,
    1 << 100,
    -(1 << 100),
    b"",
    b"\x00\xff" * 10,
    "",
    "hello",
    "unicode: éè€",
    [],
    [1, 2, 3],
    [b"bytes", "text", 42, None, True],
    [[1, [2, [3, [4]]]]],
])
def test_roundtrip(value):
    decoded = der.decode(der.encode(value))
    if isinstance(value, tuple):
        value = list(value)
    assert decoded == value


def test_tuple_encodes_as_list():
    assert der.decode(der.encode((1, 2))) == [1, 2]


def test_encoding_is_canonical():
    assert der.encode([1, b"x"]) == der.encode([1, b"x"])


def test_bool_is_not_int():
    assert der.decode(der.encode(True)) is True
    assert der.decode(der.encode(1)) == 1
    assert der.encode(True) != der.encode(1)


def test_trailing_garbage_rejected():
    with pytest.raises(EncodingError):
        der.decode(der.encode(5) + b"\x00")


def test_truncated_header_rejected():
    with pytest.raises(EncodingError):
        der.decode(b"\x02\x00")


def test_truncated_value_rejected():
    encoded = bytearray(der.encode(b"0123456789"))
    with pytest.raises(EncodingError):
        der.decode(bytes(encoded[:-1]))


def test_unknown_tag_rejected():
    with pytest.raises(EncodingError):
        der.decode(b"\x7f\x00\x00\x00\x00")


def test_oversized_declared_length_rejected():
    with pytest.raises(EncodingError):
        der.decode(b"\x04\x7f\xff\xff\xff")


def test_malformed_bool_rejected():
    with pytest.raises(EncodingError):
        der.decode(b"\x01\x00\x00\x00\x01\x02")


def test_malformed_utf8_rejected():
    bad = b"\x0c\x00\x00\x00\x02\xff\xfe"
    with pytest.raises(EncodingError):
        der.decode(bad)


def test_unsupported_type_rejected():
    with pytest.raises(EncodingError):
        der.encode(3.14)
    with pytest.raises(EncodingError):
        der.encode({"a": 1})


def test_nested_sequence_lengths():
    nested = [[b"a" * 100] * 5] * 3
    assert der.decode(der.encode(nested)) == nested
