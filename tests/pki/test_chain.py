"""Chain building and validation, including intermediates and CRLs."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import (
    CertificateError,
    CertificateExpired,
    CertificateRevoked,
    UntrustedCertificate,
)
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import KEY_USAGE_CERT_SIGN, KEY_USAGE_CLIENT_AUTH
from repro.pki.chain import build_path, validate_chain
from repro.pki.name import DistinguishedName
from repro.pki.truststore import Truststore


def test_direct_chain_validates(pki):
    path = validate_chain(pki.client_cert, pki.truststore, now=10)
    assert [c.subject.common_name for c in path] == ["client", "Test-CA"]


def test_untrusted_leaf_rejected(pki, rng):
    rogue_ca = CertificateAuthority(DistinguishedName("Rogue"), rng=rng)
    rogue_cert = rogue_ca.issue(
        DistinguishedName("client"), pki.client_cert.public_key_bytes, now=0
    )
    with pytest.raises(UntrustedCertificate):
        validate_chain(rogue_cert, pki.truststore, now=10)


def test_expired_leaf_rejected(pki):
    with pytest.raises(CertificateExpired):
        validate_chain(pki.client_cert, pki.truststore,
                       now=pki.client_cert.not_after + 1)


def test_required_usage_enforced(pki):
    validate_chain(pki.client_cert, pki.truststore, now=10,
                   required_usage=KEY_USAGE_CLIENT_AUTH)
    with pytest.raises(CertificateError):
        validate_chain(pki.client_cert, pki.truststore, now=10,
                       required_usage="server-auth")


def test_crl_blocks_revoked_leaf(pki):
    pki.ca.revoke(pki.client_cert.serial, now=5)
    crl = pki.ca.current_crl(now=6)
    with pytest.raises(CertificateRevoked):
        validate_chain(pki.client_cert, pki.truststore, now=10, crl=crl)
    # The unrevoked server cert still passes with the same CRL.
    validate_chain(pki.server_cert, pki.truststore, now=10, crl=crl)


def test_intermediate_chain(pki, rng):
    # Root -> intermediate CA -> leaf.
    intermediate_key = generate_keypair(rng)
    intermediate = pki.ca.issue(
        DistinguishedName("Intermediate-CA"),
        intermediate_key.public.to_bytes(),
        now=0, is_ca=True, key_usage=(KEY_USAGE_CERT_SIGN,),
    )
    leaf_key = generate_keypair(rng)
    from repro.pki.certificate import Certificate
    from dataclasses import replace

    unsigned = Certificate(
        serial=1000,
        subject=DistinguishedName("deep-leaf"),
        issuer=intermediate.subject,
        public_key_bytes=leaf_key.public.to_bytes(),
        not_before=0,
        not_after=1000,
        key_usage=(KEY_USAGE_CLIENT_AUTH,),
    )
    leaf = replace(unsigned,
                   signature=intermediate_key.sign(unsigned.tbs_bytes()))
    path = validate_chain(leaf, pki.truststore, now=10,
                          intermediates=[intermediate])
    assert len(path) == 3


def test_non_ca_intermediate_rejected(pki, rng):
    # A mere client certificate tries to act as an issuer.
    fake_issuer_key = generate_keypair(rng)
    fake_issuer = pki.ca.issue(
        DistinguishedName("not-a-ca"), fake_issuer_key.public.to_bytes(),
        now=0,
    )
    from repro.pki.certificate import Certificate
    from dataclasses import replace

    unsigned = Certificate(
        serial=2000,
        subject=DistinguishedName("victim"),
        issuer=fake_issuer.subject,
        public_key_bytes=pki.client_cert.public_key_bytes,
        not_before=0,
        not_after=1000,
    )
    leaf = replace(unsigned,
                   signature=fake_issuer_key.sign(unsigned.tbs_bytes()))
    with pytest.raises(CertificateError):
        validate_chain(leaf, pki.truststore, now=10,
                       intermediates=[fake_issuer])


def test_build_path_no_loop(pki, rng):
    # Self-referencing orphan must not loop forever.
    key = generate_keypair(rng)
    from repro.pki.certificate import Certificate
    from dataclasses import replace

    unsigned = Certificate(
        serial=1,
        subject=DistinguishedName("orphan"),
        issuer=DistinguishedName("orphan"),
        public_key_bytes=key.public.to_bytes(),
        not_before=0,
        not_after=10,
    )
    orphan = replace(unsigned, signature=key.sign(unsigned.tbs_bytes()))
    with pytest.raises(UntrustedCertificate):
        build_path(orphan, [orphan], Truststore())
