"""VNF applications: firewall, load balancer, monitor."""

import pytest

from repro.errors import SdnError
from repro.net.address import Address
from repro.sdn.apps import FirewallVnf, LoadBalancerVnf, MonitorVnf
from repro.sdn.controller import FloodlightController
from repro.sdn.flows import Packet
from repro.sdn.northbound import MODE_HTTP, NorthboundEndpoint
from repro.sdn.switch import Switch
from repro.sdn.vnf import VnfRestClient


@pytest.fixture
def world(network):
    ctl = FloodlightController()
    ctl.register_switch(Switch("s1"))
    ctl.topology.attach_host("h1", "s1", 1)
    ctl.topology.attach_host("h2", "s1", 2)
    NorthboundEndpoint(ctl, network, Address("ctl", 8080), MODE_HTTP)
    client = VnfRestClient(network, Address("ctl", 8080), "vnf-host",
                           MODE_HTTP)
    return ctl, client


def test_firewall_blocks_and_unblocks(world):
    ctl, client = world
    firewall = FirewallVnf(client, "s1")
    packet = Packet(eth_src="h1", eth_dst="h2")
    assert ctl.inject_packet("h1", packet) == "delivered"
    name = firewall.block("h1", "h2")
    assert ctl.inject_packet("h1", packet) == "dropped"
    assert firewall.active_blocks == [name]
    firewall.unblock(name)
    assert ctl.inject_packet("h1", packet) == "delivered"
    assert firewall.active_blocks == []


def test_firewall_unblock_unknown(world):
    _, client = world
    with pytest.raises(SdnError):
        FirewallVnf(client, "s1").unblock("ghost")


def test_load_balancer_round_robin(world):
    _, client = world
    lb = LoadBalancerVnf(client, "s1", backend_ports=[5, 6])
    assert lb.assign("client-a") == 5
    assert lb.assign("client-b") == 6
    assert lb.assign("client-c") == 5
    assert lb.assignments["client-b"] == 6


def test_load_balancer_requires_backends(world):
    _, client = world
    with pytest.raises(SdnError):
        LoadBalancerVnf(client, "s1", backend_ports=[])


def test_monitor_polls_and_counts(world):
    ctl, client = world
    monitor = MonitorVnf(client)
    FirewallVnf(client, "s1").block("h1", "h2")
    sample = monitor.poll()
    assert sample["flowsPushed"] == 1
    assert len(monitor.samples) == 1
    assert monitor.flow_count() == 1
