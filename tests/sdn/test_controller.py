"""The controller: reactive forwarding, static flows, data-plane injection."""

import pytest

from repro.errors import FlowError
from repro.sdn.controller import FloodlightController
from repro.sdn.flows import ACTION_DROP, FlowMatch, FlowRule, Packet, output
from repro.sdn.switch import Switch


@pytest.fixture
def controller():
    ctl = FloodlightController()
    s1, s2 = Switch("s1"), Switch("s2")
    ctl.register_switch(s1)
    ctl.register_switch(s2)
    ctl.topology.add_link("s1", 2, "s2", 2)
    ctl.topology.attach_host("h1", "s1", 1)
    ctl.topology.attach_host("h2", "s2", 1)
    return ctl


def test_reactive_forwarding_delivers(controller):
    packet = Packet(eth_src="h1", eth_dst="h2")
    assert controller.inject_packet("h1", packet) == "delivered"
    assert controller.packet_ins_handled == 1
    # Second packet flows through installed rules: no more packet-ins.
    assert controller.inject_packet("h1", packet) == "delivered"
    assert controller.packet_ins_handled == 1


def test_reverse_direction_needs_its_own_flows(controller):
    controller.inject_packet("h1", Packet(eth_src="h1", eth_dst="h2"))
    assert controller.inject_packet(
        "h2", Packet(eth_src="h2", eth_dst="h1")
    ) == "delivered"
    assert controller.packet_ins_handled == 2


def test_unknown_destination_dropped(controller):
    packet = Packet(eth_src="h1", eth_dst="ghost")
    assert controller.inject_packet("h1", packet) == "lost"


def test_static_flow_push_and_delete(controller):
    rule = FlowRule("block", FlowMatch.from_dict({"eth_src": "h1"}),
                    (ACTION_DROP,), priority=900)
    controller.push_flow("s1", rule)
    assert controller.flows_pushed == 1
    assert controller.inject_packet(
        "h1", Packet(eth_src="h1", eth_dst="h2")
    ) == "dropped"
    controller.delete_flow("block")
    assert controller.inject_packet(
        "h1", Packet(eth_src="h1", eth_dst="h2")
    ) == "delivered"


def test_delete_unknown_flow_raises(controller):
    with pytest.raises(FlowError):
        controller.delete_flow("ghost")


def test_static_flows_grouped_by_switch(controller):
    controller.push_flow("s1", FlowRule(
        "a", FlowMatch.from_dict({}), (output(2),)
    ))
    controller.push_flow("s2", FlowRule(
        "b", FlowMatch.from_dict({}), (output(2),)
    ))
    grouped = controller.static_flows()
    assert {dpid: [r.name for r in rules] for dpid, rules in grouped.items()} \
        == {"s1": ["a"], "s2": ["b"]}


def test_summary_counts(controller):
    controller.inject_packet("h1", Packet(eth_src="h1", eth_dst="h2"))
    summary = controller.summary()
    assert summary["switches"] == 2
    assert summary["hosts"] == 2
    assert summary["packetInsHandled"] == 1
    assert summary["version"] == "1.2-model"
