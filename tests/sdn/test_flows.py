"""Flow rules, matches, and table lookup semantics."""

import pytest

from repro.errors import FlowError
from repro.sdn.flows import (
    ACTION_DROP,
    FlowMatch,
    FlowRule,
    FlowTable,
    Packet,
    output,
)

PKT = Packet(eth_src="h1", eth_dst="h2", ip_src="10.0.0.1",
             ip_dst="10.0.0.2", tcp_dst=80)


def test_match_exact_fields():
    match = FlowMatch.from_dict({"eth_src": "h1", "tcp_dst": 80})
    assert match.matches(PKT, in_port=1)
    assert not match.matches(PKT._replace(tcp_dst=443), in_port=1)


def test_match_in_port():
    match = FlowMatch.from_dict({"in_port": 2})
    assert match.matches(PKT, in_port=2)
    assert not match.matches(PKT, in_port=3)


def test_empty_match_is_wildcard():
    assert FlowMatch.from_dict({}).matches(PKT, in_port=9)


def test_unknown_field_rejected():
    with pytest.raises(FlowError):
        FlowMatch.from_dict({"vlan": 10})


def test_rule_validation():
    match = FlowMatch.from_dict({})
    with pytest.raises(FlowError):
        FlowRule("", match, (output(1),))
    with pytest.raises(FlowError):
        FlowRule("r", match, ("teleport:3",))


def test_rule_actions():
    rule = FlowRule("r", FlowMatch.from_dict({}), (output(2), output(5)))
    assert rule.output_ports() == [2, 5]
    assert not rule.drops
    assert FlowRule("d", FlowMatch.from_dict({}), (ACTION_DROP,)).drops


def test_table_priority_wins():
    table = FlowTable()
    table.add(FlowRule("low", FlowMatch.from_dict({}), (output(1),),
                       priority=10))
    table.add(FlowRule("high", FlowMatch.from_dict({"eth_src": "h1"}),
                       (ACTION_DROP,), priority=500))
    assert table.lookup(PKT, 1).name == "high"


def test_table_specificity_breaks_ties():
    table = FlowTable()
    table.add(FlowRule("vague", FlowMatch.from_dict({}), (output(1),),
                       priority=100))
    table.add(FlowRule("precise",
                       FlowMatch.from_dict({"eth_src": "h1",
                                            "eth_dst": "h2"}),
                       (output(2),), priority=100))
    assert table.lookup(PKT, 1).name == "precise"


def test_table_miss_returns_none():
    table = FlowTable()
    table.add(FlowRule("other", FlowMatch.from_dict({"eth_src": "hX"}),
                       (output(1),)))
    assert table.lookup(PKT, 1) is None


def test_table_counts_matches():
    table = FlowTable()
    rule = FlowRule("r", FlowMatch.from_dict({}), (output(1),))
    table.add(rule)
    table.lookup(PKT, 1)
    table.lookup(PKT, 1)
    assert rule.packets_matched == 2


def test_table_replace_and_remove():
    table = FlowTable()
    table.add(FlowRule("r", FlowMatch.from_dict({}), (output(1),)))
    table.add(FlowRule("r", FlowMatch.from_dict({}), (output(9),)))
    assert len(table) == 1
    assert table.lookup(PKT, 1).output_ports() == [9]
    table.remove("r")
    assert "r" not in table
    with pytest.raises(FlowError):
        table.remove("r")
