"""Switches and topology: wiring, path computation, packet pipeline."""

import pytest

from repro.errors import TopologyError
from repro.sdn.flows import ACTION_DROP, FlowMatch, FlowRule, Packet, output
from repro.sdn.switch import Switch
from repro.sdn.topology import Topology

PKT = Packet(eth_src="h1", eth_dst="h2")


@pytest.fixture
def linear_topology():
    """h1 -- s1 -- s2 -- s3 -- h2"""
    topo = Topology()
    for dpid in ("s1", "s2", "s3"):
        topo.add_switch(Switch(dpid))
    topo.add_link("s1", 2, "s2", 1)
    topo.add_link("s2", 2, "s3", 1)
    topo.attach_host("h1", "s1", 1)
    topo.attach_host("h2", "s3", 2)
    return topo


def test_shortest_path(linear_topology):
    assert linear_topology.shortest_path("h1", "h2") == ["s1", "s2", "s3"]


def test_port_toward(linear_topology):
    assert linear_topology.port_toward("s1", "s2") == 2
    assert linear_topology.port_toward("s2", "s1") == 1
    assert linear_topology.port_toward("s3", "h2") == 2


def test_no_path_raises():
    topo = Topology()
    topo.add_switch(Switch("s1"))
    topo.add_switch(Switch("s2"))  # not linked
    topo.attach_host("h1", "s1", 1)
    topo.attach_host("h2", "s2", 1)
    with pytest.raises(TopologyError):
        topo.shortest_path("h1", "h2")


def test_duplicate_dpid_rejected():
    topo = Topology()
    topo.add_switch(Switch("s1"))
    with pytest.raises(TopologyError):
        topo.add_switch(Switch("s1"))


def test_port_reuse_rejected(linear_topology):
    with pytest.raises(TopologyError):
        linear_topology.attach_host("h3", "s1", 1)  # port 1 taken


def test_unknown_lookups(linear_topology):
    with pytest.raises(TopologyError):
        linear_topology.switch("ghost")
    with pytest.raises(TopologyError):
        linear_topology.attachment_point("ghost-host")


def test_switch_forwarding_with_rule():
    switch = Switch("s1")
    switch.connect_port(1, "h1")
    switch.connect_port(2, "h2")
    switch.table.add(FlowRule("fwd", FlowMatch.from_dict({"eth_dst": "h2"}),
                              (output(2),)))
    verdict, ports = switch.process(PKT, in_port=1)
    assert (verdict, ports) == ("forwarded", [2])
    assert switch.packets_seen == 1


def test_switch_drop_rule():
    switch = Switch("s1")
    switch.table.add(FlowRule("block", FlowMatch.from_dict({}),
                              (ACTION_DROP,)))
    verdict, _ = switch.process(PKT, in_port=1)
    assert verdict == "dropped"
    assert switch.packets_dropped == 1


def test_switch_miss_without_controller():
    switch = Switch("s1")
    verdict, _ = switch.process(PKT, in_port=1)
    assert verdict == "no_rule"
    assert switch.table_misses == 1


def test_switch_packet_in_path():
    switch = Switch("s1")
    switch.connect_port(7, "h2")
    calls = []

    def controller(sw, in_port, packet):
        calls.append((sw.dpid, in_port, packet.eth_dst))
        return [output(7)]

    switch.set_packet_in_handler(controller)
    verdict, ports = switch.process(PKT, in_port=1)
    assert (verdict, ports) == ("forwarded", [7])
    assert calls == [("s1", 1, "h2")]


def test_links_listing(linear_topology):
    links = linear_topology.links()
    assert len(links) == 2
    pairs = {frozenset((a, b)) for a, b, _ in links}
    assert frozenset(("s1", "s2")) in pairs
