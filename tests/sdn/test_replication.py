"""Unit tests for the replicated keystore log (repro.sdn.replication)."""

import pytest

from repro.errors import ReplicationError
from repro.sdn.replication import (
    K_ANCHOR,
    K_CREDENTIAL,
    K_DISTRUST,
    K_REVOKE,
    FabricKeystore,
    LogEntry,
    ReplicationLog,
    credential_payload,
    split_credential_payload,
)


def test_log_appends_contiguous_indexes():
    log = ReplicationLog()
    first = log.append(K_ANCHOR, "root", b"cert")
    second = log.append(K_REVOKE, "vnf-1")
    assert (first.index, second.index) == (1, 2)
    assert log.last_index == 2
    assert log.entry(1) == first
    assert log.entries_after(1) == [second]


def test_log_extend_is_idempotent_but_rejects_divergence():
    leader = ReplicationLog()
    entries = [leader.append(K_ANCHOR, "root", b"cert"),
               leader.append(K_REVOKE, "vnf-1")]
    follower = ReplicationLog()
    assert follower.extend(entries) == 2
    # Redelivering the identical suffix is a no-op.
    assert follower.extend(entries) == 2
    # A different entry at an occupied index is divergence, not replay.
    with pytest.raises(ReplicationError, match="divergence"):
        follower.extend([LogEntry(2, K_REVOKE, "vnf-OTHER")])


def test_log_extend_rejects_gaps():
    follower = ReplicationLog()
    with pytest.raises(ReplicationError, match="gap"):
        follower.extend([LogEntry(2, K_REVOKE, "vnf-1")])


def test_wire_round_trip_and_malformed_entries():
    entry = LogEntry(3, K_CREDENTIAL, "vnf-1",
                     credential_payload("host-1", b"der"))
    assert LogEntry.from_wire(entry.to_wire()) == entry
    with pytest.raises(ReplicationError, match="malformed"):
        LogEntry.from_wire({"kind": K_REVOKE})


def test_credential_payload_round_trip():
    payload = credential_payload("nfv-host-1", b"\x00\x01cert")
    assert split_credential_payload(payload) == ("nfv-host-1", b"\x00\x01cert")
    with pytest.raises(ReplicationError):
        credential_payload("bad\x00host", b"x")
    with pytest.raises(ReplicationError):
        split_credential_payload(b"no-separator")


def _apply(keystore, index, kind, subject, payload=b""):
    return keystore.apply(LogEntry(index, kind, subject, payload))


def test_keystore_applies_in_order_and_reports_newly_revoked():
    ks = FabricKeystore()
    assert _apply(ks, 1, K_ANCHOR, "root", b"anchor") == []
    assert _apply(ks, 2, K_CREDENTIAL, "vnf-1",
                  credential_payload("h1", b"c1")) == []
    assert _apply(ks, 3, K_REVOKE, "vnf-1") == ["vnf-1"]
    # Re-revoking is not "newly revoked" — no second fan-out.
    assert _apply(ks, 4, K_REVOKE, "vnf-1") == []
    assert ks.is_revoked("vnf-1")
    assert ks.credential("vnf-1") == b"c1"
    assert ks.anchor("root") == b"anchor"
    assert ks.applied_index == 4


def test_keystore_rejects_out_of_order_apply():
    ks = FabricKeystore()
    with pytest.raises(ReplicationError, match="cannot apply"):
        _apply(ks, 2, K_REVOKE, "vnf-1")
    # Redelivery of an already-applied index is silently ignored.
    _apply(ks, 1, K_ANCHOR, "root", b"a")
    assert _apply(ks, 1, K_ANCHOR, "root", b"a") == []


def test_distrust_host_revokes_homed_credentials_sorted():
    ks = FabricKeystore()
    _apply(ks, 1, K_CREDENTIAL, "vnf-b", credential_payload("h1", b"b"))
    _apply(ks, 2, K_CREDENTIAL, "vnf-a", credential_payload("h1", b"a"))
    _apply(ks, 3, K_CREDENTIAL, "vnf-c", credential_payload("h2", b"c"))
    assert _apply(ks, 4, K_DISTRUST, "h1") == ["vnf-a", "vnf-b"]
    assert ks.is_distrusted("h1")
    assert not ks.is_revoked("vnf-c")
    # Late enrollment on a distrusted host is revoked on arrival.
    assert _apply(ks, 5, K_CREDENTIAL, "vnf-d",
                  credential_payload("h1", b"d")) == ["vnf-d"]


def test_digest_is_state_identical_across_replicas():
    def build(order_hint):
        ks = FabricKeystore()
        _apply(ks, 1, K_ANCHOR, "root", b"anchor")
        _apply(ks, 2, K_CREDENTIAL, "vnf-1", credential_payload("h1", b"c"))
        _apply(ks, 3, K_REVOKE, "vnf-1")
        return ks

    a, b = build(0), build(1)
    assert a.digest() == b.digest()
    _apply(b, 4, K_DISTRUST, "h1")
    assert a.digest() != b.digest()
    assert b.counts()["distrustedHosts"] == 1
