"""Unit tests for the trusted fabric (repro.sdn.fabric)."""

import pytest

from repro.errors import ControllerUnavailable, FabricError
from repro.net.faults import FaultPlan
from repro.net.simnet import Network
from repro.sdn.fabric import TrustedFabric
from repro.sdn.northbound import FABRIC_STATUS_PATH


@pytest.fixture()
def fabric():
    network = Network()
    network.install_faults(FaultPlan())
    return TrustedFabric(network, replica_count=3)


def test_replicated_submit_reaches_every_replica(fabric):
    fabric.anchor_ca("root", b"anchor-cert")
    fabric.submit_credential("vnf-1", b"cert-der", host="h1")
    for replica in fabric.replicas():
        assert replica.log.last_index == 2
        assert replica.keystore.credential("vnf-1") == b"cert-der"
        assert replica.keystore.anchor("root") == b"anchor-cert"
    assert len(set(fabric.keystore_digests().values())) == 1


def test_endpoints_are_homed_round_robin(fabric):
    dpids = fabric.add_endpoints(7)
    assert [fabric.home_of(d) for d in dpids] == [0, 1, 2, 0, 1, 2, 0]
    assert fabric.switch_count() == 7
    with pytest.raises(FabricError):
        fabric.home_of("no-such-switch")


def test_revocation_fans_out_to_every_homed_switch(fabric):
    dpids = fabric.add_endpoints(6)
    fabric.submit_credential("vnf-1", b"cert", host="h1")
    for dpid in dpids:
        assert fabric.open_session(dpid, "vnf-1")
    report = fabric.revoke_vnf("vnf-1")
    assert report.subjects == ["vnf-1"]
    assert report.switches_reached == 6
    assert report.switches_stale == 0
    assert report.total_seconds > 0
    for dpid in dpids:
        assert not fabric.session_resumable(dpid, "vnf-1")
        assert not fabric.open_session(dpid, "vnf-1")
    # Idempotent: a second revocation has nothing new to fan out.
    assert fabric.revoke_vnf("vnf-1").subjects == []


def test_distrust_host_evicts_every_homed_credential(fabric):
    dpids = fabric.add_endpoints(3)
    fabric.submit_credential("vnf-1", b"c1", host="bad-host")
    fabric.submit_credential("vnf-2", b"c2", host="bad-host")
    fabric.submit_credential("vnf-3", b"c3", host="good-host")
    for dpid in dpids:
        assert fabric.open_session(dpid, "vnf-2")
    report = fabric.distrust_host("bad-host")
    assert report.subjects == ["vnf-1", "vnf-2"]
    assert fabric.sessions_for("vnf-2") == []
    assert fabric.open_session(dpids[0], "vnf-3")


def test_failover_elects_next_rank_and_rehomes(fabric):
    dpids = fabric.add_endpoints(9)
    fabric.submit_credential("vnf-1", b"cert", host="h1")
    fabric.crash_replica(0)
    report = fabric.converge()
    assert report.crashed_ranks == [0]
    assert report.live_ranks == [1, 2]
    assert report.new_leader == 1
    assert report.switches_rehomed == 3  # rank 0's share of 9
    assert report.seconds > 0
    assert fabric.leader_rank == 1
    for dpid in dpids:
        assert fabric.home_of(dpid) in (1, 2)
    # Survivors hold identical keystores, and writes keep working.
    assert len(set(fabric.keystore_digests().values())) == 1
    fabric.submit_credential("vnf-2", b"cert2", host="h2")
    assert fabric.replica(1).keystore.credential("vnf-2") == b"cert2"
    assert fabric.replica(2).keystore.credential("vnf-2") == b"cert2"


def test_propose_fails_over_without_converge(fabric):
    fabric.submit_credential("vnf-1", b"cert", host="h1")
    fabric.crash_replica(0)
    # The next write discovers the dead leader and fails over inline.
    fabric.submit_credential("vnf-2", b"cert2", host="h2")
    assert fabric.leader_rank == 1
    assert 0 in fabric.crashed_ranks()
    assert fabric.replica(2).keystore.credential("vnf-2") == b"cert2"


def test_rehomed_switch_learns_missed_revocations(fabric):
    dpids = fabric.add_endpoints(3)
    fabric.submit_credential("vnf-1", b"cert", host="h1")
    victim = dpids[0]  # homed on rank 0
    assert fabric.home_of(victim) == 0
    assert fabric.open_session(victim, "vnf-1")
    fabric.crash_replica(0)
    # Revocation while the switch's home is down: the push cannot reach
    # it, but resumption already fails (no live home to validate with).
    report = fabric.revoke_vnf("vnf-1")
    assert report.switches_stale == 1
    assert not fabric.session_resumable(victim, "vnf-1")
    # After convergence the new home syncs the revocation view.
    fabric.converge()
    assert not fabric.session_resumable(victim, "vnf-1")
    assert not fabric.open_session(victim, "vnf-1")


def test_all_replicas_down_raises(fabric):
    for rank in range(3):
        fabric.crash_replica(rank)
    with pytest.raises(ControllerUnavailable):
        fabric.submit_credential("vnf-1", b"cert", host="h1")
    with pytest.raises(ControllerUnavailable):
        fabric.converge()


def test_status_served_by_every_replica_northbound_hook(fabric):
    fabric.add_endpoints(3)
    fabric.submit_credential("vnf-1", b"cert", host="h1")
    for replica in fabric.replicas():
        status = replica.controller.fabric_status()
        assert status["rank"] == replica.rank
        assert status["replicas"] == 3
        assert status["lastIndex"] == 1
        assert status["switchesHomed"] == 1
        assert status["keystore"]["credentials"] == 1


def test_deployment_fabric_serves_status_over_northbound():
    from repro.core.workflow import Deployment

    deployment = Deployment(seed=b"fabric-nb", vnf_count=1)
    deployment.build_fabric(replica_count=2)
    deployment.enroll_fabric("vnf-1")
    client = deployment.enclave_client("vnf-1")
    status = client.request_json("GET", FABRIC_STATUS_PATH)
    assert status["rank"] == 0
    assert status["replicas"] == 2
    assert status["keystore"]["credentials"] == 1
    fabric = deployment.fabric
    expected = deployment.vm.issued_certificate("vnf-1").to_bytes()
    assert fabric.credential("vnf-1") == expected


def test_fabric_replica_count_validation():
    with pytest.raises(FabricError):
        TrustedFabric(Network(), replica_count=0)
