"""The northbound API in its three security modes."""

import json

import pytest

from repro.errors import ReproError, SdnError
from repro.net.address import Address
from repro.pki.keystore import Keystore
from repro.sdn.controller import FloodlightController
from repro.sdn.northbound import (
    MODE_HTTP,
    MODE_HTTPS,
    MODE_TRUSTED,
    NorthboundEndpoint,
    keystore_validator,
)
from repro.sdn.switch import Switch
from repro.sdn.vnf import VnfRestClient
from repro.tls import TlsConfig


@pytest.fixture
def controller():
    ctl = FloodlightController()
    ctl.register_switch(Switch("s1"))
    ctl.topology.attach_host("h1", "s1", 1)
    ctl.topology.attach_host("h2", "s1", 2)
    return ctl


def tls_config(pki, rng, network, **kwargs):
    return TlsConfig(
        certificate_chain=[pki.server_cert],
        private_key=pki.server_key,
        truststore=pki.truststore,
        rng=rng,
        now=network.clock.now_seconds,
        **kwargs,
    )


def client(network, pki, rng, mode, port, with_cert=True):
    return VnfRestClient(
        network, Address("server", port), "vnf-host", mode,
        truststore=pki.truststore,
        client_chain=[pki.client_cert] if with_cert else None,
        client_key=pki.client_key if with_cert else None,
        rng=rng,
    )


def test_http_mode_serves_anyone(controller, network, pki, rng):
    endpoint = NorthboundEndpoint(controller, network, Address("server", 8080),
                                  MODE_HTTP)
    c = client(network, pki, rng, MODE_HTTP, 8080, with_cert=False)
    assert c.summary()["switches"] == 1
    c.push_flow("s1", "anon-rule", {"eth_src": "h1"}, "drop")
    assert endpoint.unauthenticated_writes == 1


def test_https_mode_authenticates_server_only(controller, network, pki, rng):
    endpoint = NorthboundEndpoint(controller, network, Address("server", 8443),
                                  MODE_HTTPS, tls_config(pki, rng, network))
    c = client(network, pki, rng, MODE_HTTPS, 8443, with_cert=False)
    c.push_flow("s1", "anon-tls-rule", {"eth_src": "h1"}, "drop")
    assert endpoint.unauthenticated_writes == 1


def test_trusted_mode_requires_client_cert(controller, network, pki, rng):
    endpoint = NorthboundEndpoint(controller, network, Address("server", 9443),
                                  MODE_TRUSTED, tls_config(pki, rng, network))
    good = client(network, pki, rng, MODE_TRUSTED, 9443)
    response = good.push_flow("s1", "auth-rule", {"eth_src": "h1"}, "drop")
    assert response["by"] == "client"
    assert endpoint.unauthenticated_writes == 0

    anonymous = client(network, pki, rng, MODE_TRUSTED, 9443, with_cert=False)
    with pytest.raises(ReproError):
        anonymous.summary()


def test_keystore_validation_model(controller, network, pki, rng):
    keystore = Keystore()
    NorthboundEndpoint(
        controller, network, Address("server", 9444), MODE_TRUSTED,
        tls_config(pki, rng, network,
                   client_validator=keystore_validator(keystore)),
    )
    with pytest.raises(ReproError):
        client(network, pki, rng, MODE_TRUSTED, 9444).summary()
    keystore.add_trusted("client", pki.client_cert)
    assert client(network, pki, rng, MODE_TRUSTED, 9444).summary()


def test_routes_and_errors(controller, network, pki, rng):
    NorthboundEndpoint(controller, network, Address("server", 8081),
                       MODE_HTTP)
    c = client(network, pki, rng, MODE_HTTP, 8081, with_cert=False)
    # unknown path
    response = c.request("GET", "/nope")
    assert response.status == 404
    # malformed flow body
    response = c.request("POST", "/wm/staticflowpusher/json", b"{}")
    assert response.status == 400
    # devices and links and switches endpoints
    devices = c.request_json("GET", "/wm/device/")
    assert {d["host"] for d in devices} == {"h1", "h2"}
    assert c.request_json("GET", "/wm/topology/links/json") == []
    switches = c.request_json("GET", "/wm/core/controller/switches/json")
    assert switches[0]["dpid"] == "s1"


def test_flow_listing_via_rest(controller, network, pki, rng):
    NorthboundEndpoint(controller, network, Address("server", 8082),
                       MODE_HTTP)
    c = client(network, pki, rng, MODE_HTTP, 8082, with_cert=False)
    c.push_flow("s1", "listed", {"eth_src": "h1"}, "output:2", priority=42)
    flows = c.list_flows()
    assert flows["s1"][0]["name"] == "listed"
    assert flows["s1"][0]["priority"] == 42
    c.delete_flow("listed")
    assert c.list_flows() == {}


def test_bad_mode_configuration(controller, network, pki, rng):
    with pytest.raises(SdnError):
        NorthboundEndpoint(controller, network, Address("server", 1), "ftp")
    with pytest.raises(SdnError):
        NorthboundEndpoint(controller, network, Address("server", 2),
                           MODE_HTTPS)  # missing TLS config


def test_per_switch_flow_endpoint(controller, network, pki, rng):
    NorthboundEndpoint(controller, network, Address("server", 8083),
                       MODE_HTTP)
    c = client(network, pki, rng, MODE_HTTP, 8083, with_cert=False)
    c.push_flow("s1", "pf", {"eth_src": "h1"}, "output:2")
    stats = c.request_json("GET", "/wm/core/switch/s1/flow/json")
    assert stats["dpid"] == "s1"
    assert stats["flows"][0]["name"] == "pf"
    assert "packetsSeen" in stats
    # Unknown switch -> 400 (TopologyError surfaced); malformed -> 404.
    assert c.request("GET", "/wm/core/switch/ghost/flow/json").status == 400
    assert c.request("GET", "/wm/core/switch//flow/json").status == 404
    assert c.request("POST", "/wm/core/switch/s1/flow/json").status == 404
