"""The baseline VNF REST client: transport management and error paths."""

import pytest

from repro.errors import SdnError
from repro.net.address import Address
from repro.sdn.controller import FloodlightController
from repro.sdn.northbound import MODE_HTTP, MODE_HTTPS, NorthboundEndpoint
from repro.sdn.switch import Switch
from repro.sdn.vnf import ControllerOps, VnfRestClient
from repro.tls import TlsConfig


@pytest.fixture
def served(network, pki, rng):
    controller = FloodlightController()
    controller.register_switch(Switch("s1"))
    NorthboundEndpoint(controller, network, Address("ctl", 8080), MODE_HTTP)
    NorthboundEndpoint(
        controller, network, Address("ctl", 8443), MODE_HTTPS,
        TlsConfig(certificate_chain=[pki.server_cert],
                  private_key=pki.server_key, rng=rng,
                  now=network.clock.now_seconds),
    )
    return controller


def test_persistent_connection_reused(served, network, pki, rng):
    client = VnfRestClient(network, Address("ctl", 8080), "vnf", MODE_HTTP)
    client.summary()
    opened = network.connections_opened
    client.summary()
    client.summary()
    assert network.connections_opened == opened


def test_reconnect_after_close(served, network, pki, rng):
    client = VnfRestClient(network, Address("ctl", 8080), "vnf", MODE_HTTP)
    client.summary()
    client.close()
    opened = network.connections_opened
    assert client.summary()["version"] == "1.2-model"
    assert network.connections_opened == opened + 1


def test_close_is_idempotent(served, network):
    client = VnfRestClient(network, Address("ctl", 8080), "vnf", MODE_HTTP)
    client.close()
    client.close()


def test_https_requires_truststore(served, network):
    with pytest.raises(SdnError):
        VnfRestClient(network, Address("ctl", 8443), "vnf", MODE_HTTPS)


def test_unknown_mode_rejected(served, network):
    with pytest.raises(SdnError):
        VnfRestClient(network, Address("ctl", 8080), "vnf", "gopher")


def test_error_statuses_raise_with_context(served, network):
    client = VnfRestClient(network, Address("ctl", 8080), "vnf", MODE_HTTP)
    with pytest.raises(SdnError) as excinfo:
        client.delete_flow("never-existed")
    assert "400" in str(excinfo.value)


def test_controller_ops_is_abstract():
    with pytest.raises(NotImplementedError):
        ControllerOps().summary()
