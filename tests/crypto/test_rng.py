"""HMAC-DRBG: determinism, seeding, range sampling."""

import pytest

from repro.crypto.rng import HmacDrbg, default_rng, set_default_rng
from repro.errors import EntropyError


def test_same_seed_same_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.random_bytes(64) == b.random_bytes(64)
    assert a.random_bytes(10) == b.random_bytes(10)


def test_different_seeds_differ():
    assert HmacDrbg(b"s1").random_bytes(32) != HmacDrbg(b"s2").random_bytes(32)


def test_personalization_separates():
    assert (HmacDrbg(b"s", b"p1").random_bytes(32)
            != HmacDrbg(b"s", b"p2").random_bytes(32))


def test_empty_seed_rejected():
    with pytest.raises(EntropyError):
        HmacDrbg(b"")


def test_reseed_changes_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    a.random_bytes(16)
    b.random_bytes(16)
    a.reseed(b"fresh entropy")
    assert a.random_bytes(16) != b.random_bytes(16)


def test_reseed_requires_entropy():
    with pytest.raises(EntropyError):
        HmacDrbg(b"seed").reseed(b"")


def test_random_int_in_range():
    rng = HmacDrbg(b"seed")
    for upper in (1, 2, 7, 100, 1 << 62):
        for _ in range(30):
            assert 0 <= rng.random_int(upper) < upper


def test_random_int_rejects_nonpositive():
    rng = HmacDrbg(b"seed")
    with pytest.raises(EntropyError):
        rng.random_int(0)


def test_random_scalar_never_zero():
    rng = HmacDrbg(b"seed")
    for _ in range(50):
        assert 1 <= rng.random_scalar(97) < 97


def test_random_int_covers_small_range():
    rng = HmacDrbg(b"seed")
    seen = {rng.random_int(4) for _ in range(200)}
    assert seen == {0, 1, 2, 3}


def test_negative_length_rejected():
    with pytest.raises(EntropyError):
        HmacDrbg(b"seed").random_bytes(-1)


def test_default_rng_replaceable():
    original = default_rng()
    try:
        fixed = HmacDrbg(b"fixed-for-test")
        set_default_rng(fixed)
        assert default_rng() is fixed
    finally:
        set_default_rng(original)
