"""Fast-path EC engine vs. the reference ladder.

Every fast path (fixed-base comb, single-scalar wNAF, split-scalar dual
ladder) is pinned byte-for-byte against the untouched reference
double-and-add ladder, over DRBG-seeded random scalars plus the
boundary cases ``k in {0, 1, 2, n-1, n, n+1}``.  The validated-point LRU
and the per-point odd-multiples table cache are exercised for hit/miss
accounting, eviction, and the cofactor-1 order-check skip.
"""

import pytest

from repro.crypto.ec import (
    P256,
    Point,
    VALIDATION_CACHE_CAPACITY,
    _wnaf,
)
from repro.crypto.ecdsa import (
    ecdsa_sign,
    ecdsa_verify,
    ecdsa_verify_reference,
)
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import InvalidPoint, InvalidSignature

G = P256.generator
N = P256.n

EDGE_SCALARS = [0, 1, 2, 3, N - 2, N - 1, N, N + 1, N + 2, 2 * N - 1]


def _random_scalars(label: bytes, count: int):
    rng = HmacDrbg(seed=label)
    return [rng.random_scalar(N) for _ in range(count)]


@pytest.fixture(autouse=True)
def _clean_engine():
    """Isolate cache/stat state per test (P256 is a module singleton)."""
    P256.reset_validation_cache()
    P256.reset_point_tables()
    P256.stats.reset()
    yield
    P256.reset_validation_cache()
    P256.reset_point_tables()


def _same(a, b):
    if a is None or b is None:
        return a is None and b is None
    return P256.encode_point(a) == P256.encode_point(b)


# ------------------------------------------------------------------ wNAF


def test_wnaf_reconstructs_scalar():
    for width in (4, 5, 6, 7, 8):
        for k in EDGE_SCALARS + _random_scalars(b"wnaf", 20):
            digits = _wnaf(k, width)
            assert sum(d << i for i, d in enumerate(digits)) == k
            half = 1 << (width - 1)
            for d in digits:
                assert d == 0 or (d % 2 == 1 and -half < d < half)


def test_wnaf_nonzero_digit_spacing():
    for k in _random_scalars(b"wnaf-spacing", 10):
        digits = _wnaf(k, 5)
        nonzero = [i for i, d in enumerate(digits) if d]
        for a, b in zip(nonzero, nonzero[1:]):
            assert b - a >= 5


# ------------------------------------------------- fixed-base comb (k*G)


def test_multiply_generator_matches_reference_random():
    for k in _random_scalars(b"comb", 40):
        assert _same(P256.multiply_generator(k), P256.multiply(k, G))


def test_multiply_generator_matches_reference_edges():
    for k in EDGE_SCALARS:
        assert _same(P256.multiply_generator(k), P256.multiply(k, G))


# --------------------------------------------- single-scalar wNAF (ECDH)


def test_multiply_point_matches_reference():
    q = P256.multiply(0xB00F, G)
    for k in EDGE_SCALARS + _random_scalars(b"wnaf-point", 25):
        assert _same(P256.multiply_point(k, q), P256.multiply(k, q))


def test_multiply_point_infinity_inputs():
    assert P256.multiply_point(5, None) is None
    assert P256.multiply_point(0, G) is None


# ------------------------------------------- split-scalar dual ladder


def test_multiply_dual_matches_reference_random():
    q = P256.multiply(0xDEC0DE, G)
    rng = HmacDrbg(seed=b"dual")
    for _ in range(40):
        u1 = rng.random_scalar(N)
        u2 = rng.random_scalar(N)
        assert _same(P256.multiply_dual(u1, u2, q),
                     P256.multiply_dual_reference(u1, u2, q))


def test_multiply_dual_matches_reference_edges():
    q = P256.multiply(0xFACE, G)
    for u1 in EDGE_SCALARS:
        for u2 in (0, 1, N - 1, N, 0x1234):
            assert _same(P256.multiply_dual(u1, u2, q),
                         P256.multiply_dual_reference(u1, u2, q))


def test_multiply_dual_cancellation():
    # u1*G + u2*Q with Q = m*G and u1 + u2*m = 0 (mod n) hits the
    # P + (-P) branch of the inlined addition and must return infinity.
    m = 0x5EED
    q = P256.multiply(m, G)
    u2 = 7
    u1 = (-u2 * m) % N
    assert P256.multiply_dual(u1, u2, q) is None
    assert P256.multiply_dual_reference(u1, u2, q) is None


def test_multiply_dual_none_point():
    assert _same(P256.multiply_dual(5, 0, None), P256.multiply(5, G))
    assert P256.multiply_dual(0, 0, None) is None


# ------------------------------------------------------ ECDSA agreement


def test_ecdsa_fast_and_reference_verifiers_agree():
    rng = HmacDrbg(seed=b"ecdsa-agree")
    key = generate_keypair(rng)
    for i in range(10):
        message = b"msg-%d" % i
        r, s = ecdsa_sign(key.scalar, message)
        ecdsa_verify(key.public.point, message, (r, s))
        ecdsa_verify_reference(key.public.point, message, (r, s))
        with pytest.raises(InvalidSignature):
            ecdsa_verify(key.public.point, message, ((r ^ 2) or 1, s))
        with pytest.raises(InvalidSignature):
            ecdsa_verify_reference(key.public.point, message,
                                   ((r ^ 2) or 1, s))
        with pytest.raises(InvalidSignature):
            ecdsa_verify(key.public.point, message + b"x", (r, s))


# ------------------------------------------------- validated-point LRU


def test_validate_public_caches_and_counts():
    q = P256.multiply(0xCAFE, G)
    P256.validate_public(q)
    assert P256.stats.validation_cache_misses == 1
    assert P256.stats.validation_cache_hits == 0
    assert P256.stats.order_checks_skipped == 1  # cofactor-1 skip
    P256.validate_public(q)
    P256.validate_public(q)
    assert P256.stats.validation_cache_hits == 2
    assert P256.validation_cache_size == 1


def test_validate_public_rejects_and_never_caches_bad_points():
    bad = Point(1, 1)
    for _ in range(2):
        with pytest.raises(InvalidPoint):
            P256.validate_public(bad)
    assert P256.stats.validation_cache_misses == 2  # no negative caching
    assert P256.validation_cache_size == 0
    with pytest.raises(InvalidPoint):
        P256.validate_public(None)


def test_validate_public_uncached_matches_fast_verdicts():
    good = P256.multiply(99, G)
    assert P256.validate_public_uncached(good) == good
    assert P256.validate_public(good) == good
    with pytest.raises(InvalidPoint):
        P256.validate_public_uncached(Point(2, 3))


def test_validation_cache_evicts_at_capacity():
    original = P256.validation_cache_capacity
    P256.validation_cache_capacity = 4
    try:
        points = [P256.multiply(k, G) for k in range(2, 9)]
        for q in points:
            P256.validate_public(q)
        assert P256.validation_cache_size == 4
        # Oldest entry was evicted: validating it again is a miss.
        misses = P256.stats.validation_cache_misses
        P256.validate_public(points[0])
        assert P256.stats.validation_cache_misses == misses + 1
    finally:
        P256.validation_cache_capacity = original
        P256.reset_validation_cache()
    assert VALIDATION_CACHE_CAPACITY >= 64  # sized for fleet-scale keys


# ------------------------------------------- per-point table LRU


def test_point_table_cache_hits_on_repeat_key():
    q = P256.multiply(0x1DEA, G)
    P256.multiply_dual(3, 5, q)
    assert P256.stats.point_table_misses == 1
    P256.multiply_dual(7, 11, q)
    P256.multiply_dual(13, 17, q)
    assert P256.stats.point_table_hits == 2
    assert P256.stats.point_table_misses == 1


def test_point_table_cache_evicts_at_capacity():
    original = P256.point_table_cache_capacity
    P256.point_table_cache_capacity = 2
    try:
        qs = [P256.multiply(k, G) for k in (21, 22, 23)]
        for q in qs:
            P256.multiply_dual(3, 5, q)
        assert len(P256._point_tables) == 2
        misses = P256.stats.point_table_misses
        P256.multiply_dual(3, 5, qs[0])  # evicted: rebuilds
        assert P256.stats.point_table_misses == misses + 1
    finally:
        P256.point_table_cache_capacity = original
        P256.reset_point_tables()


def test_dual_results_identical_on_hit_and_miss():
    q = P256.multiply(0xF00D, G)
    first = P256.multiply_dual(0x1111, 0x2222, q)   # miss: builds tables
    second = P256.multiply_dual(0x1111, 0x2222, q)  # hit: cached tables
    assert _same(first, second)
    assert _same(first, P256.multiply_dual_reference(0x1111, 0x2222, q))


# -------------------------------------------------------- stats plumbing


def test_stats_snapshot_and_reset():
    P256.multiply_generator(5)
    P256.multiply(5, G)
    snap = P256.stats.snapshot()
    assert snap["generator_mults"] == 1
    assert snap["reference_mults"] == 1
    P256.stats.reset()
    assert all(v == 0 for v in P256.stats.snapshot().values())


def test_decode_point_single_validation():
    # decode_point(validate=False) + validate_public = exactly one
    # on-curve check; the combined path still rejects bad points.
    q = P256.multiply(77, G)
    encoded = P256.encode_point(q)
    decoded = P256.decode_point(encoded, validate=False)
    assert decoded == q
    bad = bytearray(encoded)
    bad[-1] ^= 1
    with pytest.raises(InvalidPoint):
        P256.decode_point(bytes(bad))  # default validates
    lenient = P256.decode_point(bytes(bad), validate=False)
    with pytest.raises(InvalidPoint):
        P256.validate_public(lenient)
