"""Key objects: generation, serialization, sign/verify plumbing."""

import pytest

from repro.crypto.ec import P256
from repro.crypto.keys import (
    EcPrivateKey,
    EcPublicKey,
    ephemeral_pair,
    from_scalar,
    generate_keypair,
)
from repro.errors import InvalidKey, InvalidSignature


def test_generate_produces_valid_pair(rng):
    key = generate_keypair(rng)
    assert 1 <= key.scalar < P256.n
    P256.validate_public(key.public.point)


def test_generation_is_deterministic_per_seed():
    from repro.crypto.rng import HmacDrbg

    a = generate_keypair(HmacDrbg(b"kseed"))
    b = generate_keypair(HmacDrbg(b"kseed"))
    assert a.scalar == b.scalar


def test_sign_verify(rng):
    key = generate_keypair(rng)
    signature = key.sign(b"payload")
    key.public.verify(b"payload", signature)
    with pytest.raises(InvalidSignature):
        key.public.verify(b"other", signature)


def test_public_key_bytes_roundtrip(rng):
    key = generate_keypair(rng)
    encoded = key.public.to_bytes()
    assert EcPublicKey.from_bytes(encoded).point == key.public.point


def test_private_key_bytes_roundtrip(rng):
    key = generate_keypair(rng)
    restored = EcPrivateKey.from_bytes(key.to_bytes())
    assert restored.scalar == key.scalar
    assert restored.public.point == key.public.point


def test_from_scalar_rejects_out_of_range():
    with pytest.raises(InvalidKey):
        from_scalar(0)
    with pytest.raises(InvalidKey):
        from_scalar(P256.n)


def test_fingerprint_is_stable_and_distinct(rng):
    a, b = generate_keypair(rng), generate_keypair(rng)
    assert a.public.fingerprint() == a.public.fingerprint()
    assert a.public.fingerprint() != b.public.fingerprint()
    assert len(a.public.fingerprint()) == 32


def test_ephemeral_pair(rng):
    scalar, point = ephemeral_pair(rng)
    assert P256.multiply_generator(scalar) == point
