"""P-256 group arithmetic: NIST parameters, group laws, serialization."""

import pytest

from repro.crypto.ec import P256, Point
from repro.errors import InvalidPoint

G = P256.generator


def test_generator_is_on_curve():
    assert P256.contains(G)


def test_generator_has_group_order():
    assert P256.multiply(P256.n, G) is None
    assert P256.multiply(P256.n - 1, G) is not None


def test_known_scalar_multiple():
    # 2G for P-256 (published test value).
    double = P256.multiply(2, G)
    assert double.x == int(
        "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
    )
    assert double.y == int(
        "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1", 16
    )


def test_addition_commutes():
    p = P256.multiply(1234, G)
    q = P256.multiply(5678, G)
    assert P256.add(p, q) == P256.add(q, p)


def test_addition_associates():
    p = P256.multiply(3, G)
    q = P256.multiply(11, G)
    r = P256.multiply(29, G)
    assert P256.add(P256.add(p, q), r) == P256.add(p, P256.add(q, r))


def test_double_equals_add_self():
    p = P256.multiply(99, G)
    assert P256.double(p) == P256.add(p, p)


def test_identity_behaviour():
    p = P256.multiply(42, G)
    assert P256.add(p, None) == p
    assert P256.add(None, p) == p
    assert P256.add(p, P256.negate(p)) is None
    assert P256.multiply(0, G) is None


def test_scalar_mult_distributes():
    assert P256.multiply(7, G) == P256.add(P256.multiply(3, G),
                                           P256.multiply(4, G))


def test_scalar_reduced_mod_order():
    assert P256.multiply(5, G) == P256.multiply(5 + P256.n, G)


def test_point_encoding_roundtrip():
    p = P256.multiply(31337, G)
    encoded = P256.encode_point(p)
    assert len(encoded) == 65 and encoded[0] == 0x04
    assert P256.decode_point(encoded) == p


def test_decode_rejects_off_curve():
    p = P256.multiply(7, G)
    bad = bytearray(P256.encode_point(p))
    bad[-1] ^= 1
    with pytest.raises(InvalidPoint):
        P256.decode_point(bytes(bad))


def test_decode_rejects_malformed():
    with pytest.raises(InvalidPoint):
        P256.decode_point(b"\x02" + bytes(64))  # compressed not supported
    with pytest.raises(InvalidPoint):
        P256.decode_point(bytes(65))
    with pytest.raises(InvalidPoint):
        P256.decode_point(b"\x04" + bytes(32))


def test_validate_public_rejects_infinity_and_off_curve():
    with pytest.raises(InvalidPoint):
        P256.validate_public(None)
    with pytest.raises(InvalidPoint):
        P256.validate_public(Point(1, 1))
