"""AES-GCM: NIST GCM spec test cases and AEAD semantics."""

import pytest

from repro.crypto.gcm import AesGcm, NONCE_SIZE, TAG_SIZE
from repro.errors import CryptoError, InvalidTag

# NIST GCM revised spec, test case 3/4 material.
KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
IV = bytes.fromhex("cafebabefacedbaddecaf888")
PLAINTEXT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
)
AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


def test_nist_case_1_empty_everything():
    aead = AesGcm(bytes(16))
    out = aead.encrypt(bytes(12), b"")
    assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_nist_case_3_no_aad():
    out = AesGcm(KEY).encrypt(IV, PLAINTEXT)
    assert out[:-TAG_SIZE].hex() == (
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
    )
    assert out[-TAG_SIZE:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"


def test_nist_case_4_with_aad():
    out = AesGcm(KEY).encrypt(IV, PLAINTEXT[:-4], AAD)
    assert out[-TAG_SIZE:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"


def test_roundtrip_various_lengths(rng):
    aead = AesGcm(rng.random_bytes(16))
    for length in (0, 1, 15, 16, 17, 64, 255, 1000):
        nonce = rng.random_bytes(NONCE_SIZE)
        plaintext = rng.random_bytes(length)
        aad = rng.random_bytes(length % 32)
        assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext, aad),
                            aad) == plaintext


def test_tamper_detection(rng):
    aead = AesGcm(rng.random_bytes(16))
    nonce = rng.random_bytes(NONCE_SIZE)
    sealed = bytearray(aead.encrypt(nonce, b"secret payload", b"aad"))
    for index in (0, len(sealed) // 2, len(sealed) - 1):
        tampered = bytearray(sealed)
        tampered[index] ^= 0x01
        with pytest.raises(InvalidTag):
            aead.decrypt(nonce, bytes(tampered), b"aad")


def test_wrong_aad_rejected(rng):
    aead = AesGcm(rng.random_bytes(16))
    nonce = rng.random_bytes(NONCE_SIZE)
    sealed = aead.encrypt(nonce, b"payload", b"right")
    with pytest.raises(InvalidTag):
        aead.decrypt(nonce, sealed, b"wrong")


def test_wrong_nonce_rejected(rng):
    aead = AesGcm(rng.random_bytes(16))
    sealed = aead.encrypt(bytes(12), b"payload")
    with pytest.raises(InvalidTag):
        aead.decrypt(b"\x01" + bytes(11), sealed)


def test_wrong_key_rejected(rng):
    nonce = rng.random_bytes(NONCE_SIZE)
    sealed = AesGcm(rng.random_bytes(16)).encrypt(nonce, b"payload")
    with pytest.raises(InvalidTag):
        AesGcm(rng.random_bytes(16)).decrypt(nonce, sealed)


def test_bad_nonce_size_rejected():
    aead = AesGcm(bytes(16))
    with pytest.raises(CryptoError):
        aead.encrypt(bytes(11), b"x")
    with pytest.raises(CryptoError):
        aead.decrypt(bytes(13), bytes(16))


def test_short_ciphertext_rejected():
    aead = AesGcm(bytes(16))
    with pytest.raises(InvalidTag):
        aead.decrypt(bytes(12), b"short")


def test_aes256_gcm_roundtrip(rng):
    aead = AesGcm(rng.random_bytes(32))
    nonce = rng.random_bytes(NONCE_SIZE)
    assert aead.decrypt(nonce, aead.encrypt(nonce, b"msg")) == b"msg"
