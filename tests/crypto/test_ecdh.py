"""ECDH: agreement, validation of peer points, NIST CAVP vector."""

import pytest

from repro.crypto.ec import P256, Point
from repro.crypto.ecdh import ecdh_shared_secret
from repro.crypto.keys import generate_keypair
from repro.errors import InvalidKey, InvalidPoint


def test_shared_secret_agreement(rng):
    alice = generate_keypair(rng)
    bob = generate_keypair(rng)
    assert (ecdh_shared_secret(alice.scalar, bob.public.point)
            == ecdh_shared_secret(bob.scalar, alice.public.point))


def test_nist_cavp_vector():
    # NIST CAVP ECDH KAT (P-256, COUNT=0).
    peer = Point(
        0x700C48F77F56584C5CC632CA65640DB91B6BACCE3A4DF6B42CE7CC838833D287,
        0xDB71E509E3FD9B060DDB20BA5C51DCC5948D46FBF640DFE0441782CAB85FA4AC,
    )
    private = 0x7D7DC5F71EB29DDAF80D6214632EEAE03D9058AF1FB6D22ED80BADB62BC1A534
    expected = "46fc62106420ff012e54a434fbdd2d25ccc5852060561e68040dd7778997bd7b"
    assert ecdh_shared_secret(private, peer).hex() == expected


def test_rejects_off_curve_point(rng):
    key = generate_keypair(rng)
    with pytest.raises(InvalidPoint):
        ecdh_shared_secret(key.scalar, Point(123, 456))


def test_rejects_bad_private_scalar(rng):
    peer = generate_keypair(rng)
    with pytest.raises(InvalidKey):
        ecdh_shared_secret(0, peer.public.point)
    with pytest.raises(InvalidKey):
        ecdh_shared_secret(P256.n, peer.public.point)


def test_secret_is_fixed_width(rng):
    a, b = generate_keypair(rng), generate_keypair(rng)
    assert len(ecdh_shared_secret(a.scalar, b.public.point)) == 32
