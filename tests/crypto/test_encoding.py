"""Encoding helpers: integers, hex, base64, XOR."""

import base64

import pytest

from repro.crypto.encoding import (
    b64_decode,
    b64_encode,
    bytes_to_int,
    hex_decode,
    hex_encode,
    int_to_bytes,
    int_to_min_bytes,
    xor_bytes,
)
from repro.errors import EncodingError


def test_int_roundtrip():
    for value in (0, 1, 255, 256, 1 << 63, 1 << 200):
        length = max(1, (value.bit_length() + 7) // 8)
        assert bytes_to_int(int_to_bytes(value, length)) == value


def test_int_to_bytes_fixed_width():
    assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"


def test_int_to_bytes_rejects_overflow_and_negative():
    with pytest.raises(EncodingError):
        int_to_bytes(256, 1)
    with pytest.raises(EncodingError):
        int_to_bytes(-1, 4)


def test_int_to_min_bytes():
    assert int_to_min_bytes(0) == b"\x00"
    assert int_to_min_bytes(255) == b"\xff"
    assert int_to_min_bytes(256) == b"\x01\x00"


def test_hex_roundtrip():
    data = bytes(range(256))
    assert hex_decode(hex_encode(data)) == data


def test_hex_decode_rejects_garbage():
    with pytest.raises(EncodingError):
        hex_decode("zz")


@pytest.mark.parametrize("length", list(range(0, 20)) + [63, 64, 65, 1000])
def test_b64_matches_stdlib(length, rng):
    data = rng.random_bytes(length)
    assert b64_encode(data) == base64.b64encode(data).decode()
    assert b64_decode(b64_encode(data)) == data


def test_b64_decode_rejects_bad_input():
    with pytest.raises(EncodingError):
        b64_decode("abc")  # bad length
    with pytest.raises(EncodingError):
        b64_decode("ab!=")  # bad character


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(EncodingError):
        xor_bytes(b"\x00", b"\x00\x00")
