"""Constant-time helpers."""

from repro.crypto.constant_time import ct_bytes_eq, ct_select


def test_ct_bytes_eq_equal():
    assert ct_bytes_eq(b"", b"")
    assert ct_bytes_eq(b"abc", b"abc")
    assert ct_bytes_eq(bytes(1000), bytes(1000))


def test_ct_bytes_eq_unequal():
    assert not ct_bytes_eq(b"abc", b"abd")
    assert not ct_bytes_eq(b"abc", b"ab")
    assert not ct_bytes_eq(b"\x00", b"\x01")


def test_ct_select():
    assert ct_select(True, 7, 9) == 7
    assert ct_select(False, 7, 9) == 9
    assert ct_select(True, 0, -1) == 0
    assert ct_select(False, 0, -1) == -1
