"""AES: FIPS 197 known-answer tests, round trips, key schedule sanity."""

import pytest

from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.errors import InvalidKey

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key_hex,expected_hex", FIPS_VECTORS)
def test_fips197_encrypt(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(FIPS_PLAINTEXT).hex() == expected_hex


@pytest.mark.parametrize("key_hex,expected_hex", FIPS_VECTORS)
def test_fips197_decrypt(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(expected_hex)) == FIPS_PLAINTEXT


def test_sbox_derivation_properties():
    # The derived S-box must be a permutation with the known fixed points.
    assert sorted(SBOX) == list(range(256))
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_roundtrip_random_blocks(key_size, rng):
    cipher = AES(rng.random_bytes(key_size))
    for _ in range(20):
        block = rng.random_bytes(16)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_rounds_by_key_size():
    assert AES(bytes(16)).rounds == 10
    assert AES(bytes(24)).rounds == 12
    assert AES(bytes(32)).rounds == 14


def test_invalid_key_sizes_rejected():
    for size in (0, 8, 15, 17, 33, 64):
        with pytest.raises(InvalidKey):
            AES(bytes(size))


def test_invalid_block_sizes_rejected():
    cipher = AES(bytes(16))
    with pytest.raises(InvalidKey):
        cipher.encrypt_block(bytes(15))
    with pytest.raises(InvalidKey):
        cipher.decrypt_block(bytes(17))


def test_single_bit_key_change_diffuses(rng):
    key = rng.random_bytes(16)
    flipped = bytes([key[0] ^ 1]) + key[1:]
    block = bytes(16)
    a = AES(key).encrypt_block(block)
    b = AES(flipped).encrypt_block(block)
    differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing_bits > 30  # avalanche: ~64 expected
