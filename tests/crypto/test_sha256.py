"""SHA-256: FIPS 180-4 known-answer tests and backend agreement."""

import pytest

from repro.crypto.sha256 import SHA256, sha256

FIPS_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


@pytest.mark.parametrize("backend", ["hashlib", "pure"])
@pytest.mark.parametrize("message,expected", FIPS_VECTORS)
def test_fips_vectors(backend, message, expected):
    assert sha256(message, backend=backend).hex() == expected


@pytest.mark.parametrize("backend", ["hashlib", "pure"])
def test_incremental_equals_oneshot(backend):
    h = SHA256(backend=backend)
    for chunk in (b"hello ", b"", b"world", b"!" * 200):
        h.update(chunk)
    assert h.digest() == sha256(b"hello world" + b"!" * 200, backend=backend)


def test_digest_does_not_finalize_pure_state():
    h = SHA256(b"abc", backend="pure")
    first = h.digest()
    assert h.digest() == first  # repeatable
    h.update(b"def")
    assert h.digest() == sha256(b"abcdef", backend="pure")


def test_copy_is_independent():
    h = SHA256(b"prefix", backend="pure")
    clone = h.copy()
    h.update(b"-left")
    clone.update(b"-right")
    assert h.digest() == sha256(b"prefix-left", backend="pure")
    assert clone.digest() == sha256(b"prefix-right", backend="pure")


def test_hexdigest_matches_digest():
    h = SHA256(b"xyz")
    assert h.hexdigest() == h.digest().hex()


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        SHA256(backend="md5")


@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
def test_backend_agreement_at_padding_boundaries(length):
    message = b"\x5a" * length
    assert sha256(message, backend="pure") == sha256(message, backend="hashlib")


def test_streaming_buffer_holds_only_the_subblock_tail():
    # The linear-time update keeps at most one partial block buffered:
    # full blocks are compressed straight out of the incoming data, so a
    # long message absorbed in many small updates never accumulates.
    h = SHA256(backend="pure")
    for i in range(300):
        h.update(bytes([i & 0xFF]) * 7)   # 2100 bytes, 7 at a time
        assert len(h._buffer) < SHA256.block_size
    reference = sha256(
        b"".join(bytes([i & 0xFF]) * 7 for i in range(300)), backend="pure"
    )
    assert h.digest() == reference


@pytest.mark.parametrize("chunk_size", [1, 63, 64, 65, 256])
def test_streaming_chunk_sizes_agree(chunk_size):
    message = bytes(range(256)) * 5
    h = SHA256(backend="pure")
    for start in range(0, len(message), chunk_size):
        h.update(message[start:start + chunk_size])
    assert h.digest() == sha256(message, backend="hashlib")
