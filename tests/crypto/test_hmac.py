"""HMAC-SHA256: RFC 4231 vectors and interface behaviour."""

import pytest

from repro.crypto.hmac import HmacSha256, hmac_sha256

RFC4231_VECTORS = [
    # (key, data, expected mac)
    (b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"),
    (b"Jefe", b"what do ya want for nothing?",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"),
    (b"\xaa" * 20, b"\xdd" * 50,
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"),
    (bytes(range(1, 26)), b"\xcd" * 50,
     "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"),
    (b"\xaa" * 131, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"),
]


@pytest.mark.parametrize("key,data,expected", RFC4231_VECTORS)
def test_rfc4231_vectors(key, data, expected):
    assert hmac_sha256(key, data).hex() == expected


def test_incremental_equals_oneshot():
    mac = HmacSha256(b"key")
    mac.update(b"part one ")
    mac.update(b"part two")
    assert mac.digest() == hmac_sha256(b"key", b"part one part two")


def test_verify_accepts_and_rejects():
    mac = HmacSha256(b"key", b"message")
    tag = mac.digest()
    assert HmacSha256(b"key", b"message").verify(tag)
    assert not HmacSha256(b"key", b"message").verify(tag[:-1] + b"\x00")
    assert not HmacSha256(b"other", b"message").verify(tag)


def test_copy_is_independent():
    mac = HmacSha256(b"key", b"common")
    clone = mac.copy()
    mac.update(b"-a")
    clone.update(b"-b")
    assert mac.digest() == hmac_sha256(b"key", b"common-a")
    assert clone.digest() == hmac_sha256(b"key", b"common-b")


def test_key_longer_than_block_is_hashed():
    long_key = b"\xaa" * 200
    from repro.crypto.sha256 import sha256

    assert hmac_sha256(long_key, b"m") == hmac_sha256(sha256(long_key), b"m")


def test_different_keys_different_macs():
    assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")
