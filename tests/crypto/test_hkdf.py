"""HKDF: RFC 5869 test cases and error handling."""

import pytest

from repro.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.errors import CryptoError


def test_rfc5869_case_1():
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_rfc5869_case_3_empty_salt_and_info():
    ikm = bytes.fromhex("0b" * 22)
    okm = hkdf(ikm, b"", b"", 42)
    assert okm.hex() == (
        "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_output_length_is_exact():
    for length in (1, 16, 31, 32, 33, 64, 255):
        assert len(hkdf(b"ikm", b"salt", b"info", length)) == length


def test_different_info_separates_domains():
    assert hkdf(b"ikm", b"s", b"a", 32) != hkdf(b"ikm", b"s", b"b", 32)


def test_rejects_bad_lengths():
    with pytest.raises(CryptoError):
        hkdf(b"ikm", b"", b"", 0)
    with pytest.raises(CryptoError):
        hkdf(b"ikm", b"", b"", 255 * 32 + 1)
