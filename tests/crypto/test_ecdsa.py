"""ECDSA: RFC 6979 deterministic vectors, verification, malleability."""

import pytest

from repro.crypto.ecdsa import (
    ecdsa_sign,
    ecdsa_verify,
    signature_from_bytes,
    signature_to_bytes,
)
from repro.crypto.keys import from_scalar
from repro.errors import InvalidSignature

# RFC 6979 appendix A.2.5 (P-256, SHA-256).
RFC6979_KEY = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
RFC6979_VECTORS = [
    (b"sample",
     0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716,
     0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8),
    (b"test",
     0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367,
     0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083),
]


@pytest.mark.parametrize("message,r,s", RFC6979_VECTORS)
def test_rfc6979_vectors(message, r, s):
    assert ecdsa_sign(RFC6979_KEY, message) == (r, s)


def test_sign_verify_roundtrip(rng):
    key = from_scalar(0x1234567890ABCDEF)
    signature = ecdsa_sign(key.scalar, b"hello world")
    ecdsa_verify(key.public.point, b"hello world", signature)


def test_verify_rejects_wrong_message():
    key = from_scalar(12345)
    signature = ecdsa_sign(key.scalar, b"message A")
    with pytest.raises(InvalidSignature):
        ecdsa_verify(key.public.point, b"message B", signature)


def test_verify_rejects_wrong_key():
    key_a, key_b = from_scalar(111), from_scalar(222)
    signature = ecdsa_sign(key_a.scalar, b"msg")
    with pytest.raises(InvalidSignature):
        ecdsa_verify(key_b.public.point, b"msg", signature)


def test_verify_rejects_out_of_range_components():
    key = from_scalar(333)
    from repro.crypto.ec import P256

    with pytest.raises(InvalidSignature):
        ecdsa_verify(key.public.point, b"msg", (0, 1))
    with pytest.raises(InvalidSignature):
        ecdsa_verify(key.public.point, b"msg", (1, P256.n))


def test_signing_is_deterministic():
    key = from_scalar(444)
    assert ecdsa_sign(key.scalar, b"m") == ecdsa_sign(key.scalar, b"m")


def test_different_messages_different_nonces():
    key = from_scalar(555)
    r1, _ = ecdsa_sign(key.scalar, b"m1")
    r2, _ = ecdsa_sign(key.scalar, b"m2")
    assert r1 != r2  # distinct deterministic nonces


def test_signature_bytes_roundtrip():
    key = from_scalar(666)
    signature = ecdsa_sign(key.scalar, b"m")
    encoded = signature_to_bytes(signature)
    assert len(encoded) == 64
    assert signature_from_bytes(encoded) == signature


def test_signature_bytes_rejects_bad_length():
    with pytest.raises(InvalidSignature):
        signature_from_bytes(bytes(63))


def test_tampered_signature_rejected():
    key = from_scalar(777)
    encoded = bytearray(signature_to_bytes(ecdsa_sign(key.scalar, b"m")))
    encoded[10] ^= 0x40
    with pytest.raises(InvalidSignature):
        ecdsa_verify(key.public.point, b"m", signature_from_bytes(bytes(encoded)))
