"""Failure injection: the system must fail *closed* and with clean errors."""

import pytest

from repro.core import Deployment
from repro.errors import (
    AttestationFailed,
    ConnectionRefused,
    EnclaveLifecycleError,
    IasError,
    ReproError,
    VnfSgxError,
)


def test_ias_unreachable_blocks_enrollment():
    deployment = Deployment(seed=b"fail-ias", vnf_count=1)
    deployment.network.stop_listening(deployment.ias_http.address)
    with pytest.raises(ConnectionRefused):
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)
    assert not deployment.vm.host_trusted(deployment.host.name)
    assert not deployment.credential_enclaves["vnf-1"].has_credentials()


def test_controller_down_surfaces_cleanly():
    deployment = Deployment(seed=b"fail-ctl", vnf_count=1)
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    deployment.vm.enroll_vnf(deployment.agent_client, deployment.host.name,
                             "vnf-1", str(deployment.controller_address()))
    deployment.network.stop_listening(deployment.controller_address())
    with pytest.raises(ConnectionRefused):
        deployment.enclave_client("vnf-1").summary()


def test_agent_down_blocks_attestation():
    deployment = Deployment(seed=b"fail-agent", vnf_count=1)
    deployment.network.stop_listening(deployment.agent.address)
    with pytest.raises(ConnectionRefused):
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)


def test_destroyed_enclave_cannot_serve():
    deployment = Deployment(seed=b"fail-destroy", vnf_count=1)
    deployment.enroll("vnf-1")
    deployment.host.platform.destroy_enclave(
        deployment.credential_enclaves["vnf-1"].enclave
    )
    with pytest.raises(EnclaveLifecycleError):
        deployment.enclave_client("vnf-1").summary()


def test_enclave_destroyed_mid_provisioning():
    deployment = Deployment(seed=b"fail-mid", vnf_count=1)
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    # Kill the enclave between attestation and provisioning: the host
    # agent surfaces the failure, the VM refuses to record an enrolment.
    deployment.host.platform.destroy_enclave(
        deployment.credential_enclaves["vnf-1"].enclave
    )
    with pytest.raises(VnfSgxError):
        deployment.vm.enroll_vnf(
            deployment.agent_client, deployment.host.name, "vnf-1",
            str(deployment.controller_address()),
        )
    with pytest.raises(VnfSgxError):
        deployment.vm.issued_certificate("vnf-1")


def test_corrupted_avr_rejected():
    deployment = Deployment(seed=b"fail-avr", vnf_count=1)

    # A middlebox mangles IAS's verdicts: signature check must catch it.
    original = deployment.ias.verify_quote

    def corrupting(quote_bytes, nonce=""):
        import dataclasses

        avr = original(quote_bytes, nonce)
        return dataclasses.replace(avr, quote_status="OK" if
                                   avr.quote_status != "OK" else
                                   "KEY_REVOKED")

    deployment.ias.verify_quote = corrupting
    with pytest.raises((IasError, ReproError)):
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)


def test_replayed_host_evidence_rejected():
    deployment = Deployment(seed=b"fail-replay", vnf_count=1)
    # Record genuine evidence for nonce A, replay it for the VM's nonce B.
    recorded = deployment.agent_client.attest_host(
        b"A" * 16, deployment.vm.policy.basename
    )

    class ReplayingAgent:
        def attest_host(self, nonce, basename):
            return recorded  # stale evidence

    with pytest.raises(AttestationFailed) as excinfo:
        deployment.vm.attest_host(ReplayingAgent(), deployment.host.name)
    assert "bind" in str(excinfo.value)


def test_half_open_agent_channel_recovers():
    deployment = Deployment(seed=b"fail-halfopen", vnf_count=1)
    deployment.agent_client.attest_host(b"\x01" * 16, b"b")
    deployment.agent_client._channel.close()
    # The stub reconnects transparently.
    evidence = deployment.agent_client.attest_host(b"\x02" * 16, b"b")
    assert evidence.quote is not None
