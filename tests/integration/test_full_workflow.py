"""Figure 1 end to end, on one shared enrolled deployment."""

from repro.core import events as ev


def test_both_vnfs_enrolled(shared_deployment):
    for vnf_name in shared_deployment.vnf_names:
        assert shared_deployment.credential_enclaves[vnf_name].has_credentials()


def test_audit_trail_complete(shared_deployment):
    counts = shared_deployment.vm.audit.counts()
    assert counts[ev.EVENT_HOST_ATTESTED] == 2   # once per enrolment
    assert counts[ev.EVENT_VNF_ATTESTED] == 2
    assert counts[ev.EVENT_CREDENTIAL_ISSUED] == 2
    assert counts[ev.EVENT_CREDENTIAL_PROVISIONED] == 2


def test_vnfs_hold_distinct_credentials(shared_deployment):
    cert_1 = shared_deployment.vm.issued_certificate("vnf-1")
    cert_2 = shared_deployment.vm.issued_certificate("vnf-2")
    assert cert_1.serial != cert_2.serial
    assert cert_1.public_key_bytes != cert_2.public_key_bytes


def test_vnfs_operate_concurrently(shared_deployment):
    client_1 = shared_deployment.enclave_client("vnf-1")
    client_2 = shared_deployment.enclave_client("vnf-2")
    client_1.push_flow("00:00:01", "int-a", {"eth_src": "h1"}, "output:3")
    client_2.push_flow("00:00:02", "int-b", {"eth_src": "h2"}, "output:3")
    flows = client_1.list_flows()
    assert "int-a" in [r["name"] for r in flows.get("00:00:01", [])]
    assert "int-b" in [r["name"] for r in flows.get("00:00:02", [])]
    client_1.delete_flow("int-a")
    client_2.delete_flow("int-b")


def test_flows_pushed_by_vnf_affect_data_plane(shared_deployment):
    from repro.sdn.flows import Packet

    controller = shared_deployment.controller
    client = shared_deployment.enclave_client("vnf-1")
    packet = Packet(eth_src="h1", eth_dst="h2")
    assert controller.inject_packet("h1", packet) == "delivered"
    client.push_flow("00:00:01", "int-block",
                     {"eth_src": "h1", "eth_dst": "h2"}, "drop",
                     priority=900)
    assert controller.inject_packet("h1", packet) == "dropped"
    client.delete_flow("int-block")


def test_iml_covers_os_and_containers(shared_deployment):
    paths = {entry.path for entry in shared_deployment.host.ima.iml}
    assert "/usr/bin/dockerd" in paths
    assert any("/usr/bin/vnf" in path for path in paths)


def test_ias_saw_all_quotes(shared_deployment):
    # 1 host + 1 VNF quote per enrolment, for two enrolments.
    assert shared_deployment.ias.quotes_verified >= 4


def test_simulated_time_advanced(shared_deployment):
    assert shared_deployment.clock.now() > 0
    charges = shared_deployment.clock.charges()
    assert charges.get("network", 0) > 0
    assert charges.get("enclave-transitions", 0) > 0
