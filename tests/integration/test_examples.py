"""Every shipped example must run to completion."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip()  # every example narrates what it demonstrated


def test_all_examples_discovered():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "attest_and_enroll", "compromised_host",
            "credential_revocation", "controller_security_modes",
            "sealed_credentials", "fleet_operations"} <= names
