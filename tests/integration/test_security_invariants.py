"""The DESIGN.md security invariants I1-I7, each tested by direct attack."""

import pytest

from repro.core import Deployment
from repro.errors import (
    AttestationFailed,
    EnclaveMemoryViolation,
    ReproError,
    SealingError,
)


def test_i1_private_keys_unreadable_from_outside(shared_deployment):
    """I1: provisioned keys are unreachable across the enclave boundary."""
    enclave = shared_deployment.credential_enclaves["vnf-1"].enclave
    with pytest.raises(EnclaveMemoryViolation):
        enclave.memory.read("bundle")
    with pytest.raises(EnclaveMemoryViolation):
        list(enclave.memory.keys())


def test_i2_session_keys_never_cross_ocalls(shared_deployment):
    """I2: the OCALL surface carries only addresses and raw (encrypted)
    channel traffic — never key material."""
    client = shared_deployment.enclave_client("vnf-1")
    client.close()

    leaked = []
    enclave = shared_deployment.credential_enclaves["vnf-1"].enclave
    behavior = enclave._behavior
    original = behavior._open_channel

    def spying_open(address):
        leaked.append(address)
        return original(address)

    behavior._open_channel = spying_open
    try:
        client.summary()
    finally:
        behavior._open_channel = original
    # The only OCALL payload is the controller address string.
    assert leaked == [str(shared_deployment.controller_address())]


def test_i3_tampered_enclave_never_verifies():
    """I3: a quote over the wrong MRENCLAVE is rejected by the VM."""
    deployment = Deployment(seed=b"inv-3", vnf_count=1)
    # Swap the credential enclave for a tampered image, fully relaunched
    # (host colludes), then try to enrol it.
    from repro.core.credential_enclave import (
        CredentialEnclave,
        credential_enclave_image,
    )

    image = credential_enclave_image(deployment.network,
                                     deployment.host.name)
    tampered = image.tampered(b"# backdoor\n")
    rogue = CredentialEnclave(deployment.host, deployment.vendor_key,
                              deployment.network, "vnf-1", image=tampered)
    deployment.agent.register_vnf(rogue)  # replaces the honest registration
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    with pytest.raises(AttestationFailed) as excinfo:
        deployment.vm.attest_vnf(deployment.agent_client,
                                 deployment.host.name, "vnf-1")
    assert "MRENCLAVE" in str(excinfo.value)


def test_i4_revoked_platform_cannot_reenroll():
    """I4: once the EPID key is on the PrivRL, every attestation fails."""
    deployment = Deployment(seed=b"inv-4", vnf_count=1)
    deployment.enroll("vnf-1")
    deployment.ias.revoke_platform(deployment.host.name)
    with pytest.raises(AttestationFailed):
        deployment.vm.attest_host(deployment.agent_client,
                                  deployment.host.name)


def test_i5_unattested_vnf_gets_nothing():
    """I5: no credentials without attestation; no controller access
    without credentials."""
    deployment = Deployment(seed=b"inv-5", vnf_count=1)
    enclave = deployment.credential_enclaves["vnf-1"]
    assert not enclave.has_credentials()
    with pytest.raises(ReproError):
        enclave.client.summary()
    anonymous = deployment.baseline_client(mode="trusted-https")
    with pytest.raises(ReproError):
        anonymous.summary()


def test_i6_sealed_credentials_bound_to_identity_and_platform():
    """I6: sealed blobs fail on another platform or another enclave."""
    deployment = Deployment(seed=b"inv-6", vnf_count=1)
    deployment.enroll("vnf-1")
    sealed = deployment.credential_enclaves["vnf-1"].seal_credentials()

    other = Deployment(seed=b"inv-6-other", vnf_count=1)
    with pytest.raises(SealingError):
        other.credential_enclaves["vnf-1"].restore_credentials(sealed)

    # Different enclave identity on the *same* platform: a modified
    # credential-enclave build derives a different sealing key.
    from repro.core.credential_enclave import (
        CredentialEnclave,
        credential_enclave_image,
    )

    image = credential_enclave_image(deployment.network,
                                     deployment.host.name)
    lookalike = CredentialEnclave(deployment.host, deployment.vendor_key,
                                  deployment.network, "vnf-1-lookalike",
                                  image=image.tampered(b"# patched\n"))
    with pytest.raises(SealingError):
        lookalike.restore_credentials(sealed)


def test_i7_iml_tampering_detected():
    """I7: edits, deletions, reordering are caught; consistent rewrites are
    caught only with the TPM (paper §4)."""
    deployment = Deployment(seed=b"inv-7", vnf_count=1)
    deployment.enroll("vnf-1")
    deployment.host.tamper_file("/usr/bin/dockerd", b"evil")
    result = deployment.vm.attest_host(deployment.agent_client,
                                       deployment.host.name)
    assert not result.trustworthy

    # Inconsistent in-place edit (aggregate not rewritten).
    deployment_2 = Deployment(seed=b"inv-7b", vnf_count=1)
    from repro.crypto.sha256 import sha256

    deployment_2.host.tamper_iml("/usr/bin/dockerd", sha256(b"fake"),
                                 make_consistent=False)
    result_2 = deployment_2.vm.attest_host(deployment_2.agent_client,
                                           deployment_2.host.name)
    assert not result_2.trustworthy
    assert any("inconsistent" in f or "mismatch" in f
               for f in result_2.failures)

    # Consistent rewrite with TPM: caught via hardware PCR.
    deployment_3 = Deployment(seed=b"inv-7c", vnf_count=1, with_tpm=True)
    deployment_3.host.tamper_file("/usr/bin/dockerd", b"evil")
    deployment_3.host.hide_measurement("/usr/bin/dockerd")
    result_3 = deployment_3.vm.attest_host(deployment_3.agent_client,
                                           deployment_3.host.name)
    assert not result_3.trustworthy
    assert any("rewritten" in f for f in result_3.failures)
