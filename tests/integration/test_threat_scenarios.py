"""Threat scenarios from the paper's introduction, played out end to end."""

import pytest

from repro.core import Deployment
from repro.core.enrollment import EnrollmentSession
from repro.errors import AppraisalFailed, ReproError


def fresh(seed: bytes, **kwargs) -> Deployment:
    return Deployment(seed=seed, vnf_count=1, **kwargs)


def test_credential_theft_from_host_memory_fails():
    """The headline threat: a compromised co-tenant (or the host itself)
    tries to read the VNF's credentials.  With the enclave design there is
    nothing host-visible to steal."""
    deployment = fresh(b"threat-theft")
    deployment.enroll("vnf-1")
    enclave = deployment.credential_enclaves["vnf-1"].enclave
    from repro.errors import EnclaveMemoryViolation

    with pytest.raises(EnclaveMemoryViolation):
        enclave.memory.read("bundle")
    # The sealed form on disk is ciphertext: it contains no key bits.
    sealed = deployment.credential_enclaves["vnf-1"].seal_credentials()
    certificate = deployment.vm.issued_certificate("vnf-1")
    assert certificate.public_key_bytes not in sealed


def test_stolen_baseline_credentials_work_anywhere():
    """The contrast case the paper motivates: without enclaves, exfiltrated
    credentials are immediately usable by the attacker."""
    deployment = fresh(b"threat-baseline")
    deployment.enroll("vnf-1")
    # Baseline world: key material lives in process memory.  Model the
    # attacker having copied it.
    from repro.crypto.keys import generate_keypair

    stolen_key = generate_keypair(deployment.rng)
    stolen_cert = deployment.vm.ca.issue(
        subject=deployment.vm.issued_certificate("vnf-1").subject,
        public_key_bytes=stolen_key.public.to_bytes(),
        now=deployment.clock.now_seconds(),
    )
    attacker = deployment.baseline_client(
        mode="trusted-https",
        client_chain=[stolen_cert], client_key=stolen_key,
    )
    # The controller cannot tell: possession of key material is identity.
    assert attacker.summary()["controller"] == "floodlight"


def test_topology_spoofing_blocked_by_trusted_mode():
    """Unauthorized flow writes (topology spoofing) succeed on HTTP and
    HTTPS but not on trusted HTTPS."""
    deployment = fresh(b"threat-spoof")
    deployment.enroll("vnf-1")
    spoof = dict(switch="00:00:01", name="spoofed",
                 match={"eth_dst": "h2"}, actions="output:1")
    for mode in ("http", "https"):
        client = deployment.baseline_client(mode=mode)
        client.push_flow(**spoof)
        client.delete_flow("spoofed")
    with pytest.raises(ReproError):
        deployment.baseline_client(mode="trusted-https").push_flow(**spoof)


def test_malicious_vnf_image_rejected_before_credentials():
    """Integrity verification 'prior to deployment': a host whose VNF
    container content deviates from the pinned image fails appraisal."""
    deployment = fresh(b"threat-image")
    container = deployment.host.runtime.list_containers()[0]
    deployment.host.tamper_file(
        container.root_path + "/usr/bin/vnf", b"trojaned-vnf"
    )
    session = EnrollmentSession(
        vm=deployment.vm, agent=deployment.agent_client,
        host_name=deployment.host.name, vnf_name="vnf-1",
        controller_address=str(deployment.controller_address()),
        sim_now=deployment.clock.now,
    )
    with pytest.raises(AppraisalFailed):
        session.attest_host()
    assert not deployment.credential_enclaves["vnf-1"].has_credentials()


def test_eavesdropper_sees_no_plaintext():
    """Traffic eavesdropping on the northbound link: TLS modes leak no
    request plaintext, plain HTTP leaks everything."""
    captured = []

    deployment = fresh(b"threat-tap")
    deployment.enroll("vnf-1")

    # Tap the network by wrapping the channel delivery of new connections.
    original_connect = deployment.network.connect

    def tapped_connect(source_host, destination):
        channel = original_connect(source_host, destination)
        original_send = channel.send

        def spying_send(data):
            captured.append(bytes(data))
            return original_send(data)

        channel.send = spying_send
        return channel

    deployment.network.connect = tapped_connect
    try:
        secret_path = "/wm/core/controller/summary/json"
        deployment.enclave_client("vnf-1").summary()
        tls_bytes = b"".join(captured)
        assert secret_path.encode() not in tls_bytes

        captured.clear()
        deployment.baseline_client(mode="http").summary()
        http_bytes = b"".join(captured)
        assert secret_path.encode() in http_bytes
    finally:
        deployment.network.connect = original_connect


def test_host_compromise_after_enrollment_contains_blast_radius():
    """Re-attestation catches post-enrolment compromise and revokes the
    host's credentials, protecting the controller going forward."""
    from repro.core.revocation import ReattestationMonitor

    deployment = fresh(b"threat-after")
    deployment.enroll("vnf-1")
    monitor = ReattestationMonitor(deployment.vm, ias_service=deployment.ias)
    monitor.watch(deployment.host.name, deployment.agent_client)
    deployment.host.tamper_file("/usr/bin/runc", b"escape-exploit")
    [outcome] = monitor.sweep()
    assert outcome.revoked_vnfs == ["vnf-1"]
    client = deployment.enclave_client("vnf-1")
    client.close()
    with pytest.raises(ReproError):
        client.summary()
