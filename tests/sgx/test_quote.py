"""The quoting enclave and quote structures."""

import pytest

from repro.errors import QuoteError
from repro.sgx.epid import EpidGroup
from repro.sgx.quote import Quote
from repro.sgx.report import Report


@pytest.fixture
def provisioned(platform, rng):
    group = EpidGroup(b"g", rng.random_bytes(32))
    member = group.issue_member(rng)
    platform.provision_epid(member, group.sealing_key())
    return group


def get_report(keeper, platform, data: bytes) -> Report:
    qe = platform.quoting_enclave
    return Report.from_bytes(
        keeper.ecall("get_report", qe.target_info(), data)
    )


def test_quote_generation_and_fields(platform, keeper, provisioned):
    report = get_report(keeper, platform, b"\x07" * 64)
    quote = platform.quoting_enclave.generate(report, b"deployment")
    assert quote.mrenclave == keeper.mrenclave
    assert quote.report_data == b"\x07" * 64
    assert quote.basename == b"deployment"
    assert quote.isv_prod_id == keeper.identity.isv_prod_id


def test_quote_signature_verifies_at_manager(platform, keeper, provisioned):
    report = get_report(keeper, platform, b"\x07" * 64)
    quote = platform.quoting_enclave.generate(report, b"deployment")
    provisioned.verify(quote.signature(), quote.body_bytes())


def test_quote_serialization_roundtrip(platform, keeper, provisioned):
    report = get_report(keeper, platform, b"\x01" * 64)
    quote = platform.quoting_enclave.generate(report, b"d")
    assert Quote.from_bytes(quote.to_bytes()) == quote


def test_unprovisioned_platform_cannot_quote(platform, keeper):
    report = get_report(keeper, platform, b"\x00" * 64)
    with pytest.raises(QuoteError):
        platform.quoting_enclave.generate(report, b"d")


def test_report_for_wrong_target_rejected(platform, keeper, provisioned):
    # Aim the report at the keeper itself instead of the QE.
    bad_report = Report.from_bytes(
        keeper.ecall("get_report", keeper.target_info(), b"\x00" * 64)
    )
    with pytest.raises(QuoteError):
        platform.quoting_enclave.generate(bad_report, b"d")


def test_cross_platform_report_rejected(platform, keeper, provisioned, rng,
                                        clock):
    from repro.sgx.platform import SgxPlatform
    from repro.sgx.enclave import EnclaveImage
    from repro.sgx.sigstruct import sign_image
    from repro.crypto.keys import generate_keypair
    from tests.sgx.conftest import KeeperBehavior

    other = SgxPlatform("other-platform", clock=clock, rng=rng)
    image = EnclaveImage.from_behavior_class(KeeperBehavior, "keeper")
    sigstruct = sign_image(generate_keypair(rng), image.code, "v")
    foreign = other.create_enclave(image, sigstruct)
    # Report produced on the other platform, quoted on this one: the MAC
    # key differs per platform, so the QE must refuse.
    foreign_report = Report.from_bytes(foreign.ecall(
        "get_report", platform.quoting_enclave.target_info(), b"\x00" * 64
    ))
    with pytest.raises(QuoteError):
        platform.quoting_enclave.generate(foreign_report, b"d")


def test_epid_member_key_isolated_in_qe(platform, provisioned):
    from repro.errors import EnclaveMemoryViolation

    qe_enclave = platform.quoting_enclave.enclave
    with pytest.raises(EnclaveMemoryViolation):
        qe_enclave.memory.read("epid_member")
