"""MRENCLAVE computation."""

from repro.sgx.measurement import PAGE_SIZE, measure_image


def test_measurement_is_deterministic():
    assert measure_image(b"code") == measure_image(b"code")
    assert len(measure_image(b"code")) == 32


def test_single_byte_change_changes_measurement():
    assert measure_image(b"code") != measure_image(b"codf")


def test_appended_byte_changes_measurement():
    assert measure_image(b"code") != measure_image(b"code\x00x")


def test_empty_image_measures():
    assert len(measure_image(b"")) == 32


def test_padding_within_page_is_canonical():
    # Zero-padding to the page boundary is part of the measured image, so
    # explicit trailing zeros inside one page measure identically...
    assert measure_image(b"abc") == measure_image(b"abc" + b"\x00" * 10)
    # ...but adding a whole extra page of zeros does not.
    assert measure_image(b"abc") != measure_image(
        b"abc".ljust(PAGE_SIZE + 1, b"\x00")
    )


def test_attributes_affect_measurement():
    assert measure_image(b"c", attributes=0) != measure_image(b"c",
                                                              attributes=1)


def test_multi_page_images():
    big = bytes(range(256)) * 64  # 16 KiB, 4 pages
    assert measure_image(big) != measure_image(big[:-1])
