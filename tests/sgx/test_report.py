"""Local attestation reports."""

import dataclasses

import pytest

from repro.errors import QuoteError
from repro.sgx.enclave import EnclaveIdentity
from repro.sgx.report import (
    REPORT_DATA_SIZE,
    Report,
    TargetInfo,
    create_report,
    verify_report,
)

SECRET = b"platform-report-secret-0123456789ab"
SOURCE = EnclaveIdentity(b"\x01" * 32, b"\x02" * 32, 1, 1)
TARGET = TargetInfo(b"\x03" * 32)


def make_report(data: bytes = b"\x00" * REPORT_DATA_SIZE) -> Report:
    return create_report(SECRET, SOURCE, TARGET, data)


def test_report_verifies():
    verify_report(SECRET, make_report())


def test_report_data_size_enforced():
    with pytest.raises(QuoteError):
        create_report(SECRET, SOURCE, TARGET, b"short")


def test_serialization_roundtrip():
    report = make_report(b"\xaa" * 64)
    restored = Report.from_bytes(report.to_bytes())
    assert restored == report
    verify_report(SECRET, restored)


def test_wrong_platform_secret_fails():
    with pytest.raises(QuoteError):
        verify_report(b"x" * 32, make_report())


def test_tampered_identity_fails():
    report = make_report()
    forged = dataclasses.replace(report, mrenclave=b"\x99" * 32)
    with pytest.raises(QuoteError):
        verify_report(SECRET, forged)


def test_tampered_report_data_fails():
    report = make_report()
    forged = dataclasses.replace(report, report_data=b"\xff" * 64)
    with pytest.raises(QuoteError):
        verify_report(SECRET, forged)


def test_report_for_other_target_fails():
    # MACed for TARGET; an enclave with another measurement derives a
    # different report key and must reject.
    report = make_report()
    retargeted = dataclasses.replace(report, target=TargetInfo(b"\x04" * 32))
    with pytest.raises(QuoteError):
        verify_report(SECRET, retargeted)
