"""Enclave lifecycle, launch control, ECALL boundary, OCALLs."""

import pytest

from repro.errors import (
    EcallError,
    EnclaveLifecycleError,
    EnclaveMemoryViolation,
    LaunchError,
)
from repro.sgx.measurement import measure_image
from repro.sgx.sigstruct import sign_image


def test_launch_verifies_measurement(platform, keeper_image, vendor_key,
                                     keeper_sigstruct):
    enclave = platform.create_enclave(keeper_image, keeper_sigstruct)
    assert enclave.mrenclave == measure_image(keeper_image.code)
    assert enclave.identity.mrsigner == keeper_sigstruct.mrsigner
    assert enclave.identity.isv_prod_id == 7
    assert enclave.identity.isv_svn == 3


def test_tampered_image_refused(platform, keeper_image, keeper_sigstruct):
    with pytest.raises(LaunchError):
        platform.create_enclave(keeper_image.tampered(), keeper_sigstruct)


def test_bad_sigstruct_signature_refused(platform, keeper_image, vendor_key):
    import dataclasses

    good = sign_image(vendor_key, keeper_image.code, "v")
    bad = dataclasses.replace(good, vendor="other")  # breaks the signature
    with pytest.raises(LaunchError):
        platform.create_enclave(keeper_image, bad)


def test_ecall_roundtrip(keeper):
    keeper.ecall("store", b"secret")
    mac = keeper.ecall("mac", b"message")
    assert len(mac) == 32


def test_secret_unreachable_from_outside(keeper):
    keeper.ecall("store", b"secret")
    with pytest.raises(EnclaveMemoryViolation):
        keeper.memory.read("secret")


def test_undeclared_ecall_rejected(keeper):
    with pytest.raises(EcallError):
        keeper.ecall("not_an_entrypoint")
    # Internal helpers are not callable either, even if they exist.
    with pytest.raises(EcallError):
        keeper.ecall("_api")


def test_entrypoints_listed(keeper):
    assert "store" in keeper.entrypoints
    assert "mac" in keeper.entrypoints


def test_destroyed_enclave_refuses_ecalls(platform, keeper):
    platform.destroy_enclave(keeper)
    assert keeper.destroyed
    with pytest.raises(EnclaveLifecycleError):
        keeper.ecall("store", b"x")


def test_ocall_blocks_memory_access(keeper):
    keeper.ecall("store", b"secret")
    observed = {}

    def untrusted():
        # Runs outside the enclave even though invoked from within.
        try:
            keeper.memory.read("secret")
            observed["leak"] = True
        except EnclaveMemoryViolation:
            observed["leak"] = False
        return "done"

    assert keeper.ecall("run_ocall", untrusted) == "done"
    assert observed["leak"] is False


def test_transition_costs_charged(platform, keeper, clock):
    before_time = clock.now()
    before_ecalls = platform.accountant.ecalls
    keeper.ecall("store", b"payload-bytes")
    assert platform.accountant.ecalls == before_ecalls + 1
    assert clock.now() > before_time


def test_ocall_counted(platform, keeper):
    keeper.ecall("store", b"s")
    before = platform.accountant.ocalls
    keeper.ecall("run_ocall", lambda: None)
    assert platform.accountant.ocalls == before + 1


def test_two_instances_same_measurement(platform, keeper_image,
                                        keeper_sigstruct):
    a = platform.create_enclave(keeper_image, keeper_sigstruct)
    b = platform.create_enclave(keeper_image, keeper_sigstruct)
    assert a.mrenclave == b.mrenclave
    assert a.label != b.label
    # ...but isolated state: storing in one is invisible to the other.
    a.ecall("store", b"private-to-a")
    with pytest.raises(KeyError):
        b.ecall("mac", b"m")


def test_image_fallback_for_sourceless_classes():
    from repro.sgx.enclave import EnclaveImage

    cls = type("Dynamic", (), {
        "ECALLS": ("noop",),
        "__init__": lambda self, api: None,
        "noop": lambda self: "ok",
    })
    image = EnclaveImage.from_behavior_class(cls, "dynamic")
    assert image.code  # deterministic fallback serialization
    assert image.code == EnclaveImage.from_behavior_class(cls, "dynamic").code
