"""EPC paging model: working sets beyond the EPC share pay for it."""

from repro.net.clock import VirtualClock
from repro.sgx.ecall import ACCOUNT, CostModel, TransitionAccountant
from repro.sgx.memory import EnclaveMemory


def test_no_paging_within_epc():
    memory = EnclaveMemory("small", epc_slots=8)
    memory.enter()
    for i in range(8):
        memory.write(f"k{i}", i)
    memory.exit()
    assert memory.page_faults == 0


def test_paging_beyond_epc_charges_clock():
    clock = VirtualClock()
    accountant = TransitionAccountant(CostModel(), clock)
    memory = EnclaveMemory("big", epc_slots=4)
    memory.attach_accountant(accountant)
    memory.enter()
    for i in range(10):
        memory.write(f"k{i}", i)
    memory.exit()
    assert memory.page_faults == 6  # writes 5..10 exceed the share
    assert clock.charges()[ACCOUNT] > 0


def test_rewrites_of_resident_keys_do_not_grow_set():
    memory = EnclaveMemory("steady", epc_slots=2)
    memory.enter()
    memory.write("a", 1)
    memory.write("b", 2)
    for _ in range(20):
        memory.write("a", 3)  # resident rewrite: no growth, no fault
    memory.exit()
    assert memory.page_faults == 0


def test_enclaves_wire_paging_automatically(rng):
    from repro.crypto.keys import generate_keypair
    from repro.sgx.enclave import EnclaveImage
    from repro.sgx.platform import SgxPlatform
    from repro.sgx.sigstruct import sign_image

    class Hungry:
        ECALLS = ("fill",)

        def __init__(self, api):
            self._api = api

        def fill(self, count: int) -> None:
            for i in range(count):
                self._api.memory.write(f"slot-{i}", bytes(32))

    clock = VirtualClock()
    platform = SgxPlatform("pager", clock=clock, rng=rng)
    image = EnclaveImage.from_behavior_class(Hungry, "hungry")
    enclave = platform.create_enclave(
        image, sign_image(generate_keypair(rng), image.code, "v")
    )
    enclave.ecall("fill", 100)
    assert enclave.memory.page_faults == 100 - 64  # default epc_slots
