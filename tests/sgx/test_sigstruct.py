"""SIGSTRUCT: vendor signatures, MRSIGNER, serialization."""

import dataclasses

import pytest

from repro.crypto.keys import generate_keypair
from repro.crypto.sha256 import sha256
from repro.errors import LaunchError
from repro.sgx.sigstruct import SigStruct, sign_image


def test_sign_and_verify(vendor_key):
    sigstruct = sign_image(vendor_key, b"enclave code", "vendor")
    sigstruct.verify()


def test_mrsigner_is_key_hash(vendor_key):
    sigstruct = sign_image(vendor_key, b"code", "vendor")
    assert sigstruct.mrsigner == sha256(vendor_key.public.to_bytes())


def test_same_signer_same_mrsigner_different_code(vendor_key):
    a = sign_image(vendor_key, b"code-a", "vendor")
    b = sign_image(vendor_key, b"code-b", "vendor")
    assert a.mrsigner == b.mrsigner
    assert a.enclave_hash != b.enclave_hash


def test_tampered_fields_fail_verification(vendor_key):
    sigstruct = sign_image(vendor_key, b"code", "vendor", isv_svn=1)
    tampered = dataclasses.replace(sigstruct, isv_svn=99)
    with pytest.raises(LaunchError):
        tampered.verify()


def test_wrong_signer_key_fails(vendor_key, rng):
    sigstruct = sign_image(vendor_key, b"code", "vendor")
    other = generate_keypair(rng)
    forged = dataclasses.replace(sigstruct,
                                 signer_public=other.public.to_bytes())
    with pytest.raises(LaunchError):
        forged.verify()


def test_serialization_roundtrip(vendor_key):
    sigstruct = sign_image(vendor_key, b"code", "vendor", isv_prod_id=9,
                           isv_svn=4, attributes=1)
    restored = SigStruct.from_bytes(sigstruct.to_bytes())
    assert restored == sigstruct
    restored.verify()
