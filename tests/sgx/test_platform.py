"""The platform: registries, QE lifecycle, EPID provisioning state."""

from repro.sgx.epid import EpidGroup


def test_enclave_registry(platform, keeper_image, keeper_sigstruct):
    enclave = platform.create_enclave(keeper_image, keeper_sigstruct)
    assert enclave.label in platform.enclaves()
    platform.destroy_enclave(enclave)
    assert enclave.label not in platform.enclaves()


def test_labels_unique(platform, keeper_image, keeper_sigstruct):
    a = platform.create_enclave(keeper_image, keeper_sigstruct)
    b = platform.create_enclave(keeper_image, keeper_sigstruct)
    assert a.label != b.label


def test_quoting_enclave_lazy_singleton(platform):
    assert platform.quoting_enclave is platform.quoting_enclave


def test_epid_provisioning_state(platform, rng):
    assert not platform.epid_provisioned
    group = EpidGroup(b"g", rng.random_bytes(32))
    platform.provision_epid(group.issue_member(rng), group.sealing_key())
    assert platform.epid_provisioned


def test_platforms_have_distinct_secrets(rng, clock):
    from repro.sgx.platform import SgxPlatform

    a = SgxPlatform("a", clock=clock, rng=rng)
    b = SgxPlatform("b", clock=clock, rng=rng)
    assert a._fuse_key != b._fuse_key
    assert a._report_secret != b._report_secret
