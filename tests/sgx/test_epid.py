"""The simulated EPID group-signature scheme."""

import dataclasses

import pytest

from repro.errors import QuoteError
from repro.sgx.epid import EpidGroup, EpidSignature, epid_sign, pseudonym


@pytest.fixture
def group(rng):
    return EpidGroup(b"group-1", rng.random_bytes(32))


@pytest.fixture
def member(group, rng):
    return group.issue_member(rng)


def test_sign_verify(group, member, rng):
    signature = epid_sign(member, group.sealing_key(), b"message",
                          b"basename", rng)
    assert group.verify(signature, b"message") == member.member_id


def test_wrong_message_rejected(group, member, rng):
    signature = epid_sign(member, group.sealing_key(), b"m1", b"b", rng)
    with pytest.raises(QuoteError):
        group.verify(signature, b"m2")


def test_wrong_group_rejected(group, member, rng):
    other = EpidGroup(b"group-2", rng.random_bytes(32))
    signature = epid_sign(member, group.sealing_key(), b"m", b"b", rng)
    with pytest.raises(QuoteError):
        other.verify(signature, b"m")


def test_pseudonym_linkable_within_basename(group, member, rng):
    a = epid_sign(member, group.sealing_key(), b"m1", b"base", rng)
    b = epid_sign(member, group.sealing_key(), b"m2", b"base", rng)
    assert a.pseudonym == b.pseudonym


def test_pseudonym_unlinkable_across_basenames(group, member, rng):
    a = epid_sign(member, group.sealing_key(), b"m", b"base-1", rng)
    b = epid_sign(member, group.sealing_key(), b"m", b"base-2", rng)
    assert a.pseudonym != b.pseudonym


def test_members_unlinkable_to_outsiders(group, rng):
    # Two signatures from the same member under the same basename share a
    # pseudonym, but the sealed identity blob differs every time (fresh
    # nonce), so an outsider cannot extract the member id.
    member = group.issue_member(rng)
    a = epid_sign(member, group.sealing_key(), b"m", b"b", rng)
    b = epid_sign(member, group.sealing_key(), b"m", b"b", rng)
    assert a.sealed_member != b.sealed_member


def test_open_signature_recovers_member(group, member, rng):
    signature = epid_sign(member, group.sealing_key(), b"m", b"b", rng)
    assert group.open_signature(signature) == member.member_id


def test_forged_pseudonym_rejected(group, member, rng):
    signature = epid_sign(member, group.sealing_key(), b"m", b"b", rng)
    forged = dataclasses.replace(signature, pseudonym=b"\x00" * 32)
    with pytest.raises(QuoteError):
        group.verify(forged, b"m")


def test_serialization_roundtrip(group, member, rng):
    signature = epid_sign(member, group.sealing_key(), b"m", b"b", rng)
    restored = EpidSignature.from_bytes(signature.to_bytes())
    assert group.verify(restored, b"m") == member.member_id


def test_member_derivation_consistent(group, member):
    assert group.derive_member_secret(member.member_id) == (
        member.member_secret
    )


def test_distinct_members(group, rng):
    a, b = group.issue_member(rng), group.issue_member(rng)
    assert a.member_id != b.member_id
    assert pseudonym(a.member_secret, b"x") != pseudonym(b.member_secret,
                                                         b"x")
