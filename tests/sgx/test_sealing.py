"""Sealing: policies, cross-identity/platform failure, SVN anti-rollback."""

import pytest

from repro.errors import SealingError
from repro.sgx.enclave import EnclaveIdentity
from repro.sgx.sealing import (
    POLICY_MRENCLAVE,
    POLICY_MRSIGNER,
    SealedBlob,
    seal,
    unseal,
)

FUSE_A = b"a" * 32
FUSE_B = b"b" * 32


def identity(mrenclave=b"\x11" * 32, mrsigner=b"\x22" * 32, prod=1, svn=2):
    return EnclaveIdentity(mrenclave, mrsigner, prod, svn)


def test_roundtrip_both_policies(rng):
    for policy in (POLICY_MRENCLAVE, POLICY_MRSIGNER):
        blob = seal(FUSE_A, identity(), b"secret", policy, rng)
        assert unseal(FUSE_A, identity(), blob) == b"secret"


def test_serialization_roundtrip(rng):
    blob = seal(FUSE_A, identity(), b"secret", rng=rng)
    restored = SealedBlob.from_bytes(blob.to_bytes())
    assert unseal(FUSE_A, identity(), restored) == b"secret"


def test_wrong_platform_fails(rng):
    blob = seal(FUSE_A, identity(), b"secret", rng=rng)
    with pytest.raises(SealingError):
        unseal(FUSE_B, identity(), blob)


def test_mrenclave_policy_binds_measurement(rng):
    blob = seal(FUSE_A, identity(), b"secret", POLICY_MRENCLAVE, rng)
    other = identity(mrenclave=b"\x99" * 32)
    with pytest.raises(SealingError):
        unseal(FUSE_A, other, blob)


def test_mrsigner_policy_survives_code_update(rng):
    blob = seal(FUSE_A, identity(), b"secret", POLICY_MRSIGNER, rng)
    updated_code = identity(mrenclave=b"\x99" * 32)  # same signer/product
    assert unseal(FUSE_A, updated_code, blob) == b"secret"


def test_mrsigner_policy_binds_signer_and_product(rng):
    blob = seal(FUSE_A, identity(), b"secret", POLICY_MRSIGNER, rng)
    with pytest.raises(SealingError):
        unseal(FUSE_A, identity(mrsigner=b"\x33" * 32), blob)
    with pytest.raises(SealingError):
        unseal(FUSE_A, identity(prod=2), blob)


def test_svn_anti_rollback(rng):
    blob = seal(FUSE_A, identity(svn=5), b"secret", rng=rng)
    # Newer enclave can unseal older blob.
    assert unseal(FUSE_A, identity(svn=6), blob) == b"secret"
    # Downgraded enclave cannot.
    with pytest.raises(SealingError):
        unseal(FUSE_A, identity(svn=4), blob)


def test_tampered_blob_fails(rng):
    blob = seal(FUSE_A, identity(), b"secret", rng=rng)
    import dataclasses

    tampered = dataclasses.replace(
        blob, ciphertext=blob.ciphertext[:-1] + b"\x00"
    )
    with pytest.raises(SealingError):
        unseal(FUSE_A, identity(), tampered)


def test_unknown_policy_rejected(rng):
    with pytest.raises(SealingError):
        seal(FUSE_A, identity(), b"s", "mystery", rng)
    blob = seal(FUSE_A, identity(), b"s", rng=rng)
    import dataclasses

    with pytest.raises(SealingError):
        SealedBlob.from_bytes(
            dataclasses.replace(blob, policy="mystery").to_bytes()
        )


def test_fresh_key_ids_give_distinct_blobs(rng):
    a = seal(FUSE_A, identity(), b"same", rng=rng)
    b = seal(FUSE_A, identity(), b"same", rng=rng)
    assert a.ciphertext != b.ciphertext
    assert a.key_id != b.key_id
