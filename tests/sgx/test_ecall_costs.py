"""The transition cost model."""

import pytest

from repro.net.clock import VirtualClock
from repro.sgx.ecall import ACCOUNT, CostModel, TransitionAccountant


def test_cycle_to_seconds_conversion():
    model = CostModel(cpu_hz=2e9)
    assert model.seconds(2e9) == 1.0


def test_ecall_cost_scales_with_payload():
    model = CostModel()
    assert model.ecall_cost(0) < model.ecall_cost(10_000)
    base = model.ecall_cost(0)
    assert base == pytest.approx(model.seconds(model.ecall_cycles))


def test_accountant_charges_clock():
    clock = VirtualClock()
    accountant = TransitionAccountant(CostModel(), clock)
    accountant.charge_ecall(100)
    accountant.charge_ocall(50)
    accountant.charge_page_fault(2)
    assert accountant.ecalls == 1
    assert accountant.ocalls == 1
    assert accountant.bytes_crossed == 150
    assert clock.charges()[ACCOUNT] == pytest.approx(clock.now())
    assert clock.now() > 0


def test_accountant_without_clock_counts_only():
    accountant = TransitionAccountant(CostModel(), None)
    accountant.charge_ecall(10)
    accountant.charge_page_fault()
    assert accountant.ecalls == 1


def test_higher_ecall_cycles_cost_more_time():
    cheap, dear = VirtualClock(), VirtualClock()
    TransitionAccountant(CostModel(ecall_cycles=8000), cheap).charge_ecall(0)
    TransitionAccountant(CostModel(ecall_cycles=80000), dear).charge_ecall(0)
    assert dear.now() > cheap.now()
