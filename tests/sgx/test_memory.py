"""The enclave-memory isolation gate (invariant I1's enforcement point)."""

import pytest

from repro.errors import EnclaveMemoryViolation
from repro.sgx.memory import EnclaveMemory


@pytest.fixture
def memory():
    return EnclaveMemory("test-enclave")


def test_outside_access_denied(memory):
    for operation in (
        lambda: memory.read("k"),
        lambda: memory.write("k", 1),
        lambda: memory.delete("k"),
        lambda: memory.contains("k"),
        lambda: memory.keys(),
    ):
        with pytest.raises(EnclaveMemoryViolation):
            operation()


def test_inside_access_allowed(memory):
    memory.enter()
    try:
        memory.write("k", b"v")
        assert memory.read("k") == b"v"
        assert memory.contains("k")
        assert list(memory.keys()) == ["k"]
        memory.delete("k")
        assert not memory.contains("k")
    finally:
        memory.exit()


def test_gate_closes_on_exit(memory):
    memory.enter()
    memory.write("k", 1)
    memory.exit()
    with pytest.raises(EnclaveMemoryViolation):
        memory.read("k")


def test_reentrancy_depth(memory):
    memory.enter()
    memory.enter()
    memory.exit()
    memory.write("k", 1)  # still inside at depth 1
    memory.exit()
    with pytest.raises(EnclaveMemoryViolation):
        memory.read("k")


def test_unbalanced_exit_rejected(memory):
    with pytest.raises(EnclaveMemoryViolation):
        memory.exit()


def test_wipe_allowed_from_outside(memory):
    memory.enter()
    memory.write("k", 1)
    memory.exit()
    memory.wipe()  # EREMOVE destroys without disclosing
    assert len(memory) == 0


def test_missing_key_raises_keyerror(memory):
    memory.enter()
    with pytest.raises(KeyError):
        memory.read("absent")
    memory.exit()


def test_size_is_host_visible(memory):
    memory.enter()
    memory.write("a", 1)
    memory.write("b", 2)
    memory.exit()
    assert len(memory) == 2  # metadata only, no content
