"""SGX test fixtures: a platform and a secret-keeping test enclave."""

from __future__ import annotations

import pytest

from repro.crypto.keys import generate_keypair
from repro.net.clock import VirtualClock
from repro.sgx.enclave import EnclaveImage
from repro.sgx.platform import SgxPlatform
from repro.sgx.sealing import SealedBlob
from repro.sgx.sigstruct import sign_image


class KeeperBehavior:
    """A small enclave that guards one secret."""

    ECALLS = ("store", "mac", "get_report", "seal", "restore", "run_ocall")

    def __init__(self, api):
        self._api = api

    def store(self, secret: bytes) -> None:
        self._api.memory.write("secret", secret)

    def mac(self, message: bytes) -> bytes:
        from repro.crypto.hmac import hmac_sha256

        return hmac_sha256(self._api.memory.read("secret"), message)

    def get_report(self, target, report_data: bytes) -> bytes:
        return self._api.create_report(target, report_data).to_bytes()

    def seal(self, policy: str) -> bytes:
        return self._api.seal(self._api.memory.read("secret"),
                              policy).to_bytes()

    def restore(self, blob_bytes: bytes) -> None:
        self._api.memory.write(
            "secret", self._api.unseal(SealedBlob.from_bytes(blob_bytes))
        )

    def run_ocall(self, fn) -> object:
        return self._api.ocall(fn)


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def platform(clock, rng) -> SgxPlatform:
    return SgxPlatform("test-platform", clock=clock, rng=rng)


@pytest.fixture
def vendor_key(rng):
    return generate_keypair(rng)


@pytest.fixture
def keeper_image() -> EnclaveImage:
    return EnclaveImage.from_behavior_class(KeeperBehavior, "keeper")


@pytest.fixture
def keeper_sigstruct(vendor_key, keeper_image):
    return sign_image(vendor_key, keeper_image.code, "test-vendor",
                      isv_prod_id=7, isv_svn=3)


@pytest.fixture
def keeper(platform, keeper_image, keeper_sigstruct):
    return platform.create_enclave(keeper_image, keeper_sigstruct)
