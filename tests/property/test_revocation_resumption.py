"""Property: a revoked attested identity can never resume.

Drives a :class:`~repro.tls.ratls.RatlsVerifier` plus attached session
caches through arbitrary interleavings of session stores, subject
revocations, host revocations and resumption checks.  After every
single step, every identity the model considers revoked must be
(a) denied by ``resumable`` and (b) absent from every attached cache —
no interleaving may leave a window where a revoked identity's cached
session would still be honoured.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import HmacDrbg
from repro.crypto.keys import generate_keypair
from repro.tls.ciphersuites import DEFAULT_SUITE
from repro.tls.ratls import RatlsVerifier, build_ratls_certificate
from repro.tls.session import SessionCache, TlsSession

SUBJECTS = ("vnf-a", "vnf-b", "vnf-c")
HOSTS = {"vnf-a": "host-1", "vnf-b": "host-1", "vnf-c": "host-2"}

_rng = HmacDrbg(b"revocation-property")
CERTS = {
    name: build_ratls_certificate(
        generate_keypair(_rng), name, b"quote", now=0,
        validity_seconds=10**9, san=(HOSTS[name],),
    )
    for name in SUBJECTS
}


def _session(name, counter):
    return TlsSession(
        session_id=f"{name}:{counter}".encode(),
        master_secret=b"\x00" * 48,
        suite=DEFAULT_SUITE,
        peer_certificate=CERTS[name],
    )


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.sampled_from(SUBJECTS)),
        st.tuples(st.just("revoke_subject"), st.sampled_from(SUBJECTS)),
        st.tuples(st.just("revoke_host"),
                  st.sampled_from(sorted(set(HOSTS.values())))),
        st.tuples(st.just("check"), st.sampled_from(SUBJECTS)),
    ),
    min_size=1, max_size=12,
)


@given(OPS)
@settings(max_examples=120, deadline=None)
def test_revoked_identity_never_resumes(ops):
    verifier = RatlsVerifier(
        verify_evidence=lambda quote, subject: None,
        check_identity=lambda quote, subject: None,
        now=lambda: 0,
    )
    caches = [SessionCache(), SessionCache()]
    for cache in caches:
        verifier.attach_session_cache(cache)
    for name in SUBJECTS:
        verifier.register_subject(name, (HOSTS[name],))

    revoked_subjects = set()
    revoked_hosts = set()
    stored = []  # (subject, session_id) the model expects cached

    def model_revoked(name):
        return name in revoked_subjects or HOSTS[name] in revoked_hosts

    for step, (op, arg) in enumerate(ops):
        if op == "store":
            session = _session(arg, step)
            # Once revoked, the server never completes a handshake for
            # this identity, so nothing new gets cached for it.
            if not model_revoked(arg):
                for cache in caches:
                    cache.store(session)
                stored.append((arg, session.session_id))
        elif op == "revoke_subject":
            verifier.revoke_subject(arg)
            revoked_subjects.add(arg)
        elif op == "revoke_host":
            verifier.revoke_host(arg)
            revoked_hosts.add(arg)
        elif op == "check":
            assert verifier.resumable(_session(arg, step)) == (
                not model_revoked(arg)
            )

        # The invariant holds after *every* step, not just at the end.
        for name in SUBJECTS:
            if model_revoked(name):
                assert not verifier.resumable(_session(name, step))
        for subject, session_id in stored:
            for cache in caches:
                entry = cache.lookup(session_id)
                if model_revoked(subject):
                    assert entry is None, (
                        f"revoked {subject} still cached after step "
                        f"{step} ({op} {arg})"
                    )
                else:
                    assert entry is not None
