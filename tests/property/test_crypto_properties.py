"""Property-based tests over the crypto primitives."""

import base64

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.encoding import b64_decode, b64_encode
from repro.crypto.gcm import AesGcm
from repro.crypto.hkdf import hkdf
from repro.crypto.hmac import hmac_sha256
from repro.crypto.sha256 import sha256

KEY16 = st.binary(min_size=16, max_size=16)
NONCE = st.binary(min_size=12, max_size=12)


@given(st.binary(max_size=512))
@settings(max_examples=50, deadline=None)
def test_pure_sha256_agrees_with_hashlib(data):
    assert sha256(data, backend="pure") == sha256(data, backend="hashlib")


@given(KEY16, st.binary(min_size=16, max_size=16))
@settings(max_examples=50, deadline=None)
def test_aes_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(KEY16, NONCE, st.binary(max_size=256), st.binary(max_size=64))
@settings(max_examples=40, deadline=None)
def test_gcm_roundtrip(key, nonce, plaintext, aad):
    aead = AesGcm(key)
    assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext, aad),
                        aad) == plaintext


@given(KEY16, NONCE, st.binary(min_size=1, max_size=128),
       st.integers(min_value=0))
@settings(max_examples=40, deadline=None)
def test_gcm_any_bitflip_detected(key, nonce, plaintext, position):
    import pytest

    from repro.errors import InvalidTag

    aead = AesGcm(key)
    sealed = bytearray(aead.encrypt(nonce, plaintext))
    sealed[position % len(sealed)] ^= 1 + (position // len(sealed)) % 255
    with pytest.raises(InvalidTag):
        aead.decrypt(nonce, bytes(sealed))


@given(st.binary(max_size=300))
@settings(max_examples=80, deadline=None)
def test_b64_matches_stdlib(data):
    assert b64_encode(data) == base64.b64encode(data).decode()
    assert b64_decode(b64_encode(data)) == data


@given(st.binary(min_size=1, max_size=64), st.binary(max_size=64),
       st.binary(max_size=32), st.integers(min_value=1, max_value=255))
@settings(max_examples=40, deadline=None)
def test_hkdf_prefix_property(ikm, salt, info, length):
    # HKDF output for length n is a prefix of the output for length n+k.
    short = hkdf(ikm, salt, info, length)
    longer = hkdf(ikm, salt, info, min(255 * 32, length + 17))
    assert longer.startswith(short)


@given(st.binary(max_size=64), st.binary(max_size=128),
       st.binary(max_size=128))
@settings(max_examples=40, deadline=None)
def test_hmac_collision_resistance_smoke(key, m1, m2):
    if m1 != m2:
        assert hmac_sha256(key, m1) != hmac_sha256(key, m2)


@given(st.binary(min_size=1, max_size=48))
@settings(max_examples=20, deadline=None)
def test_ecdsa_sign_verify_property(message):
    from repro.crypto.ecdsa import ecdsa_sign, ecdsa_verify
    from repro.crypto.keys import from_scalar

    key = from_scalar(0xDEADBEEF12345678)
    signature = ecdsa_sign(key.scalar, message)
    ecdsa_verify(key.public.point, message, signature)
