"""Property: fabric revocation survives any failover interleaving.

Drives a :class:`~repro.sdn.fabric.TrustedFabric` through arbitrary
interleavings of session opens, subject revocations, host distrusts,
replica crashes and convergence passes.  After every step, every
subject the model considers revoked must be (a) absent from every
*live* replica's keystore-trusted set, (b) unable to open a session on
any switch, and (c) unable to resume an existing session on any switch
— including switches whose home controller was dead when the
revocation fanned out and that were re-homed later.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ControllerUnavailable
from repro.net.faults import FaultPlan
from repro.net.simnet import Network
from repro.sdn.fabric import TrustedFabric

SUBJECTS = ("vnf-a", "vnf-b", "vnf-c")
HOSTS = {"vnf-a": "host-1", "vnf-b": "host-1", "vnf-c": "host-2"}
REPLICAS = 3
ENDPOINTS = 6

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.sampled_from(SUBJECTS),
                  st.integers(min_value=0, max_value=ENDPOINTS - 1)),
        st.tuples(st.just("revoke"), st.sampled_from(SUBJECTS),
                  st.just(0)),
        st.tuples(st.just("distrust"),
                  st.sampled_from(sorted(set(HOSTS.values()))), st.just(0)),
        st.tuples(st.just("crash"),
                  st.integers(min_value=0, max_value=REPLICAS - 1),
                  st.just(0)),
        st.tuples(st.just("converge"), st.just(""), st.just(0)),
    ),
    min_size=1, max_size=14,
)


def _build_fabric():
    network = Network()
    network.install_faults(FaultPlan())
    fabric = TrustedFabric(network, replica_count=REPLICAS)
    dpids = fabric.add_endpoints(ENDPOINTS)
    for subject in SUBJECTS:
        fabric.submit_credential(subject, f"cert-{subject}".encode(),
                                 host=HOSTS[subject])
    return fabric, dpids


def _check_invariant(fabric, dpids, revoked_model, crashed_model):
    for rank, replica in enumerate(fabric.replicas()):
        if rank in crashed_model:
            continue  # a dead replica's local state may be stale
        # Every live replica that has applied the revocations agrees.
        applied = replica.keystore.revoked_subjects()
        for subject in revoked_model & applied:
            assert replica.keystore.is_revoked(subject)
    for subject in revoked_model:
        for dpid in dpids:
            assert not fabric.open_session(dpid, subject), (
                f"revoked {subject} opened a session on {dpid}"
            )
            assert not fabric.session_resumable(dpid, subject), (
                f"revoked {subject} resumed on {dpid}"
            )


@given(OPS)
@settings(max_examples=60, deadline=None)
def test_revoked_subject_never_survives_failover(ops):
    fabric, dpids = _build_fabric()
    revoked_model = set()
    crashed_model = set()
    for op, arg, extra in ops:
        if op == "open":
            fabric.open_session(dpids[extra], arg)
        elif op == "revoke":
            try:
                fabric.revoke_vnf(arg)
            except ControllerUnavailable:
                continue  # every replica down: nothing to check yet
            revoked_model.add(arg)
        elif op == "distrust":
            try:
                fabric.distrust_host(arg)
            except ControllerUnavailable:
                continue
            revoked_model.update(s for s, h in HOSTS.items() if h == arg)
        elif op == "crash":
            if arg not in crashed_model and len(crashed_model) < REPLICAS - 1:
                fabric.crash_replica(arg)
                crashed_model.add(arg)
        elif op == "converge":
            fabric.converge()
        _check_invariant(fabric, dpids, revoked_model, crashed_model)
    # Final convergence: survivors must agree byte-for-byte.
    fabric.converge()
    _check_invariant(fabric, dpids, revoked_model, crashed_model)
    assert len(set(fabric.keystore_digests().values())) == 1
