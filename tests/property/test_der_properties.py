"""Property-based tests for the DER-lite codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pki import der

# Recursive value strategy mirroring what the codec supports.
atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 128), max_value=1 << 128),
    st.binary(max_size=128),
    st.text(max_size=64),
)
values = st.recursive(
    atoms, lambda children: st.lists(children, max_size=6), max_leaves=25
)


@given(values)
@settings(max_examples=150, deadline=None)
def test_roundtrip(value):
    assert der.decode(der.encode(value)) == value


@given(values)
@settings(max_examples=100, deadline=None)
def test_encoding_is_injective_on_distinct_values(value):
    encoded = der.encode(value)
    assert der.encode(der.decode(encoded)) == encoded


@given(values, st.integers(min_value=0, max_value=500))
@settings(max_examples=100, deadline=None)
def test_truncation_never_decodes_silently(value, cut):
    import pytest

    from repro.errors import EncodingError

    encoded = der.encode(value)
    if cut >= len(encoded):
        return
    truncated = encoded[:cut]
    with pytest.raises(EncodingError):
        der.decode(truncated)
