"""Property-based tests on protocol-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import sha256
from repro.ima.iml import ImaEntry, MeasurementList
from repro.sgx.measurement import measure_image
from repro.tls.ciphersuites import DEFAULT_SUITE
from repro.tls.constants import CONTENT_APPLICATION_DATA
from repro.tls.record import RecordLayer


@given(st.lists(st.binary(min_size=1, max_size=2048), min_size=1,
                max_size=6))
@settings(max_examples=30, deadline=None)
def test_record_layer_preserves_stream(payloads):
    sender, receiver = RecordLayer(), RecordLayer()
    key, iv = b"k" * 16, b"i" * 4
    sender.activate_send(DEFAULT_SUITE, key, iv)
    receiver.activate_recv(DEFAULT_SUITE, key, iv)
    wire = b"".join(
        sender.encode_fragments(CONTENT_APPLICATION_DATA, p)
        for p in payloads
    )
    # Deliver in arbitrary-ish chunks (7-byte slices) to exercise buffering.
    received = b""
    for i in range(0, len(wire), 7):
        for record in receiver.feed(wire[i:i + 7]):
            received += record.payload
    assert received == b"".join(payloads)


@given(st.lists(st.tuples(st.text(min_size=1, max_size=20),
                          st.binary(min_size=1, max_size=32)),
                min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_iml_aggregate_reproducible_and_order_sensitive(files):
    iml = MeasurementList()
    iml.boot_aggregate(sha256(b"boot"))
    for name, content in files:
        iml.append(ImaEntry(10, sha256(content), "/f/" + name))
    # Serialization preserves the aggregate.
    restored = MeasurementList.from_bytes(iml.to_bytes())
    assert restored.aggregate() == iml.aggregate()
    # Any reordering of two distinct adjacent entries changes the aggregate.
    entries = iml.entries
    if len(entries) >= 3 and entries[1] != entries[2]:
        swapped = [entries[0], entries[2], entries[1]] + entries[3:]
        assert (MeasurementList.compute_aggregate(swapped)
                != iml.aggregate())


@given(st.binary(min_size=1, max_size=16384))
@settings(max_examples=25, deadline=None)
def test_measurement_second_preimage_smoke(code):
    # Appending a non-zero byte never preserves MRENCLAVE (a zero byte
    # inside the final page coincides with canonical zero-padding).
    assert measure_image(code) != measure_image(code + b"\x01")


@given(st.binary(min_size=1, max_size=128),
       st.sampled_from(["mrenclave", "mrsigner"]))
@settings(max_examples=30, deadline=None)
def test_sealing_roundtrip_property(secret, policy):
    from repro.crypto.rng import HmacDrbg
    from repro.sgx.enclave import EnclaveIdentity
    from repro.sgx.sealing import seal, unseal

    rng = HmacDrbg(b"prop-seal")
    identity = EnclaveIdentity(b"\x01" * 32, b"\x02" * 32, 1, 3)
    blob = seal(b"fuse" * 8, identity, secret, policy, rng)
    assert unseal(b"fuse" * 8, identity, blob) == secret


@given(st.binary(min_size=8, max_size=64))
@settings(max_examples=30, deadline=None)
def test_quote_serialization_total(report_data_seed):
    from repro.sgx.quote import Quote

    quote = Quote(
        mrenclave=sha256(report_data_seed),
        mrsigner=sha256(b"s" + report_data_seed),
        isv_prod_id=7,
        isv_svn=2,
        report_data=sha256(report_data_seed) * 2,
        qe_svn=1,
        basename=report_data_seed[:16],
        epid_signature=report_data_seed,
    )
    assert Quote.from_bytes(quote.to_bytes()) == quote
