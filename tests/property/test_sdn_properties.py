"""Property-based tests on the SDN substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdn.controller import FloodlightController
from repro.sdn.flows import Packet
from repro.sdn.switch import Switch


def build_random_line_topology(n_switches: int, n_hosts: int):
    """A line of switches with hosts attached round-robin."""
    controller = FloodlightController()
    for index in range(n_switches):
        controller.register_switch(Switch(f"s{index}"))
    for index in range(n_switches - 1):
        controller.topology.add_link(f"s{index}", 100 + index,
                                     f"s{index + 1}", 200 + index)
    hosts = []
    for index in range(n_hosts):
        name = f"h{index}"
        controller.topology.attach_host(name, f"s{index % n_switches}",
                                        index + 1)
        hosts.append(name)
    return controller, hosts


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=2, max_value=8),
       st.data())
@settings(max_examples=30, deadline=None)
def test_reactive_forwarding_always_delivers(n_switches, n_hosts, data):
    controller, hosts = build_random_line_topology(n_switches, n_hosts)
    src = data.draw(st.sampled_from(hosts))
    dst = data.draw(st.sampled_from([h for h in hosts if h != src]))
    packet = Packet(eth_src=src, eth_dst=dst)
    # First packet goes through packet-in; subsequent through flows.
    assert controller.inject_packet(src, packet) == "delivered"
    assert controller.inject_packet(src, packet) == "delivered"


@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=2, max_value=6))
@settings(max_examples=20, deadline=None)
def test_paths_are_minimal_on_a_line(n_switches, n_hosts):
    controller, hosts = build_random_line_topology(n_switches, n_hosts)
    topology = controller.topology
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            path = topology.shortest_path(src, dst)
            s_src = int(topology.attachment_point(src)[0][1:])
            s_dst = int(topology.attachment_point(dst)[0][1:])
            assert len(path) == abs(s_src - s_dst) + 1


@given(st.integers(min_value=1, max_value=5), st.data())
@settings(max_examples=20, deadline=None)
def test_unknown_destinations_never_deliver(n_switches, data):
    controller, hosts = build_random_line_topology(n_switches, 2)
    packet = Packet(eth_src=hosts[0], eth_dst="nonexistent-host")
    assert controller.inject_packet(hosts[0], packet) in ("lost", "dropped")
