"""Session cache, key derivation, config validation."""

import pytest

from repro.errors import TlsError
from repro.tls.ciphersuites import DEFAULT_SUITE
from repro.tls.prf import prf
from repro.tls.session import (
    SessionCache,
    TlsConfig,
    TlsSession,
    derive_key_block,
    derive_master_secret,
    finished_verify_data,
)


def make_session(session_id: bytes) -> TlsSession:
    return TlsSession(session_id=session_id, master_secret=b"m" * 48,
                      suite=DEFAULT_SUITE)


def test_cache_store_lookup():
    cache = SessionCache()
    session = make_session(b"\x01" * 32)
    cache.store(session)
    assert cache.lookup(b"\x01" * 32) is session
    assert cache.lookup(b"\x02" * 32) is None
    assert cache.lookup(b"") is None


def test_cache_eviction_fifo():
    cache = SessionCache(capacity=2)
    for i in range(3):
        cache.store(make_session(bytes([i]) * 32))
    assert cache.lookup(bytes([0]) * 32) is None
    assert cache.lookup(bytes([2]) * 32) is not None
    assert len(cache) == 2


def test_cache_overwrite_does_not_evict():
    """Regression: re-storing an existing session_id at capacity used to
    evict the FIFO-oldest *other* session even though the cache was not
    growing.  An overwrite must only replace its own entry."""
    cache = SessionCache(capacity=2)
    first = make_session(b"\x01" * 32)
    second = make_session(b"\x02" * 32)
    cache.store(first)
    cache.store(second)
    replacement = make_session(b"\x02" * 32)
    cache.store(replacement)  # overwrite at capacity: no eviction
    assert cache.lookup(b"\x01" * 32) is first
    assert cache.lookup(b"\x02" * 32) is replacement
    assert len(cache) == 2
    # A genuinely new id still evicts the oldest.
    cache.store(make_session(b"\x03" * 32))
    assert cache.lookup(b"\x01" * 32) is None
    assert len(cache) == 2


def test_cache_invalidate():
    cache = SessionCache()
    cache.store(make_session(b"\x07" * 32))
    cache.invalidate(b"\x07" * 32)
    assert cache.lookup(b"\x07" * 32) is None


def test_cache_invalidate_where():
    cache = SessionCache()
    for i in range(4):
        cache.store(make_session(bytes([i]) * 32))
    removed = cache.invalidate_where(lambda s: s.session_id[0] % 2 == 0)
    assert removed == 2
    assert len(cache) == 2


def test_cache_rejects_bad_capacity():
    with pytest.raises(TlsError):
        SessionCache(capacity=0)


def test_master_secret_derivation_matches_prf():
    pre_master, cr, sr = b"p" * 32, b"c" * 32, b"s" * 32
    assert derive_master_secret(pre_master, cr, sr) == prf(
        pre_master, b"master secret", cr + sr, 48
    )


def test_key_block_layout():
    keys = derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32, DEFAULT_SUITE)
    assert len(keys.client_key) == 16
    assert len(keys.server_key) == 16
    assert len(keys.client_iv) == 4
    assert len(keys.server_iv) == 4
    assert keys.client_key != keys.server_key


def test_key_block_depends_on_randoms():
    a = derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32, DEFAULT_SUITE)
    b = derive_key_block(b"m" * 48, b"C" * 32, b"s" * 32, DEFAULT_SUITE)
    assert a.client_key != b.client_key


def test_finished_verify_data_direction_asymmetric():
    assert finished_verify_data(b"m" * 48, b"h" * 32, True) != (
        finished_verify_data(b"m" * 48, b"h" * 32, False)
    )
    assert len(finished_verify_data(b"m" * 48, b"h" * 32, True)) == 12


def test_config_validation(pki, rng):
    with pytest.raises(TlsError):
        TlsConfig().validate(server_side=True)  # no cert/key
    with pytest.raises(TlsError):
        TlsConfig(certificate_chain=[pki.server_cert],
                  private_key=pki.server_key,
                  require_client_auth=True).validate(server_side=True)
    # key/cert mismatch
    with pytest.raises(TlsError):
        TlsConfig(certificate_chain=[pki.server_cert],
                  private_key=pki.client_key).validate(server_side=False)
