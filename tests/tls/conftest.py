"""TLS test fixtures: a ready server endpoint on the simulated network."""

from __future__ import annotations

from typing import NamedTuple

import pytest

from repro.net.address import Address
from repro.net.simnet import Network
from repro.tls import TlsClient, TlsConfig, TlsServer


class TlsWorld(NamedTuple):
    """A network with a listening echo server and client factories."""

    network: Network
    address: Address
    server: TlsServer
    pki: object

    def connect(self, client: TlsClient, name: str = "server"):
        channel = self.network.connect("client-host", self.address)
        return client.connect(channel, server_name=name)


def make_world(network, pki, rng, require_client_auth=False,
               client_validator=None, port=443) -> TlsWorld:
    """Stand up an upper-casing echo server."""
    config = TlsConfig(
        certificate_chain=[pki.server_cert],
        private_key=pki.server_key,
        truststore=pki.truststore,
        require_client_auth=require_client_auth,
        client_validator=client_validator,
        rng=rng,
        now=network.clock.now_seconds,
    )
    server = TlsServer(config)

    def on_data(conn):
        data = conn.recv_available()
        if data:
            conn.send(data.upper())

    address = Address("server", port)
    network.listen(address, lambda ch: server.accept(ch, on_data=on_data))
    return TlsWorld(network, address, server, pki)


@pytest.fixture
def world(network, pki, rng) -> TlsWorld:
    """Server-auth-only world."""
    return make_world(network, pki, rng)


@pytest.fixture
def mutual_world(network, pki, rng) -> TlsWorld:
    """Mutual-auth ("trusted HTTPS") world."""
    return make_world(network, pki, rng, require_client_auth=True)


@pytest.fixture
def client_config(pki, rng, network) -> TlsConfig:
    """A client config with credentials (usable in both worlds)."""
    return TlsConfig(
        certificate_chain=[pki.client_cert],
        private_key=pki.client_key,
        truststore=pki.truststore,
        rng=rng,
        now=network.clock.now_seconds,
    )
