"""Adversarial handshakes: proof-of-possession enforcement.

A client certificate is only as good as the CertificateVerify proving the
sender holds its key.  These tests send (a) a garbage proof and (b) no
proof at all, and require the server to refuse both — otherwise anyone who
*saw* a certificate could impersonate its subject.
"""

import pytest

from repro.errors import TlsAlert
from repro.tls import TlsClient, TlsConfig
from repro.tls import handshake as hs

from tests.tls.conftest import make_world


def test_garbage_certificate_verify_rejected(network, pki, rng,
                                             client_config, monkeypatch):
    world = make_world(network, pki, rng, require_client_auth=True,
                       port=2001)
    # The client presents the genuine certificate but signs the transcript
    # with the wrong key (it does not actually hold the certified key).
    from repro.crypto.keys import generate_keypair

    wrong_key = generate_keypair(rng)
    evil_config = TlsConfig(
        certificate_chain=[pki.client_cert],  # genuine, observed cert
        private_key=pki.client_key,           # passes local sanity check
        truststore=pki.truststore,
        rng=rng,
        now=network.clock.now_seconds,
    )
    client = TlsClient(evil_config)
    # Swap the signing key after config validation: the CertificateVerify
    # will be made with a key that does not match the certificate.
    object.__setattr__(evil_config.private_key, "scalar", wrong_key.scalar)
    with pytest.raises(TlsAlert) as excinfo:
        world.connect(client)
    from repro.tls import alerts

    assert excinfo.value.description in (alerts.DECRYPT_ERROR,
                                         alerts.ACCESS_DENIED)


def test_omitted_certificate_verify_rejected(network, pki, rng,
                                             client_config, monkeypatch):
    world = make_world(network, pki, rng, require_client_auth=True,
                       port=2002)

    # Make the client silently omit its CertificateVerify message: both
    # sides' transcripts stay consistent, so only the server's explicit
    # "certificate without proof" check can catch it.
    class VanishingCertificateVerify(hs.CertificateVerify):
        def encode(self):  # noqa: D102 — adversarial stub
            return b""

    monkeypatch.setattr(hs, "CertificateVerify", VanishingCertificateVerify)
    import repro.tls.client as client_module

    monkeypatch.setattr(client_module.hs, "CertificateVerify",
                        VanishingCertificateVerify)
    client = TlsClient(client_config)
    with pytest.raises(TlsAlert) as excinfo:
        world.connect(client)
    from repro.tls import alerts

    assert excinfo.value.description == alerts.ACCESS_DENIED


def test_certificate_substitution_rejected(network, pki, rng, monkeypatch):
    # A MITM swaps the client's Certificate message for its own cert while
    # leaving everything else alone: CertificateVerify (signed over the
    # transcript containing the swapped cert... the attacker cannot forge
    # that signature, so we model the lazier attack of swapping both the
    # cert and using its own key — which fails chain validation).
    world = make_world(network, pki, rng, require_client_auth=True,
                       port=2003)
    from repro.crypto.keys import generate_keypair
    from repro.pki.ca import CertificateAuthority
    from repro.pki.csr import create_csr
    from repro.pki.name import DistinguishedName

    mitm_ca = CertificateAuthority(DistinguishedName("MITM-CA"), rng=rng)
    mitm_key = generate_keypair(rng)
    mitm_cert = mitm_ca.issue_from_csr(
        create_csr(mitm_key, DistinguishedName("client")), now=0
    )
    client = TlsClient(TlsConfig(
        certificate_chain=[mitm_cert],
        private_key=mitm_key,
        truststore=pki.truststore,
        rng=rng,
        now=network.clock.now_seconds,
    ))
    with pytest.raises(TlsAlert) as excinfo:
        world.connect(client)
    from repro.tls import alerts

    assert excinfo.value.description == alerts.BAD_CERTIFICATE
