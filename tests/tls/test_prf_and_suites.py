"""TLS PRF vector and cipher-suite negotiation."""

import pytest

from repro.errors import HandshakeFailure
from repro.tls import ciphersuites
from repro.tls.prf import p_sha256, prf


def test_prf_known_vector():
    # Published P_SHA256 test vector (from the TLS 1.2 mailing-list KAT).
    secret = bytes.fromhex("9bbe436ba940f017b17652849a71db35")
    seed = bytes.fromhex("a0ba9f936cda311827a6f796ffd5198c")
    label = b"test label"
    out = prf(secret, label, seed, 100)
    assert out.hex() == (
        "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a"
        "6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab"
        "4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701"
        "87347b66"
    )


def test_prf_length_and_determinism():
    assert len(p_sha256(b"s", b"seed", 7)) == 7
    assert prf(b"s", b"l", b"x", 32) == prf(b"s", b"l", b"x", 32)
    assert prf(b"s", b"l1", b"x", 32) != prf(b"s", b"l2", b"x", 32)


def test_lookup_known_suites():
    suite = ciphersuites.lookup(0xC02B)
    assert suite.key_length == 16
    suite256 = ciphersuites.lookup(0xC02C)
    assert suite256.key_length == 32


def test_lookup_unknown_rejected():
    with pytest.raises(HandshakeFailure):
        ciphersuites.lookup(0x0005)


def test_negotiate_prefers_client_order():
    chosen = ciphersuites.negotiate([0xC02C, 0xC02B])
    assert chosen.suite_id == 0xC02C


def test_negotiate_skips_unknown():
    chosen = ciphersuites.negotiate([0x1234, 0xC02B])
    assert chosen.suite_id == 0xC02B


def test_negotiate_no_overlap():
    with pytest.raises(HandshakeFailure):
        ciphersuites.negotiate([0x1234, 0x5678])


def test_aead_construction():
    suite = ciphersuites.DEFAULT_SUITE
    aead = suite.create_aead(b"k" * suite.key_length)
    nonce = b"n" * 12
    assert aead.decrypt(nonce, aead.encrypt(nonce, b"data")) == b"data"
