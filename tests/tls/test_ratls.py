"""RA-TLS certificates and the handshake-time quote verifier."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import RatlsError, AttestationFailed, TlsAlert
from repro.sgx.quote import Quote
from repro.tls import TlsClient, TlsConfig
from repro.tls.ratls import (
    EXT_SGX_QUOTE,
    RATLS_ORG,
    RatlsVerifier,
    build_ratls_certificate,
    quote_from_certificate,
    ratls_report_data,
)
from repro.pki.certificate import Certificate

from tests.tls.conftest import make_world

MRENCLAVE = b"\x11" * 32
MRSIGNER = b"\x22" * 32


def make_quote(report_data: bytes) -> Quote:
    return Quote(mrenclave=MRENCLAVE, mrsigner=MRSIGNER, isv_prod_id=1,
                 isv_svn=1, report_data=report_data, qe_svn=1,
                 basename=b"\x00" * 32, epid_signature=b"sig")


def make_cert(rng, name="vnf-ratls", san=("host-1",), now=0,
              validity=3600, report_data=None):
    key = generate_keypair(rng)
    data = (report_data if report_data is not None
            else ratls_report_data(key.public.to_bytes()))
    cert = build_ratls_certificate(
        key, name, make_quote(data).to_bytes(), now=now,
        validity_seconds=validity, san=san,
    )
    return key, cert


def make_verifier(now=lambda: 0, fail_evidence=False, fail_identity=False):
    calls = {"evidence": [], "identity": []}

    def verify_evidence(quote, subject):
        calls["evidence"].append(subject)
        if fail_evidence:
            raise AttestationFailed("IAS says no")

    def check_identity(quote, subject):
        calls["identity"].append(subject)
        if fail_identity:
            raise AttestationFailed("wrong MRENCLAVE")

    return RatlsVerifier(verify_evidence, check_identity, now), calls


class TestCertificate:
    def test_roundtrip_carries_quote(self, rng):
        key, cert = make_cert(rng)
        assert cert.is_self_signed()
        assert cert.subject.organization == RATLS_ORG
        cert.verify_signature(cert.public_key)
        quote = quote_from_certificate(cert)
        assert quote.mrenclave == MRENCLAVE
        assert quote.report_data == ratls_report_data(
            key.public.to_bytes()
        )

    def test_wire_roundtrip_preserves_extension(self, rng):
        _, cert = make_cert(rng)
        parsed = Certificate.from_bytes(cert.to_bytes())
        assert parsed == cert
        assert parsed.extension(EXT_SGX_QUOTE) is not None

    def test_missing_extension_rejected(self, rng, pki):
        with pytest.raises(RatlsError, match="no sgx-quote"):
            quote_from_certificate(pki.client_cert)

    def test_malformed_quote_rejected(self, rng):
        key = generate_keypair(rng)
        cert = build_ratls_certificate(key, "x", b"not-a-quote", now=0,
                                       validity_seconds=10)
        with pytest.raises(RatlsError, match="malformed"):
            quote_from_certificate(cert)

    def test_report_data_is_64_bytes_and_domain_separated(self, rng):
        key = generate_keypair(rng)
        data = ratls_report_data(key.public.to_bytes())
        assert len(data) == 64
        from repro.core.provisioning import binding_hash

        # An enrollment-protocol binding over the same key must differ
        # (for any nonce): quotes cannot be replayed across the flows.
        assert data != binding_hash(key.public.to_bytes(), b"")


class TestVerifier:
    def test_accepts_well_formed_certificate(self, rng):
        verifier, calls = make_verifier()
        _, cert = make_cert(rng)
        verifier.validate(cert)
        assert verifier.validations == verifier.accepted == 1
        assert calls == {"evidence": ["vnf-ratls"],
                         "identity": ["vnf-ratls"]}
        assert verifier.knows_subject("vnf-ratls")

    def test_rejects_tampered_key_binding(self, rng):
        verifier, calls = make_verifier()
        _, cert = make_cert(rng, report_data=b"\x00" * 64)
        with pytest.raises(RatlsError, match="bind"):
            verifier.validate(cert)
        assert verifier.rejected == 1
        assert calls["evidence"] == []     # never reached IAS

    def test_rejects_ca_issued_certificate(self, rng, pki):
        verifier, _ = make_verifier()
        with pytest.raises(RatlsError, match="self-signed"):
            verifier.validate(pki.client_cert)

    def test_rejects_expired_certificate(self, rng):
        verifier, _ = make_verifier(now=lambda: 5000)
        _, cert = make_cert(rng, validity=3600)
        with pytest.raises(Exception):
            verifier.validate(cert)

    def test_rejects_failed_attestation(self, rng):
        verifier, _ = make_verifier(fail_evidence=True)
        _, cert = make_cert(rng)
        with pytest.raises(RatlsError, match="attestation failed"):
            verifier.validate(cert)

    def test_rejects_failed_identity(self, rng):
        verifier, _ = make_verifier(fail_identity=True)
        _, cert = make_cert(rng)
        with pytest.raises(RatlsError, match="attestation failed"):
            verifier.validate(cert)

    def test_revoked_subject_rejected_before_attestation(self, rng):
        verifier, calls = make_verifier()
        _, cert = make_cert(rng)
        verifier.revoke_subject("vnf-ratls")
        with pytest.raises(RatlsError, match="revoked"):
            verifier.validate(cert)
        assert calls["evidence"] == []

    def test_revoked_host_rejects_every_subject_on_it(self, rng):
        verifier, _ = make_verifier()
        _, cert_a = make_cert(rng, name="vnf-a", san=("host-1",))
        _, cert_b = make_cert(rng, name="vnf-b", san=("host-2",))
        verifier.validate(cert_a)
        verifier.validate(cert_b)
        doomed = verifier.revoke_host("host-1")
        assert doomed == ["vnf-a"]
        with pytest.raises(RatlsError, match="revoked"):
            verifier.validate(cert_a)
        verifier.validate(cert_b)          # other host unaffected


class TestAttestedResumption:
    def _session(self, cert):
        from repro.tls.ciphersuites import SUPPORTED_SUITES
        from repro.tls.session import TlsSession

        suite = next(iter(SUPPORTED_SUITES.values()))
        return TlsSession(session_id=cert.subject.common_name.encode(),
                          master_secret=b"\x00" * 48, suite=suite,
                          peer_certificate=cert)

    def test_resumable_until_revoked(self, rng):
        verifier, _ = make_verifier()
        _, cert = make_cert(rng)
        session = self._session(cert)
        assert verifier.resumable(session)
        verifier.revoke_subject("vnf-ratls")
        assert not verifier.resumable(session)
        assert verifier.resumptions_denied == 1

    def test_host_revocation_denies_resumption(self, rng):
        verifier, _ = make_verifier()
        _, cert = make_cert(rng, san=("host-9",))
        session = self._session(cert)
        verifier.revoke_host("host-9")
        assert not verifier.resumable(session)

    def test_revocation_evicts_attached_session_caches(self, rng):
        from repro.tls.session import SessionCache

        verifier, _ = make_verifier()
        cache = SessionCache()
        verifier.attach_session_cache(cache)
        _, cert = make_cert(rng)
        cache.store(self._session(cert))
        assert len(cache) == 1
        verifier.revoke_subject("vnf-ratls")
        assert len(cache) == 0

    def test_registered_subject_covered_before_first_handshake(self, rng):
        verifier, _ = make_verifier()
        verifier.register_subject("vnf-early", ("host-3",))
        assert verifier.knows_subject("vnf-early")
        assert verifier.revoke_host("host-3") == ["vnf-early"]


class TestHandshakeIntegration:
    def test_full_handshake_with_ratls_client(self, network, pki, rng):
        verifier, calls = make_verifier(now=network.clock.now_seconds)
        world = make_world(network, pki, rng, require_client_auth=True,
                           client_validator=verifier.validate)
        key, cert = make_cert(rng, name="vnf-hs")
        client = TlsClient(TlsConfig(
            certificate_chain=[cert], private_key=key,
            truststore=pki.truststore, rng=rng,
            now=network.clock.now_seconds,
        ))
        conn = world.connect(client)
        assert conn.peer_certificate.subject.common_name == "server"
        conn.send(b"attested")
        assert conn.recv_available() == b"ATTESTED"
        assert verifier.accepted == 1
        assert calls["evidence"] == ["vnf-hs"]

    def test_handshake_rejects_bad_binding(self, network, pki, rng):
        verifier, _ = make_verifier(now=network.clock.now_seconds)
        world = make_world(network, pki, rng, require_client_auth=True,
                           client_validator=verifier.validate, port=445)
        key, cert = make_cert(rng, report_data=b"\xff" * 64)
        client = TlsClient(TlsConfig(
            certificate_chain=[cert], private_key=key,
            truststore=pki.truststore, rng=rng,
            now=network.clock.now_seconds,
        ))
        with pytest.raises(TlsAlert):
            world.connect(client)
        assert verifier.rejected == 1

    def test_revoked_identity_cannot_resume_or_reconnect(self, network,
                                                         pki, rng):
        verifier, _ = make_verifier(now=network.clock.now_seconds)
        world = make_world(network, pki, rng, require_client_auth=True,
                           client_validator=verifier.validate, port=446)
        world.server._config.resumption_validator = verifier.resumable
        verifier.attach_session_cache(world.server._config.session_cache)
        key, cert = make_cert(rng, name="vnf-rev")
        client = TlsClient(TlsConfig(
            certificate_chain=[cert], private_key=key,
            truststore=pki.truststore, rng=rng,
            now=network.clock.now_seconds,
        ))
        first = world.connect(client)
        assert not first.resumed
        assert world.connect(client).resumed

        verifier.revoke_subject("vnf-rev")
        # Revocation evicted the cached session immediately; the
        # reconnect cannot resume and its full handshake is refused.
        assert len(world.server._config.session_cache) == 0
        with pytest.raises(TlsAlert):
            world.connect(client)
        assert verifier.rejected == 1
