"""Truncation-attack detection: transport EOF without close_notify."""

from repro.tls import TlsClient



def test_clean_close_is_not_truncation(world, client_config):
    client = TlsClient(client_config)
    conn = world.connect(client)
    conn.send(b"bye")
    assert conn.recv_available() == b"BYE"
    # Find the server-side connection and close it properly... simplest:
    # close from our side; our own close is not a peer truncation.
    conn.close()
    assert not conn.truncated


def test_abrupt_transport_close_is_truncation(world, client_config):
    client = TlsClient(client_config)
    conn = world.connect(client)
    conn.send(b"hello")
    assert conn.recv_available() == b"HELLO"
    # Attacker (or crash) kills the transport without a close_notify.
    conn._channel.peer.close()
    assert conn.truncated
    assert not conn.eof  # never saw an authenticated end-of-data


def test_close_notify_sets_eof_not_truncated(world, client_config, network,
                                             pki, rng):
    # Build a server whose handler closes the TLS connection cleanly after
    # the first message.
    from repro.net.address import Address
    from repro.tls import TlsConfig, TlsServer

    config = TlsConfig(
        certificate_chain=[pki.server_cert], private_key=pki.server_key,
        rng=rng, now=network.clock.now_seconds,
    )
    server = TlsServer(config)

    def on_data(conn):
        if conn.recv_available():
            conn.close()  # sends close_notify

    address = Address("closer", 443)
    network.listen(address, lambda ch: server.accept(ch, on_data=on_data))
    client = TlsClient(client_config)
    conn = client.connect(network.connect("client-host", address),
                          server_name="closer")
    conn.send(b"trigger")
    assert conn.eof
    assert not conn.truncated
