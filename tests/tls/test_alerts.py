"""Alert encoding and naming."""

import pytest

from repro.errors import TlsAlert
from repro.tls import alerts


def test_encode_decode_roundtrip():
    payload = alerts.encode_alert(alerts.LEVEL_FATAL, alerts.UNKNOWN_CA)
    assert alerts.decode_alert(payload) == (alerts.LEVEL_FATAL,
                                            alerts.UNKNOWN_CA)


def test_decode_rejects_bad_length():
    with pytest.raises(TlsAlert):
        alerts.decode_alert(b"\x02")


def test_alert_names():
    assert alerts.alert_name(alerts.CLOSE_NOTIFY) == "close_notify"
    assert alerts.alert_name(alerts.BAD_RECORD_MAC) == "bad_record_mac"
    assert alerts.alert_name(250) == "alert_250"


def test_tls_alert_exception_carries_description():
    exc = TlsAlert(alerts.ACCESS_DENIED, "denied")
    assert exc.description == alerts.ACCESS_DENIED
