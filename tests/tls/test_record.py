"""The record layer: framing, encryption, sequence numbers, tampering."""

import pytest

from repro.errors import RecordError
from repro.tls.ciphersuites import DEFAULT_SUITE
from repro.tls.constants import (
    CONTENT_APPLICATION_DATA,
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
    MAX_RECORD_PAYLOAD,
)
from repro.tls.record import RecordLayer


def paired_layers():
    """Sender/receiver layers sharing activated keys (one direction)."""
    sender, receiver = RecordLayer(), RecordLayer()
    key, iv = b"k" * 16, b"i" * 4
    sender.activate_send(DEFAULT_SUITE, key, iv)
    receiver.activate_recv(DEFAULT_SUITE, key, iv)
    return sender, receiver


def test_plaintext_roundtrip():
    a, b = RecordLayer(), RecordLayer()
    wire = a.encode(CONTENT_HANDSHAKE, b"hello")
    records = b.feed(wire)
    assert len(records) == 1
    assert records[0].content_type == CONTENT_HANDSHAKE
    assert records[0].payload == b"hello"


def test_encrypted_roundtrip():
    sender, receiver = paired_layers()
    wire = sender.encode(CONTENT_APPLICATION_DATA, b"secret payload")
    records = receiver.feed(wire)
    assert records[0].payload == b"secret payload"
    assert b"secret payload" not in wire  # actually encrypted


def test_sequence_numbers_advance():
    sender, receiver = paired_layers()
    wires = [sender.encode(CONTENT_APPLICATION_DATA, f"m{i}".encode())
             for i in range(3)]
    for i, wire in enumerate(wires):
        assert receiver.feed(wire)[0].payload == f"m{i}".encode()


def test_reordered_records_fail_authentication():
    sender, receiver = paired_layers()
    first = sender.encode(CONTENT_APPLICATION_DATA, b"first")
    second = sender.encode(CONTENT_APPLICATION_DATA, b"second")
    with pytest.raises(RecordError):
        receiver.feed(second)  # receiver expects sequence 0


def test_replayed_record_fails():
    sender, receiver = paired_layers()
    wire = sender.encode(CONTENT_APPLICATION_DATA, b"once")
    receiver.feed(wire)
    with pytest.raises(RecordError):
        receiver.feed(wire)


def test_tampered_ciphertext_fails():
    sender, receiver = paired_layers()
    wire = bytearray(sender.encode(CONTENT_APPLICATION_DATA, b"payload"))
    wire[-1] ^= 0x01
    with pytest.raises(RecordError):
        receiver.feed(bytes(wire))


def test_partial_record_buffers():
    a, b = RecordLayer(), RecordLayer()
    wire = a.encode(CONTENT_HANDSHAKE, b"chunky")
    assert b.feed(wire[:3]) == []
    records = b.feed(wire[3:])
    assert records[0].payload == b"chunky"


def test_multiple_records_in_one_feed():
    a, b = RecordLayer(), RecordLayer()
    wire = (a.encode(CONTENT_HANDSHAKE, b"one")
            + a.encode(CONTENT_HANDSHAKE, b"two"))
    assert [r.payload for r in b.feed(wire)] == [b"one", b"two"]


def test_feed_stops_after_ccs():
    a, b = RecordLayer(), RecordLayer()
    wire = (a.encode(CONTENT_CHANGE_CIPHER_SPEC, b"\x01")
            + a.encode(CONTENT_HANDSHAKE, b"encrypted-later"))
    records = b.feed(wire)
    assert len(records) == 1
    assert records[0].content_type == CONTENT_CHANGE_CIPHER_SPEC
    # After (hypothetical) key activation, the remainder decodes.
    rest = b.feed(b"")
    assert rest[0].payload == b"encrypted-later"


def test_oversized_payload_rejected():
    a = RecordLayer()
    with pytest.raises(RecordError):
        a.encode(CONTENT_HANDSHAKE, b"x" * (MAX_RECORD_PAYLOAD + 1))


def test_encode_fragments_splits():
    a, b = RecordLayer(), RecordLayer()
    payload = b"y" * (MAX_RECORD_PAYLOAD + 100)
    wire = a.encode_fragments(CONTENT_APPLICATION_DATA, payload)
    records = b.feed(wire)
    assert len(records) == 2
    assert b"".join(r.payload for r in records) == payload


def test_bad_version_rejected():
    b = RecordLayer()
    with pytest.raises(RecordError):
        b.feed(b"\x16\x03\x01\x00\x01x")
