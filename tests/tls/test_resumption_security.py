"""Resumption must re-earn every authentication decision it reuses.

Regression suite for three bugs in the abbreviated-handshake path:

* a server with ``require_client_auth`` resumed sessions that were
  cached *without* a client certificate (auth bypass);
* the abbreviated path never consulted the CRL or the validity window
  at the current clock, so a certificate revoked or expired after
  caching kept resuming;
* ``TlsConfig.now`` defaulted to time zero, making every validity
  check trivially pass for configs that forgot to thread the clock.
"""

import pytest

from repro.errors import HandshakeFailure, TlsAlert, TlsError
from repro.tls import TlsClient, TlsConfig

from tests.tls.conftest import make_world


def _connect_full(world, client):
    conn = world.connect(client)
    assert not conn.resumed
    conn.send(b"hi")
    assert conn.recv_available() == b"HI"
    return conn


class TestClientAuthResumptionBypass:
    """S1: no abbreviated handshake for sessions cached without a
    client certificate once client auth is required."""

    def test_anonymous_session_cannot_resume_into_client_auth(
            self, network, pki, rng):
        world = make_world(network, pki, rng)
        anon = TlsConfig(truststore=pki.truststore, rng=rng,
                         now=network.clock.now_seconds)
        client = TlsClient(anon)
        first = world.connect(client)
        assert not first.resumed

        # The operator turns on client auth; the cached anonymous
        # session must not carry over the old, weaker decision.
        world.server._config.require_client_auth = True
        with pytest.raises((HandshakeFailure, TlsAlert)):
            world.connect(client)

    def test_authenticated_session_still_resumes(self, network, pki, rng,
                                                 client_config):
        world = make_world(network, pki, rng, require_client_auth=True)
        client = TlsClient(client_config)
        first = world.connect(client)
        assert not first.resumed
        assert first.peer_certificate is not None
        second = world.connect(client)
        assert second.resumed


class TestRevokedOrExpiredResumption:
    """S2: the abbreviated path rechecks CRL and validity window."""

    def test_revocation_after_caching_blocks_resumption(
            self, network, pki, rng, client_config):
        world = make_world(network, pki, rng, require_client_auth=True)
        client = TlsClient(client_config)
        _connect_full(world, client)
        assert len(world.server._config.session_cache) == 1

        now = int(network.clock.now_seconds())
        pki.ca.revoke(pki.client_cert.serial, now=now)
        world.server._config.crl = pki.ca.current_crl(now)
        # Not resumed, and the forced full handshake rejects the now-
        # revoked certificate outright.
        with pytest.raises(TlsAlert):
            world.connect(client)
        # The stale session was also evicted, not merely skipped.
        assert len(world.server._config.session_cache) == 0

    def test_expiry_after_caching_blocks_resumption(self, network, pki,
                                                    rng):
        from repro.pki.csr import create_csr
        from repro.pki.name import DistinguishedName
        from repro.crypto.keys import generate_keypair

        # A client certificate that expires long before the server's.
        short_key = generate_keypair(rng)
        short_cert = pki.ca.issue_from_csr(
            create_csr(short_key, DistinguishedName("short-lived")),
            now=0, validity=3600,
        )
        world = make_world(network, pki, rng, require_client_auth=True)
        client = TlsClient(TlsConfig(
            certificate_chain=[short_cert], private_key=short_key,
            truststore=pki.truststore, rng=rng,
            now=network.clock.now_seconds,
        ))
        _connect_full(world, client)
        assert len(world.server._config.session_cache) == 1

        # Advance simulated time beyond the client certificate's window:
        # no resumption, and the forced full handshake rejects the
        # expired certificate.
        network.clock.advance(3601.0)
        with pytest.raises(TlsAlert):
            world.connect(client)
        assert len(world.server._config.session_cache) == 0

    def test_unexpired_unrevoked_session_resumes(self, network, pki, rng,
                                                 client_config):
        world = make_world(network, pki, rng, require_client_auth=True)
        client = TlsClient(client_config)
        _connect_full(world, client)
        assert world.connect(client).resumed


class TestResumptionValidatorHook:
    """The application-level gate (RA-TLS revocation plugs in here)."""

    def test_denying_validator_forces_full_handshake(self, network, pki,
                                                     rng, client_config):
        world = make_world(network, pki, rng, require_client_auth=True)
        world.server._config.resumption_validator = lambda session: False
        client = TlsClient(client_config)
        _connect_full(world, client)
        cache = world.server._config.session_cache
        first_ids = {s.session_id for s in cache._sessions.values()}
        second = world.connect(client)
        assert not second.resumed          # degraded, not refused
        second.send(b"ok")
        assert second.recv_available() == b"OK"
        # The denied session was evicted (the completed full handshake
        # cached a fresh one); the old id cannot be retried.
        assert all(cache.lookup(sid) is None for sid in first_ids)

    def test_allowing_validator_keeps_resumption(self, network, pki, rng,
                                                 client_config):
        world = make_world(network, pki, rng, require_client_auth=True)
        seen = []
        world.server._config.resumption_validator = (
            lambda session: seen.append(session) or True
        )
        client = TlsClient(client_config)
        _connect_full(world, client)
        assert world.connect(client).resumed
        assert len(seen) == 1
        assert seen[0].peer_certificate.subject.common_name == "client"


class TestClocklessConfigGuard:
    """S3: peer-validating configurations must thread a time source."""

    def test_validating_config_without_clock_is_rejected(self, pki, rng):
        config = TlsConfig(truststore=pki.truststore, rng=rng)
        with pytest.raises(TlsError, match="time source"):
            config.validate(server_side=False)

    def test_server_config_without_clock_is_rejected(self, pki, rng):
        config = TlsConfig(
            certificate_chain=[pki.server_cert],
            private_key=pki.server_key,
            truststore=pki.truststore,
            require_client_auth=True,
            rng=rng,
        )
        with pytest.raises(TlsError, match="time source"):
            config.validate(server_side=True)

    def test_resumption_validator_alone_requires_clock(self, pki, rng):
        config = TlsConfig(
            certificate_chain=[pki.server_cert],
            private_key=pki.server_key,
            client_validator=lambda cert: None,
            resumption_validator=lambda session: True,
            rng=rng,
        )
        with pytest.raises(TlsError, match="time source"):
            config.validate(server_side=True)

    def test_non_validating_config_may_stay_clockless(self, pki, rng):
        # A bare client that never checks a peer certificate (it uses a
        # server_validator-free, truststore-free config only for framing
        # tests) is the one legitimate clockless configuration.
        config = TlsConfig(certificate_chain=[pki.client_cert],
                           private_key=pki.client_key, rng=rng)
        config.validate(server_side=False)
        assert config.effective_now() == 0
