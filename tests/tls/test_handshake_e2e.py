"""End-to-end handshakes: full, mutual, resumed, and failure modes."""

import pytest

from repro.errors import HandshakeFailure, TlsAlert, TlsError
from repro.pki.ca import CertificateAuthority
from repro.pki.csr import create_csr
from repro.pki.name import DistinguishedName
from repro.crypto.keys import generate_keypair
from repro.tls import TlsClient, TlsConfig

from tests.tls.conftest import make_world


def test_full_handshake_and_data(world, client_config):
    client = TlsClient(client_config)
    conn = world.connect(client)
    assert not conn.resumed
    assert conn.peer_certificate.subject.common_name == "server"
    conn.send(b"hello")
    assert conn.recv_available() == b"HELLO"


def test_anonymous_client_ok_without_client_auth(world, pki, rng, network):
    client = TlsClient(TlsConfig(truststore=pki.truststore, rng=rng,
                                 now=network.clock.now_seconds))
    conn = world.connect(client)
    conn.send(b"anon")
    assert conn.recv_available() == b"ANON"


def test_mutual_auth_presents_client_cert(mutual_world, client_config):
    client = TlsClient(client_config)
    conn = mutual_world.connect(client)
    conn.send(b"x")
    assert conn.recv_available() == b"X"


def test_mutual_auth_rejects_anonymous(mutual_world, pki, rng, network):
    client = TlsClient(TlsConfig(truststore=pki.truststore, rng=rng,
                                 now=network.clock.now_seconds))
    with pytest.raises((HandshakeFailure, TlsAlert)):
        mutual_world.connect(client)


def test_mutual_auth_rejects_untrusted_client(mutual_world, rng, network,
                                              pki):
    rogue_ca = CertificateAuthority(DistinguishedName("Rogue"), rng=rng)
    rogue_key = generate_keypair(rng)
    rogue_cert = rogue_ca.issue_from_csr(
        create_csr(rogue_key, DistinguishedName("rogue-client")), now=0
    )
    client = TlsClient(TlsConfig(
        certificate_chain=[rogue_cert], private_key=rogue_key,
        truststore=pki.truststore, rng=rng, now=network.clock.now_seconds,
    ))
    with pytest.raises(TlsAlert):
        mutual_world.connect(client)


def test_client_rejects_untrusted_server(network, rng, pki):
    # Server presents a certificate from a CA the client does not trust.
    rogue_ca = CertificateAuthority(DistinguishedName("Rogue"), rng=rng)
    rogue_key = generate_keypair(rng)
    rogue_cert = rogue_ca.issue_server_certificate(
        DistinguishedName("server"), rogue_key.public.to_bytes(), now=0
    )

    class FakePki:
        server_cert = rogue_cert
        server_key = rogue_key
        truststore = pki.truststore  # server side trusts the real CA
        client_cert = pki.client_cert
        client_key = pki.client_key

    world = make_world(network, FakePki, rng, port=444)
    client = TlsClient(TlsConfig(truststore=pki.truststore, rng=rng,
                                 now=network.clock.now_seconds))
    from repro.errors import UntrustedCertificate

    with pytest.raises(UntrustedCertificate):
        world.connect(client)


def test_session_resumption(world, client_config):
    client = TlsClient(client_config)
    first = world.connect(client)
    first.send(b"a")
    assert first.recv_available() == b"A"
    second = world.connect(client)
    assert second.resumed
    second.send(b"b")
    assert second.recv_available() == b"B"
    assert second.session_id == first.session_id


def test_forget_session_forces_full_handshake(world, client_config):
    client = TlsClient(client_config)
    world.connect(client)
    client.forget_session("server")
    again = world.connect(client)
    assert not again.resumed


def test_resumption_disabled_by_config(world, client_config):
    client_config.offer_resumption = False
    client = TlsClient(client_config)
    world.connect(client)
    second = world.connect(client)
    assert not second.resumed


def test_distinct_servers_have_distinct_sessions(network, pki, rng,
                                                 client_config):
    world_a = make_world(network, pki, rng, port=1001)
    world_b = make_world(network, pki, rng, port=1002)
    client = TlsClient(client_config)
    conn_a = world_a.connect(client, name="a")
    conn_b = world_b.connect(client, name="b")
    assert conn_a.session_id != conn_b.session_id


def test_expired_server_cert_rejected(network, pki, rng, client_config):
    world = make_world(network, pki, rng, port=1003)
    network.clock.advance(pki.server_cert.not_after + 10)
    client = TlsClient(client_config)
    from repro.errors import CertificateExpired

    with pytest.raises(CertificateExpired):
        world.connect(client)


def test_client_requires_truststore():
    with pytest.raises(TlsError):
        TlsClient(TlsConfig())


def test_large_transfer_fragments(world, client_config):
    client = TlsClient(client_config)
    conn = world.connect(client)
    blob = b"z" * 100_000  # crosses several 16 KiB records
    conn.send(blob)
    assert conn.recv_available() == blob.upper()


def test_close_notify(world, client_config):
    client = TlsClient(client_config)
    conn = world.connect(client)
    conn.close()
    assert conn.closed
    from repro.errors import ChannelClosed

    with pytest.raises(ChannelClosed):
        conn.send(b"after close")


def test_aes256_suite_negotiated_when_preferred(network, pki, rng,
                                                client_config):
    world = make_world(network, pki, rng, port=1004)
    client_config.cipher_suites = [0xC02C, 0xC02B]  # prefer AES-256-GCM
    client = TlsClient(client_config)
    conn = world.connect(client)
    assert "AES_256" in conn.suite_name
    conn.send(b"big keys")
    assert conn.recv_available() == b"BIG KEYS"


def test_no_common_suite_fails_cleanly(network, pki, rng, client_config):
    world = make_world(network, pki, rng, port=1005)
    client_config.cipher_suites = [0x1234]  # nothing the server knows
    client = TlsClient(client_config)
    with pytest.raises((TlsAlert, HandshakeFailure)):
        world.connect(client)
