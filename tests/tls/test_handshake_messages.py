"""Handshake message encoding/decoding and the transcript buffer."""

import pytest

from repro.errors import TlsError
from repro.pki.name import DistinguishedName
from repro.tls import handshake as hs
from repro.tls.constants import (
    HS_CERTIFICATE,
    HS_CLIENT_HELLO,
    HS_FINISHED,
)


def test_client_hello_roundtrip():
    hello = hs.ClientHello(random=b"\x01" * 32, session_id=b"\x02" * 32,
                           cipher_suites=[0xC02B, 0xC02C])
    framed = hello.encode()
    buffer = hs.HandshakeBuffer()
    [(msg_type, decoded)] = buffer.feed(framed)
    assert msg_type == HS_CLIENT_HELLO
    assert decoded == hello


def test_server_hello_roundtrip():
    sh = hs.ServerHello(random=b"\x03" * 32, session_id=b"", cipher_suite=0xC02B)
    [(_, decoded)] = hs.HandshakeBuffer().feed(sh.encode())
    assert decoded == sh


def test_certificate_msg_roundtrip(pki):
    msg = hs.CertificateMsg([pki.server_cert, pki.ca.certificate])
    [(msg_type, decoded)] = hs.HandshakeBuffer().feed(msg.encode())
    assert msg_type == HS_CERTIFICATE
    assert decoded.chain == [pki.server_cert, pki.ca.certificate]


def test_empty_certificate_msg():
    [(_, decoded)] = hs.HandshakeBuffer().feed(hs.CertificateMsg([]).encode())
    assert decoded.chain == []


def test_server_key_exchange_roundtrip():
    ske = hs.ServerKeyExchange(public_point=b"\x04" + b"\x05" * 64,
                               signature=b"\x06" * 64)
    [(_, decoded)] = hs.HandshakeBuffer().feed(ske.encode())
    assert decoded == ske


def test_certificate_request_roundtrip():
    req = hs.CertificateRequest([DistinguishedName("CA-1"),
                                 DistinguishedName("CA-2", "org")])
    [(_, decoded)] = hs.HandshakeBuffer().feed(req.encode())
    assert decoded.authorities == req.authorities


def test_signed_params_cover_randoms():
    a = hs.ServerKeyExchange.signed_params(b"c" * 32, b"s" * 32, b"point")
    b = hs.ServerKeyExchange.signed_params(b"C" * 32, b"s" * 32, b"point")
    assert a != b


def test_partial_message_buffers():
    hello = hs.ClientHello(b"\x01" * 32, b"", [0xC02B]).encode()
    buffer = hs.HandshakeBuffer()
    assert buffer.feed(hello[:10]) == []
    [(msg_type, _)] = buffer.feed(hello[10:])
    assert msg_type == HS_CLIENT_HELLO


def test_transcript_covers_both_directions():
    buffer = hs.HandshakeBuffer()
    sent = buffer.append_sent(hs.ClientHello(b"\x01" * 32, b"", [1]).encode())
    received = hs.ServerHello(b"\x02" * 32, b"", 0xC02B).encode()
    buffer.feed(received)
    from repro.crypto import sha256

    assert buffer.transcript_hash() == sha256(sent + received)


def test_snapshot_before_finished():
    buffer = hs.HandshakeBuffer()
    hello = hs.ClientHello(b"\x01" * 32, b"", [1]).encode()
    buffer.feed(hello)
    buffer.feed(hs.Finished(b"\x00" * 12).encode())
    snapshot_hash, snapshot_bytes = buffer.snapshot_before[HS_FINISHED]
    assert snapshot_bytes == hello


def test_unknown_handshake_type_rejected():
    buffer = hs.HandshakeBuffer()
    bogus = bytes([99]) + b"\x00\x00\x01" + b"\x00"
    with pytest.raises(TlsError):
        buffer.feed(bogus)


def test_trailing_bytes_rejected():
    hello = hs.ClientHello(b"\x01" * 32, b"", [1]).encode()
    padded = hello[:1] + (len(hello[4:]) + 1).to_bytes(3, "big") + hello[4:] + b"\x00"
    with pytest.raises(TlsError):
        hs.HandshakeBuffer().feed(padded)


def test_vec8_overflow_rejected():
    with pytest.raises(TlsError):
        hs.ClientHello(b"\x01" * 32, b"\x00" * 300, [1]).encode()
