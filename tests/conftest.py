"""Shared fixtures for the test suite."""

from __future__ import annotations

from typing import NamedTuple

import pytest

from repro.crypto.keys import EcPrivateKey, generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.net.simnet import Network
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.pki.csr import create_csr
from repro.pki.name import DistinguishedName
from repro.pki.truststore import Truststore


@pytest.fixture
def rng() -> HmacDrbg:
    """A deterministic DRBG; every test starts from the same stream."""
    return HmacDrbg(b"pytest-seed")


@pytest.fixture
def network() -> Network:
    """A fresh simulated network with its own virtual clock."""
    return Network()


class PkiFixture(NamedTuple):
    """A CA with one server and one client certificate."""

    ca: CertificateAuthority
    truststore: Truststore
    server_key: EcPrivateKey
    server_cert: Certificate
    client_key: EcPrivateKey
    client_cert: Certificate


@pytest.fixture
def pki(rng: HmacDrbg) -> PkiFixture:
    """A small working PKI."""
    ca = CertificateAuthority(DistinguishedName("Test-CA", "test"), now=0,
                              rng=rng)
    server_key = generate_keypair(rng)
    server_cert = ca.issue_server_certificate(
        DistinguishedName("server"), server_key.public.to_bytes(), now=0,
    )
    client_key = generate_keypair(rng)
    client_cert = ca.issue_from_csr(
        create_csr(client_key, DistinguishedName("client")), now=0,
    )
    return PkiFixture(ca, Truststore([ca.certificate]), server_key,
                      server_cert, client_key, client_cert)


@pytest.fixture(scope="session")
def shared_deployment():
    """One fully enrolled deployment shared by read-only tests.

    Tests that mutate trust state (tampering, revocation) must build their
    own deployment instead.
    """
    from repro.core import Deployment

    deployment = Deployment(seed=b"pytest-shared", vnf_count=2)
    deployment.run_workflow()
    return deployment
