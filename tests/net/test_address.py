"""Addresses: parsing and formatting."""

import pytest

from repro.errors import AddressError
from repro.net.address import Address


def test_format():
    assert str(Address("controller", 8080)) == "controller:8080"


def test_parse_roundtrip():
    assert Address.parse("host:443") == Address("host", 443)
    assert Address.parse(str(Address("a.b.c", 9))) == Address("a.b.c", 9)


@pytest.mark.parametrize("text", ["nohost", ":80", "host:", "host:abc",
                                  "host:0", "host:70000"])
def test_parse_rejects_malformed(text):
    with pytest.raises(AddressError):
        Address.parse(text)
