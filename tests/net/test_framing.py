"""Length-prefixed framing."""

import pytest

from repro.errors import FramingError
from repro.net.address import Address
from repro.net.framing import MAX_FRAME, recv_frame, send_frame, try_recv_frame


@pytest.fixture
def pair(network):
    sides = []
    network.listen(Address("s", 1), sides.append)
    return network.connect("c", Address("s", 1)), sides[0]


def test_roundtrip(pair):
    client, server = pair
    send_frame(client, b"hello")
    assert recv_frame(server) == b"hello"


def test_empty_frame(pair):
    client, server = pair
    send_frame(client, b"")
    assert recv_frame(server) == b""


def test_multiple_frames_preserve_boundaries(pair):
    client, server = pair
    send_frame(client, b"one")
    send_frame(client, b"two!")
    assert recv_frame(server) == b"one"
    assert recv_frame(server) == b"two!"


def test_oversized_frame_rejected_on_send(pair):
    client, _ = pair
    with pytest.raises(FramingError):
        send_frame(client, b"x" * (MAX_FRAME + 1))


def test_oversized_declared_length_rejected_on_recv(pair):
    client, server = pair
    client.send((MAX_FRAME + 1).to_bytes(4, "big"))
    with pytest.raises(FramingError):
        recv_frame(server)


def test_try_recv_partial_returns_none(pair):
    client, server = pair
    client.send(b"\x00\x00\x00\x05ab")  # header + 2 of 5 bytes
    assert try_recv_frame(server) is None
    client.send(b"cde")
    assert try_recv_frame(server) == b"abcde"
    assert try_recv_frame(server) is None
