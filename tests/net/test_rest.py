"""HTTP message encoding, incremental parsing, and routing."""

import pytest

from repro.errors import RestError
from repro.net.rest import HttpParser, HttpRequest, HttpResponse, RestServer


def test_request_roundtrip():
    request = HttpRequest("POST", "/wm/staticflowpusher/json",
                          {"content-type": "application/json"}, b"{}")
    parsed = HttpParser(is_server_side=True).feed(request.encode())
    assert len(parsed) == 1
    out = parsed[0]
    assert (out.method, out.path, out.body) == ("POST",
                                                "/wm/staticflowpusher/json",
                                                b"{}")
    assert out.headers["content-type"] == "application/json"


def test_response_roundtrip():
    response = HttpResponse(404, body=b"not found")
    parsed = HttpParser(is_server_side=False).feed(response.encode())
    assert parsed[0].status == 404
    assert parsed[0].body == b"not found"


def test_incremental_parse_across_chunks():
    parser = HttpParser(is_server_side=True)
    wire = HttpRequest("GET", "/a").encode() + HttpRequest("GET", "/b").encode()
    messages = []
    for i in range(0, len(wire), 7):
        messages.extend(parser.feed(wire[i:i + 7]))
    assert [m.path for m in messages] == ["/a", "/b"]


def test_pipelined_messages_in_one_feed():
    parser = HttpParser(is_server_side=True)
    wire = b"".join(HttpRequest("GET", f"/{i}").encode() for i in range(5))
    assert [m.path for m in parser.feed(wire)] == [f"/{i}" for i in range(5)]


def test_body_requires_content_length_bytes():
    parser = HttpParser(is_server_side=True)
    encoded = HttpRequest("POST", "/x", body=b"12345").encode()
    assert parser.feed(encoded[:-2]) == []
    assert parser.feed(encoded[-2:])[0].body == b"12345"


def test_malformed_request_line_rejected():
    with pytest.raises(RestError):
        HttpParser(is_server_side=True).feed(b"NONSENSE\r\n\r\n")


def test_malformed_header_rejected():
    with pytest.raises(RestError):
        HttpParser(is_server_side=True).feed(
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"
        )


def test_bad_content_length_rejected():
    with pytest.raises(RestError):
        HttpParser(is_server_side=True).feed(
            b"GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n"
        )


def test_rest_server_routing():
    server = RestServer()
    server.route("GET", "/health", lambda req: HttpResponse(200, body=b"ok"))
    assert server.dispatch(HttpRequest("GET", "/health")).status == 200
    assert server.dispatch(HttpRequest("POST", "/health")).status == 405
    assert server.dispatch(HttpRequest("GET", "/other")).status == 404


def test_rest_server_wraps_handler_errors():
    server = RestServer()

    def boom(request):
        raise RuntimeError("kaboom")

    server.route("GET", "/boom", boom)
    response = server.dispatch(HttpRequest("GET", "/boom"))
    assert response.status == 500
    assert b"kaboom" in response.body


def test_encode_normalizes_header_case():
    """Regression: a caller-supplied ``Content-Length`` (any case) used to
    slip past the case-sensitive ``setdefault("content-length", ...)``,
    emitting two conflicting Content-Length headers on the wire."""
    request = HttpRequest("POST", "/x",
                          {"Content-Length": "999",
                           "X-Custom": "v"}, b"12345")
    wire = request.encode()
    assert wire.lower().count(b"content-length") == 1
    parsed = HttpParser(is_server_side=True).feed(wire)
    assert parsed[0].body == b"12345"
    assert parsed[0].headers["x-custom"] == "v"


def test_encode_response_normalizes_header_case():
    response = HttpResponse(200, {"CONTENT-LENGTH": "7",
                                  "Content-Type": "text/plain"}, b"ok")
    wire = response.encode()
    assert wire.lower().count(b"content-length") == 1
    parsed = HttpParser(is_server_side=False).feed(wire)
    assert parsed[0].body == b"ok"
    assert parsed[0].headers["content-type"] == "text/plain"


def test_encode_strips_header_whitespace():
    wire = HttpRequest("GET", "/x", {" content-length ": "0"}).encode()
    assert wire.lower().count(b"content-length") == 1
