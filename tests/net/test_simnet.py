"""The network fabric: listeners, latency model, time charging."""

import pytest

from repro.errors import AddressError
from repro.net.address import Address
from repro.net.simnet import DATACENTER, LOOPBACK, LinkProfile


def test_listen_and_connect_counts(network):
    network.listen(Address("s", 1), lambda ch: None)
    assert network.is_listening(Address("s", 1))
    network.connect("c", Address("s", 1))
    network.connect("c", Address("s", 1))
    assert network.connections_opened == 2


def test_duplicate_listener_rejected(network):
    network.listen(Address("s", 1), lambda ch: None)
    with pytest.raises(AddressError):
        network.listen(Address("s", 1), lambda ch: None)


def test_stop_listening(network):
    network.listen(Address("s", 1), lambda ch: None)
    network.stop_listening(Address("s", 1))
    assert not network.is_listening(Address("s", 1))


def test_connection_setup_charges_round_trip(network):
    network.listen(Address("s", 1), lambda ch: None)
    before = network.clock.now()
    network.connect("c", Address("s", 1))
    elapsed = network.clock.now() - before
    assert elapsed == pytest.approx(2 * DATACENTER.latency)


def test_transfer_charges_latency_and_serialization(network):
    network.listen(Address("s", 1), lambda ch: None)
    channel = network.connect("c", Address("s", 1))
    before = network.clock.now()
    channel.send(b"x" * 1_000_000)
    elapsed = network.clock.now() - before
    expected = DATACENTER.latency + 1_000_000 / DATACENTER.bytes_per_second
    assert elapsed == pytest.approx(expected)


def test_same_host_uses_loopback(network):
    network.listen(Address("h", 1), lambda ch: None)
    before = network.clock.now()
    network.connect("h", Address("h", 1))
    assert network.clock.now() - before == pytest.approx(2 * LOOPBACK.latency)


def test_link_profile_override(network):
    slow = LinkProfile(latency=0.5, bytes_per_second=1000)
    network.set_link_profile("a", "b", slow)
    assert network.profile_between("a", "b") is slow
    assert network.profile_between("b", "a") is slow
    assert network.profile_between("a", "c") is DATACENTER


def test_transfer_time_with_zero_bandwidth_cost():
    profile = LinkProfile(latency=0.001, bytes_per_second=0)
    assert profile.transfer_time(10_000_000) == 0.001


def test_charges_recorded_under_network_account(network):
    network.listen(Address("s", 1), lambda ch: None)
    network.connect("c", Address("s", 1)).send(b"data")
    assert "network" in network.clock.charges()
