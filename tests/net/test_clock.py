"""Virtual clock: monotonicity and per-account charging."""

import pytest

from repro.net.clock import StopWatch, VirtualClock


def test_starts_at_configured_time():
    assert VirtualClock().now() == 0.0
    assert VirtualClock(100.5).now() == 100.5


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(0.25)
    assert clock.now() == 1.75


def test_cannot_go_backwards():
    with pytest.raises(ValueError):
        VirtualClock().advance(-0.1)


def test_charges_by_account():
    clock = VirtualClock()
    clock.advance(1.0, "network")
    clock.advance(2.0, "enclave-transitions")
    clock.advance(0.5, "network")
    assert clock.charges() == {"network": 1.5, "enclave-transitions": 2.0}


def test_reset_charges_keeps_time():
    clock = VirtualClock()
    clock.advance(3.0, "network")
    clock.reset_charges()
    assert clock.now() == 3.0
    assert clock.charges() == {}


def test_now_seconds_truncates():
    clock = VirtualClock(41.9)
    assert clock.now_seconds() == 41


def test_stopwatch():
    clock = VirtualClock()
    with StopWatch(clock) as sw:
        clock.advance(2.5)
    assert sw.elapsed == 2.5
