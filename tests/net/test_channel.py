"""Channels: delivery, buffering, close/EOF semantics, lockstep guard."""

import pytest

from repro.errors import ChannelClosed, ConnectionRefused, NetError
from repro.net.address import Address


@pytest.fixture
def pair(network):
    """A connected (client, server) channel pair with a passive server."""
    server_sides = []
    network.listen(Address("srv", 1), server_sides.append)
    client = network.connect("cli", Address("srv", 1))
    return client, server_sides[0]


def test_bytes_flow_both_ways(pair):
    client, server = pair
    client.send(b"ping")
    assert server.recv_available() == b"ping"
    server.send(b"pong")
    assert client.recv_available() == b"pong"


def test_recv_exactly(pair):
    client, server = pair
    client.send(b"abcdef")
    assert server.recv_exactly(3) == b"abc"
    assert server.recv_exactly(3) == b"def"


def test_recv_exactly_underflow_fails_fast(pair):
    client, server = pair
    client.send(b"ab")
    with pytest.raises(NetError):
        server.recv_exactly(3)


def test_recv_line(pair):
    client, server = pair
    client.send(b"GET / HTTP/1.1\r\nHost: x\r\n")
    assert server.recv_line() == b"GET / HTTP/1.1"
    assert server.recv_line() == b"Host: x"


def test_recv_line_incomplete(pair):
    client, server = pair
    client.send(b"partial")
    with pytest.raises(NetError):
        server.recv_line()


def test_close_propagates_eof(pair):
    client, server = pair
    client.send(b"last")
    client.close()
    assert server.recv_available() == b"last"
    assert server.eof
    with pytest.raises(ChannelClosed):
        server.recv_exactly(1)


def test_send_after_close_fails(pair):
    client, server = pair
    client.close()
    with pytest.raises(ChannelClosed):
        client.send(b"x")
    with pytest.raises(ChannelClosed):
        server.send(b"x")


def test_event_driven_handler(pair):
    client, server = pair
    seen = []
    server.on_receive(lambda ch: seen.append(ch.recv_available()))
    client.send(b"one")
    client.send(b"two")
    assert seen == [b"one", b"two"]


def test_handler_registered_after_data_fires_immediately(pair):
    client, server = pair
    client.send(b"early")
    seen = []
    server.on_receive(lambda ch: seen.append(ch.recv_available()))
    assert seen == [b"early"]


def test_connect_refused(network):
    with pytest.raises(ConnectionRefused):
        network.connect("cli", Address("nobody", 1))


def test_bytes_available(pair):
    client, server = pair
    assert server.bytes_available == 0
    client.send(b"1234")
    assert server.bytes_available == 4
