"""tools/bench_compare.py: warn-only by default, gating under --strict."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO_ROOT / "tools" / "bench_compare.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_report(directory: Path, experiment: str, seconds: float) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": experiment,
        "rows": [{"name": "row", "step_seconds": seconds}],
    }
    (directory / f"BENCH_{experiment}.json").write_text(json.dumps(payload))


class TestWarnOnly:
    def test_regression_still_exits_zero(self, bench_compare, tmp_path):
        _write_report(tmp_path / "base", "E1", 1.0)
        _write_report(tmp_path / "cur", "E1", 2.0)  # 2x slowdown
        assert bench_compare.main(
            [str(tmp_path / "base"), str(tmp_path / "cur")]) == 0

    def test_missing_baseline_is_not_an_error(self, bench_compare, tmp_path):
        _write_report(tmp_path / "cur", "E1", 1.0)
        assert bench_compare.main(
            [str(tmp_path / "nope"), str(tmp_path / "cur")]) == 0


class TestStrict:
    def test_regression_fails(self, bench_compare, tmp_path):
        _write_report(tmp_path / "base", "E1", 1.0)
        _write_report(tmp_path / "cur", "E1", 2.0)
        assert bench_compare.main(
            [str(tmp_path / "base"), str(tmp_path / "cur"),
             "--strict"]) == 1

    def test_clean_run_passes(self, bench_compare, tmp_path):
        _write_report(tmp_path / "base", "E1", 1.0)
        _write_report(tmp_path / "cur", "E1", 1.1)  # within +25%
        assert bench_compare.main(
            [str(tmp_path / "base"), str(tmp_path / "cur"),
             "--strict"]) == 0

    def test_threshold_is_respected(self, bench_compare, tmp_path):
        _write_report(tmp_path / "base", "E1", 1.0)
        _write_report(tmp_path / "cur", "E1", 1.4)
        assert bench_compare.main(
            [str(tmp_path / "base"), str(tmp_path / "cur"),
             "--strict", "--threshold", "0.5"]) == 0
        assert bench_compare.main(
            [str(tmp_path / "base"), str(tmp_path / "cur"),
             "--strict", "--threshold", "0.2"]) == 1

    def test_per_experiment_tolerance_overrides_threshold(
            self, bench_compare, tmp_path):
        # E12 carries a +50% tolerance (wall-clock heavy): a 1.4x row
        # passes there even at the default +25% threshold, while the
        # same row under E1 (no override) fails.
        assert "E12" in bench_compare.TOLERANCES
        _write_report(tmp_path / "base", "E12", 1.0)
        _write_report(tmp_path / "cur", "E12", 1.4)
        assert bench_compare.main(
            [str(tmp_path / "base"), str(tmp_path / "cur"),
             "--strict"]) == 0
        _write_report(tmp_path / "base", "E1", 1.0)
        _write_report(tmp_path / "cur", "E1", 1.4)
        assert bench_compare.main(
            [str(tmp_path / "base"), str(tmp_path / "cur"),
             "--strict"]) == 1
        # Beyond even the per-experiment headroom it still fails.
        _write_report(tmp_path / "base2", "E12", 1.0)
        _write_report(tmp_path / "cur2", "E12", 1.6)
        assert bench_compare.main(
            [str(tmp_path / "base2"), str(tmp_path / "cur2"),
             "--strict"]) == 1

    def test_malformed_input_exits_2(self, bench_compare, tmp_path):
        base = tmp_path / "base"
        base.mkdir()
        (base / "BENCH_E1.json").write_text("{not json")
        _write_report(tmp_path / "cur", "E1", 1.0)
        with pytest.raises(SystemExit):
            bench_compare.main(
                [str(base), str(tmp_path / "cur"), "--strict"])
