"""The benchmark harness: tables, measurement, workload generators."""

import json

import pytest

from repro.bench.harness import (
    BENCH_JSON_DIR_ENV,
    BENCH_SMOKE_ENV,
    BenchReport,
    Recorder,
    Summary,
    Table,
    measure,
    smoke_mode,
    summarize,
)
from repro.bench.workloads import (
    deployment_with_iml_size,
    fleet_deployment,
    synthetic_files,
)
from repro.net.clock import VirtualClock


def test_table_renders_aligned():
    table = Table("demo", ["name", "value"])
    table.add_row("alpha", 1.23456)
    table.add_row("a-much-longer-name", 42)
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "== demo =="
    assert "alpha" in rendered and "1.235" in rendered
    assert len(lines) == 5


def test_table_rejects_wrong_arity():
    table = Table("demo", ["one", "two"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_column_access():
    table = Table("demo", ["x", "y"])
    table.add_row(1, 10)
    table.add_row(2, 20)
    assert table.column("y") == [10, 20]


def test_measure_captures_both_clocks():
    clock = VirtualClock()

    def work():
        clock.advance(0.25)
        return "done"

    measurement = measure(clock, work)
    assert measurement.result == "done"
    assert measurement.simulated_seconds == pytest.approx(0.25)
    assert measurement.wall_seconds >= 0


def test_measure_without_clock():
    measurement = measure(None, lambda: 7)
    assert measurement.result == 7
    assert measurement.simulated_seconds == 0.0


def test_summarize_basic_percentiles():
    summary = summarize([5.0, 1.0, 3.0, 2.0, 4.0])
    assert summary == Summary(count=5, minimum=1.0, median=3.0,
                              p90=5.0, maximum=5.0)


def test_summarize_single_sample():
    summary = summarize([0.7])
    assert summary.minimum == summary.median == summary.p90 \
        == summary.maximum == 0.7


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


def test_summary_row_scaling():
    summary = summarize([0.001, 0.002, 0.003])
    assert summary.row(scale=1e3) == pytest.approx((1.0, 2.0, 3.0, 3.0))


def test_recorder_streams_into_registry():
    recorder = Recorder()
    for value in (0.1, 0.2, 0.3, 0.4):
        recorder.observe("e4_request_seconds", value, placement="enclave")
    recorder.observe("e4_request_seconds", 0.05, placement="plain")
    enclave = recorder.summary("e4_request_seconds", placement="enclave")
    assert enclave["count"] == 4
    assert enclave["p50"] == 0.2
    plain = recorder.summary("e4_request_seconds", placement="plain")
    assert plain["count"] == 1
    # Samples landed in a real registry histogram.
    assert recorder.registry.get("e4_request_seconds").total_count() == 5


def test_recorder_accepts_external_registry():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    recorder = Recorder(registry)
    recorder.observe("probe_seconds", 1.0)
    assert "probe_seconds" in registry


def test_recorder_rejects_labelname_mismatch():
    # The registry's get-or-create enforces labelname agreement; observing
    # an existing series with a different label set must fail loudly, not
    # silently mis-file the sample (the old behaviour).
    from repro.errors import ObservabilityError

    recorder = Recorder()
    recorder.observe("mismatch_seconds", 0.1, placement="enclave")
    with pytest.raises(ObservabilityError):
        recorder.observe("mismatch_seconds", 0.2, link="wan")
    with pytest.raises(ObservabilityError):
        recorder.observe("mismatch_seconds", 0.3)  # unlabelled vs labelled
    # The original series is intact.
    assert recorder.summary("mismatch_seconds",
                            placement="enclave")["count"] == 1


def test_bench_report_noop_without_directory(monkeypatch):
    monkeypatch.delenv(BENCH_JSON_DIR_ENV, raising=False)
    report = BenchReport("EX")
    report.add("probe", simulated=summarize([1.0]))
    assert report.write() is None


def test_bench_report_writes_json(tmp_path, monkeypatch):
    monkeypatch.setenv(BENCH_JSON_DIR_ENV, str(tmp_path / "out"))
    monkeypatch.setenv(BENCH_SMOKE_ENV, "1")
    report = BenchReport("EX")
    report.add("ecdsa_verify", simulated=summarize([0.5, 1.5]),
               wall=summarize([0.25]), speedup=3.4)
    table = Table("demo", ["name", "value"])
    table.add_row("alpha", 1)
    report.add_table(table)

    path = report.write()
    assert path is not None and path.endswith("BENCH_EX.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload == report.payload()
    assert payload["experiment"] == "EX"
    assert payload["smoke"] is True
    row = payload["rows"][0]
    assert row["name"] == "ecdsa_verify"
    assert row["speedup"] == 3.4
    assert row["simulated"]["median"] == 0.5  # nearest-rank lower median
    assert row["wall"]["count"] == 1
    assert payload["tables"] == [
        {"title": "demo", "columns": ["name", "value"],
         "rows": [["alpha", 1]]}
    ]


def test_bench_report_explicit_directory_beats_env(tmp_path, monkeypatch):
    monkeypatch.delenv(BENCH_JSON_DIR_ENV, raising=False)
    report = BenchReport("E0", directory=str(tmp_path))
    report.add("probe", count=3)
    path = report.write()
    assert path == str(tmp_path / "BENCH_E0.json")


def test_smoke_mode_parsing(monkeypatch):
    for value, expected in (("", False), ("0", False), ("1", True),
                            ("yes", True)):
        monkeypatch.setenv(BENCH_SMOKE_ENV, value)
        assert smoke_mode() is expected
    monkeypatch.delenv(BENCH_SMOKE_ENV)
    assert smoke_mode() is False


def test_synthetic_files_distinct_and_sized():
    files = synthetic_files(10, size=64)
    assert len(files) == 10
    assert all(len(content) == 64 for content in files.values())
    assert len(set(files.values())) == 10


def test_deployment_with_iml_size_scales():
    small = deployment_with_iml_size(16, seed=b"harness-small")
    large = deployment_with_iml_size(128, seed=b"harness-large")
    assert len(large.host.ima.iml) > len(small.host.ima.iml)
    # Padded hosts still pass appraisal (golden values cover the padding).
    result = large.vm.attest_host(large.agent_client, large.host.name)
    assert result.trustworthy


def test_fleet_deployment_sizing():
    fleet = fleet_deployment(3, seed=b"harness-fleet")
    assert fleet.vnf_names == ["vnf-1", "vnf-2", "vnf-3"]
