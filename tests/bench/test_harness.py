"""The benchmark harness: tables, measurement, workload generators."""

import pytest

from repro.bench.harness import (
    Recorder,
    Summary,
    Table,
    measure,
    summarize,
)
from repro.bench.workloads import (
    deployment_with_iml_size,
    fleet_deployment,
    synthetic_files,
)
from repro.net.clock import VirtualClock


def test_table_renders_aligned():
    table = Table("demo", ["name", "value"])
    table.add_row("alpha", 1.23456)
    table.add_row("a-much-longer-name", 42)
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "== demo =="
    assert "alpha" in rendered and "1.235" in rendered
    assert len(lines) == 5


def test_table_rejects_wrong_arity():
    table = Table("demo", ["one", "two"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_column_access():
    table = Table("demo", ["x", "y"])
    table.add_row(1, 10)
    table.add_row(2, 20)
    assert table.column("y") == [10, 20]


def test_measure_captures_both_clocks():
    clock = VirtualClock()

    def work():
        clock.advance(0.25)
        return "done"

    measurement = measure(clock, work)
    assert measurement.result == "done"
    assert measurement.simulated_seconds == pytest.approx(0.25)
    assert measurement.wall_seconds >= 0


def test_measure_without_clock():
    measurement = measure(None, lambda: 7)
    assert measurement.result == 7
    assert measurement.simulated_seconds == 0.0


def test_summarize_basic_percentiles():
    summary = summarize([5.0, 1.0, 3.0, 2.0, 4.0])
    assert summary == Summary(count=5, minimum=1.0, median=3.0,
                              p90=5.0, maximum=5.0)


def test_summarize_single_sample():
    summary = summarize([0.7])
    assert summary.minimum == summary.median == summary.p90 \
        == summary.maximum == 0.7


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


def test_summary_row_scaling():
    summary = summarize([0.001, 0.002, 0.003])
    assert summary.row(scale=1e3) == pytest.approx((1.0, 2.0, 3.0, 3.0))


def test_recorder_streams_into_registry():
    recorder = Recorder()
    for value in (0.1, 0.2, 0.3, 0.4):
        recorder.observe("e4_request_seconds", value, placement="enclave")
    recorder.observe("e4_request_seconds", 0.05, placement="plain")
    enclave = recorder.summary("e4_request_seconds", placement="enclave")
    assert enclave["count"] == 4
    assert enclave["p50"] == 0.2
    plain = recorder.summary("e4_request_seconds", placement="plain")
    assert plain["count"] == 1
    # Samples landed in a real registry histogram.
    assert recorder.registry.get("e4_request_seconds").total_count() == 5


def test_recorder_accepts_external_registry():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    recorder = Recorder(registry)
    recorder.observe("probe_seconds", 1.0)
    assert "probe_seconds" in registry


def test_synthetic_files_distinct_and_sized():
    files = synthetic_files(10, size=64)
    assert len(files) == 10
    assert all(len(content) == 64 for content in files.values())
    assert len(set(files.values())) == 10


def test_deployment_with_iml_size_scales():
    small = deployment_with_iml_size(16, seed=b"harness-small")
    large = deployment_with_iml_size(128, seed=b"harness-large")
    assert len(large.host.ima.iml) > len(small.host.ima.iml)
    # Padded hosts still pass appraisal (golden values cover the padding).
    result = large.vm.attest_host(large.agent_client, large.host.name)
    assert result.trustworthy


def test_fleet_deployment_sizing():
    fleet = fleet_deployment(3, seed=b"harness-fleet")
    assert fleet.vnf_names == ["vnf-1", "vnf-2", "vnf-3"]
