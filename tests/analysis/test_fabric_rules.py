"""The analyzer covers the replicated SDN fabric: the replica lock, the
replication log, and the fabric keystore are non-reentrant leaf domains,
and the live ``sdn/`` tree passes its own rules."""

import pytest

from repro.analysis import LockOrderChecker
from repro.analysis.lock_order import (
    LEAF_DOMAINS,
    LOCK_SITES,
    NON_REENTRANT_DOMAINS,
)

from tests.analysis.conftest import analyze_fixture

FABRIC_DOMAINS = ("fabric", "fabric_log", "fabric_keystore")


class TestTables:
    """The fabric rows exist and do not weaken the existing tables."""

    def test_fabric_domains_are_non_reentrant_leaves(self):
        for domain in FABRIC_DOMAINS:
            assert domain in LEAF_DOMAINS, domain
            assert domain in NON_REENTRANT_DOMAINS, domain

    def test_fabric_lock_sites_point_at_the_real_modules(self):
        assert LOCK_SITES[("sdn/fabric.py", None, "_lock")] == "fabric"
        assert LOCK_SITES[("sdn/replication.py", "ReplicationLog",
                           "_lock")] == "fabric_log"
        assert LOCK_SITES[("sdn/replication.py", "FabricKeystore",
                           "_lock")] == "fabric_keystore"

    def test_kms_rows_not_weakened(self):
        # Spot-check that the fabric rows displaced nothing pre-existing.
        assert LOCK_SITES[("kms/shard.py", None, "_lock")] == "kms_shard"
        assert "kms_shard" in LEAF_DOMAINS


@pytest.mark.parametrize("virtual_path,cls,domain", [
    ("sdn/fabric.py", "Replica", "fabric"),
    ("sdn/replication.py", "ReplicationLog", "fabric_log"),
    ("sdn/replication.py", "FabricKeystore", "fabric_keystore"),
])
class TestSeededLockViolations:
    def test_leaf_holds_chain_and_double_acquire_fire(self, virtual_path,
                                                      cls, domain):
        findings = [
            f for f in analyze_fixture("lock_order_fabric.py", virtual_path,
                                       checkers=[LockOrderChecker()])
            if f.symbol.startswith(f"{cls}.")
        ]
        assert sorted({f.rule_id for f in findings}) \
            == ["LOCK002", "LOCK005"]
        by_rule = {f.rule_id: f for f in findings}
        assert by_rule["LOCK002"].symbol == f"{cls}.leak_into_chain"
        assert domain in by_rule["LOCK002"].message
        assert by_rule["LOCK005"].symbol == f"{cls}.double_acquire"
        assert domain in by_rule["LOCK005"].message
        # The lock-then-mutate method is the documented usage: silent.
        assert not [f for f in findings
                    if f.symbol == f"{cls}.local_only"]


class TestLiveTree:
    def test_live_sdn_modules_analyze_clean(self):
        # The shipped fabric passes its own rules (lint --strict enforces
        # this too; the test pins it to the exact checker).
        from pathlib import Path

        from repro.analysis import ModuleContext, run_checkers

        src = Path(__file__).resolve().parents[2] / "src" / "repro" / "sdn"
        contexts = [
            ModuleContext(relpath=f"sdn/{path.name}",
                          source=path.read_text())
            for path in sorted(src.glob("*.py"))
        ]
        findings = run_checkers(contexts, checkers=[LockOrderChecker()])
        assert findings == []
