"""SEC rules: every seeded escape fires; the clean fixture is silent;
the enclave boundary exempts the enclave modules."""

from collections import Counter

from repro.analysis import SecretFlowChecker, module_in_enclave

from tests.analysis.conftest import analyze_fixture, fixture_context


def _bad(virtual_path="core/leaky.py"):
    return analyze_fixture("secret_flow_bad.py", virtual_path,
                           checkers=[SecretFlowChecker()])


class TestSeededViolations:
    def test_every_sec_rule_fires(self):
        fired = {f.rule_id for f in _bad()}
        assert fired == {"SEC001", "SEC002", "SEC003",
                         "SEC004", "SEC005", "SEC006"}

    def test_return_escapes(self):
        by_symbol = {f.symbol for f in _bad() if f.rule_id == "SEC001"}
        assert {"leak_by_return", "leak_by_return_tuple",
                "leak_by_alias", "leak_derived_secret"} <= by_symbol

    def test_log_and_print_escapes(self):
        by_symbol = {f.symbol for f in _bad() if f.rule_id == "SEC002"}
        assert by_symbol == {"leak_by_print", "leak_by_log"}

    def test_format_escapes(self):
        by_symbol = {f.symbol for f in _bad() if f.rule_id == "SEC003"}
        assert {"leak_by_fstring", "leak_by_percent"} <= by_symbol

    def test_exception_escapes(self):
        by_symbol = {f.symbol for f in _bad() if f.rule_id == "SEC004"}
        assert by_symbol == {"leak_by_exception", "leak_by_exception_arg"}

    def test_serialization_escapes(self):
        by_symbol = {f.symbol for f in _bad() if f.rule_id == "SEC005"}
        assert by_symbol == {"leak_by_serialize", "leak_by_hex"}

    def test_transport_escape(self):
        by_symbol = {f.symbol for f in _bad() if f.rule_id == "SEC006"}
        assert by_symbol == {"leak_by_transport"}

    def test_findings_carry_locations_and_severity(self):
        for finding in _bad():
            assert finding.severity == "error"
            assert finding.line > 0
            assert finding.location.startswith("src/repro/core/leaky.py:")


class TestCleanFixture:
    def test_clean_fixture_is_silent(self):
        findings = analyze_fixture("secret_flow_clean.py", "core/tidy.py",
                                   checkers=[SecretFlowChecker()])
        assert findings == []


class TestEnclaveBoundary:
    def test_enclave_modules_are_exempt(self):
        # The same leaky code inside the enclave boundary is legal: the
        # whole point of the paper is that secrets may live there.
        for virtual in ("sgx/epid.py", "tls/handshake.py",
                        "core/credential_enclave.py",
                        "core/attestation_enclave.py"):
            findings = analyze_fixture("secret_flow_bad.py", virtual,
                                       checkers=[SecretFlowChecker()])
            assert findings == [], virtual

    def test_boundary_predicate(self):
        assert module_in_enclave("sgx/sealing.py")
        assert module_in_enclave("tls/session.py")
        assert module_in_enclave("core/credential_enclave.py")
        assert not module_in_enclave("core/verification_manager.py")
        assert not module_in_enclave("crypto/ecdsa.py")

    def test_duplicate_findings_get_distinct_fingerprints(self):
        findings = _bad()
        counts = Counter(f.fingerprint for f in findings)
        assert all(count == 1 for count in counts.values())
