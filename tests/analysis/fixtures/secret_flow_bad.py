"""Seeded SEC violations — analyzed as a non-enclave module."""

import json


def leak_by_return(vault):
    member_secret = vault.load()
    return member_secret  # SEC001


def leak_by_return_tuple(vault):
    session_key = vault.session()
    return ("ok", session_key)  # SEC001


def leak_by_alias(vault):
    sealing_key = vault.unseal()
    copy = sealing_key
    return copy  # SEC001 (taint through assignment)


def leak_by_print(credentials):
    print("debug key:", credentials.private_key)  # SEC002


def leak_by_log(logger, master_secret):
    logger.debug("tls master %s", master_secret)  # SEC002


def leak_by_fstring(credentials):
    banner = f"key={credentials.private_key_bytes}"  # SEC003
    return banner


def leak_by_percent(master_secret):
    message = "secret: %s" % master_secret  # SEC003
    return message


def leak_by_exception(signing_key):
    raise ValueError(f"bad key {signing_key}")  # SEC004


def leak_by_exception_arg(member_secret):
    raise RuntimeError(member_secret)  # SEC004


def leak_by_serialize(credential_root):
    return json.dumps({"root": credential_root})  # SEC005


def leak_by_hex(sealing_key):
    return sealing_key.hex()  # SEC005 (receiver position)


def leak_by_transport(channel, private_key):
    channel.send(private_key)  # SEC006


def leak_derived_secret(group, member_id):
    secret = group.derive_member_secret(member_id)  # taints via source
    return secret  # SEC001
