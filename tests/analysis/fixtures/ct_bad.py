"""Seeded CT violations — analyzed as a crypto/ module (not exempt)."""


def variable_time_tag_check(tag, expected_tag):
    if tag != expected_tag:          # CT001: use ct_bytes_eq
        return False
    return True


def variable_time_mac_eq(message, mac, derive):
    computed_mac = derive(message)
    return computed_mac == mac       # CT001


def digest_compare(h, tag):
    return h.digest() == tag         # CT001 (secret-bearing call result)


def secret_dependent_branch(key):
    if key[0] & 1:                   # CT002: branch on a secret byte
        return 1
    return 0


def secret_early_return(secret):
    while secret:                    # CT002: loop guard on a secret
        secret = secret[1:]
    return 0


def secret_table_lookup(sbox, key):
    return sbox[key[0]]              # CT003: table indexed by secret byte
