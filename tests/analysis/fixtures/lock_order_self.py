"""Seeded LOCK005 — analyzed as core/fleet.py (per-host locks).

Nesting two per-host locks is the 'second host's lock' the concurrency
doc forbids (and, for the same host, a non-reentrant self-deadlock).
"""


class FleetScheduler:
    def attest_pair(self, host_a, host_b):
        lock_a = self._host_locks[host_a]
        lock_b = self._host_locks[host_b]
        with lock_a:                          # acquires 'host'
            with lock_b:                      # LOCK005: host while host
                self._attest(host_a, host_b)
