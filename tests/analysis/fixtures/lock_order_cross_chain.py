"""Seeded LOCK003 — analyzed as obs/registry.py (the metrics chain).

A metric child calling back into the core chain nests metrics → core,
which is the forbidden direction (only core → metrics is documented).
"""


class CounterChild:
    def inc_and_poke_vm(self, amount):
        with self._lock:                      # acquires 'child'
            self._value += amount
            self.vm.note_metric(amount)       # LOCK003: metrics → core
