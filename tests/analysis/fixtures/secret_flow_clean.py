"""Secret handling done right — must produce zero SEC findings."""


def derive_and_use(vault, message):
    private_key = vault.load()
    signature = sign(private_key, message)  # calls sanitize
    return signature


def sign(private_key, message):
    return ("sig", len(message))


def public_metadata(credentials):
    # Attribute loads of public metadata sanitize the taint.
    return credentials.private_key.public


def log_public_parts(logger, credentials):
    logger.info("issued serial %s", credentials.serial)
    print("curve:", credentials.private_key.curve)


def structural_checks(member_secret):
    if member_secret is None:
        raise ValueError("missing member secret")  # message has no value
    return len(member_secret)


def provision(enclave, vault):
    sealing_key = vault.unseal()
    enclave.provision(sealing_key)  # ordinary call, not a transport sink
