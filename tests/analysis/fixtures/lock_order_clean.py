"""Documented lock usage — must produce zero LOCK findings.

Analyzed as core/verification_manager.py: the VM holding its own lock
while calling the CA and the cache is exactly the documented
VM → CA → cache order; charging the clock and appending to the audit
log are chain → leaf edges, which are always legal.
"""


class VerificationManager:
    def enroll(self, name):
        with self._lock:                      # acquires 'vm'
            serial = self._ca.reserve_serial()   # ok: vm → ca
            verdict = self._cache.get(name)      # ok: vm → cache
            self.clock.advance(0.002)            # ok: vm → clock (leaf)
            self.audit.record("enroll")          # ok: vm → audit (leaf)
            return serial, verdict

    def acquire_style(self, name):
        self._lock.acquire()                  # acquires 'vm'
        try:
            return self._ca.is_issued(name)   # ok: vm → ca
        finally:
            self._lock.release()
