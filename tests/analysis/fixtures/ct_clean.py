"""Constant-time discipline done right — zero CT findings."""


def sanctioned_tag_check(ct_bytes_eq, tag, expected_tag):
    if not ct_bytes_eq(expected_tag, tag):   # blessed comparator
        raise ValueError("authentication failed")
    return True


def public_length_check(tag):
    if len(tag) != 16:                        # length is public
        raise ValueError("bad tag length")
    return tag


def structural_none_check(key):
    if key is None:                           # 'is' is not ==/!=
        raise ValueError("missing key")
    return 0


def integer_sentinel(key_id):
    # comparing a public identifier against an int literal is fine
    if key_id == 0:
        return None
    return key_id


def public_table_lookup(sbox, index):
    return sbox[index & 0xFF]                 # index is not secret-named
