"""Seeded LOCK001 — analyzed as pki/ca.py (the 'ca' lock domain).

The CA calling back into the VM while holding its own lock inverts the
documented VM → CA → cache order.
"""


class CertificateAuthority:
    def issue_and_notify(self, vm, name):
        with self._lock:                     # acquires 'ca'
            cert = self._sign(name)
            vm.revoke_stale(name)            # LOCK001: ca → vm

    def cached_issue(self, name):
        with self._lock:                     # acquires 'ca'
            return self._cache.get(name)     # ok: ca → cache (forward)

    def acquire_style(self, vm, name):
        self._lock.acquire()                 # acquires 'ca'
        try:
            self.vm.host_trusted(name)       # LOCK001: ca → vm
        finally:
            self._lock.release()
