"""Seeded KMS lock findings.

Analyzed under three virtual paths — ``kms/shard.py`` (the ``kms_shard``
domain), ``kms/tenancy.py`` (``kms_ns``), and ``pki/keystore.py``
(``keystore_entries``) — because all three modules guard their state
with a ``_lock`` leaf and the same two mistakes apply to each.
"""


class Sharded:
    def leak_into_chain(self, event):
        with self._lock:                   # acquires the module's leaf
            self.vm.on_kms_event(event)    # LOCK002: leaf holds chain

    def double_acquire(self, peer, key):
        with self._lock:                   # acquires the leaf...
            with peer._lock:               # LOCK005: ...then a sibling's
                peer.accept(key)

    def local_only(self, key, blob):
        with self._lock:
            self._blobs[key] = blob        # ok: no other lock touched
