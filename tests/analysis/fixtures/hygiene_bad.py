"""Seeded HYG violations."""

import os
import random
import time
from datetime import datetime


def swallow_everything(channel):
    try:
        return channel.recv()
    except:                              # HYG001: bare except
        return None


def shared_accumulator(item, bucket=[]):  # HYG002: mutable default
    bucket.append(item)
    return bucket


def shared_index(key, index={}):          # HYG002: mutable default
    index[key] = True
    return index


def factory_default(values=list()):       # HYG002: call factory default
    return values


def wall_clock_timeout():
    deadline = time.time() + 5            # HYG003: time.time
    time.sleep(0.1)                       # HYG003: time.sleep
    return deadline


def ambient_entropy():
    jitter = random.random()              # HYG003: random.*
    nonce = os.urandom(16)                # HYG003: os.urandom
    stamp = datetime.now()                # HYG003: datetime.now
    return jitter, nonce, stamp


def frozen_clock_tls(chain, key):
    return TlsConfig(                     # HYG004: no now= time source
        certificate_chain=chain,
        private_key=key,
    )


def rogue_process_pool(jobs):
    from concurrent.futures import ProcessPoolExecutor  # HYG005
    import multiprocessing                               # HYG005
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(len, jobs))


def rogue_executor_attribute(jobs, futures_module):
    pool = futures_module.ProcessPoolExecutor(2)         # HYG005 (attribute)
    return list(pool.map(len, jobs))
