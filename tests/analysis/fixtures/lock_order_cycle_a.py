"""Half of a seeded LOCK004 cycle — analyzed as net/clock.py.

Individually legal leaf → leaf edge (clock → audit); combined with
lock_order_cycle_b.py's audit → clock edge it closes a cycle.
"""


class VirtualClock:
    def advance_and_audit(self, seconds):
        with self._lock:                      # acquires 'clock'
            self._now += seconds
            self.audit.record("tick")         # edge clock → audit
