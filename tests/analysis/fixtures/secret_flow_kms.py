"""Seeded KMS secret leaks — analyzed as a non-enclave KMS module.

``tenant_secret`` and ``token_key`` are tainted names: outside the
shard enclave they must never be returned, logged, or sent.  The same
code analyzed as ``kms/shard.py`` is exempt (the shard IS the enclave).
"""


def leak_tenant_secret(shard, key):
    tenant_secret = shard.unseal(key)
    return tenant_secret  # SEC001


def leak_token_key_log(logger, token_key):
    logger.info("token key %s", token_key)  # SEC002


def leak_tenant_secret_transport(channel, tenant_secret):
    channel.send(tenant_secret)  # SEC006


def sanitized_value_is_clean(registry, tenant):
    value = registry.generate_secret(tenant, 32)
    return value  # ok: non-secret name, call results sanitize
