"""Other half of the seeded LOCK004 cycle — analyzed as core/events.py."""


class AuditLog:
    def record_with_timestamp(self, event):
        with self._lock:                      # acquires 'audit'
            self._events.append(event)
            self.clock.advance(0.001)         # edge audit → clock
