"""Seeded fabric lock findings.

Three classes, one per fabric lock domain.  ``Replica`` is analyzed
under ``sdn/fabric.py`` (the module-keyed ``fabric`` row);
``ReplicationLog`` and ``FabricKeystore`` carry the live class names so
the class-keyed rows for ``sdn/replication.py`` resolve (``fabric_log``
and ``fabric_keystore``).  Each class seeds the same two mistakes the
KMS fixture seeds — a chain call under the leaf and a sibling-instance
double acquire — plus a silent, correctly-locked twin method.
"""


class Replica:
    def leak_into_chain(self, event):
        with self._lock:                     # acquires the fabric leaf
            self.vm.on_fabric_event(event)   # LOCK002: leaf holds chain

    def double_acquire(self, peer, entry):
        with self._lock:                     # acquires the leaf...
            with peer._lock:                 # LOCK005: ...then a sibling's
                peer.accept(entry)

    def local_only(self, rank):
        with self._lock:
            self._suspected.add(rank)        # ok: no other lock touched


class ReplicationLog:
    def leak_into_chain(self, entry):
        with self._lock:
            self.vm.on_replicated(entry)     # LOCK002 under fabric_log

    def double_acquire(self, peer, entry):
        with self._lock:
            with peer._lock:                 # LOCK005 on fabric_log
                peer.accept(entry)

    def local_only(self, entry):
        with self._lock:
            self._entries.append(entry)      # ok


class FabricKeystore:
    def leak_into_chain(self, subject):
        with self._lock:
            self.vm.revoke_vnf(subject)      # LOCK002 under fabric_keystore

    def double_acquire(self, peer, subject):
        with self._lock:
            with peer._lock:                 # LOCK005 on fabric_keystore
                peer.revoke(subject)

    def local_only(self, subject):
        with self._lock:
            self._revoked.add(subject)       # ok
