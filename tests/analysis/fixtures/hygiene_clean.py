"""Hygienic equivalents — zero HYG findings."""

import time


def catch_named(channel):
    try:
        return channel.recv()
    except ConnectionError:
        return None


def fresh_accumulator(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def wall_measurement(run):
    start = time.perf_counter()           # allowed: wall measurement
    run()
    return time.perf_counter() - start


def simulated_timeout(clock):
    clock.advance(5.0)                    # the VirtualClock way
    return clock.now()


def seeded_bits(drbg):
    return drbg.random_bytes(16)          # the DRBG way


def clocked_tls(chain, key, clock):
    return TlsConfig(                     # now= threads the clock: clean
        certificate_chain=chain,
        private_key=key,
        now=clock.now_seconds,
    )


def forwarded_tls(**kwargs):
    return TlsConfig(**kwargs)            # **kwargs may carry now=: clean
