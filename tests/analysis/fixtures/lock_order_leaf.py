"""Seeded LOCK002 — analyzed as core/events.py (the 'audit' leaf lock).

Invoking an observer that reaches the VM *inside* the audit lock is the
inversion AuditLog.record avoids by calling observers after release.
"""


class AuditLog:
    def record_and_notify(self, event):
        with self._lock:                      # acquires leaf 'audit'
            self._events.append(event)
            self.vm.on_audit_event(event)     # LOCK002: leaf holds chain

    def record_only(self, event):
        with self._lock:                      # acquires leaf 'audit'
            self._events.append(event)        # ok: no chain lock touched
