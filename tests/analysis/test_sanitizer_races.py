"""Seeded races against real components: the sanitizer must catch them.

Each scenario takes a shipped, correctly-locked component and *de-locks*
it — its tracked lock is swapped for a plain ``threading.Lock`` the
sanitizer cannot see.  The plain lock keeps the code actually safe (no
corrupted state, deterministic tests) while faithfully reproducing what
the sanitizer would observe had the lock been deleted: shared-state
accesses with an empty candidate lockset and no happens-before edge.

Every de-locked scenario must produce a RACE001 with *both* access
stacks attached; the clean twin (same operations, real lock kept) must
stay silent — that pair is what proves the detector fires on the defect
and not on the workload.
"""

import threading

from repro.analysis.sanitizer import sanitize

_QUIET = dict(check_order=False, check_coverage=False)


def _concurrent_pair(first, second, timeout=10.0):
    """``first`` then ``second`` on two overlapping-lifetime threads.

    Both threads start before either is joined, so the sanitizer has no
    fork/join happens-before edge between them; the Event sequences the
    *actual* interleaving so the test is deterministic.
    """
    gate = threading.Event()
    failures = []

    def run_first():
        try:
            first()
        except BaseException as exc:  # pragma: no cover - debug aid
            failures.append(exc)
        finally:
            gate.set()

    def run_second():
        assert gate.wait(timeout)
        second()

    t1 = threading.Thread(target=run_first)
    t2 = threading.Thread(target=run_second)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert not failures


def _de_lock(obj, attr="_lock"):
    """Swap ``obj``'s tracked lock for one the sanitizer cannot see."""
    setattr(obj, attr, threading.Lock())


def _assert_race(san, cls_name, attrs, relpath):
    races = [r for r in san.races if r.cls_name == cls_name]
    assert races, (f"expected a race on {cls_name}, got "
                   f"{[(r.cls_name, r.attr) for r in san.races]}")
    assert {r.attr for r in races} <= set(attrs)
    for race in races:
        assert race.relpath == relpath
        assert race.first_stack, "first access stack missing"
        assert race.second_stack, "second access stack missing"
        first_files = {frame[0] for frame in race.first_stack}
        second_files = {frame[0] for frame in race.second_stack}
        assert any(__file__ in f or relpath.split("/")[-1] in f
                   for f in first_files)
        assert any(__file__ in f or relpath.split("/")[-1] in f
                   for f in second_files)
    findings = [f for f in san.finalize() if f.rule_id == "RACE001"]
    assert findings and all(f.severity == "error" for f in findings)


# ------------------------------------------------------------ virtual clock


def _clock_ops():
    from repro.net.clock import VirtualClock
    clock = VirtualClock()
    return clock, (lambda: clock.advance(1.0, account="link"),
                   lambda: clock.advance(2.0, account="enclave"))


def test_de_locked_clock_advance_races():
    with sanitize(**_QUIET) as san:
        clock, (op1, op2) = _clock_ops()
        _de_lock(clock)
        _concurrent_pair(op1, op2)
    _assert_race(san, "VirtualClock", {"_now", "_charges"}, "net/clock.py")


def test_locked_clock_advance_is_silent():
    with sanitize(**_QUIET) as san:
        clock, (op1, op2) = _clock_ops()
        _concurrent_pair(op1, op2)
        assert clock.now() == 3.0
    assert san.races == []


# ------------------------------------------------- CA serial reservation


def _ca_ops():
    from repro.crypto.rng import HmacDrbg
    from repro.pki.ca import CertificateAuthority
    from repro.pki.name import DistinguishedName

    ca = CertificateAuthority(DistinguishedName("race-ca", "tests"),
                              rng=HmacDrbg(b"sanitizer-race-ca"))
    return ca, (lambda: ca.reserve_serial(), lambda: ca.reserve_serial())


def test_de_locked_serial_reservation_races():
    with sanitize(**_QUIET) as san:
        ca, (op1, op2) = _ca_ops()
        _de_lock(ca)
        _concurrent_pair(op1, op2)
    _assert_race(san, "CertificateAuthority", {"_next_serial"}, "pki/ca.py")


def test_locked_serial_reservation_is_silent():
    with sanitize(**_QUIET) as san:
        ca, (op1, op2) = _ca_ops()
        _concurrent_pair(op1, op2)
    assert san.races == []


# ----------------------------------------------------------- KMS shard


def _shard_ops():
    from repro.crypto.rng import HmacDrbg
    from repro.kms.shard import SecretShard
    from repro.sgx.enclave import EnclaveIdentity

    shard = SecretShard(
        label="shard-race",
        fuse_key=b"f" * 16,
        identity=EnclaveIdentity(mrenclave=b"m" * 32, mrsigner=b"s" * 32,
                                 isv_prod_id=1, isv_svn=1),
        rng=HmacDrbg(b"sanitizer-race-shard"),
    )
    return shard, (
        lambda: shard.store("alpha", b"secret-a", now=0.0, cost=0.25),
        lambda: shard.store("beta", b"secret-b", now=0.0, cost=0.25),
    )


def test_de_locked_shard_store_races():
    with sanitize(**_QUIET) as san:
        shard, (op1, op2) = _shard_ops()
        _de_lock(shard)
        _concurrent_pair(op1, op2)
    _assert_race(san, "SecretShard", {"_blobs", "_busy_until"},
                 "kms/shard.py")


def test_locked_shard_store_is_silent():
    with sanitize(**_QUIET) as san:
        shard, (op1, op2) = _shard_ops()
        _concurrent_pair(op1, op2)
        assert shard.busy_until() == 0.5
    assert san.races == []


# ------------------------------------------------------ fabric keystore


def _keystore_ops():
    from repro.sdn.replication import K_REVOKE, FabricKeystore, LogEntry

    keystore = FabricKeystore()
    return keystore, (
        lambda: keystore.apply(LogEntry(1, K_REVOKE, "vnf-a")),
        lambda: keystore.apply(LogEntry(2, K_REVOKE, "vnf-b")),
    )


def test_de_locked_fabric_keystore_apply_races():
    with sanitize(**_QUIET) as san:
        keystore, (op1, op2) = _keystore_ops()
        _de_lock(keystore)
        _concurrent_pair(op1, op2)
    _assert_race(san, "FabricKeystore", {"_applied_index", "_revoked"},
                 "sdn/replication.py")


def test_locked_fabric_keystore_apply_is_silent():
    with sanitize(**_QUIET) as san:
        keystore, (op1, op2) = _keystore_ops()
        _concurrent_pair(op1, op2)
        assert keystore.revoked_subjects() == {"vnf-a", "vnf-b"}
    assert san.races == []
