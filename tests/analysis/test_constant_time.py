"""CT rules: seeded variable-time patterns fire; sanctioned patterns and
out-of-scope modules stay silent."""

from repro.analysis import ConstantTimeChecker

from tests.analysis.conftest import analyze_fixture


def _run(name, virtual_path):
    return analyze_fixture(name, virtual_path,
                           checkers=[ConstantTimeChecker()])


class TestSeededViolations:
    def test_every_ct_rule_fires(self):
        fired = {f.rule_id for f in _run("ct_bad.py", "crypto/fixture.py")}
        assert fired == {"CT001", "CT002", "CT003"}

    def test_ct001_sites(self):
        findings = _run("ct_bad.py", "crypto/fixture.py")
        by_symbol = {f.symbol for f in findings if f.rule_id == "CT001"}
        assert by_symbol == {"variable_time_tag_check",
                             "variable_time_mac_eq", "digest_compare"}
        for f in findings:
            if f.rule_id == "CT001":
                assert "ct_bytes_eq" in f.message

    def test_ct002_sites(self):
        findings = _run("ct_bad.py", "crypto/fixture.py")
        by_symbol = {f.symbol for f in findings if f.rule_id == "CT002"}
        assert by_symbol == {"secret_dependent_branch",
                             "secret_early_return"}

    def test_ct003_site_and_severity(self):
        findings = _run("ct_bad.py", "crypto/fixture.py")
        ct003 = [f for f in findings if f.rule_id == "CT003"]
        assert [f.symbol for f in ct003] == ["secret_table_lookup"]
        assert ct003[0].severity == "warning"


class TestScope:
    def test_clean_fixture_is_silent(self):
        assert _run("ct_clean.py", "crypto/fixture.py") == []

    def test_outside_crypto_is_out_of_scope(self):
        assert _run("ct_bad.py", "core/fixture.py") == []
        assert _run("ct_bad.py", "tls/fixture.py") == []

    def test_sanitizer_module_and_reference_ladder_are_exempt(self):
        assert _run("ct_bad.py", "crypto/constant_time.py") == []
        assert _run("ct_bad.py", "crypto/ec.py") == []
