"""Unit tests for the runtime race/lock-discipline sanitizer.

Covers the machinery itself: zero-cost factories, edge observation and
the dynamic order check (RACE002), lock-table coverage drift (RACE003),
the happens-before refinements that keep the Eraser machine quiet on
correct code, and the JSON report round trip into ``repro lint``.
The seeded races against real components live in
``test_sanitizer_races.py``.
"""

import threading

import pytest

from repro.analysis.sanitizer import (
    SANITIZER_RULES,
    Sanitizer,
    TrackedLock,
    TrackedRLock,
    current_sanitizer,
    load_report,
    make_lock,
    make_rlock,
    register_shared,
    sanitize,
)

_QUIET = dict(check_order=False, check_coverage=False)


def _sequenced_pair(first, second, timeout=10.0):
    """Run ``first`` then ``second`` on two *concurrent* threads.

    Both threads are started before either is joined, so the sanitizer
    sees no fork/join happens-before edge between them; an Event makes
    the actual interleaving deterministic (first fully precedes second).
    """
    gate = threading.Event()
    failures = []

    def run_first():
        try:
            first()
        except BaseException as exc:  # pragma: no cover - debug aid
            failures.append(exc)
        finally:
            gate.set()

    def run_second():
        assert gate.wait(timeout)
        second()

    t1 = threading.Thread(target=run_first)
    t2 = threading.Thread(target=run_second)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert not failures


def _skip_under_outer_sanitizer():
    if current_sanitizer() is not None:
        pytest.skip("an outer sanitizer (REPRO_SANITIZE session) is active")


class TestFactories:
    def test_plain_locks_when_not_sanitizing(self, monkeypatch):
        _skip_under_outer_sanitizer()
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert type(make_lock("clock")) is type(threading.Lock())
        assert type(make_rlock("vm")) is type(threading.RLock())

    def test_tracked_locks_inside_sanitize(self):
        with sanitize(**_QUIET) as san:
            lock = make_lock("clock")
            rlock = make_rlock("vm")
            assert current_sanitizer() is san
        assert isinstance(lock, TrackedLock)
        assert isinstance(rlock, TrackedRLock)
        assert not isinstance(lock, TrackedRLock)

    def test_env_switch_arms_the_factories(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        lock = make_lock("clock")
        assert isinstance(lock, TrackedLock)
        # With no *active* sanitizer the tracked lock degrades to a
        # plain lock: every operation still works, nothing is recorded.
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_tracked_lock_behaves_like_a_lock(self):
        with sanitize(**_QUIET):
            lock = make_lock("clock")
            with lock:
                assert lock.locked()
                assert not lock.acquire(blocking=False)
            assert lock.acquire(blocking=False)
            lock.release()

    def test_tracked_rlock_is_reentrant(self):
        with sanitize(**_QUIET) as san:
            lock = make_rlock("vm")
            with lock:
                with lock:
                    pass
        # Re-entry on the same instance is depth-tracked, not an edge.
        assert san.observed_edges() == []

    def test_rule_catalogue_names_all_three_rules(self):
        assert set(SANITIZER_RULES) == {"RACE001", "RACE002", "RACE003"}


class TestEdgeObservation:
    def test_nested_acquisition_records_one_deduped_edge(self):
        with sanitize(**_QUIET) as san:
            outer = make_lock("clock")
            inner = make_lock("audit")
            for _ in range(3):
                with outer:
                    with inner:
                        pass
        edges = san.observed_edges()
        assert [(e.outer, e.inner) for e in edges] == [("clock", "audit")]
        assert edges[0].count == 3

    def test_sequential_acquisitions_record_no_edge(self):
        with sanitize(**_QUIET) as san:
            a, b = make_lock("clock"), make_lock("audit")
            with a:
                pass
            with b:
                pass
        assert san.observed_edges() == []


class TestDynamicOrder:
    def test_leaf_holding_chain_lock_is_race002(self):
        with sanitize(check_coverage=False) as san:
            leaf = make_lock("clock")
            chain = make_rlock("vm")
            with leaf:
                with chain:
                    pass
        findings = san.finalize()
        assert [f.rule_id for f in findings] == ["RACE002"]
        assert "[LOCK002]" in findings[0].message
        assert "'clock'" in findings[0].message

    def test_documented_chain_order_is_silent(self):
        with sanitize(check_coverage=False) as san:
            vm, ca, cache = (make_rlock("vm"), make_rlock("ca"),
                             make_rlock("cache"))
            with vm:
                with ca:
                    with cache:
                        pass
        assert san.finalize() == []

    def test_chain_order_inversion_is_race002(self):
        with sanitize(check_coverage=False) as san:
            vm, ca = make_rlock("vm"), make_rlock("ca")
            with ca:
                with vm:
                    pass
        findings = san.finalize()
        assert [f.rule_id for f in findings] == ["RACE002"]
        assert "[LOCK001]" in findings[0].message

    def test_audited_safe_nestings_are_exempt(self):
        # The connection-wrapper locks legitimately hold across a TLS
        # exchange that touches session/verdict caches (SAFE_NESTINGS).
        with sanitize(check_coverage=False) as san:
            pool = make_rlock("ias_pool")
            cache = make_rlock("cache")
            with pool:
                with cache:
                    pass
        assert san.finalize() == []


class TestCoverage:
    def test_observed_lock_missing_from_table_is_an_error(self):
        from repro.net.clock import VirtualClock
        with sanitize(check_order=False, lock_sites={}) as san:
            VirtualClock().advance(1.0)
        gaps = [f for f in san.finalize() if f.rule_id == "RACE003"]
        assert gaps, "expected a coverage-gap finding"
        assert all(f.severity == "error" for f in gaps)
        assert any(f.relpath == "net/clock.py"
                   and "'clock'" in f.message for f in gaps)

    def test_table_entry_never_observed_is_a_warning(self):
        from repro.net.clock import VirtualClock
        sites = {
            ("net/clock.py", None, "_lock"): "clock",
            ("kms/shard.py", None, "_lock"): "kms_shard",
        }
        with sanitize(check_order=False, lock_sites=sites) as san:
            VirtualClock().advance(1.0)
        drift = [f for f in san.finalize() if f.rule_id == "RACE003"]
        assert [f.severity for f in drift] == ["warning"]
        assert drift[0].relpath == "kms/shard.py"
        assert "'kms_shard'" in drift[0].message
        assert "stale" in drift[0].message

    def test_exercised_table_is_silent(self):
        from repro.net.clock import VirtualClock
        sites = {("net/clock.py", None, "_lock"): "clock"}
        with sanitize(check_order=False, lock_sites=sites) as san:
            VirtualClock().advance(1.0)
        assert san.finalize() == []


class _Box:
    """Unregistered helper; each test registers its own subclass."""


def _fresh_box_cls():
    cls = type("Box", (_Box,), {})
    register_shared(cls, ["value"])
    return cls


class TestEraserMachine:
    def test_single_thread_never_races(self):
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            for i in range(10):
                box.value = i
                assert box.value == i
        assert san.races == []

    def test_fork_join_sequenced_threads_do_not_race(self):
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            box.value = 0
            for i in range(3):
                t = threading.Thread(target=lambda i=i: setattr(
                    box, "value", i))
                t.start()
                t.join()
        assert san.races == []

    def test_lock_protected_threads_do_not_race(self):
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            lock = make_lock("clock")

            def bump():
                with lock:
                    box.value = box.value + 1

            with lock:
                box.value = 0
            _sequenced_pair(bump, bump)
        assert san.races == []

    def test_unsynchronized_concurrent_writes_race(self):
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            box.value = 0
            _sequenced_pair(lambda: setattr(box, "value", 1),
                            lambda: setattr(box, "value", 2))
        assert len(san.races) == 1
        race = san.races[0]
        assert race.attr == "value"
        assert race.first_stack and race.second_stack
        assert race.first_locks == () and race.second_locks == ()

    def test_untracked_plain_lock_is_invisible(self):
        # The de-locking recipe the seeded-race tests rely on: a plain
        # threading.Lock keeps the code *actually* safe but provides no
        # tracked candidate, so the sanitizer still reports the race it
        # would have reported had the lock been removed outright.
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            plain = threading.Lock()

            def bump(n):
                with plain:
                    box.value = n

            box.value = 0
            _sequenced_pair(lambda: bump(1), lambda: bump(2))
        assert len(san.races) == 1

    def test_race_is_reported_once_per_attribute(self):
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            box.value = 0

            def hammer(n):
                for i in range(5):
                    box.value = n + i

            _sequenced_pair(lambda: hammer(10), lambda: hammer(20))
        assert len(san.races) == 1

    def test_race001_finding_carries_symbol_and_severity(self):
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            box.value = 0
            _sequenced_pair(lambda: setattr(box, "value", 1),
                            lambda: setattr(box, "value", 2))
        findings = san.finalize()
        assert [f.rule_id for f in findings] == ["RACE001"]
        assert findings[0].severity == "error"
        assert findings[0].symbol == "Box.value"

    def test_describe_renders_both_stacks(self):
        with sanitize(**_QUIET) as san:
            box = _fresh_box_cls()()
            box.value = 0
            _sequenced_pair(lambda: setattr(box, "value", 1),
                            lambda: setattr(box, "value", 2))
        text = san.races[0].describe()
        assert "race on Box.value" in text
        assert "first access:" in text
        assert "second access:" in text
        assert "test_sanitizer" in text  # frames point at this file


class TestLifecycle:
    def test_nested_sanitizers_restore_the_outer_one(self):
        before = current_sanitizer()
        with sanitize(**_QUIET) as outer:
            with sanitize(**_QUIET) as inner:
                assert current_sanitizer() is inner
            assert current_sanitizer() is outer
        assert current_sanitizer() is before

    def test_double_activate_is_an_error(self):
        san = Sanitizer(**_QUIET)
        san.activate()
        try:
            with pytest.raises(RuntimeError):
                san.activate()
        finally:
            san.deactivate()

    def test_deactivate_restores_thread_start(self):
        _skip_under_outer_sanitizer()
        original = threading.Thread.start
        with sanitize(**_QUIET):
            assert threading.Thread.start is not original
        assert threading.Thread.start is original


class TestReportPipeline:
    def _report_with_one_violation(self, tmp_path):
        with sanitize(check_coverage=False) as san:
            leaf, chain = make_lock("clock"), make_rlock("vm")
            with leaf:
                with chain:
                    pass
        path = tmp_path / "sanitizer-report.json"
        san.write_report(str(path))
        return path

    def test_round_trip_preserves_findings(self, tmp_path):
        path = self._report_with_one_violation(tmp_path)
        findings = load_report(path)
        assert [f.rule_id for f in findings] == ["RACE002"]
        assert findings[0].severity == "error"

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "findings": []}\n')
        with pytest.raises(ValueError):
            load_report(path)

    def test_lint_gates_on_sanitizer_report(self, tmp_path):
        import io

        from repro.cli import main

        path = self._report_with_one_violation(tmp_path)
        out = io.StringIO()
        assert main(["lint", "--sanitizer-report", str(path)],
                    out=out) == 1
        assert "RACE002" in out.getvalue()

    def test_lint_passes_on_clean_report(self, tmp_path):
        import io

        from repro.cli import main

        with sanitize(**_QUIET) as san:
            with make_lock("clock"):
                pass
        path = tmp_path / "clean.json"
        san.write_report(str(path))
        out = io.StringIO()
        assert main(["lint", "--sanitizer-report", str(path)],
                    out=out) == 0
