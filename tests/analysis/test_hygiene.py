"""HYG rules: bare excepts, mutable defaults, determinism bypasses."""

from repro.analysis import HygieneChecker

from tests.analysis.conftest import analyze_fixture


def _bad(virtual_path="core/fixture.py"):
    return analyze_fixture("hygiene_bad.py", virtual_path,
                           checkers=[HygieneChecker()])


class TestSeededViolations:
    def test_every_hyg_rule_fires(self):
        assert {f.rule_id for f in _bad()} == {"HYG001", "HYG002", "HYG003",
                                               "HYG004", "HYG005"}

    def test_bare_except(self):
        hyg001 = [f for f in _bad() if f.rule_id == "HYG001"]
        assert [f.symbol for f in hyg001] == ["swallow_everything"]

    def test_mutable_defaults(self):
        hyg002 = [f for f in _bad() if f.rule_id == "HYG002"]
        assert {f.symbol for f in hyg002} == {"shared_accumulator",
                                              "shared_index",
                                              "factory_default"}

    def test_determinism_bypasses(self):
        messages = [f.message for f in _bad() if f.rule_id == "HYG003"]
        joined = "\n".join(messages)
        for source in ("time.time", "time.sleep", "random.random",
                       "os.urandom", "datetime.now"):
            assert source in joined, source

    def test_clockless_tls_config(self):
        hyg004 = [f for f in _bad() if f.rule_id == "HYG004"]
        assert [f.symbol for f in hyg004] == ["frozen_clock_tls"]
        assert "now=" in hyg004[0].message

    def test_process_pool_outside_kernels(self):
        hyg005 = [f for f in _bad() if f.rule_id == "HYG005"]
        assert {f.symbol for f in hyg005} == {"rogue_process_pool",
                                              "rogue_executor_attribute"}
        joined = "\n".join(f.message for f in hyg005)
        assert "import multiprocessing" in joined
        assert "ProcessPoolExecutor" in joined
        assert "KernelPool" in joined

    def test_kernels_module_may_spawn_processes(self):
        findings = _bad(virtual_path="core/kernels.py")
        assert not [f for f in findings if f.rule_id == "HYG005"]
        # the other seeded violations still fire there
        assert [f for f in findings if f.rule_id == "HYG001"]

    def test_rng_module_may_seed_from_os(self):
        findings = analyze_fixture("hygiene_bad.py", "crypto/rng.py",
                                   checkers=[HygieneChecker()])
        assert not [f for f in findings if "os.urandom" in f.message]
        # the other bypasses still fire there
        assert [f for f in findings if "time.time" in f.message]


class TestCleanFixture:
    def test_clean_fixture_is_silent(self):
        findings = analyze_fixture("hygiene_clean.py", "core/fixture.py",
                                   checkers=[HygieneChecker()])
        assert findings == []
