"""The runner end-to-end: the live tree is clean under the committed
baseline, the CLI verb behaves, and rule selection works."""

from pathlib import Path

import pytest

from repro.analysis import all_rules, analyze_tree
from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE = REPO_ROOT / DEFAULT_BASELINE_NAME


class TestLiveTree:
    def test_live_tree_clean_under_committed_baseline(self):
        """The acceptance criterion: zero unbaselined findings."""
        report = analyze_tree()
        assert report.findings == [], [f.render() for f in report.findings]

    def test_committed_baseline_has_no_stale_entries(self):
        report = analyze_tree()
        assert report.stale_entries == [], [
            e.location_hint for e in report.stale_entries]

    def test_every_baseline_entry_is_justified(self):
        # parse_baseline enforces this, but assert on the committed file
        # so a hand-edited empty justification fails loudly here too.
        text = BASELINE.read_text()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            _, _, justification = line.partition(" -- ")
            assert len(justification.strip()) >= 15, line


class TestCli:
    def test_lint_strict_exits_zero_on_clean_tree(self):
        import io
        out = io.StringIO()
        assert main(["lint", "--strict"], out=out) == 0
        assert "0 error(s)" in out.getvalue()

    def test_lint_list_rules(self):
        import io
        out = io.StringIO()
        assert main(["lint", "--list-rules"], out=out) == 0
        text = out.getvalue()
        for rule_id in ("SEC001", "LOCK001", "CT001", "HYG001"):
            assert rule_id in text

    def test_lint_unknown_rule_exits_2(self):
        import io
        out = io.StringIO()
        assert main(["lint", "--rule", "NOPE999"], out=out) == 2

    def test_lint_rule_selection_runs_subset(self):
        import io
        out = io.StringIO()
        assert main(["lint", "--rule", "HYG001"], out=out) == 0


class TestRuleCatalogue:
    def test_all_rule_families_contribute(self):
        checkers = {checker for checker, _ in all_rules().values()}
        assert checkers == {"secret-flow", "lock-order",
                            "constant-time", "hygiene", "sanitizer"}

    def test_rule_ids_are_unique_across_checkers(self):
        # all_rules() would silently collapse duplicates; build the union
        # by hand and compare counts.
        from repro.analysis import default_checkers
        ids = [rule for checker in default_checkers()
               for rule in checker.rules]
        assert len(ids) == len(set(ids))


class TestBrokenInputs:
    def test_malformed_baseline_exits_2(self, tmp_path):
        import io
        bad = tmp_path / "baseline"
        bad.write_text("zzz SEC001 src/x.py:1\n")  # missing justification
        out = io.StringIO()
        assert main(["lint", "--baseline", str(bad)], out=out) == 2
        assert "justification" in out.getvalue()

    def test_unparseable_module_exits_2(self, tmp_path):
        import io
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "broken.py").write_text("def nope(:\n")
        out = io.StringIO()
        assert main(["lint", "--root", str(root)], out=out) == 2
