"""LOCK rules: the checker provably encodes docs/CONCURRENCY.md's
VM → CA → cache (and registry → family → child) order, catches every
seeded inversion, and stays silent on documented usage."""

from pathlib import Path

from repro.analysis import LockOrderChecker, run_checkers
from repro.analysis.lock_order import (
    ATTR_HINTS,
    LEAF_DOMAINS,
    LOCK_SITES,
    ORDER_CHAINS,
    OUTER_DOMAINS,
)

from tests.analysis.conftest import analyze_fixture, fixture_context

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestEncodedOrder:
    """The acceptance criterion: the checker's order IS the documented
    order, not a lookalike."""

    def test_core_chain_is_vm_ca_cache(self):
        assert ORDER_CHAINS["core"] == ("vm", "ca", "cache")

    def test_metrics_chain_is_registry_family_child(self):
        assert ORDER_CHAINS["metrics"] == ("registry", "family", "child")

    def test_chains_match_concurrency_doc(self):
        doc = (REPO_ROOT / "docs" / "CONCURRENCY.md").read_text()
        assert "VM lock → CA lock → cache locks" in doc
        assert "registry lock → family lock → child lock" in doc

    def test_every_documented_lock_has_a_site_mapping(self):
        domains = set(LOCK_SITES.values())
        for chain in ORDER_CHAINS.values():
            for domain in chain:
                assert domain in domains, domain
        assert LEAF_DOMAINS <= domains | {"host"}
        assert OUTER_DOMAINS <= domains

    def test_vm_ca_cache_sites_point_at_the_real_modules(self):
        assert LOCK_SITES[("core/verification_manager.py", None, "_lock")] == "vm"
        assert LOCK_SITES[("pki/ca.py", None, "_lock")] == "ca"
        assert LOCK_SITES[("core/verification_cache.py", None, "_lock")] == "cache"

    def test_ratls_verifier_lock_is_a_non_reentrant_leaf(self):
        assert LOCK_SITES[("tls/ratls.py", None, "_lock")] == "ratls"
        assert "ratls" in LEAF_DOMAINS
        from repro.analysis.lock_order import NON_REENTRANT_DOMAINS

        assert "ratls" in NON_REENTRANT_DOMAINS


class TestSeededViolations:
    def test_backward_edge_fires_lock001(self):
        findings = analyze_fixture("lock_order_backward.py", "pki/ca.py",
                                   checkers=[LockOrderChecker()])
        lock001 = [f for f in findings if f.rule_id == "LOCK001"]
        assert {f.symbol for f in lock001} == {
            "CertificateAuthority.issue_and_notify",
            "CertificateAuthority.acquire_style",
        }
        assert all("vm" in f.message and "ca" in f.message.lower()
                   for f in lock001)
        # the forward ca → cache edge in the same fixture is legal
        assert not [f for f in findings
                    if f.symbol == "CertificateAuthority.cached_issue"]

    def test_leaf_holding_chain_fires_lock002(self):
        findings = analyze_fixture("lock_order_leaf.py", "core/events.py",
                                   checkers=[LockOrderChecker()])
        assert [f.rule_id for f in findings] == ["LOCK002"]
        assert findings[0].symbol == "AuditLog.record_and_notify"

    def test_cross_chain_fires_lock003(self):
        findings = analyze_fixture("lock_order_cross_chain.py",
                                   "obs/registry.py",
                                   checkers=[LockOrderChecker()])
        assert [f.rule_id for f in findings] == ["LOCK003"]

    def test_cycle_fires_lock004(self):
        ctxs = [
            fixture_context("lock_order_cycle_a.py", "net/clock.py"),
            fixture_context("lock_order_cycle_b.py", "core/events.py"),
        ]
        findings = run_checkers(ctxs, checkers=[LockOrderChecker()])
        lock004 = [f for f in findings if f.rule_id == "LOCK004"]
        assert len(lock004) == 1
        assert "clock" in lock004[0].message
        assert "audit" in lock004[0].message
        # each half alone is legal: no cycle, no findings
        for ctx in ctxs:
            assert run_checkers([ctx], checkers=[LockOrderChecker()]) == []

    def test_double_host_lock_fires_lock005(self):
        findings = analyze_fixture("lock_order_self.py", "core/fleet.py",
                                   checkers=[LockOrderChecker()])
        assert [f.rule_id for f in findings] == ["LOCK005"]
        assert findings[0].symbol == "FleetScheduler.attest_pair"


class TestDocumentedUsageIsClean:
    def test_clean_fixture_is_silent(self):
        findings = analyze_fixture("lock_order_clean.py",
                                   "core/verification_manager.py",
                                   checkers=[LockOrderChecker()])
        assert findings == []

    def test_single_flight_host_lock_is_legal(self):
        # The real fleet scheduler holds a per-host lock across the whole
        # attestation (VM lock included) — the documented single-flight
        # mechanism must not be flagged.
        source = (
            "class FleetScheduler:\n"
            "    def attest(self, host):\n"
            "        lock = self._host_locks[host]\n"
            "        with lock:\n"
            "            return self.vm.attest_host(host)\n"
        )
        from repro.analysis import ModuleContext
        ctx = ModuleContext(relpath="core/fleet.py", source=source)
        assert run_checkers([ctx], checkers=[LockOrderChecker()]) == []


class TestHintCoverage:
    def test_hints_resolve_the_chain_domains(self):
        hinted = set(ATTR_HINTS.values())
        for domain in ("vm", "ca", "cache"):
            assert domain in hinted
