"""Baseline parsing, matching, staleness, and fingerprint stability."""

import pytest

from repro.analysis import (
    BaselineError,
    Finding,
    apply_baseline,
    assign_ordinals,
    parse_baseline,
)
from repro.analysis.baseline import format_entry


def _finding(rule="SEC001", relpath="core/x.py", line=10, symbol="f",
             message="leak", ordinal=0):
    return Finding(rule_id=rule, severity="error", relpath=relpath,
                   line=line, col=0, symbol=symbol, message=message,
                   ordinal=ordinal)


class TestParsing:
    def test_roundtrip(self):
        finding = _finding()
        line = format_entry(finding, "reviewed: primitive contract")
        entries = parse_baseline(line)
        assert len(entries) == 1
        assert entries[0].fingerprint == finding.fingerprint
        assert entries[0].rule_id == "SEC001"
        assert entries[0].justification == "reviewed: primitive contract"

    def test_comments_and_blanks_ignored(self):
        entries = parse_baseline("# header\n\n  \n")
        assert entries == []

    def test_missing_justification_rejected(self):
        with pytest.raises(BaselineError):
            parse_baseline("abc123 SEC001 src/x.py:1")
        with pytest.raises(BaselineError):
            parse_baseline("abc123 SEC001 src/x.py:1 -- ")

    def test_malformed_head_rejected(self):
        with pytest.raises(BaselineError):
            parse_baseline("abc123 -- why")

    def test_duplicate_fingerprints_rejected(self):
        finding = _finding()
        line = format_entry(finding, "why")
        with pytest.raises(BaselineError):
            apply_baseline([finding], parse_baseline(line + "\n" + line))


class TestMatching:
    def test_suppression_and_staleness(self):
        kept = _finding(message="real leak")
        fixed = _finding(message="already fixed", line=99)
        entries = parse_baseline(
            format_entry(kept, "accepted") + "\n"
            + format_entry(fixed, "accepted")
        )
        fresh, suppressed, stale = apply_baseline([kept], entries)
        assert fresh == []
        assert suppressed == [kept]
        assert [e.fingerprint for e in stale] == [fixed.fingerprint]

    def test_rule_id_mismatch_does_not_suppress(self):
        finding = _finding()
        entry_line = format_entry(finding, "why").replace(
            " SEC001 ", " HYG001 ")
        fresh, suppressed, _ = apply_baseline(
            [finding], parse_baseline(entry_line))
        assert fresh == [finding]
        assert suppressed == []


class TestFingerprints:
    def test_line_number_changes_keep_fingerprint(self):
        a = _finding(line=10)
        b = _finding(line=200)
        assert a.fingerprint == b.fingerprint

    def test_rule_module_symbol_message_all_matter(self):
        base = _finding()
        assert base.fingerprint != _finding(rule="SEC002").fingerprint
        assert base.fingerprint != _finding(relpath="core/y.py").fingerprint
        assert base.fingerprint != _finding(symbol="g").fingerprint
        assert base.fingerprint != _finding(message="other").fingerprint

    def test_ordinals_disambiguate_duplicates(self):
        twins = [_finding(line=10), _finding(line=20)]
        assigned = assign_ordinals(twins)
        assert [f.ordinal for f in assigned] == [0, 1]
        assert len({f.fingerprint for f in assigned}) == 2

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding(rule_id="X", severity="fatal", relpath="a.py",
                    line=1, col=0, symbol="f", message="m")
