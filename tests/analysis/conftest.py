"""Helpers for the analyzer tests.

Fixture files are parsed (never imported) and analyzed under a *virtual*
in-tree path, so path-scoped behavior — the enclave boundary, lock
domains keyed to modules, the ``crypto/`` constant-time scope — is
exercised exactly as it is on the live tree.
"""

from pathlib import Path
from typing import Optional, Sequence

import pytest

from repro.analysis import Checker, ModuleContext, run_checkers

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_context(name: str, virtual_path: str) -> ModuleContext:
    source = (FIXTURES / name).read_text()
    return ModuleContext(relpath=virtual_path, source=source)


def analyze_fixture(
    name: str,
    virtual_path: str,
    checkers: Sequence[Checker],
    rules: Optional[Sequence[str]] = None,
):
    return run_checkers([fixture_context(name, virtual_path)],
                        checkers=checkers, rules=rules)


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES
