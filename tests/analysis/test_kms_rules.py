"""The analyzer covers the KMS: shard/namespace/keystore locks are
leaf domains, tenant secrets are tainted names, and only the shard
module sits inside the enclave boundary."""

import pytest

from repro.analysis import (
    LockOrderChecker,
    SecretFlowChecker,
    module_in_enclave,
)
from repro.analysis.lock_order import (
    ATTR_HINTS,
    LEAF_DOMAINS,
    LOCK_SITES,
    NON_REENTRANT_DOMAINS,
)
from repro.analysis.secret_flow import SECRET_NAMES

from tests.analysis.conftest import analyze_fixture, rule_ids

KMS_DOMAINS = ("kms_shard", "kms_ns", "keystore_entries")


class TestTables:
    """The KMS rows exist and do not weaken the existing tables."""

    def test_kms_domains_are_non_reentrant_leaves(self):
        for domain in KMS_DOMAINS:
            assert domain in LEAF_DOMAINS, domain
            assert domain in NON_REENTRANT_DOMAINS, domain

    def test_kms_lock_sites_point_at_the_real_modules(self):
        assert LOCK_SITES[("kms/shard.py", None, "_lock")] == "kms_shard"
        assert LOCK_SITES[("kms/tenancy.py", None, "_lock")] == "kms_ns"
        assert LOCK_SITES[("kms/service.py", None, "_trails_lock")] == "kms_ns"
        assert LOCK_SITES[("pki/keystore.py", None, "_lock")] \
            == "keystore_entries"

    def test_kms_attr_hints_resolve_cross_object_calls(self):
        assert ATTR_HINTS["_shards"] == "kms_shard"
        assert ATTR_HINTS["_namespaces"] == "kms_ns"

    def test_tenant_secret_names_are_tainted(self):
        for name in ("tenant_secret", "_tenant_secret",
                     "token_key", "_token_key"):
            assert name in SECRET_NAMES, name

    def test_core_secret_names_not_weakened(self):
        # Spot-check that adding KMS names dropped nothing pre-existing.
        for name in ("private_key", "master_secret", "sealing_key"):
            assert name in SECRET_NAMES, name


class TestEnclaveBoundary:
    def test_only_the_shard_module_is_enclave(self):
        assert module_in_enclave("kms/shard.py")
        for module in ("kms/tenancy.py", "kms/store.py",
                       "kms/service.py", "kms/api.py", "kms/hashring.py"):
            assert not module_in_enclave(module), module


@pytest.mark.parametrize("virtual_path,domain", [
    ("kms/shard.py", "kms_shard"),
    ("kms/tenancy.py", "kms_ns"),
    ("pki/keystore.py", "keystore_entries"),
])
class TestSeededLockViolations:
    def test_leaf_holds_chain_and_double_acquire_fire(self, virtual_path,
                                                      domain):
        findings = analyze_fixture("lock_order_kms.py", virtual_path,
                                   checkers=[LockOrderChecker()])
        assert rule_ids(findings) == ["LOCK002", "LOCK005"]
        by_rule = {f.rule_id: f for f in findings}
        assert by_rule["LOCK002"].symbol == "Sharded.leak_into_chain"
        assert domain in by_rule["LOCK002"].message
        assert by_rule["LOCK005"].symbol == "Sharded.double_acquire"
        assert domain in by_rule["LOCK005"].message
        # The lock-then-mutate method is the documented usage: silent.
        assert not [f for f in findings if f.symbol == "Sharded.local_only"]


class TestSeededSecretLeaks:
    def test_leaks_fire_outside_the_enclave(self):
        findings = analyze_fixture("secret_flow_kms.py", "kms/tenancy.py",
                                   checkers=[SecretFlowChecker()])
        assert rule_ids(findings) == ["SEC001", "SEC002", "SEC006"]
        symbols = {f.rule_id: f.symbol for f in findings}
        assert symbols == {
            "SEC001": "leak_tenant_secret",
            "SEC002": "leak_token_key_log",
            "SEC006": "leak_tenant_secret_transport",
        }

    def test_shard_module_is_exempt(self):
        findings = analyze_fixture("secret_flow_kms.py", "kms/shard.py",
                                   checkers=[SecretFlowChecker()])
        assert findings == []

    def test_live_kms_modules_analyze_clean(self):
        # The shipped KMS passes its own rules (lint --strict enforces
        # this too; the test pins it to the exact checker set).
        from pathlib import Path

        from repro.analysis import ModuleContext, run_checkers

        src = Path(__file__).resolve().parents[2] / "src" / "repro" / "kms"
        contexts = [
            ModuleContext(relpath=f"kms/{path.name}",
                          source=path.read_text())
            for path in sorted(src.glob("*.py"))
        ]
        findings = run_checkers(contexts, checkers=[LockOrderChecker(),
                                                    SecretFlowChecker()])
        assert findings == []
