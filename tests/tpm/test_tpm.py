"""The TPM device: PCR banks, quotes, AIK certification."""

import dataclasses

import pytest

from repro.crypto.sha256 import sha256
from repro.errors import InvalidSignature, TpmError
from repro.pki.ca import CertificateAuthority
from repro.pki.name import DistinguishedName
from repro.tpm.aik import issue_aik_certificate
from repro.tpm.quote import TpmQuote
from repro.tpm.tpm import NUM_PCRS, TpmDevice


@pytest.fixture
def tpm(rng):
    return TpmDevice(rng)


def test_extend_and_read(tpm):
    value = tpm.extend(10, sha256(b"event"))
    assert tpm.read_pcr(10) == value
    assert tpm.read_pcr(11) != value or tpm.read_pcr(11) == bytes(32)


def test_no_pcr_set_api(tpm):
    # The entire E7 security argument: extend-only, no setter.
    assert not hasattr(tpm, "set_pcr")
    assert not hasattr(tpm, "write_pcr")


def test_index_bounds(tpm):
    with pytest.raises(TpmError):
        tpm.extend(NUM_PCRS, sha256(b"x"))
    with pytest.raises(TpmError):
        tpm.read_pcr(-1)


def test_quote_verifies(tpm):
    tpm.extend(10, sha256(b"measurement"))
    quote = tpm.quote([10], nonce=b"challenge")
    quote.verify(tpm.aik_public)
    assert quote.value_of(10) == tpm.read_pcr(10)
    assert quote.nonce == b"challenge"


def test_quote_selection_sorted_and_deduplicated(tpm):
    quote = tpm.quote([12, 10, 10], nonce=b"n")
    assert [index for index, _ in quote.pcr_values] == [10, 12]


def test_quote_requires_selection(tpm):
    with pytest.raises(TpmError):
        tpm.quote([], nonce=b"n")


def test_quote_tamper_detected(tpm):
    quote = tpm.quote([10], nonce=b"n")
    forged = dataclasses.replace(
        quote, pcr_values=((10, sha256(b"fake")),)
    )
    with pytest.raises(InvalidSignature):
        forged.verify(tpm.aik_public)


def test_quote_nonce_binds(tpm):
    quote = tpm.quote([10], nonce=b"fresh")
    forged = dataclasses.replace(quote, nonce=b"replay")
    with pytest.raises(InvalidSignature):
        forged.verify(tpm.aik_public)


def test_quote_serialization_roundtrip(tpm):
    tpm.extend(10, sha256(b"m"))
    quote = tpm.quote([10, 11], nonce=b"n")
    restored = TpmQuote.from_bytes(quote.to_bytes())
    assert restored == quote
    restored.verify(tpm.aik_public)


def test_value_of_missing_pcr(tpm):
    quote = tpm.quote([10], nonce=b"n")
    with pytest.raises(TpmError):
        quote.value_of(5)


def test_reboot_resets_pcrs(tpm):
    tpm.extend(10, sha256(b"m"))
    tpm.reboot()
    assert tpm.read_pcr(10) == bytes(32)


def test_distinct_tpms_distinct_aiks(rng):
    assert (TpmDevice(rng).aik_public.to_bytes()
            != TpmDevice(rng).aik_public.to_bytes())


def test_aik_certification(tpm, rng):
    ca = CertificateAuthority(DistinguishedName("Privacy-CA"), rng=rng)
    cert = issue_aik_certificate(ca, tpm, "host-1", now=0)
    assert cert.subject.common_name == "aik:host-1"
    assert cert.public_key_bytes == tpm.aik_public.to_bytes()
    cert.verify_signature(ca.certificate.public_key)
