"""VNF-side REST access to the controller.

:class:`VnfRestClient` is the *baseline* client: it holds its credentials
in ordinary process memory and runs TLS outside any enclave — exactly what
the paper argues against.  The protected variant, where the handshake and
session keys live inside an SGX enclave, is
:class:`repro.core.credential_enclave.EnclaveBackedClient`; both expose the
same ``request`` API so experiments can swap them.
"""

from __future__ import annotations

import contextlib
import json
from typing import Dict, List, Optional

from repro.crypto.keys import EcPrivateKey
from repro.crypto.rng import HmacDrbg
from repro.errors import ControllerUnavailable, NetError, SdnError
from repro.net.address import Address
from repro.net.rest import TRANSIENT_STATUSES, HttpParser, HttpRequest, HttpResponse
from repro.net.retry import RetryingMixin
from repro.net.simnet import Network
from repro.pki.certificate import Certificate
from repro.pki.truststore import Truststore
from repro.sdn.northbound import (
    FLOW_LIST_PATH,
    FLOW_PUSHER_PATH,
    MODE_HTTP,
    MODE_HTTPS,
    MODE_TRUSTED,
    SUMMARY_PATH,
)
from repro.tls import TlsClient, TlsConfig


class ControllerOps:
    """Controller operations shared by every client flavour.

    Subclasses provide ``request_json(method, path, payload)``; the
    baseline client implements it over plain/TLS transport and the
    enclave-backed client over ECALLs.
    """

    def request_json(self, method: str, path: str,
                     payload: Optional[dict] = None) -> dict:
        raise NotImplementedError

    def summary(self) -> dict:
        """Controller summary stats."""
        return self.request_json("GET", SUMMARY_PATH)

    def push_flow(self, switch: str, name: str, match: Dict[str, object],
                  actions: str, priority: int = 100) -> dict:
        """Install a static flow rule."""
        return self.request_json("POST", FLOW_PUSHER_PATH, {
            "switch": switch, "name": name, "match": match,
            "actions": actions, "priority": priority,
        })

    def delete_flow(self, name: str) -> dict:
        """Remove a static flow rule."""
        return self.request_json("DELETE", FLOW_PUSHER_PATH, {"name": name})

    def list_flows(self) -> dict:
        """All static flows, grouped by switch."""
        return self.request_json("GET", FLOW_LIST_PATH)


class VnfRestClient(ControllerOps, RetryingMixin):
    """A REST client for one northbound endpoint, in any security mode.

    With a :class:`~repro.net.retry.RetryPolicy` configured
    (:meth:`configure_retries`), transient transport failures (refused
    connects, mid-stream drops) and transient controller statuses
    (502/503/504/429, surfaced as
    :class:`~repro.errors.ControllerUnavailable`) are retried with
    backoff; each re-attempt re-establishes the connection — including a
    fresh TLS handshake in the HTTPS modes.
    """

    def __init__(self, network: Network, controller_address: Address,
                 source_host: str, mode: str,
                 truststore: Optional[Truststore] = None,
                 client_chain: Optional[List[Certificate]] = None,
                 client_key: Optional[EcPrivateKey] = None,
                 rng: Optional[HmacDrbg] = None) -> None:
        if mode not in (MODE_HTTP, MODE_HTTPS, MODE_TRUSTED):
            raise SdnError(f"unknown mode {mode!r}")
        if mode != MODE_HTTP and truststore is None:
            raise SdnError(f"mode {mode!r} requires a truststore")
        self._network = network
        self._address = controller_address
        self._source_host = source_host
        self.mode = mode
        self._stream = None
        self._parser: Optional[HttpParser] = None
        self._tls_client: Optional[TlsClient] = None
        if mode != MODE_HTTP:
            self._tls_client = TlsClient(TlsConfig(
                certificate_chain=list(client_chain or []),
                private_key=client_key,
                truststore=truststore,
                rng=rng,
                now=network.clock.now_seconds,
            ))

    # ----------------------------------------------------------- transport

    def _ensure_stream(self):
        if self._stream is not None and not self._stream.closed:
            return self._stream
        channel = self._network.connect(self._source_host, self._address)
        if self._tls_client is None:
            self._stream = channel
        else:
            self._stream = self._tls_client.connect(
                channel, server_name=str(self._address)
            )
        self._parser = HttpParser(is_server_side=False)
        return self._stream

    def close(self) -> None:
        """Close the persistent connection (if any)."""
        if self._stream is not None and not self._stream.closed:
            # a dropped channel cannot block a local close
            with contextlib.suppress(NetError):
                self._stream.close()
        self._stream = None

    # ------------------------------------------------------------- requests

    def request(self, method: str, path: str,
                body: bytes = b"") -> HttpResponse:
        """One request/response exchange over the persistent connection.

        Without a retry policy this returns whatever the controller
        answered, any status.  With one, transient statuses are raised
        as :class:`~repro.errors.ControllerUnavailable` and retried; on
        give-up that exception propagates.
        """
        encoded = HttpRequest(method, path, body=body).encode()
        return self._retrying(
            lambda: self._request_once(encoded),
            operation="northbound", clock=self._network.clock,
            retryable=(NetError, ControllerUnavailable),
        )

    def _request_once(self, encoded: bytes) -> HttpResponse:
        try:
            stream = self._ensure_stream()
            stream.send(encoded)
            responses = self._parser.feed(stream.recv_available())
        except NetError:
            self.close()  # reconnect (and re-handshake) on the next attempt
            raise
        if not responses:
            self.close()
            raise SdnError("controller returned no response")
        response = responses[0]
        if (self._retry_policy is not None
                and self._retry_policy.max_attempts > 1
                and response.status in TRANSIENT_STATUSES):
            raise ControllerUnavailable(
                f"controller returned {response.status}: "
                f"{response.body.decode(errors='replace')}"
            )
        return response

    def request_json(self, method: str, path: str,
                     payload: Optional[dict] = None) -> dict:
        """JSON request/response convenience wrapper."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        response = self.request(method, path, body)
        if response.status != 200:
            raise SdnError(
                f"{method} {path} -> {response.status}: "
                f"{response.body.decode(errors='replace')}"
            )
        return json.loads(response.body.decode("utf-8"))
