"""The trusted SDN fabric: replicated controllers, failover, fan-out.

This is the TruSDN-scale control plane (ROADMAP open item 5): N
:class:`~repro.sdn.controller.FloodlightController` replicas share one
forwarding-plane :class:`~repro.sdn.topology.Topology` and replicate a
CA-cert keystore through a leader-based log (:mod:`repro.sdn.replication`)
over the simulated network.  Every endpoint switch is *homed* on one
replica; a replica crash (injected with
:meth:`~repro.net.faults.FaultPlan.crash_host`) is survived by
:meth:`TrustedFabric.converge`, which probes the replicas over the
network, re-syncs stragglers, elects the lowest live rank leader and
re-homes orphaned switches round-robin across the survivors.

Revocation fan-out: :meth:`TrustedFabric.revoke_vnf` /
:meth:`TrustedFabric.distrust_host` first delegate to the Verification
Manager when one is attached (CA revocation + CRL push + RA-TLS session
eviction, exactly the single-controller semantics), then replicate the
revocation to every live replica and push it to every homed switch.
Per-switch pushes are charged on each replica's *private* pipeline
timeline (the KMS shard model), so fan-out latency scales with
``switches / replicas``, not ``switches`` — experiment E15 measures
this at 1k endpoints.

Determinism: the fabric draws no randomness and consumes no CA serials
— building a fabric and enrolling through it leaves the deployment's
credential bytes identical to the single-controller path (gated in
E15).  All simulated costs are charged to dedicated clock accounts
(``fabric-probe``, ``fabric-fanout``, ``fabric-converge``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.sanitizer import make_lock
from repro.errors import (
    ChannelClosed,
    ConnectionRefused,
    ControllerUnavailable,
    FabricError,
    NetError,
    ReplicationError,
    RevocationError,
)
from repro.net.address import Address
from repro.net.framing import recv_frame, send_frame, try_recv_frame
from repro.net.simnet import Network
from repro.sdn.controller import FloodlightController
from repro.sdn.replication import (
    K_ANCHOR,
    K_CREDENTIAL,
    K_DISTRUST,
    K_REVOKE,
    FabricKeystore,
    LogEntry,
    ReplicationLog,
    credential_payload,
)
from repro.sdn.switch import Switch
from repro.sdn.topology import Topology

#: Replication/management port every replica listens on (OpenFlow's).
REPLICATION_PORT = 6653

#: Simulated cost of pushing one revocation update to one homed switch,
#: charged on the home replica's private timeline (pipelined, so R
#: replicas push to their switch shares in parallel).
PUSH_COST = 20e-6

#: Simulated cost of adopting one orphaned switch during failover
#: (handler takeover + full revocation-view sync).
REHOME_COST = 0.002

#: Simulated time burned establishing that a dead replica is dead (a
#: refused connect is otherwise free on the virtual clock).
PROBE_TIMEOUT = 0.002

ACCOUNT_PROBE = "fabric-probe"
ACCOUNT_FANOUT = "fabric-fanout"
ACCOUNT_CONVERGE = "fabric-converge"


@dataclass
class FanoutReport:
    """What one replicated revocation did, and what it cost."""

    kind: str
    subjects: List[str] = field(default_factory=list)
    acked_ranks: List[int] = field(default_factory=list)
    unreachable_ranks: List[int] = field(default_factory=list)
    switches_reached: int = 0
    switches_stale: int = 0
    replication_seconds: float = 0.0
    drain_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass
class ConvergenceReport:
    """What :meth:`TrustedFabric.converge` observed and repaired."""

    crashed_ranks: List[int] = field(default_factory=list)
    live_ranks: List[int] = field(default_factory=list)
    new_leader: int = 0
    synced_ranks: List[int] = field(default_factory=list)
    switches_rehomed: int = 0
    probes: int = 0
    seconds: float = 0.0


class ControllerReplica:
    """One controller replica: a Floodlight core plus the replication
    endpoint serving the log/keystore protocol on the sim network.

    The ``_lock`` (domain ``fabric``) guards only the pipeline timeline
    ``_busy_until``; log and keystore have their own leaf locks.
    """

    def __init__(self, rank: int, network: Network, host: str,
                 topology: Topology,
                 controller: Optional[FloodlightController] = None) -> None:
        self.rank = rank
        self.host = host
        self.address = Address(host, REPLICATION_PORT)
        self.controller = controller or FloodlightController(
            name=f"floodlight-r{rank}", topology=topology
        )
        self.log = ReplicationLog()
        self.keystore = FabricKeystore()
        self.entries_replicated = 0
        self._network = network
        self._clock = network.clock
        self._peers: List[Tuple[int, Address]] = []
        self._suspected: Set[int] = set()
        self._busy_until = 0.0
        self._lock = make_lock("fabric")
        network.listen(self.address, self._accept)

    # ------------------------------------------------------------- timeline

    def occupy(self, now: float, cost: float) -> float:
        """Queue ``cost`` seconds of work on this replica's pipeline;
        returns the completion time (the KMS shard-time model)."""
        with self._lock:
            start = now if now > self._busy_until else self._busy_until
            self._busy_until = start + cost
            return self._busy_until

    def busy_until(self) -> float:
        with self._lock:
            return self._busy_until

    # ----------------------------------------------------------- membership

    def set_peers(self, peers: List[Tuple[int, Address]]) -> None:
        """Install the replication peer set (every other replica)."""
        self._peers = [(rank, address) for rank, address in peers
                       if rank != self.rank]

    def set_suspected(self, ranks: Set[int]) -> None:
        """Replace the suspected-dead peer set (converge() resets it to
        the probe-verified crash list, restoring replication to peers
        that were only transiently unreachable)."""
        self._suspected = set(ranks)

    # -------------------------------------------------------------- serving

    def _accept(self, channel) -> None:
        def on_data(ch) -> None:
            while True:
                frame = try_recv_frame(ch)
                if frame is None:
                    return
                try:
                    request = json.loads(frame.decode("utf-8"))
                except ValueError:
                    reply = {"ok": False, "error": "malformed request"}
                else:
                    reply = self._handle(request)
                send_frame(ch, json.dumps(reply, sort_keys=True
                                          ).encode("utf-8"))

        channel.on_receive(on_data)

    def _handle(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        if op == "status":
            return {
                "ok": True,
                "rank": self.rank,
                "lastIndex": self.log.last_index,
                "digest": self.keystore.digest().hex(),
            }
        if op == "append":
            try:
                entries = [LogEntry.from_wire(e)
                           for e in request.get("entries", [])]
                revoked = self.apply_entries(entries)
            except ReplicationError:
                return {"ok": False, "needFrom": self.log.last_index}
            return {"ok": True, "lastIndex": self.log.last_index,
                    "revoked": revoked}
        if op == "sync":
            after = int(request.get("after", 0))
            return {"ok": True, "entries": [
                entry.to_wire() for entry in self.log.entries_after(after)
            ]}
        if op == "propose":
            entry = self.log.append(
                str(request["kind"]), str(request["subject"]),
                bytes.fromhex(str(request.get("payload", ""))),
            )
            revoked = self.keystore.apply(entry)
            acked, unreachable = self._replicate([entry])
            return {"ok": True, "entry": entry.to_wire(), "revoked": revoked,
                    "acked": acked, "unreachable": unreachable}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def apply_entries(self, entries: List[LogEntry]) -> List[str]:
        """Append a contiguous suffix and fold it into the keystore.

        Returns every subject the new entries revoked (fan-out set)."""
        revoked: List[str] = []
        for entry in entries:
            before = self.log.last_index
            self.log.extend([entry])
            if self.log.last_index > before:
                self.entries_replicated += 1
                revoked.extend(self.keystore.apply(entry))
        return revoked

    # ---------------------------------------------------- leader replication

    def _replicate(self, entries: List[LogEntry]
                   ) -> Tuple[List[int], List[int]]:
        """Ship ``entries`` to every non-suspected peer; returns
        ``(acked_ranks, unreachable_ranks)``.  A follower that reports a
        gap is caught up with the full missing suffix in one exchange."""
        wire = [entry.to_wire() for entry in entries]
        acked: List[int] = []
        unreachable: List[int] = []
        for rank, address in self._peers:
            if rank in self._suspected:
                unreachable.append(rank)
                continue
            try:
                reply = self._exchange(address, {"op": "append",
                                                 "entries": wire})
                if not reply.get("ok"):
                    suffix = self.log.entries_after(
                        int(reply.get("needFrom", 0)))
                    reply = self._exchange(address, {
                        "op": "append",
                        "entries": [e.to_wire() for e in suffix],
                    })
            except (ConnectionRefused, ChannelClosed, NetError):
                self._clock.advance(PROBE_TIMEOUT, ACCOUNT_PROBE)
                self._suspected.add(rank)
                unreachable.append(rank)
                continue
            if reply.get("ok"):
                acked.append(rank)
            else:
                unreachable.append(rank)
        return acked, unreachable

    def _exchange(self, address: Address,
                  payload: Dict[str, object]) -> Dict[str, object]:
        channel = self._network.connect(self.host, address)
        try:
            send_frame(channel, json.dumps(payload,
                                           sort_keys=True).encode("utf-8"))
            return json.loads(recv_frame(channel).decode("utf-8"))
        finally:
            channel.close()


class TrustedFabric:
    """N controller replicas + homed switches + the replicated keystore.

    Args:
        network: the simulated network (its clock paces everything).
        replica_count: number of controller replicas (>= 2 for failover).
        topology: shared forwarding-plane view; created when omitted.
        primary_controller: an existing controller to wrap as rank 0
            (the deployment path — its switches stay homed on it).
        vm: optional :class:`~repro.core.verification_manager.
            VerificationManager`; when attached, fabric revocations
            delegate to it first (CA + CRL + RA-TLS eviction).
        client_host: source host name for management-plane dials.
    """

    def __init__(self, network: Network, replica_count: int = 3,
                 topology: Optional[Topology] = None,
                 primary_controller: Optional[FloodlightController] = None,
                 vm=None, client_host: str = "fabric-manager",
                 host_prefix: str = "controller-r") -> None:
        if replica_count < 1:
            raise FabricError("need at least one controller replica")
        self.network = network
        self.clock = network.clock
        self.topology = topology if topology is not None else Topology()
        self.client_host = client_host
        self._vm = vm
        self._telemetry = None
        self._by_rank: Dict[int, ControllerReplica] = {}
        self._switches: Dict[str, Switch] = {}
        self._homes: Dict[str, int] = {}
        self._switch_revoked: Dict[str, Set[str]] = {}
        self._switch_sessions: Dict[str, Set[str]] = {}
        self._crashed: Set[int] = set()
        self._leader_rank = 0
        self._endpoint_counter = 0
        self._lock = make_lock("fabric")

        for rank in range(replica_count):
            controller = primary_controller if rank == 0 else None
            replica = ControllerReplica(
                rank, network, f"{host_prefix}{rank}", self.topology,
                controller=controller,
            )
            self._by_rank[rank] = replica
        peers = [(rank, replica.address)
                 for rank, replica in sorted(self._by_rank.items())]
        for replica in self._by_rank.values():
            replica.set_peers(peers)
            replica.controller.fabric_status = (
                lambda rank=replica.rank: self.status(rank)
            )
        # Switches already registered on the primary controller stay
        # homed on rank 0 — they were its responsibility before the
        # fabric existed.
        for switch in self.topology.switches():
            self._adopt_bookkeeping(switch, 0)

    # ------------------------------------------------------------ accessors

    @property
    def replica_count(self) -> int:
        return len(self._by_rank)

    def replica(self, rank: int) -> ControllerReplica:
        try:
            return self._by_rank[rank]
        except KeyError as exc:
            raise FabricError(f"no replica with rank {rank}") from exc

    def replicas(self) -> List[ControllerReplica]:
        return [self._by_rank[rank] for rank in sorted(self._by_rank)]

    @property
    def leader_rank(self) -> int:
        return self._leader_rank

    def switch_count(self) -> int:
        with self._lock:
            return len(self._switches)

    def home_of(self, dpid: str) -> int:
        with self._lock:
            try:
                return self._homes[dpid]
            except KeyError as exc:
                raise FabricError(f"switch {dpid!r} is not homed") from exc

    def crashed_ranks(self) -> Set[int]:
        with self._lock:
            return set(self._crashed)

    def keystore_digests(self) -> Dict[int, str]:
        """Keystore state digest per *live* replica (E15's identity gate)."""
        crashed = self.crashed_ranks()
        return {
            rank: replica.keystore.digest().hex()
            for rank, replica in sorted(self._by_rank.items())
            if rank not in crashed
        }

    def instrument(self, telemetry) -> None:
        """Attach (or with ``None`` detach) fabric telemetry."""
        self._telemetry = telemetry

    def status(self, rank: int) -> Dict[str, object]:
        """The ``/wm/fabric/status/json`` payload, as seen by ``rank``."""
        replica = self.replica(rank)
        with self._lock:
            crashed = sorted(self._crashed)
            homed = sum(1 for home in self._homes.values() if home == rank)
            leader = self._leader_rank
        return {
            "rank": rank,
            "replicas": len(self._by_rank),
            "leader": leader,
            "crashedSeen": crashed,
            "switchesHomed": homed,
            "lastIndex": replica.log.last_index,
            "keystore": replica.keystore.counts(),
            "digest": replica.keystore.digest().hex(),
        }

    # ------------------------------------------------------------ endpoints

    def add_endpoints(self, count: int, prefix: str = "ep") -> List[str]:
        """Create ``count`` endpoint switches, homed round-robin across
        the replicas; returns their dpids.  Build-time registration is
        free on the clock (E15 charges only steady-state operations)."""
        ranks = sorted(self._by_rank)
        dpids: List[str] = []
        for _ in range(count):
            self._endpoint_counter += 1
            dpid = f"{prefix}{self._endpoint_counter:05d}"
            switch = Switch(dpid)
            rank = ranks[(self._endpoint_counter - 1) % len(ranks)]
            self._by_rank[rank].controller.register_switch(switch)
            self._adopt_bookkeeping(switch, rank)
            dpids.append(dpid)
        return dpids

    def _adopt_bookkeeping(self, switch: Switch, rank: int) -> None:
        with self._lock:
            self._switches[switch.dpid] = switch
            self._homes[switch.dpid] = rank
            self._switch_revoked.setdefault(switch.dpid, set())
            self._switch_sessions.setdefault(switch.dpid, set())

    # ----------------------------------------------- attested session model

    def open_session(self, dpid: str, subject: str) -> bool:
        """A VNF identified by ``subject`` opens an attested session
        through ``dpid``; refused when the subject is revoked anywhere
        the switch can see (its own view or its live home's keystore)."""
        home = self.home_of(dpid)
        if not self._home_validates(dpid, home, subject):
            return False
        with self._lock:
            self._switch_sessions[dpid].add(subject)
        return True

    def session_resumable(self, dpid: str, subject: str) -> bool:
        """Can an existing attested session resume through ``dpid``?

        Resumption revalidates against the switch's *home* controller:
        a revoked view entry, a dead home, or a revocation in the home's
        keystore all force re-attestation (deny).  This is the fabric
        analogue of PR 7's resumption-safe revocation.
        """
        with self._lock:
            if subject not in self._switch_sessions.get(dpid, set()):
                return False
        home = self.home_of(dpid)
        return self._home_validates(dpid, home, subject)

    def _home_validates(self, dpid: str, home: int, subject: str) -> bool:
        with self._lock:
            if subject in self._switch_revoked.get(dpid, set()):
                return False
        replica = self._by_rank[home]
        try:
            channel = self.network.connect(f"switch:{dpid}", replica.address)
        except (ConnectionRefused, ChannelClosed):
            # No live controller to validate against: deny (and pay for
            # discovering it).
            self.clock.advance(PROBE_TIMEOUT, ACCOUNT_PROBE)
            return False
        channel.close()
        return not replica.keystore.is_revoked(subject)

    def sessions_for(self, subject: str) -> List[str]:
        """Dpids currently holding a session for ``subject``."""
        with self._lock:
            return sorted(dpid for dpid, subjects
                          in self._switch_sessions.items()
                          if subject in subjects)

    # ------------------------------------------------------- replicated ops

    def anchor_ca(self, name: str, certificate: bytes) -> LogEntry:
        """Replicate a CA trust anchor to every replica's keystore."""
        reply = self._propose(K_ANCHOR, name, certificate)
        return LogEntry.from_wire(reply["entry"])

    def submit_credential(self, subject: str, certificate: bytes,
                          host: str = "") -> LogEntry:
        """Replicate an issued credential certificate fabric-wide.

        ``host`` is the container host the credential is enrolled on —
        the key :meth:`distrust_host` revokes by."""
        payload = credential_payload(host, certificate)
        reply = self._propose(K_CREDENTIAL, subject, payload)
        self._count_replication(K_CREDENTIAL)
        return LogEntry.from_wire(reply["entry"])

    def credential(self, subject: str, rank: Optional[int] = None
                   ) -> Optional[bytes]:
        """The replicated certificate bytes, read from one replica
        (default: the current leader)."""
        replica = self._by_rank[self._leader_rank if rank is None else rank]
        return replica.keystore.credential(subject)

    def revoke_vnf(self, subject: str, reason: str = "unspecified"
                   ) -> FanoutReport:
        """Revoke a credential fabric-wide: Verification Manager first
        (CA + CRL + RA-TLS session eviction) when attached, then log
        replication to every live replica and fan-out to every homed
        switch.  Returns the measured :class:`FanoutReport`."""
        span = (self._telemetry.span("fabric-revocation-fanout",
                                     subject=subject, kind=K_REVOKE)
                if self._telemetry is not None else None)
        with span if span is not None else _null():
            if self._vm is not None:
                try:
                    self._vm.revoke_vnf(subject, reason)
                except RevocationError:
                    # Fabric-only credential (never VM-enrolled): the
                    # replicated revocation below is the whole story.
                    pass
            return self._replicate_and_fan_out(K_REVOKE, subject, b"")

    def distrust_host(self, host: str) -> FanoutReport:
        """Distrust a container host fabric-wide: every credential
        enrolled on it is revoked on every replica and evicted from
        every switch (the containment property, at fabric scale)."""
        span = (self._telemetry.span("fabric-revocation-fanout",
                                     subject=host, kind=K_DISTRUST)
                if self._telemetry is not None else None)
        with span if span is not None else _null():
            if self._vm is not None:
                try:
                    self._vm.distrust_host(host)
                except RevocationError:
                    pass
            return self._replicate_and_fan_out(K_DISTRUST, host, b"")

    def _replicate_and_fan_out(self, kind: str, subject: str,
                               payload: bytes) -> FanoutReport:
        sim_start = self.clock.now()
        reply = self._propose(kind, subject, payload)
        replication_seconds = self.clock.now() - sim_start
        self._count_replication(kind)
        subjects = [str(s) for s in reply.get("revoked", [])]
        report = self._fanout(kind, subjects,
                              [int(r) for r in reply.get("acked", [])],
                              [int(r) for r in reply.get("unreachable", [])])
        report.replication_seconds = replication_seconds
        report.total_seconds = self.clock.now() - sim_start
        if self._telemetry is not None:
            self._telemetry.fabric_fanout_seconds.labels(kind=kind).observe(
                report.total_seconds
            )
        return report

    def _fanout(self, kind: str, subjects: List[str], acked: List[int],
                unreachable: List[int]) -> FanoutReport:
        """Push revoked subjects to every switch homed on a replica that
        holds the entry; pushes are pipelined per replica."""
        report = FanoutReport(kind=kind, subjects=list(subjects))
        report.acked_ranks = sorted(set(acked) | {self._leader_rank})
        report.unreachable_ranks = sorted(unreachable)
        drain_start = self.clock.now()
        if subjects:
            reached_set = set(report.acked_ranks)
            with self._lock:
                homes = sorted(self._homes.items())
            for dpid, rank in homes:
                if rank not in reached_set:
                    report.switches_stale += 1
                    continue
                self._by_rank[rank].occupy(drain_start, PUSH_COST)
                with self._lock:
                    self._switch_revoked[dpid].update(subjects)
                    self._switch_sessions[dpid].difference_update(subjects)
                report.switches_reached += 1
            self._drain(ACCOUNT_FANOUT)
        report.drain_seconds = self.clock.now() - drain_start
        return report

    def _count_replication(self, kind: str) -> None:
        if self._telemetry is not None:
            self._telemetry.fabric_replications.labels(kind=kind).inc()

    # -------------------------------------------------------------- propose

    def _propose(self, kind: str, subject: str,
                 payload: bytes) -> Dict[str, object]:
        """Submit one operation to the current leader, failing over to
        the next live rank when the leader is unreachable."""
        order = sorted(self._by_rank)
        if self._leader_rank in order:
            order.remove(self._leader_rank)
            order.insert(0, self._leader_rank)
        for rank in order:
            replica = self._by_rank[rank]
            try:
                reply = self._exchange(replica.address, {
                    "op": "propose", "kind": kind, "subject": subject,
                    "payload": payload.hex(),
                })
            except (ConnectionRefused, ChannelClosed):
                self.clock.advance(PROBE_TIMEOUT, ACCOUNT_PROBE)
                with self._lock:
                    self._crashed.add(rank)
                continue
            if not reply.get("ok"):
                raise FabricError(
                    f"replica {rank} rejected {kind}: {reply.get('error')}"
                )
            self._leader_rank = rank
            with self._lock:
                self._crashed.discard(rank)
            return reply
        raise ControllerUnavailable("no live fabric replica to lead")

    def _exchange(self, address: Address,
                  payload: Dict[str, object]) -> Dict[str, object]:
        channel = self.network.connect(self.client_host, address)
        try:
            send_frame(channel, json.dumps(payload,
                                           sort_keys=True).encode("utf-8"))
            return json.loads(recv_frame(channel).decode("utf-8"))
        finally:
            channel.close()

    # ------------------------------------------------------------- failover

    def crash_replica(self, rank: int) -> None:
        """Crash one replica for the rest of the run (installs a
        host-level fault; detection stays network-driven)."""
        replica = self.replica(rank)
        faults = self.network.faults
        if faults is None:
            from repro.net.faults import FaultPlan

            faults = self.network.install_faults(FaultPlan())
        faults.crash_host(replica.host)

    def converge(self) -> ConvergenceReport:
        """Probe every replica, re-sync live stragglers, elect the
        lowest live rank leader, and re-home every switch whose home is
        dead — round-robin across the survivors, with each adoption
        charged on the adopter's private timeline.

        A re-homed switch's revocation view is synced from its new
        home's keystore *before* it serves again, so a revocation that
        fanned out while the switch's old home was dead still reaches it
        (the hypothesis property in ``tests/property`` pins this).
        """
        span = (self._telemetry.span("fabric-converge")
                if self._telemetry is not None else None)
        with span if span is not None else _null():
            return self._converge()

    def _converge(self) -> ConvergenceReport:
        report = ConvergenceReport()
        sim_start = self.clock.now()
        statuses: Dict[int, Dict[str, object]] = {}
        for rank in sorted(self._by_rank):
            report.probes += 1
            replica = self._by_rank[rank]
            try:
                status = self._exchange(replica.address, {"op": "status"})
            except (ConnectionRefused, ChannelClosed):
                self.clock.advance(PROBE_TIMEOUT, ACCOUNT_PROBE)
                report.crashed_ranks.append(rank)
                continue
            statuses[rank] = status
            report.live_ranks.append(rank)
        if not report.live_ranks:
            raise ControllerUnavailable("every fabric replica is down")
        crashed_set = set(report.crashed_ranks)
        with self._lock:
            self._crashed = set(crashed_set)

        # Bring stragglers up to the freshest live log.
        freshest = max(report.live_ranks,
                       key=lambda r: (int(statuses[r]["lastIndex"]), -r))
        target = int(statuses[freshest]["lastIndex"])
        for rank in report.live_ranks:
            behind = int(statuses[rank]["lastIndex"])
            if behind >= target:
                continue
            suffix = self._exchange(self._by_rank[freshest].address,
                                    {"op": "sync", "after": behind})
            self._exchange(self._by_rank[rank].address,
                           {"op": "append",
                            "entries": suffix.get("entries", [])})
            report.synced_ranks.append(rank)

        report.new_leader = report.live_ranks[0]
        self._leader_rank = report.new_leader
        for rank in report.live_ranks:
            self._by_rank[rank].set_suspected(crashed_set)

        # Re-home orphaned switches round-robin over the survivors.
        with self._lock:
            orphaned = sorted(dpid for dpid, home in self._homes.items()
                              if home in crashed_set)
        for index, dpid in enumerate(orphaned):
            rank = report.live_ranks[index % len(report.live_ranks)]
            self._rehome(dpid, rank)
            report.switches_rehomed += 1
        if orphaned:
            self._drain(ACCOUNT_CONVERGE)
        report.seconds = self.clock.now() - sim_start
        if self._telemetry is not None:
            self._telemetry.fabric_convergence_seconds.observe(report.seconds)
            if report.switches_rehomed:
                self._telemetry.fabric_rehomes.inc(report.switches_rehomed)
        return report

    def _rehome(self, dpid: str, rank: int) -> None:
        replica = self._by_rank[rank]
        replica.occupy(self.clock.now(), REHOME_COST)
        with self._lock:
            switch = self._switches[dpid]
        replica.controller.adopt_switch(switch)
        revoked = replica.keystore.revoked_subjects()
        with self._lock:
            self._homes[dpid] = rank
            self._switch_revoked[dpid].update(revoked)
            self._switch_sessions[dpid].difference_update(revoked)

    def _drain(self, account: str) -> None:
        """Advance the global clock to the last replica's completion
        time (replicas worked their pipelines in parallel)."""
        target = max(replica.busy_until()
                     for replica in self._by_rank.values())
        delta = target - self.clock.now()
        if delta > 0:
            self.clock.advance(delta, account)


class _null:
    """Minimal inline null context (``contextlib.nullcontext`` spelled
    locally to keep the hot span guards allocation-free)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


__all__ = [
    "ACCOUNT_CONVERGE",
    "ACCOUNT_FANOUT",
    "ACCOUNT_PROBE",
    "ControllerReplica",
    "ConvergenceReport",
    "FanoutReport",
    "PROBE_TIMEOUT",
    "PUSH_COST",
    "REHOME_COST",
    "REPLICATION_PORT",
    "TrustedFabric",
]
