"""OpenFlow-style switches: match in the table, punt misses upstairs."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.sdn.flows import FlowRule, FlowTable, Packet

PacketInHandler = Callable[["Switch", int, Packet], Optional[List[str]]]


class Switch:
    """One forwarding element.

    Ports map to neighbours: either another ``(switch, port)`` pair or a
    host name.  A table miss invokes the controller's packet-in handler,
    which may return actions to apply immediately (after installing flows).
    """

    def __init__(self, dpid: str) -> None:
        if not dpid:
            raise TopologyError("switch needs a dpid")
        self.dpid = dpid
        self.table = FlowTable()
        self._ports: Dict[int, object] = {}
        self._packet_in: Optional[PacketInHandler] = None
        self.packets_seen = 0
        self.packets_dropped = 0
        self.table_misses = 0

    # ------------------------------------------------------------- plumbing

    def connect_port(self, port: int, neighbour: object) -> None:
        """Attach a neighbour (host name or ``(Switch, port)``) to a port."""
        if port in self._ports:
            raise TopologyError(f"{self.dpid} port {port} already connected")
        self._ports[port] = neighbour

    def neighbour_at(self, port: int) -> object:
        """What hangs off ``port``."""
        try:
            return self._ports[port]
        except KeyError as exc:
            raise TopologyError(f"{self.dpid} has no port {port}") from exc

    def ports(self) -> Dict[int, object]:
        """Port map snapshot."""
        return dict(self._ports)

    def set_packet_in_handler(self, handler: PacketInHandler) -> None:
        """Wire the controller connection."""
        self._packet_in = handler

    # ------------------------------------------------------------ data path

    def process(self, packet: Packet, in_port: int) -> Tuple[str, List[int]]:
        """Run one packet through the pipeline.

        Returns ``(verdict, output_ports)`` where verdict is ``"forwarded"``,
        ``"dropped"``, or ``"no_rule"``.
        """
        self.packets_seen += 1
        rule = self.table.lookup(packet, in_port)
        if rule is None:
            self.table_misses += 1
            if self._packet_in is not None:
                actions = self._packet_in(self, in_port, packet)
                if actions:
                    temp = FlowRule("packet-in-actions",
                                    match=packet_exact_match(packet, in_port),
                                    actions=tuple(actions))
                    if temp.drops:
                        self.packets_dropped += 1
                        return ("dropped", [])
                    return ("forwarded", temp.output_ports())
            self.packets_dropped += 1
            return ("no_rule", [])
        if rule.drops:
            self.packets_dropped += 1
            return ("dropped", [])
        return ("forwarded", rule.output_ports())


def packet_exact_match(packet: Packet, in_port: int):
    """An exact match over the packet's L2 addresses and input port."""
    from repro.sdn.flows import FlowMatch

    return FlowMatch.from_dict({
        "in_port": in_port,
        "eth_src": packet.eth_src,
        "eth_dst": packet.eth_dst,
    })
