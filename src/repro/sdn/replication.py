"""The replicated CA-cert keystore: log entries and the state machine.

TruSDN-scale control planes (PAPERS.md: *TruSDN*, *Trust Anchors in
SDN*) replace the paper's single controller with N replicas that must
agree on which credentials are trusted, which are revoked, and which
hosts are distrusted.  This module provides the two replicated pieces:

- :class:`ReplicationLog` — an append-only, contiguously indexed log of
  :class:`LogEntry` records.  The fabric leader assigns indexes and
  ships suffixes to followers; a follower that detects a gap asks for
  the missing suffix (see :mod:`repro.sdn.fabric`).
- :class:`FabricKeystore` — the deterministic state machine every
  replica folds its log into: trust anchors, credential certificates
  (by subject), the revoked-subject set and the distrusted-host set.
  Applying the same log prefix on any replica yields byte-identical
  state, which :meth:`FabricKeystore.digest` makes checkable in one
  comparison.

Both classes guard their state with non-reentrant leaf locks (domains
``fabric_log`` and ``fabric_keystore`` in ``docs/CONCURRENCY.md``); no
code path calls out of the module while holding either.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.sanitizer import make_lock, shared_state
from repro.errors import ReplicationError

#: Entry kinds — the complete vocabulary of replicated operations.
K_ANCHOR = "anchor"            # install a CA trust anchor
K_CREDENTIAL = "credential"    # record an issued credential certificate
K_REVOKE = "revoke-subject"    # revoke one subject's credential
K_DISTRUST = "distrust-host"   # distrust a host + everything homed on it


@dataclass(frozen=True)
class LogEntry:
    """One replicated operation.

    Attributes:
        index: 1-based, contiguous position in the log.
        kind: one of the ``K_*`` constants.
        subject: the credential subject or host name the entry targets.
        payload: kind-specific bytes (certificate DER for anchors and
            credentials; for credentials, prefixed by the issuing host
            name and a NUL — see :meth:`credential_payload`).
    """

    index: int
    kind: str
    subject: str
    payload: bytes = b""

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict for the replication protocol."""
        return {
            "index": self.index,
            "kind": self.kind,
            "subject": self.subject,
            "payload": self.payload.hex(),
        }

    @staticmethod
    def from_wire(data: Dict[str, object]) -> "LogEntry":
        try:
            return LogEntry(
                index=int(data["index"]),
                kind=str(data["kind"]),
                subject=str(data["subject"]),
                payload=bytes.fromhex(str(data["payload"])),
            )
        except (KeyError, ValueError) as exc:
            raise ReplicationError(f"malformed log entry: {exc}") from exc


def credential_payload(host: str, certificate: bytes) -> bytes:
    """Encode a credential entry's payload: ``host || NUL || cert``.

    The host rides along so :data:`K_DISTRUST` can revoke every
    credential enrolled on a host deterministically from log state
    alone, with no out-of-band host index.
    """
    if "\x00" in host:
        raise ReplicationError("host name must not contain NUL")
    return host.encode("utf-8") + b"\x00" + certificate


def split_credential_payload(payload: bytes) -> "tuple[str, bytes]":
    """Inverse of :func:`credential_payload`."""
    host, sep, certificate = payload.partition(b"\x00")
    if not sep:
        raise ReplicationError("credential payload missing host prefix")
    return host.decode("utf-8"), certificate


@shared_state("_entries")
class ReplicationLog:
    """Append-only, contiguously indexed operation log (one per replica)."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._lock = make_lock("fabric_log")

    def append(self, kind: str, subject: str,
               payload: bytes = b"") -> LogEntry:
        """Leader-side append: assign the next index and store the entry."""
        with self._lock:
            entry = LogEntry(len(self._entries) + 1, kind, subject,
                             bytes(payload))
            self._entries.append(entry)
            return entry

    def extend(self, entries: List[LogEntry]) -> int:
        """Follower-side append of a contiguous suffix.

        Entries at or below the current last index must be byte-identical
        to what the log already holds (idempotent redelivery); a gap
        raises :class:`~repro.errors.ReplicationError`.  Returns the new
        last index.
        """
        with self._lock:
            for entry in entries:
                if entry.index <= len(self._entries):
                    existing = self._entries[entry.index - 1]
                    if existing != entry:
                        raise ReplicationError(
                            f"log divergence at index {entry.index}: "
                            f"{existing.kind}/{existing.subject} vs "
                            f"{entry.kind}/{entry.subject}"
                        )
                    continue
                if entry.index != len(self._entries) + 1:
                    raise ReplicationError(
                        f"log gap: have {len(self._entries)} entries, "
                        f"got index {entry.index}"
                    )
                self._entries.append(entry)
            return len(self._entries)

    @property
    def last_index(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries_after(self, index: int) -> List[LogEntry]:
        """The suffix strictly after ``index`` (for follower catch-up)."""
        with self._lock:
            return self._entries[index:]

    def entry(self, index: int) -> LogEntry:
        with self._lock:
            if not 1 <= index <= len(self._entries):
                raise ReplicationError(f"no log entry at index {index}")
            return self._entries[index - 1]


@shared_state("_anchors", "_credentials", "_credential_hosts",
              "_revoked", "_distrusted_hosts", "_applied_index")
class FabricKeystore:
    """The replicated trust state one replica derives from its log.

    Pure state machine: :meth:`apply` consumes log entries in index
    order and every transition is a deterministic function of (state,
    entry), so replicas that applied the same prefix hold identical
    state — :meth:`digest` hashes a canonical serialization to make
    that testable in one comparison (gated in experiment E15).
    """

    def __init__(self) -> None:
        self._anchors: Dict[str, bytes] = {}
        self._credentials: Dict[str, bytes] = {}
        self._credential_hosts: Dict[str, str] = {}
        self._revoked: Set[str] = set()
        self._distrusted_hosts: Set[str] = set()
        self._applied_index = 0
        self._lock = make_lock("fabric_keystore")

    # -------------------------------------------------------------- applying

    def apply(self, entry: LogEntry) -> List[str]:
        """Fold one log entry into the state.

        Entries must arrive in index order (redelivered ones are
        ignored).  Returns the subjects *newly revoked* by this entry —
        the fan-out set the fabric pushes to switches: ``[subject]`` for
        :data:`K_REVOKE`, every credential homed on the host for
        :data:`K_DISTRUST`, else ``[]``.
        """
        with self._lock:
            if entry.index <= self._applied_index:
                return []
            if entry.index != self._applied_index + 1:
                raise ReplicationError(
                    f"keystore applied {self._applied_index} entries, "
                    f"cannot apply index {entry.index}"
                )
            self._applied_index = entry.index
            if entry.kind == K_ANCHOR:
                self._anchors[entry.subject] = entry.payload
                return []
            if entry.kind == K_CREDENTIAL:
                host, certificate = split_credential_payload(entry.payload)
                self._credentials[entry.subject] = certificate
                self._credential_hosts[entry.subject] = host
                if host in self._distrusted_hosts:
                    # Late enrollment on an already-distrusted host: the
                    # state machine revokes it on arrival, on every
                    # replica, with no extra round trip.
                    self._revoked.add(entry.subject)
                    return [entry.subject]
                return []
            if entry.kind == K_REVOKE:
                newly = [] if entry.subject in self._revoked else [entry.subject]
                self._revoked.add(entry.subject)
                return newly
            if entry.kind == K_DISTRUST:
                self._distrusted_hosts.add(entry.subject)
                newly = sorted(
                    subject
                    for subject, host in self._credential_hosts.items()
                    if host == entry.subject and subject not in self._revoked
                )
                self._revoked.update(newly)
                return newly
            raise ReplicationError(f"unknown entry kind {entry.kind!r}")

    # --------------------------------------------------------------- queries

    @property
    def applied_index(self) -> int:
        with self._lock:
            return self._applied_index

    def has_credential(self, subject: str) -> bool:
        with self._lock:
            return subject in self._credentials

    def credential(self, subject: str) -> Optional[bytes]:
        """The replicated certificate bytes for ``subject`` (or None)."""
        with self._lock:
            return self._credentials.get(subject)

    def is_revoked(self, subject: str) -> bool:
        with self._lock:
            return subject in self._revoked

    def is_distrusted(self, host: str) -> bool:
        with self._lock:
            return host in self._distrusted_hosts

    def revoked_subjects(self) -> Set[str]:
        with self._lock:
            return set(self._revoked)

    def anchor(self, name: str) -> Optional[bytes]:
        with self._lock:
            return self._anchors.get(name)

    def counts(self) -> Dict[str, int]:
        """Size summary for status endpoints."""
        with self._lock:
            return {
                "anchors": len(self._anchors),
                "credentials": len(self._credentials),
                "revoked": len(self._revoked),
                "distrustedHosts": len(self._distrusted_hosts),
                "appliedIndex": self._applied_index,
            }

    def digest(self) -> bytes:
        """SHA-256 over a canonical serialization of the whole state.

        Two replicas that applied the same log prefix produce the same
        digest; E15 gates on all live replicas agreeing after failover.
        """
        with self._lock:
            canonical = json.dumps({
                "anchors": {k: v.hex()
                            for k, v in sorted(self._anchors.items())},
                "credentials": {k: v.hex()
                                for k, v in sorted(self._credentials.items())},
                "hosts": dict(sorted(self._credential_hosts.items())),
                "revoked": sorted(self._revoked),
                "distrusted": sorted(self._distrusted_hosts),
                "applied": self._applied_index,
            }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).digest()


__all__ = [
    "K_ANCHOR",
    "K_CREDENTIAL",
    "K_DISTRUST",
    "K_REVOKE",
    "FabricKeystore",
    "LogEntry",
    "ReplicationLog",
    "credential_payload",
    "split_credential_payload",
]
