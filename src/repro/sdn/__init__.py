"""A Floodlight-like SDN substrate.

The paper's VNFs talk REST to a Floodlight 1.2 controller whose northbound
API supports three security modes — plain HTTP, HTTPS, and trusted HTTPS
with client authentication.  This subpackage models the controller
(topology, device manager, static flow pusher), a simulated forwarding
plane of OpenFlow-style switches, the northbound API in all three modes,
and the VNF applications that exercise it.
"""

from repro.sdn.flows import FlowRule, FlowMatch, Packet, ACTION_DROP, output
from repro.sdn.switch import Switch
from repro.sdn.topology import Topology
from repro.sdn.controller import FloodlightController
from repro.sdn.northbound import NorthboundEndpoint, MODE_HTTP, MODE_HTTPS, MODE_TRUSTED
from repro.sdn.replication import (
    FabricKeystore,
    LogEntry,
    ReplicationLog,
    K_ANCHOR,
    K_CREDENTIAL,
    K_DISTRUST,
    K_REVOKE,
)
from repro.sdn.fabric import (
    ControllerReplica,
    ConvergenceReport,
    FanoutReport,
    TrustedFabric,
)
from repro.sdn.vnf import VnfRestClient

__all__ = [
    "FlowRule",
    "FlowMatch",
    "Packet",
    "ACTION_DROP",
    "output",
    "Switch",
    "Topology",
    "FloodlightController",
    "NorthboundEndpoint",
    "MODE_HTTP",
    "MODE_HTTPS",
    "MODE_TRUSTED",
    "ControllerReplica",
    "ConvergenceReport",
    "FabricKeystore",
    "FanoutReport",
    "LogEntry",
    "ReplicationLog",
    "TrustedFabric",
    "K_ANCHOR",
    "K_CREDENTIAL",
    "K_DISTRUST",
    "K_REVOKE",
    "VnfRestClient",
]
