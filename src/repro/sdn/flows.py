"""Flow rules, matches, actions, and packets for the forwarding plane."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import FlowError

MATCH_FIELDS = ("in_port", "eth_src", "eth_dst", "ip_src", "ip_dst",
                "ip_proto", "tcp_dst")

ACTION_DROP = "drop"


class Packet(NamedTuple):
    """A simplified packet header set."""

    eth_src: str
    eth_dst: str
    ip_src: str = ""
    ip_dst: str = ""
    ip_proto: str = "tcp"
    tcp_dst: int = 0
    payload: bytes = b""


def output(port: int) -> str:
    """The output-to-port action string."""
    return f"output:{port}"


@dataclass(frozen=True)
class FlowMatch:
    """A set of exact-match fields (absent fields are wildcards)."""

    fields: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def from_dict(cls, fields: Dict[str, object]) -> "FlowMatch":
        """Build a match, validating field names."""
        for name in fields:
            if name not in MATCH_FIELDS:
                raise FlowError(f"unknown match field {name!r}")
        return cls(tuple(sorted(fields.items())))

    def matches(self, packet: Packet, in_port: int) -> bool:
        """True if every field matches the packet."""
        values = packet._asdict()
        values["in_port"] = in_port
        return all(values.get(name) == expected
                   for name, expected in self.fields)

    def to_dict(self) -> Dict[str, object]:
        """Mapping form (REST serialization)."""
        return dict(self.fields)

    @property
    def specificity(self) -> int:
        """How many fields are pinned (tie-break within a priority)."""
        return len(self.fields)


@dataclass
class FlowRule:
    """One flow-table entry."""

    name: str
    match: FlowMatch
    actions: Tuple[str, ...]
    priority: int = 100
    packets_matched: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise FlowError("flow rule needs a name")
        for action in self.actions:
            if action != ACTION_DROP and not action.startswith("output:"):
                raise FlowError(f"unknown action {action!r}")

    def output_ports(self) -> List[int]:
        """Ports this rule forwards to (empty for drop)."""
        ports = []
        for action in self.actions:
            if action.startswith("output:"):
                ports.append(int(action.split(":", 1)[1]))
        return ports

    @property
    def drops(self) -> bool:
        """True for a drop rule."""
        return ACTION_DROP in self.actions


class FlowTable:
    """Priority-ordered rule set with match statistics."""

    def __init__(self) -> None:
        self._rules: Dict[str, FlowRule] = {}

    def add(self, rule: FlowRule) -> None:
        """Insert or replace a rule by name."""
        self._rules[rule.name] = rule

    def remove(self, name: str) -> None:
        """Delete a rule."""
        if name not in self._rules:
            raise FlowError(f"no flow rule named {name!r}")
        del self._rules[name]

    def lookup(self, packet: Packet, in_port: int) -> Optional[FlowRule]:
        """Highest-priority matching rule (most specific wins ties)."""
        best: Optional[FlowRule] = None
        for rule in self._rules.values():
            if not rule.match.matches(packet, in_port):
                continue
            if best is None or (
                (rule.priority, rule.match.specificity)
                > (best.priority, best.match.specificity)
            ):
                best = rule
        if best is not None:
            best.packets_matched += 1
        return best

    def rules(self) -> List[FlowRule]:
        """All rules, in insertion order."""
        return list(self._rules.values())

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def __len__(self) -> int:
        return len(self._rules)
