"""The controller's northbound REST API in its three security modes.

Floodlight 1.2 "supports three different security modes for the REST API,
non-secure (plain HTTP), HTTPS and trusted HTTPS (with client
authentication)" (paper, section 3).  One endpoint instance serves one
mode; a deployment typically runs the trusted mode only.

Client-certificate validation is pluggable to reproduce the paper's
keystore argument: ``client_validator=None`` validates chains against a CA
truststore (the paper's design); passing a
:meth:`keystore_validator`-built callable reproduces stock Floodlight's
per-client keystore lookup (experiment E3 compares the two).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import FlowError, RestError, SdnError
from repro.net.address import Address
from repro.net.rest import HttpParser, HttpRequest, HttpResponse
from repro.net.simnet import Network
from repro.pki.certificate import Certificate
from repro.pki.keystore import Keystore
from repro.sdn.controller import FloodlightController
from repro.sdn.flows import FlowMatch, FlowRule
from repro.tls import TlsConfig, TlsServer

MODE_HTTP = "http"
MODE_HTTPS = "https"
MODE_TRUSTED = "trusted-https"
#: Trusted HTTPS where the client authenticates with a quote-bearing
#: RA-TLS certificate instead of a CA-issued one (see repro.tls.ratls).
MODE_RATLS = "ratls-https"

SUMMARY_PATH = "/wm/core/controller/summary/json"
SWITCHES_PATH = "/wm/core/controller/switches/json"
LINKS_PATH = "/wm/topology/links/json"
DEVICES_PATH = "/wm/device/"
FLOW_PUSHER_PATH = "/wm/staticflowpusher/json"
FLOW_LIST_PATH = "/wm/staticflowpusher/list/all/json"
FABRIC_STATUS_PATH = "/wm/fabric/status/json"


@dataclass(frozen=True)
class AuthContext:
    """Who is calling, as established by the transport."""

    mode: str
    peer_certificate: Optional[Certificate] = None

    @property
    def authenticated(self) -> bool:
        """True when a validated client certificate is present."""
        return self.peer_certificate is not None

    @property
    def principal(self) -> str:
        """A printable caller identity."""
        if self.peer_certificate is not None:
            return self.peer_certificate.subject.common_name
        return "<anonymous>"


def keystore_validator(keystore: Keystore) -> Callable[[Certificate], None]:
    """Stock-Floodlight validation: the exact client certificate must be a
    trusted keystore entry.  Every newly minted credential requires a
    keystore update — the operational cost the paper's CA design removes."""

    def validate(certificate: Certificate) -> None:
        if not keystore.contains_certificate(certificate):
            raise SdnError(
                f"certificate of {certificate.subject} is not in the "
                "controller keystore"
            )

    return validate


class NorthboundEndpoint:
    """One listening northbound endpoint in one security mode."""

    def __init__(self, controller: FloodlightController, network: Network,
                 address: Address, mode: str,
                 tls_config: Optional[TlsConfig] = None) -> None:
        if mode not in (MODE_HTTP, MODE_HTTPS, MODE_TRUSTED, MODE_RATLS):
            raise SdnError(f"unknown northbound mode {mode!r}")
        if mode != MODE_HTTP and tls_config is None:
            raise SdnError(f"mode {mode!r} requires a TLS configuration")
        self.controller = controller
        self.address = address
        self.mode = mode
        self._network = network
        self.requests_served = 0
        self.unauthenticated_writes = 0
        self._telemetry = None  # set by instrument()
        self._tls: Optional[TlsServer] = None
        if mode in (MODE_TRUSTED, MODE_RATLS):
            tls_config.require_client_auth = True
        if tls_config is not None:
            self._tls = TlsServer(tls_config)
        network.listen(address, self._accept)

    # ------------------------------------------------------------ transport

    def _accept(self, channel) -> None:
        if self.mode == MODE_HTTP:
            parser = HttpParser(is_server_side=True)
            auth = AuthContext(self.mode)

            def on_plain(ch) -> None:
                for request in parser.feed(ch.recv_available()):
                    ch.send(self._dispatch(request, auth).encode())

            channel.on_receive(on_plain)
            return

        parser = HttpParser(is_server_side=True)

        def on_tls_data(conn) -> None:
            auth = AuthContext(self.mode, conn.peer_certificate)
            for request in parser.feed(conn.recv_available()):
                conn.send(self._dispatch(request, auth).encode())

        self._tls.accept(channel, on_data=on_tls_data)

    # ----------------------------------------------------------- telemetry

    def instrument(self, telemetry) -> None:
        """Attach telemetry: every dispatched request increments
        ``vnf_sgx_northbound_requests_total{mode,method,status}``.
        ``None`` detaches."""
        self._telemetry = telemetry

    # ------------------------------------------------------------- routing

    def _injected_fault(self) -> Optional[HttpResponse]:
        """An injected ``http_error`` response for this request, if the
        network's fault plan schedules one (controller brown-out)."""
        faults = self._network.faults
        if faults is None:
            return None
        status = faults.next_http_error(self.address)
        if status is None:
            return None
        return HttpResponse(status, headers={"retry-after": "1"},
                            body=b"injected fault: controller unavailable")

    def _dispatch(self, request: HttpRequest,
                  auth: AuthContext) -> HttpResponse:
        response = self._injected_fault() or self._route(request, auth)
        if self._telemetry is not None:
            self._telemetry.northbound_requests.labels(
                mode=self.mode, method=request.method.upper(),
                status=str(response.status),
            ).inc()
        return response

    def _route(self, request: HttpRequest,
               auth: AuthContext) -> HttpResponse:
        self.requests_served += 1
        key = (request.method.upper(), request.path)
        handlers: Dict[Tuple[str, str], Callable] = {
            ("GET", SUMMARY_PATH): self._get_summary,
            ("GET", SWITCHES_PATH): self._get_switches,
            ("GET", LINKS_PATH): self._get_links,
            ("GET", DEVICES_PATH): self._get_devices,
            ("GET", FLOW_LIST_PATH): self._get_flows,
            ("GET", FABRIC_STATUS_PATH): self._get_fabric_status,
            ("POST", FLOW_PUSHER_PATH): self._post_flow,
            ("DELETE", FLOW_PUSHER_PATH): self._delete_flow,
        }
        handler = handlers.get(key)
        if handler is None:
            parametrized = self._match_switch_flows(request)
            if parametrized is None:
                return HttpResponse(404, body=b"not found")
            handler = parametrized
        try:
            return handler(request, auth)
        except (RestError, FlowError, SdnError, ValueError, KeyError) as exc:
            return HttpResponse(400, body=str(exc).encode())
        except Exception as exc:  # noqa: BLE001 — keep the controller up
            return HttpResponse(500, body=f"{type(exc).__name__}: {exc}".encode())

    @staticmethod
    def _json(payload: object, status: int = 200) -> HttpResponse:
        return HttpResponse(
            status,
            headers={"content-type": "application/json"},
            body=json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def _match_switch_flows(self, request: HttpRequest):
        """Parametrized route: ``GET /wm/core/switch/<dpid>/flow/json``."""
        prefix, suffix = "/wm/core/switch/", "/flow/json"
        if (request.method.upper() != "GET"
                or not request.path.startswith(prefix)
                or not request.path.endswith(suffix)):
            return None
        dpid = request.path[len(prefix):-len(suffix)]
        if not dpid or "/" in dpid:
            return None

        def handler(req: HttpRequest, auth: AuthContext) -> HttpResponse:
            switch = self.controller.topology.switch(dpid)
            return self._json({
                "dpid": dpid,
                "packetsSeen": switch.packets_seen,
                "packetsDropped": switch.packets_dropped,
                "tableMisses": switch.table_misses,
                "flows": [
                    {"name": rule.name, "priority": rule.priority,
                     "match": dict(rule.match.to_dict()),
                     "actions": list(rule.actions),
                     "packetsMatched": rule.packets_matched}
                    for rule in switch.table.rules()
                ],
            })

        return handler

    # ------------------------------------------------------------- handlers

    def _get_summary(self, request: HttpRequest,
                     auth: AuthContext) -> HttpResponse:
        return self._json(self.controller.summary())

    def _get_switches(self, request: HttpRequest,
                      auth: AuthContext) -> HttpResponse:
        return self._json([
            {"dpid": sw.dpid, "flows": len(sw.table),
             "packets": sw.packets_seen}
            for sw in self.controller.topology.switches()
        ])

    def _get_links(self, request: HttpRequest,
                   auth: AuthContext) -> HttpResponse:
        return self._json([
            {"src": a, "dst": b, "ports": ports}
            for a, b, ports in self.controller.topology.links()
        ])

    def _get_devices(self, request: HttpRequest,
                     auth: AuthContext) -> HttpResponse:
        topology = self.controller.topology
        return self._json([
            {"host": host,
             "attachedTo": {"dpid": topology.attachment_point(host)[0],
                            "port": topology.attachment_point(host)[1]}}
            for host in topology.hosts()
        ])

    def _get_fabric_status(self, request: HttpRequest,
                           auth: AuthContext) -> HttpResponse:
        if self.controller.fabric_status is None:
            return HttpResponse(404,
                                body=b"controller is not part of a fabric")
        return self._json(self.controller.fabric_status())

    def _get_flows(self, request: HttpRequest,
                   auth: AuthContext) -> HttpResponse:
        return self._json({
            dpid: [
                {"name": rule.name, "priority": rule.priority,
                 "match": {k: v for k, v in rule.match.to_dict().items()},
                 "actions": list(rule.actions),
                 "packetsMatched": rule.packets_matched}
                for rule in rules
            ]
            for dpid, rules in self.controller.static_flows().items()
        })

    def _post_flow(self, request: HttpRequest,
                   auth: AuthContext) -> HttpResponse:
        if not auth.authenticated:
            # HTTP/HTTPS modes accept writes from anyone — the exposure the
            # paper's trusted mode closes.  Record it for the experiments.
            self.unauthenticated_writes += 1
        body = json.loads(request.body.decode("utf-8"))
        rule = FlowRule(
            name=body["name"],
            match=FlowMatch.from_dict(body.get("match", {})),
            actions=tuple(body["actions"].split(",")),
            priority=int(body.get("priority", 100)),
        )
        self.controller.push_flow(body["switch"], rule)
        return self._json({"status": "Entry pushed",
                           "by": auth.principal})

    def _delete_flow(self, request: HttpRequest,
                     auth: AuthContext) -> HttpResponse:
        if not auth.authenticated:
            self.unauthenticated_writes += 1
        body = json.loads(request.body.decode("utf-8"))
        self.controller.delete_flow(body["name"])
        return self._json({"status": "Entry deleted",
                           "by": auth.principal})
