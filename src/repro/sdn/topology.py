"""Network topology: switches, inter-switch links, host attachments."""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx

from repro.errors import TopologyError
from repro.sdn.switch import Switch


class Topology:
    """The controller's view of the forwarding plane."""

    def __init__(self) -> None:
        self._graph = networkx.Graph()
        self._switches: Dict[str, Switch] = {}
        self._host_attachment: Dict[str, Tuple[str, int]] = {}

    # ------------------------------------------------------------ building

    def add_switch(self, switch: Switch) -> None:
        """Register a switch."""
        if switch.dpid in self._switches:
            raise TopologyError(f"duplicate dpid {switch.dpid}")
        self._switches[switch.dpid] = switch
        self._graph.add_node(switch.dpid, kind="switch")

    def add_link(self, dpid_a: str, port_a: int,
                 dpid_b: str, port_b: int) -> None:
        """Connect two switches, wiring both port maps."""
        switch_a = self.switch(dpid_a)
        switch_b = self.switch(dpid_b)
        switch_a.connect_port(port_a, (switch_b, port_b))
        switch_b.connect_port(port_b, (switch_a, port_a))
        self._graph.add_edge(dpid_a, dpid_b,
                             ports={dpid_a: port_a, dpid_b: port_b})

    def attach_host(self, host: str, dpid: str, port: int) -> None:
        """Attach an end host to a switch port."""
        switch = self.switch(dpid)
        switch.connect_port(port, host)
        self._host_attachment[host] = (dpid, port)
        self._graph.add_node(host, kind="host")
        self._graph.add_edge(host, dpid, ports={dpid: port})

    # ------------------------------------------------------------- queries

    def switch(self, dpid: str) -> Switch:
        """Look up a switch by dpid."""
        try:
            return self._switches[dpid]
        except KeyError as exc:
            raise TopologyError(f"unknown switch {dpid!r}") from exc

    def switches(self) -> List[Switch]:
        """All switches."""
        return list(self._switches.values())

    def attachment_point(self, host: str) -> Tuple[str, int]:
        """Where a host connects: ``(dpid, port)``."""
        try:
            return self._host_attachment[host]
        except KeyError as exc:
            raise TopologyError(f"host {host!r} not attached") from exc

    def hosts(self) -> List[str]:
        """All attached host names."""
        return sorted(self._host_attachment)

    def links(self) -> List[Tuple[str, str, Dict[str, int]]]:
        """Inter-switch links as ``(dpid_a, dpid_b, ports)``."""
        out = []
        for a, b, data in self._graph.edges(data=True):
            if (self._graph.nodes[a].get("kind") == "switch"
                    and self._graph.nodes[b].get("kind") == "switch"):
                out.append((a, b, data["ports"]))
        return out

    def shortest_path(self, src_host: str, dst_host: str) -> List[str]:
        """Switch dpids along the shortest path between two hosts."""
        if src_host not in self._graph or dst_host not in self._graph:
            raise TopologyError("both hosts must be attached")
        try:
            path = networkx.shortest_path(self._graph, src_host, dst_host)
        except networkx.NetworkXNoPath as exc:
            raise TopologyError(
                f"no path from {src_host} to {dst_host}"
            ) from exc
        return [node for node in path
                if self._graph.nodes[node].get("kind") == "switch"]

    def port_toward(self, dpid: str, next_hop: str) -> int:
        """The port on ``dpid`` that faces ``next_hop`` (switch or host)."""
        data = self._graph.get_edge_data(dpid, next_hop)
        if data is None:
            raise TopologyError(f"no link {dpid} <-> {next_hop}")
        return data["ports"][dpid]
