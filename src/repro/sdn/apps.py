"""Example VNF applications — the workloads the paper's intro motivates.

Each app drives the controller through a REST client (baseline or
enclave-backed; both expose the same operations), so the same application
code runs with unprotected or SGX-protected credentials.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SdnError


class FirewallVnf:
    """Pushes drop rules for blocked host pairs."""

    def __init__(self, client, switch_dpid: str) -> None:
        self._client = client
        self._dpid = switch_dpid
        self._blocked: Dict[str, tuple] = {}

    def block(self, eth_src: str, eth_dst: str) -> str:
        """Install a drop rule for ``eth_src -> eth_dst``; returns its name."""
        name = f"fw-{eth_src}-{eth_dst}"
        self._client.push_flow(
            switch=self._dpid,
            name=name,
            match={"eth_src": eth_src, "eth_dst": eth_dst},
            actions="drop",
            priority=500,
        )
        self._blocked[name] = (eth_src, eth_dst)
        return name

    def unblock(self, name: str) -> None:
        """Remove a previously installed block."""
        if name not in self._blocked:
            raise SdnError(f"no block named {name!r}")
        self._client.delete_flow(name)
        del self._blocked[name]

    @property
    def active_blocks(self) -> List[str]:
        """Names of active drop rules."""
        return sorted(self._blocked)


class LoadBalancerVnf:
    """Spreads a service's flows across backend ports round-robin."""

    def __init__(self, client, switch_dpid: str,
                 backend_ports: List[int]) -> None:
        if not backend_ports:
            raise SdnError("load balancer needs at least one backend port")
        self._client = client
        self._dpid = switch_dpid
        self._backends = list(backend_ports)
        self._next = 0
        self.assignments: Dict[str, int] = {}

    def assign(self, client_mac: str, service_port: int = 80) -> int:
        """Pin a client to the next backend; returns the chosen port."""
        backend = self._backends[self._next % len(self._backends)]
        self._next += 1
        self._client.push_flow(
            switch=self._dpid,
            name=f"lb-{client_mac}-{service_port}",
            match={"eth_src": client_mac, "tcp_dst": service_port},
            actions=f"output:{backend}",
            priority=300,
        )
        self.assignments[client_mac] = backend
        return backend


class MonitorVnf:
    """Read-only telemetry: polls the controller's summary and flows."""

    def __init__(self, client) -> None:
        self._client = client
        self.samples: List[dict] = []

    def poll(self) -> dict:
        """Fetch and record one summary sample."""
        summary = self._client.summary()
        self.samples.append(summary)
        return summary

    def flow_count(self) -> int:
        """Total static flows across all switches."""
        flows = self._client.list_flows()
        return sum(len(rules) for rules in flows.values())
