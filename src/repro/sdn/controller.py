"""The network controller (a Floodlight 1.2 model).

Implements the modules the paper's deployment touches: the device manager
(host attachment tracking), reactive forwarding via packet-in (shortest
path + flow installation), and the static flow pusher the northbound REST
API drives.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FlowError, TopologyError
from repro.sdn.flows import FlowMatch, FlowRule, Packet, output
from repro.sdn.switch import Switch
from repro.sdn.topology import Topology

CONTROLLER_VERSION = "1.2-model"


class FloodlightController:
    """The controller core the northbound API fronts."""

    def __init__(self, name: str = "floodlight",
                 topology: Optional[Topology] = None) -> None:
        self.name = name
        self.version = CONTROLLER_VERSION
        self.topology = topology if topology is not None else Topology()
        self.packet_ins_handled = 0
        self.flows_pushed = 0
        # Set by the trusted fabric when this controller joins one; the
        # northbound's /wm/fabric/status/json endpoint calls it.
        self.fabric_status = None
        self._static_flow_index: Dict[str, str] = {}  # rule name -> dpid

    # ----------------------------------------------------------- forwarding

    def register_switch(self, switch: Switch) -> None:
        """Add a switch and take over its packet-in handling."""
        self.topology.add_switch(switch)
        switch.set_packet_in_handler(self._on_packet_in)

    def adopt_switch(self, switch: Switch) -> None:
        """Take over packet-in handling for a switch that is already in
        the (shared) topology — the fabric failover path: the topology
        survives a controller crash, only the homing changes."""
        switch.set_packet_in_handler(self._on_packet_in)

    def _on_packet_in(self, switch: Switch, in_port: int,
                      packet: Packet) -> Optional[List[str]]:
        """Reactive forwarding: install the shortest path, return actions."""
        self.packet_ins_handled += 1
        try:
            path = self.topology.shortest_path(packet.eth_src, packet.eth_dst)
        except TopologyError:
            return None  # unknown destination: drop
        if not path:
            return None
        self._install_path(path, packet)
        # Tell the punting switch where to send this first packet.
        index = path.index(switch.dpid) if switch.dpid in path else -1
        if index < 0:
            return None
        next_hop = (path[index + 1] if index + 1 < len(path)
                    else packet.eth_dst)
        port = self.topology.port_toward(switch.dpid, next_hop)
        return [output(port)]

    def _install_path(self, path: List[str], packet: Packet) -> None:
        for index, dpid in enumerate(path):
            next_hop = (path[index + 1] if index + 1 < len(path)
                        else packet.eth_dst)
            port = self.topology.port_toward(dpid, next_hop)
            rule = FlowRule(
                name=f"reactive-{packet.eth_src}-{packet.eth_dst}-{dpid}",
                match=FlowMatch.from_dict({
                    "eth_src": packet.eth_src,
                    "eth_dst": packet.eth_dst,
                }),
                actions=(output(port),),
                priority=10,
            )
            self.topology.switch(dpid).table.add(rule)

    # ------------------------------------------------------ static flow API

    def push_flow(self, dpid: str, rule: FlowRule) -> None:
        """Install a rule on a switch (static flow pusher)."""
        self.topology.switch(dpid).table.add(rule)
        self._static_flow_index[rule.name] = dpid
        self.flows_pushed += 1

    def delete_flow(self, name: str) -> None:
        """Remove a statically pushed rule by name."""
        dpid = self._static_flow_index.pop(name, None)
        if dpid is None:
            raise FlowError(f"no static flow named {name!r}")
        self.topology.switch(dpid).table.remove(name)

    def static_flows(self) -> Dict[str, List[FlowRule]]:
        """All static rules, grouped by dpid."""
        grouped: Dict[str, List[FlowRule]] = {}
        for name, dpid in self._static_flow_index.items():
            switch = self.topology.switch(dpid)
            for rule in switch.table.rules():
                if rule.name == name:
                    grouped.setdefault(dpid, []).append(rule)
        return grouped

    # -------------------------------------------------------------- queries

    def summary(self) -> Dict[str, object]:
        """The ``/wm/core/controller/summary/json`` payload."""
        return {
            "controller": self.name,
            "version": self.version,
            "switches": len(self.topology.switches()),
            "hosts": len(self.topology.hosts()),
            "packetInsHandled": self.packet_ins_handled,
            "flowsPushed": self.flows_pushed,
        }

    # ------------------------------------------------------------ data path

    def inject_packet(self, src_host: str, packet: Packet) -> str:
        """Send a packet from an attached host through the data plane.

        Returns the final verdict: ``"delivered"``, ``"dropped"``, or
        ``"lost"``.
        """
        dpid, port = self.topology.attachment_point(src_host)
        switch = self.topology.switch(dpid)
        hops = 0
        while hops < 64:
            hops += 1
            verdict, ports = switch.process(packet, port)
            if verdict in ("dropped", "no_rule"):
                return "dropped" if verdict == "dropped" else "lost"
            if not ports:
                return "lost"
            neighbour = switch.neighbour_at(ports[0])
            if isinstance(neighbour, str):
                return ("delivered" if neighbour == packet.eth_dst
                        else "lost")
            next_switch, next_port = neighbour
            switch, port = next_switch, next_port
        return "lost"
