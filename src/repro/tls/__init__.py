"""A TLS-1.2-style protocol implemented from scratch.

This is the library's analogue of the mbedTLS-SGX suite the paper embeds in
its enclaves: ECDHE-ECDSA key exchange, AES-128/256-GCM record protection,
SHA-256 PRF, optional mutual authentication (the controller's
"trusted HTTPS" mode), and session resumption.

The wire format follows TLS 1.2's structure (content types, handshake
message framing, GCM nonce/AAD construction); certificates are this
library's DER-lite certificates rather than X.509.  The properties the
paper's argument needs — server/mutual authentication, confidentiality,
session keys derived via ECDHE and never exposed outside the endpoint that
derived them — all hold.

Entry points: :class:`repro.tls.client.TlsClient` and
:class:`repro.tls.server.TlsServer`; :mod:`repro.tls.ratls` adds
RA-TLS quote-bearing certificates and the attested-channel verifier
(see ``docs/RATLS.md``).
"""

from repro.tls.client import TlsClient
from repro.tls.server import TlsServer
from repro.tls.connection import TlsConnection
from repro.tls.ratls import RatlsVerifier, build_ratls_certificate
from repro.tls.session import TlsConfig, SessionCache

__all__ = [
    "TlsClient",
    "TlsServer",
    "TlsConnection",
    "TlsConfig",
    "SessionCache",
    "RatlsVerifier",
    "build_ratls_certificate",
]
