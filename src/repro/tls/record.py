"""The TLS record layer.

Plaintext records before the ChangeCipherSpec, AES-GCM protected records
after, with TLS 1.2's nonce construction (4-byte fixed IV from the key
block, 8-byte explicit nonce carried in the record) and AAD
(``seq || type || version || length``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.gcm import TAG_SIZE
from repro.errors import InvalidTag, RecordError
from repro.tls.alerts import BAD_RECORD_MAC
from repro.tls.ciphersuites import CipherSuite
from repro.tls.constants import (
    CONTENT_CHANGE_CIPHER_SPEC,
    EXPLICIT_NONCE_SIZE,
    MAX_RECORD_PAYLOAD,
    PROTOCOL_VERSION,
)

_HEADER = struct.Struct(">B2sH")


@dataclass
class Record:
    """One record: content type plus (decrypted) payload."""

    content_type: int
    payload: bytes


class _DirectionState:
    """Cipher state for one direction of the connection."""

    def __init__(self) -> None:
        self.aead = None
        self.fixed_iv = b""
        self.sequence = 0

    def activate(self, suite: CipherSuite, key: bytes, fixed_iv: bytes) -> None:
        self.aead = suite.create_aead(key)
        self.fixed_iv = fixed_iv
        self.sequence = 0


class RecordLayer:
    """Encodes outbound and decodes inbound records for one endpoint."""

    def __init__(self) -> None:
        self._send = _DirectionState()
        self._recv = _DirectionState()
        self._inbound = bytearray()

    # ------------------------------------------------------------ key setup

    def activate_send(self, suite: CipherSuite, key: bytes, fixed_iv: bytes) -> None:
        """Switch the outbound direction to encrypted records."""
        self._send.activate(suite, key, fixed_iv)

    def activate_recv(self, suite: CipherSuite, key: bytes, fixed_iv: bytes) -> None:
        """Switch the inbound direction to encrypted records."""
        self._recv.activate(suite, key, fixed_iv)

    @property
    def send_encrypted(self) -> bool:
        """True once outbound protection is active."""
        return self._send.aead is not None

    # ------------------------------------------------------------- encoding

    def encode(self, content_type: int, payload: bytes) -> bytes:
        """Produce the wire bytes for one record (fragmenting is the caller's
        job; payload must fit one record)."""
        if len(payload) > MAX_RECORD_PAYLOAD:
            raise RecordError(f"payload of {len(payload)} exceeds record limit")
        state = self._send
        if state.aead is None:
            return _HEADER.pack(content_type, PROTOCOL_VERSION, len(payload)) + payload
        explicit = struct.pack(">Q", state.sequence)
        nonce = state.fixed_iv + explicit
        aad = (
            struct.pack(">Q", state.sequence)
            + bytes([content_type])
            + PROTOCOL_VERSION
            + struct.pack(">H", len(payload))
        )
        sealed = state.aead.encrypt(nonce, payload, aad)
        state.sequence += 1
        body = explicit + sealed
        return _HEADER.pack(content_type, PROTOCOL_VERSION, len(body)) + body

    def encode_fragments(self, content_type: int, payload: bytes) -> bytes:
        """Encode ``payload`` across as many records as needed."""
        out = []
        for i in range(0, max(len(payload), 1), MAX_RECORD_PAYLOAD):
            out.append(self.encode(content_type, payload[i:i + MAX_RECORD_PAYLOAD]))
        return b"".join(out)

    # ------------------------------------------------------------- decoding

    def feed(self, data: bytes) -> List[Record]:
        """Absorb wire bytes; return complete records (decrypted).

        Decoding stops after a ChangeCipherSpec record: the bytes that
        follow it are protected under keys the caller has not activated
        yet.  Call ``feed(b"")`` after ``activate_recv`` to continue with
        the buffered remainder.
        """
        self._inbound += data
        records: List[Record] = []
        while True:
            record = self._try_decode_one()
            if record is None:
                return records
            records.append(record)
            if record.content_type == CONTENT_CHANGE_CIPHER_SPEC:
                return records

    def _try_decode_one(self) -> Optional[Record]:
        if len(self._inbound) < _HEADER.size:
            return None
        content_type, version, length = _HEADER.unpack_from(bytes(self._inbound))
        if version != PROTOCOL_VERSION:
            raise RecordError(f"unsupported record version {version.hex()}")
        if length > MAX_RECORD_PAYLOAD + EXPLICIT_NONCE_SIZE + TAG_SIZE:
            raise RecordError(f"record length {length} exceeds limit")
        total = _HEADER.size + length
        if len(self._inbound) < total:
            return None
        body = bytes(self._inbound[_HEADER.size:total])
        del self._inbound[:total]

        state = self._recv
        if state.aead is None:
            return Record(content_type, body)

        if len(body) < EXPLICIT_NONCE_SIZE + TAG_SIZE:
            raise RecordError("encrypted record too short")
        explicit, sealed = body[:EXPLICIT_NONCE_SIZE], body[EXPLICIT_NONCE_SIZE:]
        nonce = state.fixed_iv + explicit
        plaintext_length = len(sealed) - TAG_SIZE
        aad = (
            struct.pack(">Q", state.sequence)
            + bytes([content_type])
            + PROTOCOL_VERSION
            + struct.pack(">H", plaintext_length)
        )
        try:
            plaintext = state.aead.decrypt(nonce, sealed, aad)
        except InvalidTag as exc:
            raise RecordError(
                f"record authentication failed (alert {BAD_RECORD_MAC})"
            ) from exc
        state.sequence += 1
        return Record(content_type, plaintext)
