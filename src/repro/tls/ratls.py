"""RA-TLS: SGX attestation riding inside the TLS handshake.

Following Knauth et al., *Integrating Remote Attestation with Transport
Layer Security*, the connecting enclave presents a **self-signed**
certificate carrying its SGX quote in a certificate extension.  The
quote's 64-byte report-data field commits to the certificate's EC public
key, so verifying the quote (signature, identity, IAS verdict) plus the
TLS proof of key possession authenticates the peer *as that enclave* —
no out-of-band attestation round and no CA-issued credential needed
before the first byte of application data.

Two properties make reconnects cheap:

* **Verdict reuse** — the quote bytes inside the certificate never
  change between reconnects, so the Verification Manager's
  ``VerificationCache`` answers every handshake after the first without
  an IAS round trip.  Freshness does not need a per-handshake nonce:
  the CertificateVerify/key-exchange signature proves *live* possession
  of the quoted key, which is the RA-TLS replacement for the enrollment
  protocol's nonce-in-report-data.
* **Attested resumption** — the server's session cache resumes the
  TLS session itself, skipping even the quote re-validation.  The
  :class:`RatlsVerifier` plugs into ``TlsConfig.resumption_validator``
  so a *revoked* attested identity can never resume: revocation both
  denylists the subject and evicts its cached sessions.

Lock discipline: the verifier's internal lock is a **leaf** in the
documented order (domain ``ratls``, see ``docs/CONCURRENCY.md``) — it
only guards the denylists/counters and is never held across IAS calls,
identity checks, or session-cache sweeps.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.sanitizer import make_lock
from repro.crypto.keys import EcPrivateKey
from repro.crypto.sha256 import sha256
from repro.errors import (
    AttestationFailed,
    CryptoError,
    PkiError,
    RatlsError,
)
from repro.pki.certificate import (
    KEY_USAGE_CLIENT_AUTH,
    KEY_USAGE_DIGITAL_SIGNATURE,
    KEY_USAGE_SERVER_AUTH,
    Certificate,
)
from repro.pki.name import DistinguishedName
from repro.sgx.quote import Quote
from repro.tls.session import SessionCache, TlsSession

#: Organization attribute marking RA-TLS subjects (and keying audit rows).
RATLS_ORG = "ratls"

#: Extension name carrying the serialized SGX quote.
EXT_SGX_QUOTE = "sgx-quote"

#: RA-TLS certificates are self-signed, so serials carry no CA meaning.
RATLS_SERIAL = 0


def ratls_report_data(public_key_bytes: bytes) -> bytes:
    """The 64-byte report-data commitment to an RA-TLS leaf key.

    Same two-hash construction as the enrollment protocol's
    ``binding_hash``, under its own domain-separation labels: a quote
    generated for RA-TLS can never be replayed into the provisioning
    flow or vice versa.
    """
    return sha256(b"ratls-key-binding:v1:" + public_key_bytes) + sha256(
        b"ratls-key-binding:v2:" + public_key_bytes
    )


def build_ratls_certificate(key: EcPrivateKey, subject_name: str,
                            quote_bytes: bytes, now: int,
                            validity_seconds: int,
                            san: Tuple[str, ...] = ()) -> Certificate:
    """A self-signed leaf whose :data:`EXT_SGX_QUOTE` extension carries
    ``quote_bytes``.  The caller must have generated the quote over
    :func:`ratls_report_data` of ``key``'s public bytes — the verifier
    rejects the certificate otherwise."""
    name = DistinguishedName(subject_name, organization=RATLS_ORG)
    unsigned = Certificate(
        serial=RATLS_SERIAL,
        subject=name,
        issuer=name,
        public_key_bytes=key.public.to_bytes(),
        not_before=now,
        not_after=now + validity_seconds,
        key_usage=(KEY_USAGE_CLIENT_AUTH, KEY_USAGE_SERVER_AUTH,
                   KEY_USAGE_DIGITAL_SIGNATURE),
        san=tuple(san),
        extensions=((EXT_SGX_QUOTE, quote_bytes),),
    )
    return replace(unsigned, signature=key.sign(unsigned.tbs_bytes()))


def quote_from_certificate(certificate: Certificate) -> Quote:
    """Extract and parse the embedded SGX quote.

    Raises:
        RatlsError: when the extension is missing or unparseable.
    """
    quote_bytes = certificate.extension(EXT_SGX_QUOTE)
    if quote_bytes is None:
        raise RatlsError(
            f"certificate {certificate.subject} carries no {EXT_SGX_QUOTE} "
            "extension"
        )
    try:
        return Quote.from_bytes(quote_bytes)
    except Exception as exc:  # noqa: BLE001 — any parse failure is fatal
        raise RatlsError(f"malformed embedded quote: {exc}") from exc


#: Callback verifying quote evidence against IAS (+ cache); raises
#: :class:`~repro.errors.AttestationFailed` on a bad verdict.
EvidenceVerifier = Callable[[Quote, str], None]

#: Callback checking enclave identity (MRENCLAVE/SVN/debug) against policy.
IdentityChecker = Callable[[Quote, str], None]


class RatlsVerifier:
    """Validates quote-bearing peer certificates during TLS handshakes.

    Plugs into ``TlsConfig`` twice: :meth:`validate` as the
    ``client_validator`` (or ``server_validator``), and :meth:`resumable`
    as the ``resumption_validator``.  The attestation machinery itself is
    injected — ``verify_evidence`` is the Verification Manager's
    IAS-with-cache path and ``check_identity`` its policy check — so the
    verifier owns only the RA-TLS-specific logic: structural checks,
    key binding, and revocation.

    Thread-safety: handshakes from concurrent fleet workers call
    :meth:`validate` in parallel while the manager revokes on another
    thread.  The internal lock (leaf domain ``ratls``) guards only the
    denylists and bookkeeping maps; evidence verification, identity
    checks, and session-cache evictions all run outside it.
    """

    def __init__(self, verify_evidence: EvidenceVerifier,
                 check_identity: IdentityChecker,
                 now: Callable[[], float],
                 telemetry=None) -> None:
        self._verify_evidence = verify_evidence
        self._check_identity = check_identity
        self._now = now
        self._telemetry = telemetry
        self._lock = make_lock("ratls")
        self._denied_subjects: set = set()
        self._denied_hosts: set = set()
        self._subject_hosts: Dict[str, Tuple[str, ...]] = {}
        self._session_caches: List[SessionCache] = []
        self.validations = 0
        self.accepted = 0
        self.rejected = 0
        self.resumption_checks = 0
        self.resumptions_denied = 0

    # ------------------------------------------------------------ wiring

    def instrument(self, telemetry) -> None:
        """Install (or with ``None`` remove) metrics/span emission."""
        self._telemetry = telemetry

    def attach_session_cache(self, cache: SessionCache) -> None:
        """Register a session cache to sweep on revocation."""
        with self._lock:
            if cache not in self._session_caches:
                self._session_caches.append(cache)

    def register_subject(self, subject_name: str,
                         hosts: Iterable[str] = ()) -> None:
        """Pre-register an attested identity and its host(s).

        Lets :meth:`revoke_host` find subjects that enrolled but have
        not reconnected yet, and :meth:`knows_subject` answer before the
        first handshake.
        """
        with self._lock:
            self._subject_hosts.setdefault(subject_name, tuple(hosts))

    def knows_subject(self, subject_name: str) -> bool:
        """Has this verifier seen or registered ``subject_name``?"""
        with self._lock:
            return subject_name in self._subject_hosts

    def knows_host(self, host_name: str) -> bool:
        """Does any attested identity live on ``host_name``?  Lets the
        Verification Manager distrust a host that only ever carried
        RA-TLS identities (and so was never host-attested)."""
        with self._lock:
            return any(host_name in hosts
                       for hosts in self._subject_hosts.values())

    # -------------------------------------------------------- validation

    def validate(self, certificate: Certificate) -> None:
        """``client_validator`` hook: full attested validation of a peer.

        Checks, in order: self-signature over the TBS bytes, validity
        window at the injected clock, quote extraction, report-data key
        binding, the revocation denylist, enclave identity, and the IAS
        evidence path (which memoizes verdicts, so reconnects are free).

        Raises:
            RatlsError: on any failure — a :class:`PkiError` subclass,
                so the TLS server answers with ``bad_certificate``.
        """
        tel = self._telemetry
        with self._lock:
            self.validations += 1
        try:
            self._validate_inner(certificate)
        except PkiError:
            with self._lock:
                self.rejected += 1
            if tel is not None:
                tel.ratls_validations.labels(result="rejected").inc()
            raise
        with self._lock:
            self.accepted += 1
        if tel is not None:
            tel.ratls_validations.labels(result="accepted").inc()

    def _validate_inner(self, certificate: Certificate) -> None:
        subject = certificate.subject.common_name
        if not certificate.is_self_signed():
            raise RatlsError(
                f"RA-TLS certificate {subject} must be self-signed"
            )
        try:
            certificate.verify_signature(certificate.public_key)
        except CryptoError as exc:
            raise RatlsError(
                f"RA-TLS self-signature invalid for {subject}: {exc}"
            ) from exc
        certificate.check_validity(int(self._now()))

        quote = quote_from_certificate(certificate)
        expected = ratls_report_data(certificate.public_key_bytes)
        if quote.report_data != expected:
            raise RatlsError(
                f"quote report-data does not bind the certificate key of "
                f"{subject}"
            )

        with self._lock:
            if (subject in self._denied_subjects
                    or any(host in self._denied_hosts
                           for host in certificate.san)):
                raise RatlsError(f"attested identity {subject} is revoked")

        # Attestation outside the lock: identity policy first (cheap,
        # local), then the IAS evidence path (cached after first use).
        try:
            self._check_identity(quote, subject)
            self._verify_evidence(quote, subject)
        except AttestationFailed as exc:
            raise RatlsError(f"attestation failed for {subject}: {exc}") from exc

        with self._lock:
            self._subject_hosts[subject] = certificate.san

    def resumable(self, session: TlsSession) -> bool:
        """``resumption_validator`` hook: may this session skip
        re-validation?  Denies sessions whose attested identity (or
        host) has been revoked; the forced full handshake then delivers
        the definitive refusal through :meth:`validate`."""
        tel = self._telemetry
        certificate = session.peer_certificate
        with self._lock:
            self.resumption_checks += 1
            denied = certificate is not None and (
                certificate.subject.common_name in self._denied_subjects
                or any(host in self._denied_hosts
                       for host in certificate.san)
            )
            if denied:
                self.resumptions_denied += 1
        if tel is not None:
            tel.ratls_resumption_checks.labels(
                result="denied" if denied else "allowed"
            ).inc()
        return not denied

    # -------------------------------------------------------- revocation

    def revoke_subject(self, subject_name: str) -> None:
        """Deny future validations *and* resumptions for one identity."""
        with self._lock:
            self._denied_subjects.add(subject_name)
            caches = list(self._session_caches)
        self._evict(caches, {subject_name})

    def revoke_host(self, host_name: str) -> List[str]:
        """Deny every attested identity on ``host_name``; returns the
        subjects affected (for verification-cache invalidation)."""
        with self._lock:
            self._denied_hosts.add(host_name)
            doomed = sorted(
                subject for subject, hosts in self._subject_hosts.items()
                if host_name in hosts
            )
            self._denied_subjects.update(doomed)
            caches = list(self._session_caches)
        self._evict(caches, set(doomed), host_name)
        return doomed

    def _evict(self, caches: List[SessionCache], subjects: set,
               host_name: Optional[str] = None) -> None:
        """Sweep revoked identities out of the attached session caches.

        Runs after the verifier lock is released: ``invalidate_where``
        takes each cache's own lock, and holding ours across it would
        pin an order between the ``ratls`` leaf and foreign domains.
        """

        def doomed(session: TlsSession) -> bool:
            cert = session.peer_certificate
            if cert is None:
                return False
            return (cert.subject.common_name in subjects
                    or (host_name is not None and host_name in cert.san))

        for cache in caches:
            cache.invalidate_where(doomed)


__all__ = [
    "EXT_SGX_QUOTE",
    "RATLS_ORG",
    "RATLS_SERIAL",
    "RatlsVerifier",
    "build_ratls_certificate",
    "quote_from_certificate",
    "ratls_report_data",
]
