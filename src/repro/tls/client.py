"""The TLS client state machine.

Written in blocking style: because the simulated network delivers
synchronously, every flight the client sends triggers the server's response
inline, so the reply is already buffered when the client reads.  The VNF
credential enclave runs exactly this client *inside* the enclave boundary.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

from repro.crypto.constant_time import ct_bytes_eq
from repro.crypto.ecdh import ecdh_shared_secret
from repro.crypto.keys import EcPublicKey, generate_keypair
from repro.errors import HandshakeFailure, TlsError
from repro.net.channel import Channel
from repro.pki.certificate import KEY_USAGE_SERVER_AUTH
from repro.pki.chain import validate_chain
from repro.tls import handshake as hs
from repro.tls.ciphersuites import SUPPORTED_SUITES, lookup
from repro.tls.connection import TlsConnection
from repro.tls.constants import (
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
    HS_CERTIFICATE,
    HS_CERTIFICATE_REQUEST,
    HS_FINISHED,
    HS_SERVER_HELLO,
    HS_SERVER_HELLO_DONE,
    HS_SERVER_KEY_EXCHANGE,
    RANDOM_SIZE,
)
from repro.tls.record import RecordLayer
from repro.tls.session import (
    TlsConfig,
    TlsSession,
    derive_key_block,
    derive_master_secret,
    finished_verify_data,
)


# Process-wide telemetry hook (see repro.obs).  Installed by
# Deployment.enable_telemetry() so that *every* client handshake — including
# the ones running inside credential enclaves, whose TlsClient instances
# are created in enclave-private memory and are unreachable from outside —
# lands in the same histogram.  None (the default) disables instrumentation
# at the cost of a single attribute load per handshake.
_TELEMETRY = None


def instrument(telemetry) -> None:
    """Install (or with ``None`` remove) the module-wide handshake
    telemetry.  The object must offer ``now()``, ``span()`` and
    ``observe_handshake()`` — i.e. :class:`repro.obs.Telemetry`."""
    global _TELEMETRY
    _TELEMETRY = telemetry


class TlsClient:
    """Opens TLS connections over simulated-network channels.

    Args:
        config: endpoint configuration; the client always authenticates
            the server, so either ``truststore`` (chain validation) or
            ``server_validator`` (e.g. the RA-TLS quote verifier) must
            be set.
    """

    def __init__(self, config: TlsConfig) -> None:
        if config.truststore is None and config.server_validator is None:
            raise TlsError(
                "TLS client requires a truststore or a server_validator"
            )
        config.validate(server_side=False)
        self._config = config
        self._resumption: Dict[str, TlsSession] = {}

    # ------------------------------------------------------------ public API

    def connect(self, channel: Channel, server_name: str = "") -> TlsConnection:
        """Run the handshake on ``channel``; returns the established
        connection.  ``server_name`` keys the client-side resumption cache."""
        tel = _TELEMETRY
        if tel is None:
            return self._connect(channel, server_name, None)
        start = tel.now()
        with tel.span("tls-handshake", role="client",
                      server=server_name) as span:
            connection = self._connect(channel, server_name, tel)
            span.set_attribute("resumed", connection.resumed)
            span.set_attribute("suite", connection.suite_name)
        tel.observe_handshake("client", connection.resumed,
                              tel.now() - start)
        return connection

    def _connect(self, channel: Channel, server_name: str,
                 tel: Optional[object]) -> TlsConnection:
        records = RecordLayer()
        buffer = hs.HandshakeBuffer()
        rng = self._config.effective_rng()
        client_random = rng.random_bytes(RANDOM_SIZE)

        offered_session = (
            self._resumption.get(server_name)
            if self._config.offer_resumption and server_name else None
        )
        offered_suites = (list(self._config.cipher_suites)
                          if self._config.cipher_suites
                          else list(SUPPORTED_SUITES.keys()))
        hello = hs.ClientHello(
            random=client_random,
            session_id=offered_session.session_id if offered_session else b"",
            cipher_suites=offered_suites,
        )
        with (tel.span("hello-exchange") if tel is not None
              else nullcontext()):
            channel.send(records.encode(
                CONTENT_HANDSHAKE, buffer.append_sent(hello.encode())
            ))

            # The server's entire flight is now buffered.
            inbound = _InboundFeed(channel, records, buffer)
            msg_type, server_hello = inbound.next_handshake()
            if msg_type != HS_SERVER_HELLO:
                raise HandshakeFailure(
                    f"expected ServerHello, got "
                    f"{hs.HandshakeBuffer.type_name(msg_type)}"
                )
            suite = lookup(server_hello.cipher_suite)
            server_random = server_hello.random

        resumed = (
            offered_session is not None
            and server_hello.session_id == offered_session.session_id
            and len(server_hello.session_id) > 0
        )
        with (tel.span("key-exchange", resumed=resumed) if tel is not None
              else nullcontext()):
            if resumed:
                connection = self._finish_abbreviated(
                    channel, records, buffer, inbound, offered_session,
                    client_random, server_random, suite,
                )
            else:
                connection = self._finish_full(
                    channel, records, buffer, inbound, server_hello,
                    client_random, server_random, suite, server_name,
                )
        # Hand remaining inbound processing to the connection object.
        channel.on_receive(lambda ch: connection.deliver(ch.recv_available()))
        return connection

    def forget_session(self, server_name: str) -> None:
        """Drop the cached session for ``server_name`` (forces full handshake)."""
        self._resumption.pop(server_name, None)

    # -------------------------------------------------------- full handshake

    def _finish_full(self, channel, records, buffer, inbound, server_hello,
                     client_random, server_random, suite, server_name):
        config = self._config

        msg_type, cert_msg = inbound.next_handshake()
        if msg_type != HS_CERTIFICATE:
            raise HandshakeFailure("expected server Certificate")
        if not cert_msg.chain:
            raise HandshakeFailure("server sent an empty certificate chain")
        server_cert = cert_msg.chain[0]
        if config.server_validator is not None:
            config.server_validator(server_cert)
        else:
            validate_chain(
                server_cert, config.truststore, config.effective_now(),
                intermediates=cert_msg.chain[1:], crl=config.crl,
                required_usage=KEY_USAGE_SERVER_AUTH,
            )

        msg_type, ske = inbound.next_handshake()
        if msg_type != HS_SERVER_KEY_EXCHANGE:
            raise HandshakeFailure("expected ServerKeyExchange")
        signed = hs.ServerKeyExchange.signed_params(
            client_random, server_random, ske.public_point
        )
        server_cert.public_key.verify(signed, ske.signature)

        certificate_requested = False
        msg_type, msg = inbound.next_handshake()
        if msg_type == HS_CERTIFICATE_REQUEST:
            certificate_requested = True
            msg_type, msg = inbound.next_handshake()
        if msg_type != HS_SERVER_HELLO_DONE:
            raise HandshakeFailure("expected ServerHelloDone")

        flight = bytearray()
        if certificate_requested:
            if not config.certificate_chain or config.private_key is None:
                raise HandshakeFailure(
                    "server requires client authentication but no client "
                    "credentials are configured"
                )
            flight += buffer.append_sent(
                hs.CertificateMsg(config.certificate_chain).encode()
            )

        ecdhe = generate_keypair(config.effective_rng())
        pre_master = ecdh_shared_secret(
            ecdhe.scalar, EcPublicKey.from_bytes(ske.public_point).point
        )
        flight += buffer.append_sent(
            hs.ClientKeyExchange(ecdhe.public.to_bytes()).encode()
        )

        if certificate_requested:
            signature = config.private_key.sign(buffer.transcript_bytes())
            flight += buffer.append_sent(
                hs.CertificateVerify(signature).encode()
            )

        master_secret = derive_master_secret(
            pre_master, client_random, server_random
        )
        keys = derive_key_block(master_secret, client_random, server_random, suite)

        verify_data = finished_verify_data(
            master_secret, buffer.transcript_hash(), from_client=True
        )
        finished = buffer.append_sent(hs.Finished(verify_data).encode())

        wire = records.encode(CONTENT_HANDSHAKE, bytes(flight))
        wire += records.encode(CONTENT_CHANGE_CIPHER_SPEC, b"\x01")
        records.activate_send(suite, keys.client_key, keys.client_iv)
        wire += records.encode(CONTENT_HANDSHAKE, finished)
        channel.send(wire)

        # Server replies with CCS + Finished.
        inbound.expect_change_cipher_spec(suite, keys.server_key, keys.server_iv)
        msg_type, server_finished = inbound.next_handshake()
        if msg_type != HS_FINISHED:
            raise HandshakeFailure("expected server Finished")
        expected_hash, _ = buffer.snapshot_before[HS_FINISHED]
        expected = finished_verify_data(master_secret, expected_hash,
                                        from_client=False)
        if not ct_bytes_eq(expected, server_finished.verify_data):
            raise HandshakeFailure("server Finished verification failed")

        if server_hello.session_id:
            self._resumption[server_name or "default"] = TlsSession(
                session_id=server_hello.session_id,
                master_secret=master_secret,
                suite=suite,
                peer_certificate=server_cert,
            )
        return TlsConnection(
            channel, records, server_cert, server_hello.session_id,
            suite.name, resumed=False,
        )

    # ------------------------------------------------- abbreviated handshake

    def _finish_abbreviated(self, channel, records, buffer, inbound, session,
                            client_random, server_random, suite):
        keys = derive_key_block(
            session.master_secret, client_random, server_random, suite
        )
        inbound.expect_change_cipher_spec(suite, keys.server_key, keys.server_iv)
        msg_type, server_finished = inbound.next_handshake()
        if msg_type != HS_FINISHED:
            raise HandshakeFailure("expected server Finished (resumption)")
        expected_hash, _ = buffer.snapshot_before[HS_FINISHED]
        expected = finished_verify_data(session.master_secret, expected_hash,
                                        from_client=False)
        if not ct_bytes_eq(expected, server_finished.verify_data):
            raise HandshakeFailure("server Finished verification failed")

        verify_data = finished_verify_data(
            session.master_secret, buffer.transcript_hash(), from_client=True
        )
        finished = buffer.append_sent(hs.Finished(verify_data).encode())
        wire = records.encode(CONTENT_CHANGE_CIPHER_SPEC, b"\x01")
        records.activate_send(suite, keys.client_key, keys.client_iv)
        wire += records.encode(CONTENT_HANDSHAKE, finished)
        channel.send(wire)

        return TlsConnection(
            channel, records, session.peer_certificate, session.session_id,
            suite.name, resumed=True,
        )


class _InboundFeed:
    """Pulls handshake messages and CCS records from a channel, in order."""

    def __init__(self, channel: Channel, records: RecordLayer,
                 buffer: hs.HandshakeBuffer) -> None:
        self._channel = channel
        self._records = records
        self._buffer = buffer
        self._messages: List[Tuple[int, object]] = []
        self._pending_ccs = False

    def _pump(self) -> None:
        data = self._channel.recv_available()
        for record in self._records.feed(data):
            if record.content_type == CONTENT_HANDSHAKE:
                self._messages.extend(self._buffer.feed(record.payload))
            elif record.content_type == CONTENT_CHANGE_CIPHER_SPEC:
                self._pending_ccs = True
                # Records after the CCS are encrypted; stop and let the
                # caller activate keys before we feed any more bytes.
                return
            else:
                raise HandshakeFailure(
                    f"unexpected content type {record.content_type} during "
                    "handshake"
                )

    def next_handshake(self) -> Tuple[int, object]:
        """The next handshake message (pumping the channel as needed)."""
        while not self._messages:
            self._pump()
        return self._messages.pop(0)

    def expect_change_cipher_spec(self, suite, key: bytes, iv: bytes) -> None:
        """Consume the peer's CCS and activate inbound protection."""
        while not self._pending_ccs:
            if self._messages:
                msg_type, _ = self._messages[0]
                raise HandshakeFailure(
                    "expected ChangeCipherSpec, got "
                    f"{hs.HandshakeBuffer.type_name(msg_type)}"
                )
            self._pump()
        self._pending_ccs = False
        self._records.activate_recv(suite, key, iv)
