"""Session state, configuration, and key derivation."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.sanitizer import make_rlock, shared_state
from repro.crypto.keys import EcPrivateKey
from repro.crypto.rng import HmacDrbg, default_rng
from repro.errors import TlsError
from repro.pki.certificate import Certificate
from repro.pki.crl import CertificateRevocationList
from repro.pki.truststore import Truststore
from repro.tls.ciphersuites import CipherSuite
from repro.tls.constants import MASTER_SECRET_SIZE, VERIFY_DATA_SIZE
from repro.tls.prf import prf


@dataclass
class TlsSession:
    """A resumable session: the state the abbreviated handshake reuses."""

    session_id: bytes
    master_secret: bytes
    suite: CipherSuite
    peer_certificate: Optional[Certificate] = None


@shared_state("_sessions")
class SessionCache:
    """Bounded FIFO cache of resumable sessions, keyed by session id.

    Thread-safe: a server shared by concurrent fleet enrollments stores
    and resumes sessions from many worker threads, so the insert+evict
    pair and the predicate sweeps run under an internal lock (see
    ``docs/CONCURRENCY.md``).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise TlsError("session cache capacity must be positive")
        self._capacity = capacity
        self._sessions: Dict[bytes, TlsSession] = {}
        self._lock = make_rlock("cache")

    def store(self, session: TlsSession) -> None:
        """Insert a session, evicting the FIFO-oldest entry when full.

        Overwriting an already-cached session id never evicts: the
        overwrite does not grow the cache, so evicting an unrelated
        session would silently shrink the effective capacity.
        """
        with self._lock:
            if (session.session_id not in self._sessions
                    and len(self._sessions) >= self._capacity):
                oldest = next(iter(self._sessions))
                del self._sessions[oldest]
            self._sessions[session.session_id] = session

    def lookup(self, session_id: bytes) -> Optional[TlsSession]:
        """Find a resumable session, or ``None``."""
        if not session_id:
            return None
        with self._lock:
            return self._sessions.get(session_id)

    def invalidate(self, session_id: bytes) -> None:
        """Drop a session (e.g. after credential revocation)."""
        with self._lock:
            self._sessions.pop(session_id, None)

    def invalidate_where(self, predicate) -> int:
        """Drop every session matching ``predicate``; returns the count.

        Resumption skips certificate validation by design, so revoking a
        certificate must also evict the sessions it authenticated —
        otherwise a revoked client could resume forever.
        """
        with self._lock:
            doomed = [sid for sid, session in self._sessions.items()
                      if predicate(session)]
            for session_id in doomed:
                del self._sessions[session_id]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)


ClientValidator = Callable[[Certificate], None]
ServerValidator = Callable[[Certificate], None]
ResumptionValidator = Callable[[TlsSession], bool]


@dataclass
class TlsConfig:
    """Everything an endpoint needs to run handshakes.

    Attributes:
        certificate_chain: this endpoint's certificate chain, leaf first
            (empty for an unauthenticated client).
        private_key: the leaf certificate's private key.
        truststore: anchors used to validate the *peer's* chain.
        require_client_auth: server-side flag — the controller's
            "trusted HTTPS" mode.
        client_validator: server-side override for client-certificate
            validation.  ``None`` means chain validation against
            ``truststore`` (the paper's trusted-CA model); the Floodlight
            keystore model plugs in here for experiment E3, and the
            RA-TLS quote verifier for attested channels.
        server_validator: client-side override for server-certificate
            validation (mirror of ``client_validator``): RA-TLS clients
            validate a quote-bearing self-signed server certificate
            instead of building a chain to ``truststore``.
        resumption_validator: server-side gate consulted before an
            abbreviated handshake; returning ``False`` forces a full
            handshake (the RA-TLS verifier denies resumption for
            revoked attested identities).
        crl: optional revocation list consulted during peer validation.
        rng: randomness source.
        now: callable returning current time (certificate validity
            checks).  ``None`` is only acceptable for endpoints that
            never validate a peer certificate; any validating
            configuration must thread a real clock through
            (:meth:`validate` enforces this — a default of "time zero"
            would let every expiry check trivially pass).
        session_cache: resumption cache (server side, or shared).
        offer_resumption: client-side flag to offer cached session ids.
        cipher_suites: client-side offer order (suite ids); ``None``
            offers every supported suite in default order.
    """

    certificate_chain: List[Certificate] = field(default_factory=list)
    private_key: Optional[EcPrivateKey] = None
    truststore: Optional[Truststore] = None
    require_client_auth: bool = False
    client_validator: Optional[ClientValidator] = None
    crl: Optional[CertificateRevocationList] = None
    rng: Optional[HmacDrbg] = None
    now: Optional[Callable[[], int]] = None
    session_cache: Optional[SessionCache] = None
    offer_resumption: bool = True
    cipher_suites: Optional[List[int]] = None  # client offer order
    server_validator: Optional[ServerValidator] = None
    resumption_validator: Optional[ResumptionValidator] = None

    def effective_rng(self) -> HmacDrbg:
        """The configured RNG or the process default."""
        return self.rng or default_rng()

    def effective_now(self) -> int:
        """The configured clock's reading (0 for clockless endpoints —
        which :meth:`validate` only permits when nothing is validated)."""
        return self.now() if self.now is not None else 0

    def _validates_peers(self) -> bool:
        """Does this configuration ever check a peer certificate?"""
        return (self.truststore is not None or self.crl is not None
                or self.require_client_auth
                or self.client_validator is not None
                or self.server_validator is not None
                or self.resumption_validator is not None)

    def validate(self, server_side: bool) -> None:
        """Fail fast on inconsistent configurations."""
        if server_side:
            if not self.certificate_chain or self.private_key is None:
                raise TlsError("server requires a certificate chain and key")
            if (self.require_client_auth and self.truststore is None
                    and self.client_validator is None):
                raise TlsError(
                    "client auth requires a truststore or a client_validator"
                )
        if self.certificate_chain and self.private_key is not None:
            leaf = self.certificate_chain[0]
            if leaf.public_key_bytes != self.private_key.public.to_bytes():
                raise TlsError("private key does not match leaf certificate")
        if self.now is None and self._validates_peers():
            raise TlsError(
                "peer-validating TLS configuration without a time source: "
                "pass now=<deployment clock>.now_seconds so validity "
                "windows are checked against simulated time, not zero"
            )


# ----------------------------------------------------------- key derivation


@dataclass(frozen=True)
class KeyBlock:
    """Directional record-protection keys from the TLS 1.2 key expansion."""

    client_key: bytes
    server_key: bytes
    client_iv: bytes
    server_iv: bytes


def derive_master_secret(pre_master: bytes, client_random: bytes,
                         server_random: bytes) -> bytes:
    """``PRF(pre_master, "master secret", client_random + server_random)``."""
    return prf(pre_master, b"master secret", client_random + server_random,
               MASTER_SECRET_SIZE)


def derive_key_block(master_secret: bytes, client_random: bytes,
                     server_random: bytes, suite: CipherSuite) -> KeyBlock:
    """TLS 1.2 key expansion for an AEAD suite (no MAC keys)."""
    needed = 2 * suite.key_length + 2 * suite.fixed_iv_length
    material = prf(master_secret, b"key expansion",
                   server_random + client_random, needed)
    offset = 0

    def take(n: int) -> bytes:
        nonlocal offset
        chunk = material[offset:offset + n]
        offset += n
        return chunk

    return KeyBlock(
        client_key=take(suite.key_length),
        server_key=take(suite.key_length),
        client_iv=take(suite.fixed_iv_length),
        server_iv=take(suite.fixed_iv_length),
    )


def finished_verify_data(master_secret: bytes, transcript_hash: bytes,
                         from_client: bool) -> bytes:
    """The 12-byte Finished payload for one side."""
    label = b"client finished" if from_client else b"server finished"
    return prf(master_secret, label, transcript_hash, VERIFY_DATA_SIZE)
