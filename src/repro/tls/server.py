"""The TLS server state machine (event-driven).

An acceptor on the simulated network hands each inbound channel to
:meth:`TlsServer.accept`; the handshake then advances inside the channel's
receive handler.  The server implements both controller HTTPS modes: plain
server authentication, and "trusted HTTPS" with mandatory client
certificates validated either against a truststore (the paper's CA model)
or by a pluggable validator (the Floodlight keystore model).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional

from repro.crypto.constant_time import ct_bytes_eq
from repro.crypto.ecdh import ecdh_shared_secret
from repro.crypto.keys import EcPublicKey, generate_keypair
from repro.errors import PkiError, TlsAlert, TlsError
from repro.net.channel import Channel
from repro.pki.certificate import KEY_USAGE_CLIENT_AUTH
from repro.pki.chain import validate_chain
from repro.tls import alerts
from repro.tls import handshake as hs
from repro.tls.ciphersuites import negotiate
from repro.tls.connection import TlsConnection
from repro.tls.constants import (
    CONTENT_ALERT,
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
    HS_CERTIFICATE,
    HS_CERTIFICATE_VERIFY,
    HS_CLIENT_HELLO,
    HS_CLIENT_KEY_EXCHANGE,
    HS_FINISHED,
    RANDOM_SIZE,
    SESSION_ID_SIZE,
)
from repro.tls.record import RecordLayer
from repro.tls.session import (
    SessionCache,
    TlsConfig,
    TlsSession,
    derive_key_block,
    derive_master_secret,
    finished_verify_data,
)

EstablishedHandler = Callable[[TlsConnection], None]
DataHandler = Callable[[TlsConnection], None]


class TlsServer:
    """Accepts TLS connections on behalf of one configured identity."""

    def __init__(self, config: TlsConfig) -> None:
        config.validate(server_side=True)
        self._config = config
        if self._config.session_cache is None:
            self._config.session_cache = SessionCache()

    def accept(self, channel: Channel,
               on_established: Optional[EstablishedHandler] = None,
               on_data: Optional[DataHandler] = None) -> None:
        """Start serving a freshly accepted channel."""
        _ServerHandshake(self._config, channel, on_established, on_data)

    @property
    def session_cache(self) -> SessionCache:
        """The server's resumption cache."""
        return self._config.session_cache


class _ServerHandshake:
    """Per-connection handshake driver."""

    def __init__(self, config: TlsConfig, channel: Channel,
                 on_established: Optional[EstablishedHandler],
                 on_data: Optional[DataHandler]) -> None:
        self._config = config
        self._channel = channel
        self._on_established = on_established
        self._on_data = on_data
        self._records = RecordLayer()
        self._buffer = hs.HandshakeBuffer()
        self._state = "wait_client_hello"
        self._resumed_session: Optional[TlsSession] = None
        self._suite = None
        self._client_random = b""
        self._server_random = b""
        self._session_id = b""
        self._ecdhe_scalar = 0
        self._master_secret = b""
        self._keys = None
        self._client_certificate = None
        self._client_cert_verified = False
        channel.on_receive(self._handle_bytes)

    # --------------------------------------------------------------- driver

    def _handle_bytes(self, channel: Channel) -> None:
        if self._state == "established":
            return  # the TlsConnection's handler owns the channel now
        data = channel.recv_available()
        try:
            while True:
                batch = self._records.feed(data)
                data = b""
                if not batch:
                    return
                for record in batch:
                    self._handle_record(record)
                    if self._state == "established":
                        return
        except TlsAlert:
            raise
        except (TlsError, PkiError) as exc:
            self._fail(alerts.HANDSHAKE_FAILURE, str(exc))

    def _handle_record(self, record) -> None:
        if record.content_type == CONTENT_HANDSHAKE:
            for msg_type, message in self._buffer.feed(record.payload):
                self._handle_handshake(msg_type, message)
        elif record.content_type == CONTENT_CHANGE_CIPHER_SPEC:
            if self._keys is None:
                self._fail(alerts.UNEXPECTED_MESSAGE, "CCS before key exchange")
            self._records.activate_recv(
                self._suite, self._keys.client_key, self._keys.client_iv
            )
        elif record.content_type == CONTENT_ALERT:
            level, description = alerts.decode_alert(record.payload)
            raise TlsAlert(description,
                           f"client alert: {alerts.alert_name(description)}")
        else:
            self._fail(alerts.UNEXPECTED_MESSAGE,
                       f"content type {record.content_type} during handshake")

    def _fail(self, description: int, message: str) -> None:
        payload = alerts.encode_alert(alerts.LEVEL_FATAL, description)
        # Best-effort alert delivery: the fatal TlsAlert below is the
        # real signal, so nothing the channel does may mask it.
        with contextlib.suppress(Exception):
            self._channel.send(self._records.encode(CONTENT_ALERT, payload))
            self._channel.close()
        raise TlsAlert(description, message)

    # ------------------------------------------------------------- messages

    def _handle_handshake(self, msg_type: int, message) -> None:
        state = self._state
        if state == "wait_client_hello" and msg_type == HS_CLIENT_HELLO:
            self._on_client_hello(message)
        elif state == "wait_flight2" and msg_type == HS_CERTIFICATE:
            self._on_client_certificate(message)
        elif state == "wait_flight2" and msg_type == HS_CLIENT_KEY_EXCHANGE:
            self._on_client_key_exchange(message)
        elif state == "wait_flight2" and msg_type == HS_CERTIFICATE_VERIFY:
            self._on_certificate_verify(message)
        elif state in ("wait_flight2", "wait_finished") and msg_type == HS_FINISHED:
            self._on_client_finished(message)
        else:
            self._fail(
                alerts.UNEXPECTED_MESSAGE,
                f"{hs.HandshakeBuffer.type_name(msg_type)} in state {state}",
            )

    def _on_client_hello(self, hello: hs.ClientHello) -> None:
        config = self._config
        rng = config.effective_rng()
        self._client_random = hello.random
        self._server_random = rng.random_bytes(RANDOM_SIZE)
        self._suite = negotiate(hello.cipher_suites)

        cached = config.session_cache.lookup(hello.session_id)
        if (cached is not None
                and cached.suite.suite_id == self._suite.suite_id
                and self._resumable(cached)):
            self._start_abbreviated(cached)
            return

        self._session_id = rng.random_bytes(SESSION_ID_SIZE)
        flight = bytearray()
        flight += self._buffer.append_sent(hs.ServerHello(
            random=self._server_random,
            session_id=self._session_id,
            cipher_suite=self._suite.suite_id,
        ).encode())
        flight += self._buffer.append_sent(
            hs.CertificateMsg(config.certificate_chain).encode()
        )

        ecdhe = generate_keypair(rng)
        self._ecdhe_scalar = ecdhe.scalar
        point = ecdhe.public.to_bytes()
        signed = hs.ServerKeyExchange.signed_params(
            self._client_random, self._server_random, point
        )
        flight += self._buffer.append_sent(hs.ServerKeyExchange(
            public_point=point,
            signature=config.private_key.sign(signed),
        ).encode())

        if config.require_client_auth:
            authorities = (
                [anchor.subject for anchor in config.truststore.anchors()]
                if config.truststore is not None else []
            )
            flight += self._buffer.append_sent(
                hs.CertificateRequest(authorities).encode()
            )
        flight += self._buffer.append_sent(hs.ServerHelloDone().encode())
        self._channel.send(self._records.encode_fragments(
            CONTENT_HANDSHAKE, bytes(flight)
        ))
        self._state = "wait_flight2"

    def _resumable(self, session: TlsSession) -> bool:
        """May this cached session skip the full handshake?

        Resumption reuses the authentication decision made when the
        session was cached, so everything that decision depended on must
        still hold *now*:

        * client-auth servers refuse sessions cached without a client
          certificate — otherwise resumption silently bypasses
          ``require_client_auth``;
        * the cached peer certificate is rechecked against the CRL and
          the validity window at the current clock — a certificate
          revoked or expired after caching must not keep resuming;
        * the application's ``resumption_validator`` (e.g. the RA-TLS
          verifier's revocation denylist) gets the final word.

        A ``False`` answer degrades to a full handshake rather than
        failing the connection: the client re-authenticates from scratch
        and the normal validation path delivers any refusal.  Stale
        entries (revoked/expired certificates) are also evicted so they
        cannot be retried.
        """
        config = self._config
        cert = session.peer_certificate
        if config.require_client_auth and cert is None:
            return False
        if cert is not None:
            stale = (config.crl is not None
                     and config.crl.is_revoked(cert.serial))
            if not stale:
                try:
                    cert.check_validity(config.effective_now())
                except PkiError:
                    stale = True
            if stale:
                config.session_cache.invalidate(session.session_id)
                return False
        if (config.resumption_validator is not None
                and not config.resumption_validator(session)):
            config.session_cache.invalidate(session.session_id)
            return False
        return True

    def _start_abbreviated(self, session: TlsSession) -> None:
        self._resumed_session = session
        self._session_id = session.session_id
        self._master_secret = session.master_secret
        self._client_certificate = session.peer_certificate
        self._keys = derive_key_block(
            session.master_secret, self._client_random, self._server_random,
            self._suite,
        )
        wire = self._records.encode(CONTENT_HANDSHAKE, self._buffer.append_sent(
            hs.ServerHello(
                random=self._server_random,
                session_id=session.session_id,
                cipher_suite=self._suite.suite_id,
            ).encode()
        ))
        verify_data = finished_verify_data(
            self._master_secret, self._buffer.transcript_hash(),
            from_client=False,
        )
        finished = self._buffer.append_sent(hs.Finished(verify_data).encode())
        wire += self._records.encode(CONTENT_CHANGE_CIPHER_SPEC, b"\x01")
        self._records.activate_send(
            self._suite, self._keys.server_key, self._keys.server_iv
        )
        wire += self._records.encode(CONTENT_HANDSHAKE, finished)
        self._channel.send(wire)
        self._state = "wait_finished"

    def _on_client_certificate(self, message: hs.CertificateMsg) -> None:
        config = self._config
        if not message.chain:
            self._fail(alerts.ACCESS_DENIED, "client sent no certificate")
        leaf = message.chain[0]
        try:
            if config.client_validator is not None:
                config.client_validator(leaf)
            else:
                validate_chain(
                    leaf, config.truststore, config.effective_now(),
                    intermediates=message.chain[1:], crl=config.crl,
                    required_usage=KEY_USAGE_CLIENT_AUTH,
                )
        except PkiError as exc:
            self._fail(alerts.BAD_CERTIFICATE, f"client certificate: {exc}")
        self._client_certificate = leaf

    def _on_client_key_exchange(self, message: hs.ClientKeyExchange) -> None:
        if self._config.require_client_auth and self._client_certificate is None:
            self._fail(alerts.ACCESS_DENIED,
                       "client authentication required but no certificate sent")
        pre_master = ecdh_shared_secret(
            self._ecdhe_scalar,
            EcPublicKey.from_bytes(message.public_point).point,
        )
        self._master_secret = derive_master_secret(
            pre_master, self._client_random, self._server_random
        )
        self._keys = derive_key_block(
            self._master_secret, self._client_random, self._server_random,
            self._suite,
        )

    def _on_certificate_verify(self, message: hs.CertificateVerify) -> None:
        if self._client_certificate is None:
            self._fail(alerts.UNEXPECTED_MESSAGE,
                       "CertificateVerify without a client certificate")
        _, transcript = self._buffer.snapshot_before[HS_CERTIFICATE_VERIFY]
        try:
            self._client_certificate.public_key.verify(
                transcript, message.signature
            )
        except Exception:  # noqa: BLE001 — any failure is a decrypt_error
            self._fail(alerts.DECRYPT_ERROR,
                       "client proof of possession failed")
        self._client_cert_verified = True

    def _on_client_finished(self, message: hs.Finished) -> None:
        if (self._client_certificate is not None
                and self._resumed_session is None
                and not self._client_cert_verified):
            self._fail(alerts.ACCESS_DENIED,
                       "client certificate without CertificateVerify")
        expected_hash, _ = self._buffer.snapshot_before[HS_FINISHED]
        expected = finished_verify_data(self._master_secret, expected_hash,
                                        from_client=True)
        if not ct_bytes_eq(expected, message.verify_data):
            self._fail(alerts.DECRYPT_ERROR, "client Finished mismatch")

        if self._resumed_session is None:
            # Full handshake: reply with our CCS + Finished and cache the
            # session for later abbreviated handshakes.
            verify_data = finished_verify_data(
                self._master_secret, self._buffer.transcript_hash(),
                from_client=False,
            )
            finished = self._buffer.append_sent(
                hs.Finished(verify_data).encode()
            )
            wire = self._records.encode(CONTENT_CHANGE_CIPHER_SPEC, b"\x01")
            self._records.activate_send(
                self._suite, self._keys.server_key, self._keys.server_iv
            )
            wire += self._records.encode(CONTENT_HANDSHAKE, finished)
            self._channel.send(wire)
            self._config.session_cache.store(TlsSession(
                session_id=self._session_id,
                master_secret=self._master_secret,
                suite=self._suite,
                peer_certificate=self._client_certificate,
            ))
        self._establish()

    def _establish(self) -> None:
        self._state = "established"
        connection = TlsConnection(
            self._channel, self._records, self._client_certificate,
            self._session_id, self._suite.name,
            resumed=self._resumed_session is not None,
        )
        self._channel.on_receive(
            lambda ch: connection.deliver(ch.recv_available())
        )
        if self._on_data is not None:
            connection.on_app_data(self._on_data)
        if self._on_established is not None:
            self._on_established(connection)
