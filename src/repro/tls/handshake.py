"""Handshake message encoding/decoding.

Messages use TLS 1.2's framing (``type (1) || length (3) || body``) and
field layouts; certificate payloads carry this library's DER-lite
certificates.  A :class:`HandshakeBuffer` reassembles messages from record
payloads and maintains the transcript both Finished computations and the
CertificateVerify signature cover.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.crypto.sha256 import SHA256
from repro.errors import TlsError
from repro.pki.certificate import Certificate
from repro.pki.name import DistinguishedName
from repro.tls.constants import (
    CURVE_TYPE_NAMED,
    HANDSHAKE_TYPE_NAMES,
    HS_CERTIFICATE,
    HS_CERTIFICATE_REQUEST,
    HS_CERTIFICATE_VERIFY,
    HS_CLIENT_HELLO,
    HS_CLIENT_KEY_EXCHANGE,
    HS_FINISHED,
    HS_SERVER_HELLO,
    HS_SERVER_HELLO_DONE,
    HS_SERVER_KEY_EXCHANGE,
    NAMED_CURVE_SECP256R1,
    PROTOCOL_VERSION,
    RANDOM_SIZE,
)


class _Reader:
    """Sequential reader with explicit bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise TlsError("truncated handshake message")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u24(self) -> int:
        high, low = struct.unpack(">BH", self.take(3))
        return (high << 16) | low

    def vec8(self) -> bytes:
        return self.take(self.u8())

    def vec16(self) -> bytes:
        return self.take(self.u16())

    def done(self) -> None:
        if self._pos != len(self._data):
            raise TlsError(
                f"{len(self._data) - self._pos} trailing bytes in handshake body"
            )


def _u24(value: int) -> bytes:
    return struct.pack(">BH", (value >> 16) & 0xFF, value & 0xFFFF)


def _vec8(data: bytes) -> bytes:
    if len(data) > 255:
        raise TlsError("vec8 overflow")
    return bytes([len(data)]) + data


def _vec16(data: bytes) -> bytes:
    if len(data) > 0xFFFF:
        raise TlsError("vec16 overflow")
    return struct.pack(">H", len(data)) + data


def frame(msg_type: int, body: bytes) -> bytes:
    """Wrap a message body in the handshake header."""
    return bytes([msg_type]) + _u24(len(body)) + body


# --------------------------------------------------------------- messages


@dataclass
class ClientHello:
    random: bytes
    session_id: bytes
    cipher_suites: List[int]

    def encode(self) -> bytes:
        suites = b"".join(struct.pack(">H", s) for s in self.cipher_suites)
        body = (
            PROTOCOL_VERSION
            + self.random
            + _vec8(self.session_id)
            + _vec16(suites)
            + _vec8(b"\x00")  # null compression only
        )
        return frame(HS_CLIENT_HELLO, body)

    @classmethod
    def decode(cls, body: bytes) -> "ClientHello":
        r = _Reader(body)
        if r.take(2) != PROTOCOL_VERSION:
            raise TlsError("unsupported protocol version in ClientHello")
        random = r.take(RANDOM_SIZE)
        session_id = r.vec8()
        suites_raw = r.vec16()
        if len(suites_raw) % 2:
            raise TlsError("odd cipher-suite vector")
        suites = [
            struct.unpack(">H", suites_raw[i:i + 2])[0]
            for i in range(0, len(suites_raw), 2)
        ]
        r.vec8()  # compression methods, ignored
        r.done()
        return cls(random, session_id, suites)


@dataclass
class ServerHello:
    random: bytes
    session_id: bytes
    cipher_suite: int

    def encode(self) -> bytes:
        body = (
            PROTOCOL_VERSION
            + self.random
            + _vec8(self.session_id)
            + struct.pack(">H", self.cipher_suite)
            + b"\x00"  # null compression
        )
        return frame(HS_SERVER_HELLO, body)

    @classmethod
    def decode(cls, body: bytes) -> "ServerHello":
        r = _Reader(body)
        if r.take(2) != PROTOCOL_VERSION:
            raise TlsError("unsupported protocol version in ServerHello")
        random = r.take(RANDOM_SIZE)
        session_id = r.vec8()
        suite = r.u16()
        r.u8()  # compression
        r.done()
        return cls(random, session_id, suite)


@dataclass
class CertificateMsg:
    chain: List[Certificate]

    def encode(self) -> bytes:
        entries = b"".join(
            _u24(len(c.to_bytes())) + c.to_bytes() for c in self.chain
        )
        return frame(HS_CERTIFICATE, _u24(len(entries)) + entries)

    @classmethod
    def decode(cls, body: bytes) -> "CertificateMsg":
        r = _Reader(body)
        total = r.u24()
        entries = _Reader(r.take(total))
        r.done()
        chain = []
        while True:
            try:
                length = entries.u24()
            except TlsError:
                break
            chain.append(Certificate.from_bytes(entries.take(length)))
        return cls(chain)


@dataclass
class ServerKeyExchange:
    """ECDHE params: named curve + ephemeral point, signed by the server."""

    public_point: bytes  # SEC1 uncompressed
    signature: bytes

    @staticmethod
    def signed_params(client_random: bytes, server_random: bytes,
                      public_point: bytes) -> bytes:
        """The bytes the server signs (RFC 4492 section 5.4)."""
        return (
            client_random
            + server_random
            + bytes([CURVE_TYPE_NAMED])
            + struct.pack(">H", NAMED_CURVE_SECP256R1)
            + _vec8(public_point)
        )

    def encode(self) -> bytes:
        body = (
            bytes([CURVE_TYPE_NAMED])
            + struct.pack(">H", NAMED_CURVE_SECP256R1)
            + _vec8(self.public_point)
            + _vec16(self.signature)
        )
        return frame(HS_SERVER_KEY_EXCHANGE, body)

    @classmethod
    def decode(cls, body: bytes) -> "ServerKeyExchange":
        r = _Reader(body)
        if r.u8() != CURVE_TYPE_NAMED:
            raise TlsError("unsupported ECDHE curve type")
        if r.u16() != NAMED_CURVE_SECP256R1:
            raise TlsError("unsupported named curve")
        point = r.vec8()
        signature = r.vec16()
        r.done()
        return cls(point, signature)


@dataclass
class CertificateRequest:
    """Mutual-auth request listing the CAs the server trusts."""

    authorities: List[DistinguishedName] = field(default_factory=list)

    def encode(self) -> bytes:
        names = b"".join(_vec16(dn.to_bytes()) for dn in self.authorities)
        body = _vec8(b"\x40") + _vec16(names)  # cert type 0x40: ecdsa-sign
        return frame(HS_CERTIFICATE_REQUEST, body)

    @classmethod
    def decode(cls, body: bytes) -> "CertificateRequest":
        r = _Reader(body)
        r.vec8()  # certificate types
        names_raw = _Reader(r.vec16())
        r.done()
        authorities = []
        while True:
            try:
                encoded = names_raw.vec16()
            except TlsError:
                break
            authorities.append(DistinguishedName.from_bytes(encoded))
        return cls(authorities)


@dataclass
class ServerHelloDone:
    def encode(self) -> bytes:
        return frame(HS_SERVER_HELLO_DONE, b"")

    @classmethod
    def decode(cls, body: bytes) -> "ServerHelloDone":
        if body:
            raise TlsError("ServerHelloDone carries no body")
        return cls()


@dataclass
class ClientKeyExchange:
    public_point: bytes

    def encode(self) -> bytes:
        return frame(HS_CLIENT_KEY_EXCHANGE, _vec8(self.public_point))

    @classmethod
    def decode(cls, body: bytes) -> "ClientKeyExchange":
        r = _Reader(body)
        point = r.vec8()
        r.done()
        return cls(point)


@dataclass
class CertificateVerify:
    signature: bytes

    def encode(self) -> bytes:
        return frame(HS_CERTIFICATE_VERIFY, _vec16(self.signature))

    @classmethod
    def decode(cls, body: bytes) -> "CertificateVerify":
        r = _Reader(body)
        signature = r.vec16()
        r.done()
        return cls(signature)


@dataclass
class Finished:
    verify_data: bytes

    def encode(self) -> bytes:
        return frame(HS_FINISHED, self.verify_data)

    @classmethod
    def decode(cls, body: bytes) -> "Finished":
        return cls(body)


_DECODERS = {
    HS_CLIENT_HELLO: ClientHello.decode,
    HS_SERVER_HELLO: ServerHello.decode,
    HS_CERTIFICATE: CertificateMsg.decode,
    HS_SERVER_KEY_EXCHANGE: ServerKeyExchange.decode,
    HS_CERTIFICATE_REQUEST: CertificateRequest.decode,
    HS_SERVER_HELLO_DONE: ServerHelloDone.decode,
    HS_CLIENT_KEY_EXCHANGE: ClientKeyExchange.decode,
    HS_CERTIFICATE_VERIFY: CertificateVerify.decode,
    HS_FINISHED: Finished.decode,
}


class HandshakeBuffer:
    """Reassembles handshake messages and keeps the running transcript.

    ``transcript_hash`` covers every message appended so far — both sent
    and received — in order, which is exactly what Finished verify_data
    and CertificateVerify sign.
    """

    def __init__(self) -> None:
        self._pending = bytearray()
        self._transcript = bytearray()
        # Running hash over the transcript, updated as messages land, so
        # transcript_hash() is a cheap copy+finalise instead of re-hashing
        # the whole transcript from byte zero on every call (the paper's
        # mutually-authenticated handshake asks for it five times).
        self._hash = SHA256()
        # Transcript snapshots taken just before a CertificateVerify or
        # Finished was appended: {msg_type: (hash, raw bytes)}.  Verifying
        # those messages needs the transcript *excluding* themselves.
        self.snapshot_before: dict = {}

    def append_sent(self, framed: bytes) -> bytes:
        """Record an outbound message in the transcript; returns it."""
        self._transcript += framed
        self._hash.update(framed)
        return framed

    def feed(self, data: bytes) -> List[Tuple[int, object]]:
        """Absorb record payload bytes; return decoded ``(type, message)``."""
        self._pending += data
        messages: List[Tuple[int, object]] = []
        while len(self._pending) >= 4:
            msg_type = self._pending[0]
            length = (self._pending[1] << 16) | (self._pending[2] << 8) | self._pending[3]
            if len(self._pending) < 4 + length:
                break
            framed = bytes(self._pending[:4 + length])
            del self._pending[:4 + length]
            decoder = _DECODERS.get(msg_type)
            if decoder is None:
                raise TlsError(f"unknown handshake type {msg_type}")
            if msg_type in (HS_CERTIFICATE_VERIFY, HS_FINISHED):
                snapshot = bytes(self._transcript)
                self.snapshot_before[msg_type] = (
                    self._hash.copy().digest(), snapshot
                )
            self._transcript += framed
            self._hash.update(framed)
            messages.append((msg_type, decoder(framed[4:])))
        return messages

    def transcript_hash(self) -> bytes:
        """SHA-256 over the transcript so far (incremental; finalising a
        copy leaves the running state reusable)."""
        return self._hash.copy().digest()

    def transcript_bytes(self) -> bytes:
        """The raw transcript (CertificateVerify signs this)."""
        return bytes(self._transcript)

    @staticmethod
    def type_name(msg_type: int) -> str:
        """Readable name for diagnostics."""
        return HANDSHAKE_TYPE_NAMES.get(msg_type, f"type_{msg_type}")
