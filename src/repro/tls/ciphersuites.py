"""Cipher-suite definitions.

Both suites use ECDHE-ECDSA key exchange with AES-GCM record protection —
the same family mbedTLS-SGX negotiates in the paper's prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.gcm import AesGcm
from repro.errors import HandshakeFailure


@dataclass(frozen=True)
class CipherSuite:
    """Parameters of one negotiable suite."""

    suite_id: int
    name: str
    key_length: int
    fixed_iv_length: int

    def create_aead(self, key: bytes) -> AesGcm:
        """Instantiate the record-protection AEAD for ``key``."""
        return AesGcm(key)


TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 = CipherSuite(
    suite_id=0xC02B,
    name="TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
    key_length=16,
    fixed_iv_length=4,
)

TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384 = CipherSuite(
    suite_id=0xC02C,
    name="TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
    key_length=32,
    fixed_iv_length=4,
)

SUPPORTED_SUITES: Dict[int, CipherSuite] = {
    suite.suite_id: suite
    for suite in (
        TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
        TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
    )
}

DEFAULT_SUITE = TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256


def lookup(suite_id: int) -> CipherSuite:
    """Resolve a suite id, raising on unknown values."""
    try:
        return SUPPORTED_SUITES[suite_id]
    except KeyError as exc:
        raise HandshakeFailure(f"unsupported cipher suite 0x{suite_id:04x}") from exc


def negotiate(offered: list) -> CipherSuite:
    """Server-side choice: first supported suite in the client's order."""
    for suite_id in offered:
        suite = SUPPORTED_SUITES.get(suite_id)
        if suite is not None:
            return suite
    raise HandshakeFailure("no cipher suite in common")
