"""The TLS 1.2 pseudo-random function (RFC 5246 section 5), P_SHA256 only."""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha256


def p_sha256(secret: bytes, seed: bytes, length: int) -> bytes:
    """The P_hash expansion with HMAC-SHA256."""
    out = b""
    a = seed
    while len(out) < length:
        a = hmac_sha256(secret, a)
        out += hmac_sha256(secret, a + seed)
    return out[:length]


def prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """``PRF(secret, label, seed) = P_SHA256(secret, label + seed)``."""
    return p_sha256(secret, label + seed, length)
