"""The shared endpoint machinery: record processing, alerts, application I/O.

:class:`TlsConnection` is the stream both sides hand to application code
once the handshake completes.  Its read interface mirrors
:class:`repro.net.channel.Channel` (``recv_available`` / ``recv_exactly`` /
``recv_line`` / ``bytes_available`` / ``eof``), so the REST layer works
identically over plain channels and TLS — which is how the controller's
three security modes share one code path.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional

from repro.errors import ChannelClosed, NetError, TlsAlert, TlsError
from repro.net.channel import Channel
from repro.pki.certificate import Certificate
from repro.tls import alerts
from repro.tls.constants import (
    CONTENT_ALERT,
    CONTENT_APPLICATION_DATA,
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
)
from repro.tls.record import Record, RecordLayer


class TlsConnection:
    """An established TLS connection bound to an underlying channel."""

    def __init__(self, channel: Channel, record_layer: RecordLayer,
                 peer_certificate: Optional[Certificate],
                 session_id: bytes, suite_name: str, resumed: bool) -> None:
        self._channel = channel
        self._records = record_layer
        self.peer_certificate = peer_certificate
        self.session_id = session_id
        self.suite_name = suite_name
        self.resumed = resumed
        self._plaintext = bytearray()
        self._closed = False
        self._peer_closed = False
        self._on_app_data: Optional[Callable[["TlsConnection"], None]] = None

    # ------------------------------------------------------------- sending

    def send(self, data: bytes) -> None:
        """Encrypt and send application data."""
        if self._closed:
            raise ChannelClosed("send on closed TLS connection")
        self._channel.send(
            self._records.encode_fragments(CONTENT_APPLICATION_DATA, data)
        )

    # ------------------------------------------------------------ receiving

    def on_app_data(self, handler: Optional[Callable[["TlsConnection"], None]]) -> None:
        """Register an inline handler invoked when plaintext arrives."""
        self._on_app_data = handler
        if handler is not None and self._plaintext:
            handler(self)

    def deliver(self, raw: bytes) -> None:
        """Feed raw channel bytes through record processing.

        Endpoint state machines wire the channel's receive handler to this.
        """
        for record in self._records.feed(raw):
            self._dispatch(record)

    def _dispatch(self, record: Record) -> None:
        if record.content_type == CONTENT_APPLICATION_DATA:
            self._plaintext += record.payload
            if self._on_app_data is not None:
                self._on_app_data(self)
        elif record.content_type == CONTENT_ALERT:
            level, description = alerts.decode_alert(record.payload)
            if description == alerts.CLOSE_NOTIFY:
                self._peer_closed = True
                if self._on_app_data is not None:
                    self._on_app_data(self)
            elif level == alerts.LEVEL_FATAL:
                self._peer_closed = True
                raise TlsAlert(description,
                               f"fatal alert: {alerts.alert_name(description)}")
        elif record.content_type in (CONTENT_HANDSHAKE,
                                     CONTENT_CHANGE_CIPHER_SPEC):
            raise TlsError("renegotiation is not supported")
        else:
            raise TlsError(f"unknown content type {record.content_type}")

    @property
    def bytes_available(self) -> int:
        """Plaintext bytes currently readable."""
        return len(self._plaintext)

    def recv_available(self) -> bytes:
        """Drain all buffered plaintext."""
        data = bytes(self._plaintext)
        self._plaintext.clear()
        return data

    def recv_exactly(self, n: int) -> bytes:
        """Read exactly ``n`` plaintext bytes (synchronous-simulation rules
        as for :meth:`repro.net.channel.Channel.recv_exactly`)."""
        if len(self._plaintext) < n:
            if self._peer_closed:
                raise ChannelClosed("TLS peer closed with short read")
            raise NetError("TLS read out of lockstep")
        data = bytes(self._plaintext[:n])
        del self._plaintext[:n]
        return data

    def recv_line(self, max_length: int = 16384) -> bytes:
        """Read one CRLF-terminated plaintext line."""
        idx = self._plaintext.find(b"\r\n")
        if idx < 0:
            raise NetError("no complete TLS plaintext line buffered")
        if idx > max_length:
            raise NetError("TLS plaintext line too long")
        line = bytes(self._plaintext[:idx])
        del self._plaintext[:idx + 2]
        return line

    # -------------------------------------------------------------- closing

    def close(self) -> None:
        """Send close_notify and close the channel."""
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(ChannelClosed):
            payload = alerts.encode_alert(alerts.LEVEL_WARNING,
                                          alerts.CLOSE_NOTIFY)
            self._channel.send(self._records.encode(CONTENT_ALERT, payload))
        self._channel.close()

    @property
    def closed(self) -> bool:
        """True after a local close."""
        return self._closed

    @property
    def eof(self) -> bool:
        """True when the peer sent close_notify and the buffer is drained."""
        return self._peer_closed and not self._plaintext

    @property
    def truncated(self) -> bool:
        """True when the transport hit EOF *without* a close_notify alert.

        TLS requires an authenticated end-of-data signal precisely so a
        network attacker cannot silently chop the tail off a response (the
        classic truncation attack).  Applications should treat a truncated
        stream as an error, never as a short-but-valid response.
        """
        return self._channel.eof and not self._peer_closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        flavor = "resumed" if self.resumed else "full"
        return f"<TlsConnection {self.suite_name} {flavor} {state}>"
