"""TLS alert codes (RFC 5246 section 7.2) and helpers."""

from __future__ import annotations

from repro.errors import TlsAlert

LEVEL_WARNING = 1
LEVEL_FATAL = 2

CLOSE_NOTIFY = 0
UNEXPECTED_MESSAGE = 10
BAD_RECORD_MAC = 20
HANDSHAKE_FAILURE = 40
BAD_CERTIFICATE = 42
CERTIFICATE_REVOKED = 44
CERTIFICATE_EXPIRED = 45
CERTIFICATE_UNKNOWN = 46
UNKNOWN_CA = 48
ACCESS_DENIED = 49
DECODE_ERROR = 50
DECRYPT_ERROR = 51
PROTOCOL_VERSION_ALERT = 70
INTERNAL_ERROR = 80
NO_RENEGOTIATION = 100

ALERT_NAMES = {
    CLOSE_NOTIFY: "close_notify",
    UNEXPECTED_MESSAGE: "unexpected_message",
    BAD_RECORD_MAC: "bad_record_mac",
    HANDSHAKE_FAILURE: "handshake_failure",
    BAD_CERTIFICATE: "bad_certificate",
    CERTIFICATE_REVOKED: "certificate_revoked",
    CERTIFICATE_EXPIRED: "certificate_expired",
    CERTIFICATE_UNKNOWN: "certificate_unknown",
    UNKNOWN_CA: "unknown_ca",
    ACCESS_DENIED: "access_denied",
    DECODE_ERROR: "decode_error",
    DECRYPT_ERROR: "decrypt_error",
    PROTOCOL_VERSION_ALERT: "protocol_version",
    INTERNAL_ERROR: "internal_error",
    NO_RENEGOTIATION: "no_renegotiation",
}


def encode_alert(level: int, description: int) -> bytes:
    """Two-byte alert payload."""
    return bytes((level, description))


def decode_alert(payload: bytes) -> tuple:
    """Parse an alert payload into ``(level, description)``."""
    if len(payload) != 2:
        raise TlsAlert(DECODE_ERROR, "malformed alert payload")
    return payload[0], payload[1]


def alert_name(description: int) -> str:
    """Human-readable alert name."""
    return ALERT_NAMES.get(description, f"alert_{description}")
