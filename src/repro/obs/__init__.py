"""Observability: metrics, tracing and exposition for the deployment.

The subsystem has three layers (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.registry` — Prometheus-style :class:`Counter`,
  :class:`Gauge` and :class:`Histogram` families with labels, configurable
  buckets and exact percentile derivation, collected by a
  :class:`MetricsRegistry` (a process-wide default exists for tests).
- :mod:`repro.obs.tracing` — a :class:`Tracer` producing deterministic
  span trees timestamped from the virtual clock.
- :mod:`repro.obs.exposition` — the Prometheus text renderer/parser and
  the :class:`TelemetryEndpoint` serving ``/metrics`` and ``/traces`` on
  the simulated network.

:class:`~repro.obs.metrics.Telemetry` ties the three together and is what
components accept in their ``instrument(telemetry)`` hooks.  Telemetry is
opt-in: nothing observes anything until
:meth:`repro.core.workflow.Deployment.enable_telemetry` (or a manual hook)
installs it, and observation never advances the virtual clock.
"""

from repro.obs.exposition import (
    METRICS_PATH,
    TRACES_PATH,
    TelemetryEndpoint,
    parse_prometheus,
    render_prometheus,
    scrape,
    scrape_text,
    scrape_traces,
)
from repro.obs.metrics import Telemetry
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "reset_default_registry",
    "Span",
    "Tracer",
    "Telemetry",
    "TelemetryEndpoint",
    "METRICS_PATH",
    "TRACES_PATH",
    "render_prometheus",
    "parse_prometheus",
    "scrape",
    "scrape_text",
    "scrape_traces",
]
