"""Deterministic span tracing on the virtual clock.

A :class:`Tracer` timestamps spans from a caller-supplied ``now`` callable
— in a deployment that is :meth:`repro.net.clock.VirtualClock.now` — so two
runs with the same seed produce byte-identical trace exports on any
machine.  Span and trace identifiers are sequence numbers, not random, for
the same reason.

Because the simulated network delivers synchronously, one *conversation*
runs on one thread and parent/child nesting falls out of a simple span
stack: whatever span is open when a new one starts becomes its parent.
Under fleet enrollment (:mod:`repro.core.fleet`) many conversations run
concurrently, so the open-span stack is **thread-local** — each worker
nests its own spans — while the shared collections (roots, id counters)
are guarded by a lock.  Span ids stay deterministic in single-threaded
runs; under a worker pool the *assignment* of ids depends on
interleaving but every span tree remains internally consistent.  See
``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.sanitizer import make_rlock
from repro.errors import ObservabilityError


class Span:
    """One timed, attributed region of the workflow."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end",
                 "attributes", "children", "events")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str], start: float) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.events: List[Dict[str, Any]] = []

    @property
    def duration(self) -> float:
        """Simulated seconds between start and end (0 while open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        """True once the span has ended."""
        return self.end is not None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute."""
        self.attributes[key] = value

    def add_event(self, name: str, timestamp: Optional[float] = None,
                  **attributes: Any) -> Dict[str, Any]:
        """Attach a point-in-time event (e.g. one retry) to this span.

        Events carry a name, a timestamp (caller-supplied; the retry
        layer passes simulated time) and free-form attributes; they are
        exported inside the span under ``"events"``.
        """
        event: Dict[str, Any] = {"name": name, "timestamp": timestamp}
        event.update(attributes)
        self.events.append(event)
        return event

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (children nested)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "events": [dict(event) for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search of this subtree by span name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"dur={self.duration:.6f})")


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self._span.attributes.setdefault(
                "error", f"{exc_type.__name__}: {exc}"
            )
        self._tracer.end_span(self._span)
        # Never swallow the exception.


class Tracer:
    """Builds span trees from nested instrumented regions.

    Args:
        now: time source (pass the deployment's ``clock.now`` for
            deterministic traces).
    """

    def __init__(self, now: Callable[[], float] = lambda: 0.0) -> None:
        self._now = now
        self._tls = threading.local()   # per-thread open-span stack
        self._lock = make_rlock("tracer")  # guards roots + counters
        self._roots: List[Span] = []
        self._span_counter = 0
        self._trace_counter = 0
        self._open_count = 0

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # ------------------------------------------------------------- spans

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a span; this thread's innermost open span becomes its
        parent."""
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            self._span_counter += 1
            span_id = f"span-{self._span_counter:04d}"
            if parent is None:
                self._trace_counter += 1
                trace_id = f"trace-{self._trace_counter:04d}"
                parent_id = None
            else:
                trace_id = parent.trace_id
                parent_id = parent.span_id
            self._open_count += 1
        span = Span(name, trace_id, span_id, parent_id, self._now())
        span.attributes.update(attributes)
        if parent is None:
            with self._lock:
                self._roots.append(span)
        else:
            # The parent span belongs to this thread's stack, so its
            # children list is only ever mutated from this thread.
            parent.children.append(span)
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close a span (must be this thread's innermost open one)."""
        stack = self._stack
        if not stack or stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} is not the innermost open span"
            )
        span.end = self._now()
        stack.pop()
        with self._lock:
            self._open_count -= 1

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """``with tracer.span("name", key=value) as span: ...``"""
        return _SpanContext(self, self.start_span(name, **attributes))

    def current_span(self) -> Optional[Span]:
        """The innermost open span, or ``None`` when quiescent.

        The retry layer uses this to attach retry/give-up events to
        whatever step is in flight without threading span handles
        through every client.  Thread-local: a worker sees its own
        innermost span, never a sibling's.
        """
        stack = self._stack
        return stack[-1] if stack else None

    # ------------------------------------------------------------ export

    def roots(self) -> List[Span]:
        """Completed (and still-open) root spans in start order."""
        with self._lock:
            return list(self._roots)

    def open_depth(self) -> int:
        """How many spans are open across *all* threads (0 quiescent)."""
        with self._lock:
            return self._open_count

    def export(self) -> List[Dict[str, Any]]:
        """The trace forest as JSON-ready dicts (children nested)."""
        return [root.to_dict() for root in self.roots()]

    def export_flat(self) -> List[Dict[str, Any]]:
        """Every span as a flat list (children elided), in span-id order."""
        out: List[Dict[str, Any]] = []

        def visit(span: Span) -> None:
            record = span.to_dict()
            record.pop("children")
            out.append(record)
            for child in span.children:
                visit(child)

        for root in self.roots():
            visit(root)
        out.sort(key=lambda record: record["span_id"])
        return out

    def export_json(self, indent: Optional[int] = None) -> str:
        """The trace forest serialized as JSON."""
        return json.dumps(self.export(), indent=indent, sort_keys=True)

    def find(self, name: str) -> Optional[Span]:
        """First span with ``name`` anywhere in the forest."""
        for root in self.roots():
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def reset(self) -> None:
        """Drop all recorded spans.

        Raises:
            ObservabilityError: if spans are still open (on any thread).
        """
        with self._lock:
            if self._open_count:
                raise ObservabilityError(
                    f"cannot reset with {self._open_count} span(s) open"
                )
            self._roots.clear()
            self._span_counter = 0
            self._trace_counter = 0
