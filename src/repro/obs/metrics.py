"""The deployment's instrument panel.

One :class:`Telemetry` object bundles a :class:`~repro.obs.registry.
MetricsRegistry`, a :class:`~repro.obs.tracing.Tracer` and the simulated
time source, and pre-registers every metric the instrumented hot paths
emit.  Components receive it through their ``instrument(telemetry)`` hooks;
when no hook is installed (``telemetry is None`` everywhere) the
instrumented code paths reduce to a single attribute check, so telemetry is
strictly opt-in and free when disabled.

Metric naming follows the Prometheus conventions: ``vnf_sgx_`` prefix,
``_total`` suffix for counters, ``_seconds`` for time histograms, labels
for bounded dimensions only (step names, verdicts, security modes — never
per-VNF identifiers on high-cardinality paths).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.tracing import Span, Tracer

# ------------------------------------------------------------- metric names

M_AUDIT_EVENTS = "vnf_sgx_audit_events_total"
M_HOST_ATTESTATION_SECONDS = "vnf_sgx_host_attestation_seconds"
M_VNF_ATTESTATION_SECONDS = "vnf_sgx_vnf_attestation_seconds"
M_IAS_VERIFICATION_SECONDS = "vnf_sgx_ias_verification_seconds"
M_IAS_VERDICTS = "vnf_sgx_ias_verdicts_total"
M_CREDENTIALS_ISSUED = "vnf_sgx_credentials_issued_total"
M_PROVISIONING_SECONDS = "vnf_sgx_provisioning_seconds"
M_TLS_HANDSHAKE_SECONDS = "vnf_sgx_tls_handshake_seconds"
M_NORTHBOUND_REQUESTS = "vnf_sgx_northbound_requests_total"
M_ECALLS = "vnf_sgx_enclave_ecalls_total"
M_OCALLS = "vnf_sgx_enclave_ocalls_total"
M_BOUNDARY_BYTES = "vnf_sgx_enclave_boundary_bytes_total"
M_WORKFLOW_STEP_SECONDS = "vnf_sgx_workflow_step_seconds"
M_WORKFLOWS = "vnf_sgx_workflows_total"
M_ENROLLED_VNFS = "vnf_sgx_enrolled_vnfs"
M_RETRY_ATTEMPTS = "vnf_sgx_retry_attempts_total"
M_RETRY_GIVEUPS = "vnf_sgx_retry_giveups_total"
M_RETRY_BACKOFF_SECONDS = "vnf_sgx_retry_backoff_seconds"
M_WORKFLOW_VNF_FAILURES = "vnf_sgx_workflow_vnf_failures_total"
M_VERIFICATION_CACHE = "vnf_sgx_verification_cache_total"
M_EC_OPS = "vnf_sgx_ec_ops"
M_KMS_REQUESTS = "vnf_sgx_kms_requests_total"
M_KMS_REQUEST_SECONDS = "vnf_sgx_kms_request_seconds"
M_KMS_SECRETS = "vnf_sgx_kms_secrets"
M_RATLS_VALIDATIONS = "vnf_sgx_ratls_validations_total"
M_RATLS_RESUMPTIONS = "vnf_sgx_ratls_resumption_checks_total"
M_FABRIC_REPLICATIONS = "vnf_sgx_fabric_replication_entries_total"
M_FABRIC_FANOUT_SECONDS = "vnf_sgx_fabric_fanout_seconds"
M_FABRIC_CONVERGENCE_SECONDS = "vnf_sgx_fabric_convergence_seconds"
M_FABRIC_REHOMES = "vnf_sgx_fabric_switch_rehomes_total"


class Telemetry:
    """Registry + tracer + clock, with the standard instruments created.

    Args:
        registry: metrics registry (defaults to the process-wide one).
        now: simulated-time source; pass ``deployment.clock.now``.
        tracer: span tracer (created on ``now`` if not supplied).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 now: Callable[[], float] = lambda: 0.0,
                 tracer: Optional[Tracer] = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.now = now
        self.tracer = tracer or Tracer(now=now)
        r = self.registry

        self.audit_events = r.counter(
            M_AUDIT_EVENTS,
            "Verification Manager audit-log events by kind",
            labelnames=("kind",),
        )
        self.host_attestation_seconds = r.histogram(
            M_HOST_ATTESTATION_SECONDS,
            "Simulated time for host attestation + appraisal (steps 1-2)",
            labelnames=("result",),
        )
        self.vnf_attestation_seconds = r.histogram(
            M_VNF_ATTESTATION_SECONDS,
            "Simulated time for credential-enclave attestation (steps 3-4)",
            labelnames=("variant",),
        )
        self.ias_verification_seconds = r.histogram(
            M_IAS_VERIFICATION_SECONDS,
            "Simulated round-trip time of one IAS quote verification",
        )
        self.ias_verdicts = r.counter(
            M_IAS_VERDICTS,
            "IAS quote verdicts by status string",
            labelnames=("status",),
        )
        self.credentials_issued = r.counter(
            M_CREDENTIALS_ISSUED,
            "Client certificates issued, by provisioning variant",
            labelnames=("variant",),
        )
        self.provisioning_seconds = r.histogram(
            M_PROVISIONING_SECONDS,
            "Simulated time for attest+issue+provision (steps 3-5)",
            labelnames=("variant",),
        )
        self.tls_handshake_seconds = r.histogram(
            M_TLS_HANDSHAKE_SECONDS,
            "Simulated TLS handshake time",
            labelnames=("role", "resumed"),
        )
        self.northbound_requests = r.counter(
            M_NORTHBOUND_REQUESTS,
            "Controller northbound REST requests",
            labelnames=("mode", "method", "status"),
        )
        self.ecalls = r.counter(
            M_ECALLS, "Enclave ECALL transitions", labelnames=("platform",),
        )
        self.ocalls = r.counter(
            M_OCALLS, "Enclave OCALL transitions", labelnames=("platform",),
        )
        self.boundary_bytes = r.counter(
            M_BOUNDARY_BYTES,
            "Bytes copied across the enclave boundary",
            labelnames=("platform",),
        )
        self.workflow_step_seconds = r.histogram(
            M_WORKFLOW_STEP_SECONDS,
            "Simulated time per Figure 1 workflow step",
            labelnames=("step",),
        )
        self.workflows = r.counter(
            M_WORKFLOWS, "Completed Figure 1 workflow runs",
        )
        self.enrolled_vnfs = r.gauge(
            M_ENROLLED_VNFS, "VNFs currently holding provisioned credentials",
        )
        self.retry_attempts = r.counter(
            M_RETRY_ATTEMPTS,
            "Transient-failure re-attempts by pipeline operation",
            labelnames=("operation",),
        )
        self.retry_giveups = r.counter(
            M_RETRY_GIVEUPS,
            "Operations abandoned after exhausting their retry policy",
            labelnames=("operation",),
        )
        self.retry_backoff_seconds = r.histogram(
            M_RETRY_BACKOFF_SECONDS,
            "Simulated backoff slept before each re-attempt",
        )
        self.workflow_vnf_failures = r.counter(
            M_WORKFLOW_VNF_FAILURES,
            "VNFs whose enrollment failed during a workflow run "
            "(recorded in WorkflowTrace.failed, fleet continues)",
        )
        self.verification_cache_events = r.counter(
            M_VERIFICATION_CACHE,
            "Verification Manager AVR-cache lookups by result "
            "(hit = IAS round trip skipped for byte-identical evidence)",
            labelnames=("result",),
        )
        self.ec_ops = r.gauge(
            M_EC_OPS,
            "Cumulative EC fast-path engine counters (synced from "
            "repro.crypto.ec on scrape): ladder invocations by kind, "
            "window-table builds, validation-cache hits/misses",
            labelnames=("op",),
        )
        self.kms_requests = r.counter(
            M_KMS_REQUESTS,
            "Key-manager REST requests by operation and HTTP status",
            labelnames=("op", "status"),
        )
        self.kms_request_seconds = r.histogram(
            M_KMS_REQUEST_SECONDS,
            "Simulated end-to-end time of one key-manager request",
            labelnames=("op",),
        )
        self.kms_secrets = r.gauge(
            M_KMS_SECRETS,
            "Sealed secrets currently resident per KMS shard "
            "(synced on scrape and after mutations)",
            labelnames=("shard",),
        )
        self.ratls_validations = r.counter(
            M_RATLS_VALIDATIONS,
            "RA-TLS quote-bearing certificate validations by result "
            "(accepted / rejected)",
            labelnames=("result",),
        )
        self.ratls_resumption_checks = r.counter(
            M_RATLS_RESUMPTIONS,
            "RA-TLS resumption-gate decisions by result "
            "(allowed / denied — denied forces re-attestation)",
            labelnames=("result",),
        )
        self.fabric_replications = r.counter(
            M_FABRIC_REPLICATIONS,
            "Operations replicated through the trusted-fabric keystore "
            "log, by entry kind",
            labelnames=("kind",),
        )
        self.fabric_fanout_seconds = r.histogram(
            M_FABRIC_FANOUT_SECONDS,
            "Simulated end-to-end revocation fan-out time (replication "
            "to every live replica + push to every homed switch)",
            labelnames=("kind",),
        )
        self.fabric_convergence_seconds = r.histogram(
            M_FABRIC_CONVERGENCE_SECONDS,
            "Simulated time for one fabric convergence pass (probe, "
            "re-sync, re-elect, re-home)",
        )
        self.fabric_rehomes = r.counter(
            M_FABRIC_REHOMES,
            "Switches re-homed onto a surviving controller replica "
            "during convergence",
        )

    # -------------------------------------------------------------- spans

    def span(self, name: str, **attributes):
        """Open a traced span (context manager yielding the span)."""
        return self.tracer.span(name, **attributes)

    @contextmanager
    def time(self, histogram_child) -> Iterator[None]:
        """Observe the simulated duration of the ``with`` body into a
        histogram child (observes on success *and* on exception)."""
        start = self.now()
        try:
            yield
        finally:
            histogram_child.observe(self.now() - start)

    # ------------------------------------------------------------- hooks

    def observe_audit(self, event) -> None:
        """AuditLog observer: one counter increment per recorded event."""
        self.audit_events.labels(kind=event.kind).inc()

    def observe_handshake(self, role: str, resumed: bool,
                          seconds: float) -> None:
        """Record one TLS handshake."""
        self.tls_handshake_seconds.labels(
            role=role, resumed="true" if resumed else "false"
        ).observe(seconds)

    def sync_ec_stats(self, curve=None) -> None:
        """Mirror the EC engine's plain-integer counters into ``ec_ops``.

        The crypto layer counts with bare ``int += 1`` so the hot ladders
        never touch the registry; this pull-style sync (called by the
        ``/metrics`` endpoint before rendering, or manually) copies the
        current snapshot into gauge children.  Passing ``curve`` overrides
        the default P-256 instance (tests use private curves).
        """
        if curve is None:
            from repro.crypto.ec import P256 as curve  # noqa: N813
        for op, value in curve.stats.snapshot().items():
            self.ec_ops.labels(op=op).set(value)

    # ------------------------------------------------------------ reading

    def histogram(self, name: str) -> Histogram:
        """A registered histogram family by name."""
        family = self.registry.get(name)
        if not isinstance(family, Histogram):
            from repro.errors import ObservabilityError

            raise ObservabilityError(f"{name} is a {family.kind}")
        return family

    def reset(self) -> None:
        """Zero metrics and drop spans (registrations survive)."""
        self.registry.reset()
        self.tracer.reset()


__all__ = [
    "Telemetry",
    "Span",
    "M_AUDIT_EVENTS",
    "M_HOST_ATTESTATION_SECONDS",
    "M_VNF_ATTESTATION_SECONDS",
    "M_IAS_VERIFICATION_SECONDS",
    "M_IAS_VERDICTS",
    "M_CREDENTIALS_ISSUED",
    "M_PROVISIONING_SECONDS",
    "M_TLS_HANDSHAKE_SECONDS",
    "M_NORTHBOUND_REQUESTS",
    "M_ECALLS",
    "M_OCALLS",
    "M_BOUNDARY_BYTES",
    "M_WORKFLOW_STEP_SECONDS",
    "M_WORKFLOWS",
    "M_ENROLLED_VNFS",
    "M_RETRY_ATTEMPTS",
    "M_RETRY_GIVEUPS",
    "M_VERIFICATION_CACHE",
    "M_EC_OPS",
    "M_RETRY_BACKOFF_SECONDS",
    "M_WORKFLOW_VNF_FAILURES",
    "M_KMS_REQUESTS",
    "M_KMS_REQUEST_SECONDS",
    "M_KMS_SECRETS",
    "M_RATLS_VALIDATIONS",
    "M_RATLS_RESUMPTIONS",
    "M_FABRIC_REPLICATIONS",
    "M_FABRIC_FANOUT_SECONDS",
    "M_FABRIC_CONVERGENCE_SECONDS",
    "M_FABRIC_REHOMES",
]
