"""The metrics registry: Counters, Gauges and Histograms with labels.

Modeled on the Prometheus client-library data model: a *metric family* has
a name, a help string and a fixed set of label names; each distinct
combination of label values materialises one *child* holding the actual
numbers.  A process-wide default registry exists for convenience
(:func:`default_registry`) and can be swapped out wholesale for test
isolation (:func:`reset_default_registry`).

Observing a metric never touches the virtual clock — telemetry watches the
simulation, it does not participate in it — so enabling instrumentation
cannot change simulated timings.

Thread-safety: the registry's get-or-create, each family's child
creation, and every child mutation run under locks, so concurrent fleet
enrollments (:mod:`repro.core.fleet`) can instrument freely: two threads
racing to create the same metric (or the same labelled child) converge
on a single instance instead of silently dropping one of them, and
counter/histogram updates never lose increments.  See
``docs/CONCURRENCY.md`` for the lock ordering rules (registry lock >
family lock > child lock; no call path takes them in reverse).
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.sanitizer import make_lock, make_rlock
from repro.errors import ObservabilityError

TYPE_COUNTER = "counter"
TYPE_GAUGE = "gauge"
TYPE_HISTOGRAM = "histogram"

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets, in (simulated) seconds.  The simulation's
#: interesting range spans tens of microseconds (loopback round trips) to
#: tens of milliseconds (WAN attestation), hence the low-end density.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5,
)


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for name in names:
        if not _LABEL_NAME_RE.match(name):
            raise ObservabilityError(f"invalid label name {name!r}")
        if name == "le":
            raise ObservabilityError(
                "label name 'le' is reserved for histogram buckets"
            )
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate label names in {names!r}")
    return names


class MetricFamily:
    """Common behaviour of the three metric kinds."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = _validate_labelnames(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._family_lock = make_rlock("family")

    # ----------------------------------------------------------- children

    def _make_child(self):  # pragma: no cover — overridden
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child for one combination of label values (creating it on
        first use)."""
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"expected {sorted(self.labelnames)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        # Atomic get-or-create: the naive check-then-act version loses a
        # child when two threads race on a new label combination (each
        # observing into its own orphan).
        with self._family_lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _unlabelled(self):
        """The single child of a label-less family."""
        if self.labelnames:
            raise ObservabilityError(
                f"{self.name} has labels {self.labelnames}; use .labels()"
            )
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs in insertion order."""
        with self._family_lock:
            return list(self._children.items())

    def reset(self) -> None:
        """Drop all children (counts return to zero)."""
        with self._family_lock:
            self._children.clear()


# --------------------------------------------------------------------------
# Counter


class CounterChild:
    """One monotonically increasing count (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = make_lock("child")

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ObservabilityError("counters can only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value


class Counter(MetricFamily):
    """A monotonically increasing metric family."""

    kind = TYPE_COUNTER

    def _make_child(self) -> CounterChild:
        return CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child."""
        self._unlabelled().inc(amount)

    @property
    def value(self) -> float:
        """Value of the label-less child."""
        return self._unlabelled().value

    def total(self) -> float:
        """Sum over every child (any labels)."""
        return sum(child.value for _, child in self.children())


# --------------------------------------------------------------------------
# Gauge


class GaugeChild:
    """One instantaneous value (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = make_lock("child")

    def set(self, value: float) -> None:
        """Set the gauge."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Gauge(MetricFamily):
    """A settable metric family."""

    kind = TYPE_GAUGE

    def _make_child(self) -> GaugeChild:
        return GaugeChild()

    def set(self, value: float) -> None:
        """Set the label-less child."""
        self._unlabelled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child."""
        self._unlabelled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-less child."""
        self._unlabelled().dec(amount)

    @property
    def value(self) -> float:
        """Value of the label-less child."""
        return self._unlabelled().value


# --------------------------------------------------------------------------
# Histogram


class HistogramChild:
    """Bucketed observations with exact-percentile support.

    Unlike a wire-efficient production client, the simulation keeps every
    raw sample, so percentiles are exact (nearest-rank), not interpolated
    from bucket boundaries.
    """

    __slots__ = ("_buckets", "_bucket_counts", "_sum", "_samples",
                 "_sorted", "_lock")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self._buckets = buckets
        self._bucket_counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._samples: List[float] = []
        self._sorted = True
        self._lock = make_rlock("child")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._sum += value
            if self._samples and value < self._samples[-1]:
                self._sorted = False
            self._samples.append(value)
            for index, bound in enumerate(self._buckets):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    return
            self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Sum of observations."""
        return self._sum

    @property
    def buckets(self) -> Tuple[float, ...]:
        """Upper bounds (exclusive of the implicit ``+Inf``)."""
        return self._buckets

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        with self._lock:
            out: List[Tuple[float, int]] = []
            running = 0
            for bound, count in zip(self._buckets, self._bucket_counts):
                running += count
                out.append((bound, running))
            out.append((math.inf, running + self._bucket_counts[-1]))
            return out

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ObservabilityError(f"percentile {q} out of [0, 100]")
        with self._lock:
            if not self._samples:
                raise ObservabilityError("percentile of an empty histogram")
            self._ensure_sorted()
            rank = max(1, math.ceil(q / 100.0 * len(self._samples)))
            return self._samples[rank - 1]

    def summary(self) -> Dict[str, float]:
        """The derived summary: p50/p90/p99 plus count and sum."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class Histogram(MetricFamily):
    """A distribution metric family with configurable buckets."""

    kind = TYPE_HISTOGRAM

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Iterable[float]] = None) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ObservabilityError("histogram needs at least one bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ObservabilityError("histogram buckets must be increasing")
        if any(math.isinf(b) for b in bounds):
            raise ObservabilityError("+Inf bucket is implicit; do not pass it")
        self.buckets = bounds

    def _make_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the label-less child."""
        self._unlabelled().observe(value)

    @property
    def count(self) -> int:
        """Observation count of the label-less child."""
        return self._unlabelled().count

    def percentile(self, q: float) -> float:
        """Percentile of the label-less child."""
        return self._unlabelled().percentile(q)

    def total_count(self) -> int:
        """Observations summed over every child."""
        return sum(child.count for _, child in self.children())


# --------------------------------------------------------------------------
# Registry


class MetricsRegistry:
    """Creates, deduplicates and collects metric families."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = make_rlock("registry")

    # ---------------------------------------------------------- factories

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> MetricFamily:
        # Atomic under the registry lock: the check-then-act version was
        # racy — two threads creating the same metric each registered
        # their own family, and whichever insert lost the race kept
        # feeding a family that collect() would never see.
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"{name} already registered as a {existing.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"{name} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a counter family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        """Get or create a histogram family."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    # --------------------------------------------------------- collection

    def get(self, name: str) -> MetricFamily:
        """A registered family by name.

        Raises:
            ObservabilityError: unknown metric.
        """
        with self._lock:
            try:
                return self._families[name]
            except KeyError as exc:
                raise ObservabilityError(
                    f"no metric named {name!r}"
                ) from exc

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def collect(self) -> List[MetricFamily]:
        """All families, sorted by name (exposition order)."""
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def reset(self) -> None:
        """Zero every family (registrations survive, children are dropped)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.reset()

    def unregister(self, name: str) -> None:
        """Remove a family entirely."""
        with self._lock:
            self._families.pop(name, None)


# --------------------------------------------------------------------------
# Process-wide default registry

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _default_registry


def reset_default_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one (for tests)."""
    global _default_registry
    _default_registry = MetricsRegistry()
    return _default_registry
