"""Exposition: Prometheus text format + the VM's telemetry endpoint.

:func:`render_prometheus` serializes a registry in the Prometheus
text-based exposition format (version 0.0.4: ``# HELP`` / ``# TYPE``
comments, ``name{label="value"} value`` samples, histogram ``_bucket`` /
``_sum`` / ``_count`` series).  :func:`parse_prometheus` reads the same
format back — used by tests for round-tripping and by the bench harness to
quote scraped numbers.

:class:`TelemetryEndpoint` mounts ``GET /metrics`` and ``GET /traces`` on
the simulated network, mirroring how Floodlight's northbound serves REST:
a plain-HTTP :class:`~repro.net.rest.RestServer` behind a network listener.
The scrape itself flows over the simulated fabric, so it charges network
time like any other traffic — which is why deployments expose it on a
dedicated port and scrape *after* measuring.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Tuple

from repro.errors import ObservabilityError, RestError
from repro.net.address import Address
from repro.net.rest import HttpParser, HttpRequest, HttpResponse, RestServer
from repro.net.simnet import Network
from repro.obs.metrics import Telemetry
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

METRICS_PATH = "/metrics"
TRACES_PATH = "/traces"
CONTENT_TYPE_TEXT = "text/plain; version=0.0.4"

#: Labels parsed back from exposition text, as a hashable key.
LabelSet = Tuple[Tuple[str, str], ...]


# --------------------------------------------------------------- rendering


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _unescape_label_value(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names, values, extra: Tuple[Tuple[str, str], ...] = ()
                   ) -> str:
    pairs = [(n, v) for n, v in zip(names, values)]
    pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, (Counter, Gauge)):
            for values, child in family.children():
                labels = _format_labels(family.labelnames, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
        elif isinstance(family, Histogram):
            for values, child in family.children():
                for bound, cumulative in child.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    labels = _format_labels(
                        family.labelnames, values, extra=(("le", le),)
                    )
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                labels = _format_labels(family.labelnames, values)
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
        else:  # pragma: no cover — unreachable with the known kinds
            raise ObservabilityError(f"unknown family kind {family.kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------- parsing


def _parse_labels(text: str) -> LabelSet:
    pairs = []
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        name = text[index:eq].strip()
        if text[eq + 1] != '"':
            raise ObservabilityError(f"unquoted label value near {text!r}")
        end = eq + 2
        raw = []
        while text[end] != '"':
            if text[end] == "\\":
                raw.append(text[end:end + 2])
                end += 2
            else:
                raw.append(text[end])
                end += 1
        pairs.append((name, _unescape_label_value("".join(raw))))
        index = end + 1
        if index < len(text) and text[index] == ",":
            index += 1
    # Canonical (sorted) order so lookups don't depend on wire order.
    return tuple(sorted(pairs))


def parse_prometheus(text: str) -> Dict[str, Dict[LabelSet, float]]:
    """Parse exposition text into ``{series_name: {labelset: value}}``.

    Histogram series appear under their ``_bucket`` / ``_sum`` / ``_count``
    names, exactly as exposed.  Label sets are keyed in sorted
    (name-alphabetical) order regardless of wire order.
    """
    out: Dict[str, Dict[LabelSet, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name = line[:line.index("{")]
            rest = line[line.index("{") + 1:]
            labels_text = rest[:rest.rindex("}")]
            value_text = rest[rest.rindex("}") + 1:].strip()
            labels = _parse_labels(labels_text)
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        out.setdefault(name, {})[labels] = value
    return out


# ---------------------------------------------------------------- endpoint


class TelemetryEndpoint:
    """Serves ``/metrics`` and ``/traces`` for one telemetry instance.

    Plain HTTP, like Floodlight's default northbound: the scrape target
    lives inside the operator's management network in this model.  (The
    paper's trust argument concerns VNF credentials, not fleet telemetry;
    an HTTPS wrapper would reuse :class:`~repro.tls.TlsServer` unchanged.)
    """

    def __init__(self, telemetry: Telemetry, network: Network,
                 address: Address) -> None:
        self.telemetry = telemetry
        self.address = address
        self._network = network
        self.scrapes_served = 0
        self._rest = RestServer()
        self._rest.route("GET", METRICS_PATH, self._handle_metrics)
        self._rest.route("GET", TRACES_PATH, self._handle_traces)
        network.listen(address, self._accept)

    def close(self) -> None:
        """Stop listening."""
        self._network.stop_listening(self.address)

    # ----------------------------------------------------------- handlers

    def _accept(self, channel) -> None:
        parser = HttpParser(is_server_side=True)

        def on_data(ch) -> None:
            for request in parser.feed(ch.recv_available()):
                ch.send(self._rest.dispatch(request).encode())

        channel.on_receive(on_data)

    def _handle_metrics(self, request: HttpRequest) -> HttpResponse:
        self.scrapes_served += 1
        # Pull-style sync: copy the EC engine's plain-int counters into
        # the registry right before rendering, so scrapes see fresh
        # numbers without the crypto hot paths ever touching a registry.
        self.telemetry.sync_ec_stats()
        body = render_prometheus(self.telemetry.registry).encode("utf-8")
        return HttpResponse(
            200, headers={"content-type": CONTENT_TYPE_TEXT}, body=body
        )

    def _handle_traces(self, request: HttpRequest) -> HttpResponse:
        self.scrapes_served += 1
        body = self.telemetry.tracer.export_json(indent=2).encode("utf-8")
        return HttpResponse(
            200, headers={"content-type": "application/json"}, body=body
        )


def scrape(network: Network, address: Address, path: str = METRICS_PATH,
           source_host: str = "metrics-scraper") -> bytes:
    """One plain-HTTP GET over the simulated network; returns the body.

    Raises:
        RestError: non-200 response or no response at all.
    """
    channel = network.connect(source_host, address)
    try:
        channel.send(HttpRequest("GET", path).encode())
        parser = HttpParser(is_server_side=False)
        responses = parser.feed(channel.recv_available())
        if not responses:
            raise RestError(f"no response scraping {path}")
        response = responses[0]
        if response.status != 200:
            raise RestError(
                f"scrape of {path} returned {response.status}: "
                f"{response.body.decode(errors='replace')}"
            )
        return response.body
    finally:
        channel.close()


def scrape_text(network: Network, address: Address,
                source_host: str = "metrics-scraper") -> str:
    """``/metrics`` as text."""
    return scrape(network, address, METRICS_PATH, source_host).decode("utf-8")


def scrape_traces(network: Network, address: Address,
                  source_host: str = "metrics-scraper") -> list:
    """``/traces`` parsed back from JSON."""
    body = scrape(network, address, TRACES_PATH, source_host)
    return json.loads(body.decode("utf-8"))
