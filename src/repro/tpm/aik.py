"""AIK certification: binding a TPM's attestation key to an identity.

A privacy CA (in this deployment, the Verification Manager's CA) certifies
the AIK public key so verifiers can trust quotes from a specific platform.
"""

from __future__ import annotations

from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate, KEY_USAGE_DIGITAL_SIGNATURE
from repro.pki.name import DistinguishedName
from repro.tpm.tpm import TpmDevice


def issue_aik_certificate(ca: CertificateAuthority, tpm: TpmDevice,
                          platform_name: str, now: int,
                          validity: int = 365 * 24 * 3600) -> Certificate:
    """Certify a TPM's AIK for ``platform_name``."""
    return ca.issue(
        subject=DistinguishedName(f"aik:{platform_name}", "tpm"),
        public_key_bytes=tpm.aik_public.to_bytes(),
        now=now,
        validity=validity,
        key_usage=(KEY_USAGE_DIGITAL_SIGNATURE,),
    )
