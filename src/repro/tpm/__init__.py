"""A TPM2-lite device model — the paper's future-work root of trust.

Section 4 of the paper: the IML "is not currently protected by a hardware
root of trust... Integrity measurements are thus vulnerable to tampering by
an adversary having root access."  This subpackage implements the named
fix: a TPM with extend-only PCR banks and an attestation identity key that
signs quotes over selected PCRs, so a rewritten measurement log no longer
matches the hardware aggregate (experiment E7).
"""

from repro.tpm.tpm import TpmDevice
from repro.tpm.quote import TpmQuote
from repro.tpm.aik import issue_aik_certificate

__all__ = ["TpmDevice", "TpmQuote", "issue_aik_certificate"]
