"""The TPM device: extend-only PCR banks and AIK-signed quotes."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crypto.keys import EcPrivateKey, EcPublicKey, generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import TpmError
from repro.ima.pcr import Pcr
from repro.tpm.quote import TpmQuote

NUM_PCRS = 24


class TpmDevice:
    """One TPM: 24 SHA-256 PCRs plus an attestation identity key.

    The AIK private key never leaves the device object; callers get the
    public half for verification and signed quotes on demand.  Crucially,
    there is no API to *set* a PCR — only :meth:`extend` — which is the
    entire security argument of experiment E7.
    """

    def __init__(self, rng: Optional[HmacDrbg] = None) -> None:
        self._pcrs: List[Pcr] = [Pcr() for _ in range(NUM_PCRS)]
        self._aik: EcPrivateKey = generate_keypair(rng)
        self.quote_count = 0

    # ---------------------------------------------------------------- PCRs

    def extend(self, index: int, digest: bytes) -> bytes:
        """Extend PCR ``index``; returns its new value."""
        self._check_index(index)
        return self._pcrs[index].extend(digest)

    def read_pcr(self, index: int) -> bytes:
        """Read PCR ``index`` (unauthenticated, like ``pcrread``)."""
        self._check_index(index)
        return self._pcrs[index].read()

    def reboot(self) -> None:
        """Reset all PCRs (platform reboot)."""
        for pcr in self._pcrs:
            pcr.reset()

    def _check_index(self, index: int) -> None:
        if not 0 <= index < NUM_PCRS:
            raise TpmError(f"PCR index {index} out of range")

    # --------------------------------------------------------------- quotes

    @property
    def aik_public(self) -> EcPublicKey:
        """The attestation identity public key."""
        return self._aik.public

    def quote(self, pcr_selection: Sequence[int], nonce: bytes) -> TpmQuote:
        """Sign a snapshot of the selected PCRs bound to ``nonce``."""
        if not pcr_selection:
            raise TpmError("empty PCR selection")
        for index in pcr_selection:
            self._check_index(index)
        values = tuple(
            (index, self._pcrs[index].read())
            for index in sorted(set(pcr_selection))
        )
        unsigned = TpmQuote(pcr_values=values, nonce=nonce)
        self.quote_count += 1
        return TpmQuote(
            pcr_values=values,
            nonce=nonce,
            signature=self._aik.sign(unsigned.body_bytes()),
        )
