"""TPM quotes: AIK-signed statements about PCR contents."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.keys import EcPublicKey
from repro.errors import TpmError
from repro.pki import der


@dataclass(frozen=True)
class TpmQuote:
    """A signed snapshot of selected PCRs.

    Attributes:
        pcr_values: ``(index, value)`` pairs, ascending by index.
        nonce: anti-replay challenge supplied by the verifier.
        signature: AIK signature over the body.
    """

    pcr_values: Tuple[Tuple[int, bytes], ...]
    nonce: bytes
    signature: bytes = b""

    def body_bytes(self) -> bytes:
        """The signed portion."""
        return der.encode([
            [[index, value] for index, value in self.pcr_values],
            self.nonce,
        ])

    def to_bytes(self) -> bytes:
        """Serialized quote."""
        return der.encode([
            [[index, value] for index, value in self.pcr_values],
            self.nonce,
            self.signature,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "TpmQuote":
        """Parse a serialized quote."""
        raw_pcrs, nonce, signature = der.decode(data)
        return cls(
            pcr_values=tuple((entry[0], entry[1]) for entry in raw_pcrs),
            nonce=nonce,
            signature=signature,
        )

    def verify(self, aik_public: EcPublicKey) -> None:
        """Check the AIK signature.

        Raises:
            repro.errors.InvalidSignature: on failure.
        """
        aik_public.verify(self.body_bytes(), self.signature)

    def value_of(self, index: int) -> bytes:
        """The quoted value of PCR ``index``."""
        for pcr_index, value in self.pcr_values:
            if pcr_index == index:
                return value
        raise TpmError(f"PCR {index} not covered by this quote")
