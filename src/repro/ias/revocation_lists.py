"""EPID revocation lists.

Two mechanisms, mirroring real EPID:

- **PrivRL** — revoked member *keys*.  Checking a signature against a
  PrivRL is inherently linear: for each revoked key the verifier re-derives
  what that key's pseudonym would have been under the signature's basename
  and compares.  Experiment E6's linear cost curve comes from here.
- **SigRL** — revoked *signatures*, stored as ``(basename, pseudonym)``
  pairs.  A signer is caught only when signing under the same basename —
  the standard EPID linkability caveat, which is why the Verification
  Manager pins one basename per deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.crypto.constant_time import ct_bytes_eq
from repro.pki import der
from repro.sgx.epid import EpidSignature, pseudonym


@dataclass
class PrivRl:
    """Private-key revocation list."""

    version: int = 0
    revoked_member_ids: List[bytes] = field(default_factory=list)

    def add(self, member_id: bytes) -> None:
        """Revoke a member key."""
        if member_id not in self.revoked_member_ids:
            self.revoked_member_ids.append(member_id)
            self.version += 1

    def matches(self, signature: EpidSignature,
                derive_member_secret: Callable[[bytes], bytes]) -> Optional[bytes]:
        """Return the revoked member id that produced ``signature``, if any.

        ``derive_member_secret`` is the group manager's derivation; the
        check is linear in the list size by construction.
        """
        for member_id in self.revoked_member_ids:
            secret = derive_member_secret(member_id)
            candidate = pseudonym(secret, signature.basename)
            if ct_bytes_eq(candidate, signature.pseudonym):
                return member_id
        return None

    def to_bytes(self) -> bytes:
        """Serialized list."""
        return der.encode([self.version, list(self.revoked_member_ids)])

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivRl":
        """Parse a serialized list."""
        version, ids = der.decode(data)
        return cls(version=version, revoked_member_ids=list(ids))

    def __len__(self) -> int:
        return len(self.revoked_member_ids)


@dataclass
class SigRl:
    """Signature revocation list: ``(basename, pseudonym)`` pairs."""

    version: int = 0
    entries: List[Tuple[bytes, bytes]] = field(default_factory=list)

    def add(self, signature: EpidSignature) -> None:
        """Revoke everything linkable to ``signature`` under its basename."""
        entry = (signature.basename, signature.pseudonym)
        if entry not in self.entries:
            self.entries.append(entry)
            self.version += 1

    def matches(self, signature: EpidSignature) -> bool:
        """True if the signature links to a revoked one (same basename)."""
        hit = False
        for basename, revoked_pseudonym in self.entries:
            # Constant-shape scan: cost stays linear in the list size.
            same = basename == signature.basename and ct_bytes_eq(
                revoked_pseudonym, signature.pseudonym
            )
            hit = hit or same
        return hit

    def to_bytes(self) -> bytes:
        """Serialized list."""
        return der.encode([
            self.version,
            [[basename, pseudo] for basename, pseudo in self.entries],
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "SigRl":
        """Parse a serialized list."""
        version, raw = der.decode(data)
        return cls(version=version,
                   entries=[(entry[0], entry[1]) for entry in raw])

    def __len__(self) -> int:
        return len(self.entries)
