"""The attestation service core.

One :class:`IasService` manages one EPID group: it provisions platforms
with member keys (into their quoting enclaves), verifies submitted quotes,
maintains both revocation lists, and signs verdicts with its report key.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import EcPrivateKey, EcPublicKey, generate_keypair
from repro.crypto.rng import HmacDrbg, default_rng
from repro.errors import IasError, QuoteError, ReproError
from repro.ias.report import AttestationVerificationReport, sign_report
from repro.ias.revocation_lists import PrivRl, SigRl
from repro.sgx.epid import EpidGroup
from repro.sgx.platform import SgxPlatform
from repro.sgx.quote import Quote


class QuoteStatus:
    """AVR status strings (the subset of real IAS verdicts we model)."""

    OK = "OK"
    SIGNATURE_INVALID = "SIGNATURE_INVALID"
    KEY_REVOKED = "KEY_REVOKED"
    SIGNATURE_REVOKED = "SIGNATURE_REVOKED"
    GROUP_REVOKED = "GROUP_REVOKED"
    GROUP_OUT_OF_DATE = "GROUP_OUT_OF_DATE"


class IasService:
    """The attestation service.

    Args:
        rng: randomness (group/master keys, report ids).
        now: time source for AVR timestamps.
        group_id: EPID group identifier.
    """

    def __init__(self, rng: Optional[HmacDrbg] = None,
                 now: Callable[[], int] = lambda: 0,
                 group_id: bytes = b"epid-group-0") -> None:
        self._rng = rng or default_rng()
        self._now = now
        self.group = EpidGroup(group_id, self._rng.random_bytes(32))
        self._report_key: EcPrivateKey = generate_keypair(self._rng)
        self.priv_rl = PrivRl()
        self.sig_rl = SigRl()
        self.group_revoked = False
        # Platforms whose quoting enclave is older than this SVN get the
        # GROUP_OUT_OF_DATE verdict (the TCB-recovery mechanism: after a
        # microcode/QE update, IAS raises the floor).
        self.min_qe_svn = 0
        self._platforms: Dict[bytes, str] = {}  # member id -> platform name
        self._report_counter = 0
        self.quotes_verified = 0
        # Modelled revocation-list scan cost (entries examined), the
        # deterministic counter E6's batch-amortization assert reads:
        # sequential verifies pay O(|RL|) each, a batch pays O(|RL| + B).
        self.rl_entries_scanned = 0
        self._telemetry = None  # set by instrument()
        self._kernel_pool = None  # set by attach_kernel_pool()

    def attach_kernel_pool(self, pool) -> None:
        """Dispatch verification math to a
        :class:`repro.core.kernels.KernelPool` (``None`` detaches).

        Report ids and AVR timestamps stay in-process (assigned in
        submission order before dispatch), so pooled verdicts are
        byte-identical to the inline path."""
        self._kernel_pool = pool

    def instrument(self, telemetry) -> None:
        """Attach telemetry: every verdict increments
        ``vnf_sgx_ias_verdicts_total{status=...}``.  ``None`` detaches."""
        self._telemetry = telemetry

    # --------------------------------------------------------- provisioning

    @property
    def report_signing_public_key(self) -> EcPublicKey:
        """The key relying parties verify AVRs against."""
        return self._report_key.public

    def register_platform(self, platform: SgxPlatform) -> bytes:
        """Provision a platform's QE with an EPID member key.

        Returns the member id (IAS-internal handle for later revocation).
        """
        member = self.group.issue_member(self._rng)
        platform.provision_epid(member, self.group.sealing_key())
        self._platforms[member.member_id] = platform.name
        return member.member_id

    def platform_name(self, member_id: bytes) -> Optional[str]:
        """Registered platform name for a member id."""
        return self._platforms.get(member_id)

    # ----------------------------------------------------------- revocation

    def revoke_member(self, member_id: bytes) -> None:
        """Put a platform's key on the PrivRL."""
        if member_id not in self._platforms:
            raise IasError("unknown EPID member id")
        self.priv_rl.add(member_id)

    def revoke_platform(self, platform_name: str) -> None:
        """Revoke every member key registered for ``platform_name``."""
        hits = [mid for mid, name in self._platforms.items()
                if name == platform_name]
        if not hits:
            raise IasError(f"no registered platform named {platform_name!r}")
        for member_id in hits:
            self.priv_rl.add(member_id)

    def revoke_quote_signature(self, quote: Quote) -> None:
        """Put a specific quote's signature on the SigRL."""
        self.sig_rl.add(quote.signature())

    def revoke_group(self) -> None:
        """Revoke the whole group (catastrophic compromise)."""
        self.group_revoked = True

    # ---------------------------------------------------------- verification

    def verification_snapshot(self) -> bytes:
        """The current verification state as one kernel-shippable blob.

        Built fresh per call: the revocation lists mutate in place, so a
        cached snapshot would verify against stale RLs.
        """
        # Runtime import: repro.core's package __init__ imports modules
        # that import this one, so a module-level import would cycle.
        from repro.core.kernels import encode_verification_snapshot
        return encode_verification_snapshot(
            self.group.group_id, self.group.export_secret(),
            self.priv_rl.to_bytes(), self.sig_rl.to_bytes(),
            self.group_revoked, self.min_qe_svn,
        )

    def verify_quote(self, quote_bytes: bytes,
                     nonce: str = "") -> AttestationVerificationReport:
        """Verify a quote and return the signed verdict.

        The order of checks mirrors real IAS: group status, signature
        validity, key revocation, signature revocation.
        """
        self.quotes_verified += 1
        quote = Quote.from_bytes(quote_bytes)
        pool = self._kernel_pool
        if pool is None:
            status = self._status_for(quote)
            if self._telemetry is not None:
                self._telemetry.ias_verdicts.labels(status=status).inc()
            self._report_counter += 1
            return sign_report(
                self._report_key,
                report_id=f"avr-{self._report_counter:08d}",
                timestamp=int(self._now()),
                quote_status=status,
                quote_body_hex=quote.body_bytes().hex(),
                nonce=nonce,
            )
        # Pooled path: assign the order-sensitive pieces (report id,
        # timestamp) here, ship the math to a worker.
        self._report_counter += 1
        report_id = f"avr-{self._report_counter:08d}"
        avr_bytes, status, scanned = pool.verify_quote(
            quote_bytes, nonce, self.verification_snapshot(),
            self._report_key.to_bytes(), report_id, int(self._now()),
        )
        self.rl_entries_scanned += scanned
        if self._telemetry is not None:
            self._telemetry.ias_verdicts.labels(status=status).inc()
        return AttestationVerificationReport.from_json(avr_bytes)

    def verify_quotes(self, batch: Sequence[Tuple[bytes, str]]
                      ) -> List[AttestationVerificationReport]:
        """Verify a batch of ``(quote_bytes, nonce)`` with one amortized
        revocation-list scan.

        Verdicts and AVR bytes are identical to calling
        :meth:`verify_quote` once per entry in the same order; only the
        modelled scan cost (``rl_entries_scanned``) drops from
        O(B x |RL|) to O(|RL| + B).
        """
        if not batch:
            return []
        items: List[Tuple[bytes, str, str, int]] = []
        for quote_bytes, nonce in batch:
            self.quotes_verified += 1
            self._report_counter += 1
            items.append((quote_bytes, nonce,
                          f"avr-{self._report_counter:08d}",
                          int(self._now())))
        from repro.core.kernels import verify_quotes_kernel  # see above
        snapshot = self.verification_snapshot()
        key_bytes = self._report_key.to_bytes()
        pool = self._kernel_pool
        if pool is None:
            results, scanned = verify_quotes_kernel(tuple(items), snapshot,
                                                    key_bytes)
        else:
            results, scanned = pool.verify_quotes(items, snapshot, key_bytes)
        self.rl_entries_scanned += scanned
        reports: List[AttestationVerificationReport] = []
        for avr_bytes, status in results:
            if self._telemetry is not None:
                self._telemetry.ias_verdicts.labels(status=status).inc()
            reports.append(AttestationVerificationReport.from_json(avr_bytes))
        return reports

    def _status_for(self, quote: Quote) -> str:
        if self.group_revoked:
            return QuoteStatus.GROUP_REVOKED
        try:
            signature = quote.signature()
            self.group.verify(signature, quote.body_bytes())
        except (QuoteError, ReproError):
            return QuoteStatus.SIGNATURE_INVALID
        self.rl_entries_scanned += len(self.priv_rl)
        if self.priv_rl.matches(signature,
                                self.group.derive_member_secret) is not None:
            return QuoteStatus.KEY_REVOKED
        self.rl_entries_scanned += len(self.sig_rl)
        if self.sig_rl.matches(signature):
            return QuoteStatus.SIGNATURE_REVOKED
        if quote.qe_svn < self.min_qe_svn:
            return QuoteStatus.GROUP_OUT_OF_DATE
        return QuoteStatus.OK

    def raise_tcb_floor(self, min_qe_svn: int) -> None:
        """TCB recovery: demand a quoting-enclave SVN of at least
        ``min_qe_svn`` from now on."""
        self.min_qe_svn = min_qe_svn
