"""Attestation Verification Reports — IAS's signed verdicts.

Relying parties (the Verification Manager) trust AVRs because they are
signed with the IAS report-signing key, whose certificate ships out of
band; the quote body is echoed so the verdict is bound to what was asked.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto.keys import EcPrivateKey, EcPublicKey
from repro.errors import IasError


@dataclass(frozen=True)
class AttestationVerificationReport:
    """One signed verdict about one quote."""

    report_id: str
    timestamp: int
    quote_status: str
    isv_enclave_quote_body: str  # hex of the quote body the verdict covers
    nonce: str
    signature: bytes = b""

    def body_json(self) -> bytes:
        """Canonical JSON of the signed portion."""
        return json.dumps(
            {
                "id": self.report_id,
                "timestamp": self.timestamp,
                "isvEnclaveQuoteStatus": self.quote_status,
                "isvEnclaveQuoteBody": self.isv_enclave_quote_body,
                "nonce": self.nonce,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    def to_json(self) -> bytes:
        """Full serialized report, signature included."""
        return json.dumps(
            {
                "id": self.report_id,
                "timestamp": self.timestamp,
                "isvEnclaveQuoteStatus": self.quote_status,
                "isvEnclaveQuoteBody": self.isv_enclave_quote_body,
                "nonce": self.nonce,
                "signature": self.signature.hex(),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_json(cls, data: bytes) -> "AttestationVerificationReport":
        """Parse a serialized report."""
        try:
            obj = json.loads(data.decode("utf-8"))
            return cls(
                report_id=obj["id"],
                timestamp=obj["timestamp"],
                quote_status=obj["isvEnclaveQuoteStatus"],
                isv_enclave_quote_body=obj["isvEnclaveQuoteBody"],
                nonce=obj["nonce"],
                signature=bytes.fromhex(obj["signature"]),
            )
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            raise IasError(f"malformed AVR: {exc}") from exc

    def verify(self, ias_public_key: EcPublicKey) -> None:
        """Check the IAS report-signing signature.

        Raises:
            repro.errors.InvalidSignature: on failure.
        """
        ias_public_key.verify(self.body_json(), self.signature)

    @property
    def ok(self) -> bool:
        """True for an unqualified positive verdict."""
        return self.quote_status == "OK"


def sign_report(key: EcPrivateKey, report_id: str, timestamp: int,
                quote_status: str, quote_body_hex: str,
                nonce: str) -> AttestationVerificationReport:
    """Build and sign an AVR."""
    unsigned = AttestationVerificationReport(
        report_id=report_id,
        timestamp=timestamp,
        quote_status=quote_status,
        isv_enclave_quote_body=quote_body_hex,
        nonce=nonce,
    )
    return AttestationVerificationReport(
        report_id=report_id,
        timestamp=timestamp,
        quote_status=quote_status,
        isv_enclave_quote_body=quote_body_hex,
        nonce=nonce,
        signature=key.sign(unsigned.body_json()),
    )
