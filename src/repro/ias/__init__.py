"""The Intel Attestation Service model.

Workflow steps 2 and 4 of the paper's Figure 1: the Verification Manager
submits enclave quotes to IAS, which verifies the EPID group signature,
checks the platform against its revocation lists, and returns a signed
Attestation Verification Report (AVR).

- :mod:`repro.ias.service` — the service core: EPID group management,
  platform registration, quote verification, revocation.
- :mod:`repro.ias.revocation_lists` — PrivRL / SigRL semantics.
- :mod:`repro.ias.report` — signed AVRs.
- :mod:`repro.ias.api` — the REST/TLS binding on the simulated network.
"""

from repro.ias.service import IasService, QuoteStatus
from repro.ias.report import AttestationVerificationReport
from repro.ias.revocation_lists import PrivRl, SigRl
from repro.ias.api import IasHttpService, IasClient

__all__ = [
    "IasService",
    "QuoteStatus",
    "AttestationVerificationReport",
    "PrivRl",
    "SigRl",
    "IasHttpService",
    "IasClient",
]
