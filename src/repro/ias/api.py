"""The IAS REST binding: HTTPS endpoint + client.

The paper's Verification Manager "contacts the Intel Attestation Service
using the protocol provided by the SGX implementation"; the real service is
an HTTPS API.  :class:`IasHttpService` exposes
``POST /attestation/v4/report`` (quote in, AVR out) and
``GET /attestation/v4/sigrl`` on the simulated network over server-
authenticated TLS; :class:`IasClient` is the relying-party stub.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from repro.crypto.keys import EcPublicKey, generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import IasError, IasUnavailable
from repro.ias.report import AttestationVerificationReport
from repro.ias.service import IasService
from repro.net.address import Address
from repro.net.rest import (
    TRANSIENT_STATUSES,
    HttpParser,
    HttpRequest,
    HttpResponse,
    RestServer,
)
from repro.net.retry import RetryingMixin
from repro.net.simnet import Network
from repro.pki.ca import CertificateAuthority
from repro.pki.name import DistinguishedName
from repro.pki.truststore import Truststore
from repro.tls import TlsClient, TlsConfig, TlsServer

REPORT_PATH = "/attestation/v4/report"
REPORTS_PATH = "/attestation/v4/reports"  # batched verify (one RL scan)
SIGRL_PATH = "/attestation/v4/sigrl"


class IasHttpService:
    """Serves an :class:`IasService` over HTTPS on the simulated network."""

    def __init__(self, service: IasService, network: Network,
                 address: Address, rng: Optional[HmacDrbg] = None) -> None:
        self.service = service
        self.address = address
        self._network = network
        # IAS runs its own private CA for its HTTPS endpoint; relying
        # parties get the CA certificate out of band (ias_truststore).
        self._ca = CertificateAuthority(
            DistinguishedName("IAS-Root", "Intel-model"),
            now=network.clock.now_seconds(), rng=rng,
        )
        server_key = generate_keypair(rng)
        server_cert = self._ca.issue_server_certificate(
            DistinguishedName(address.host), server_key.public.to_bytes(),
            now=network.clock.now_seconds(),
        )
        self._rest = RestServer()
        self._rest.route("POST", REPORT_PATH, self._handle_report)
        self._rest.route("POST", REPORTS_PATH, self._handle_reports)
        self._rest.route("GET", SIGRL_PATH, self._handle_sigrl)
        tls_config = TlsConfig(
            certificate_chain=[server_cert],
            private_key=server_key,
            rng=rng,
            now=network.clock.now_seconds,
        )
        self._tls = TlsServer(tls_config)
        network.listen(address, self._accept)

    @property
    def ias_truststore(self) -> Truststore:
        """Anchors for connecting to this IAS endpoint."""
        return Truststore([self._ca.certificate])

    # ------------------------------------------------------------ handlers

    def _accept(self, channel) -> None:
        parser = HttpParser(is_server_side=True)

        def on_data(conn) -> None:
            for request in parser.feed(conn.recv_available()):
                conn.send(self._respond(request).encode())

        self._tls.accept(channel, on_data=on_data)

    def _respond(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one request, honouring any installed fault plan.

        An injected ``http_error`` schedule (e.g. "IAS returns 503 for
        the next N requests") answers here without touching the
        :class:`IasService` — the outage is purely at the REST surface,
        exactly like a real IAS brown-out.
        """
        faults = self._network.faults
        if faults is not None:
            injected = faults.next_http_error(self.address)
            if injected is not None:
                return HttpResponse(
                    injected,
                    headers={"retry-after": "1"},
                    body=b"injected fault: service unavailable",
                )
        return self._rest.dispatch(request)

    def _handle_report(self, request: HttpRequest) -> HttpResponse:
        try:
            body = json.loads(request.body.decode("utf-8"))
            quote_bytes = bytes.fromhex(body["isvEnclaveQuote"])
            nonce = body.get("nonce", "")
        except (ValueError, KeyError) as exc:
            return HttpResponse(400, body=f"bad request: {exc}".encode())
        avr = self.service.verify_quote(quote_bytes, nonce)
        return HttpResponse(200, headers={"content-type": "application/json"},
                            body=avr.to_json())

    def _handle_reports(self, request: HttpRequest) -> HttpResponse:
        """Batched verify: a JSON list of report requests in, a JSON list
        of AVRs out (same order), one amortized revocation-list scan."""
        try:
            body = json.loads(request.body.decode("utf-8"))
            batch = [(bytes.fromhex(entry["isvEnclaveQuote"]),
                      entry.get("nonce", ""))
                     for entry in body["reports"]]
        except (TypeError, ValueError, KeyError) as exc:
            return HttpResponse(400, body=f"bad request: {exc}".encode())
        avrs = self.service.verify_quotes(batch)
        payload = json.dumps(
            {"reports": [avr.to_json().decode("utf-8") for avr in avrs]}
        ).encode("utf-8")
        return HttpResponse(200, headers={"content-type": "application/json"},
                            body=payload)

    def _handle_sigrl(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(200, body=self.service.sig_rl.to_bytes().hex().encode())


class IasClient(RetryingMixin):
    """Relying-party stub used by the Verification Manager.

    Configure a :class:`~repro.net.retry.RetryPolicy` via
    :meth:`configure_retries` and transient failures — connection
    refusals, mid-stream drops, and 5xx/429 answers
    (:class:`~repro.errors.IasUnavailable`) — are retried with
    exponential backoff charged to the virtual clock.  Verdict failures
    (a quote IAS *rejected*) are never retried.
    """

    def __init__(self, network: Network, address: Address,
                 ias_truststore: Truststore,
                 report_signing_key: EcPublicKey,
                 source_host: str = "verification-manager",
                 rng: Optional[HmacDrbg] = None) -> None:
        self._network = network
        self._address = address
        self._report_signing_key = report_signing_key
        self._source_host = source_host
        self._tls_client = TlsClient(TlsConfig(
            truststore=ias_truststore,
            rng=rng,
            now=network.clock.now_seconds,
        ))

    def verify_quote(self, quote_bytes: bytes,
                     nonce: str = "") -> AttestationVerificationReport:
        """Submit a quote; returns the AVR after checking its signature.

        Raises:
            IasUnavailable: transient IAS failure (5xx/429) after any
                configured retries were exhausted.
            IasError: malformed AVR, bad AVR signature, nonce mismatch,
                or a non-transient error status.
        """
        return self._retrying(
            lambda: self._verify_once(quote_bytes, nonce),
            operation="ias-verify", clock=self._network.clock,
        )

    def _open_connection(self):
        """Dial IAS and complete the TLS handshake; returns the record
        connection.  Callers own closing it."""
        channel = self._network.connect(self._source_host, self._address)
        return self._tls_client.connect(channel,
                                        server_name=str(self._address))

    def _exchange_on(self, conn, quote_bytes: bytes,
                     nonce: str) -> AttestationVerificationReport:
        """One report request/response over an *established* connection.

        Split out from :meth:`_verify_once` so a pooled client (one
        persistent connection, many verifications — see
        :class:`repro.core.fleet.PooledIasClient`) reuses the exact same
        wire format, status handling, and AVR checks without paying a
        fresh TCP connect + TLS handshake per quote.
        """
        payload = json.dumps({
            "isvEnclaveQuote": quote_bytes.hex(),
            "nonce": nonce,
        }).encode("utf-8")
        conn.send(HttpRequest(
            "POST", REPORT_PATH,
            headers={"content-type": "application/json"},
            body=payload,
        ).encode())
        parser = HttpParser(is_server_side=False)
        responses = parser.feed(conn.recv_available())
        if not responses:
            raise IasError("no response from IAS")
        response = responses[0]
        if response.status in TRANSIENT_STATUSES:
            raise IasUnavailable(
                f"IAS returned {response.status}: "
                f"{response.body.decode(errors='replace')}"
            )
        if response.status != 200:
            raise IasError(
                f"IAS returned {response.status}: "
                f"{response.body.decode(errors='replace')}"
            )
        avr = AttestationVerificationReport.from_json(response.body)
        avr.verify(self._report_signing_key)
        if nonce and avr.nonce != nonce:
            raise IasError("AVR nonce mismatch (replayed verdict?)")
        return avr

    def _exchange_batch_on(self, conn,
                           batch: Sequence[Tuple[bytes, str]]
                           ) -> List[AttestationVerificationReport]:
        """One batched report exchange over an *established* connection.

        Every AVR is signature-checked and nonce-matched exactly as in
        :meth:`_exchange_on`; the server answers in submission order.
        """
        payload = json.dumps({
            "reports": [
                {"isvEnclaveQuote": quote_bytes.hex(), "nonce": nonce}
                for quote_bytes, nonce in batch
            ],
        }).encode("utf-8")
        conn.send(HttpRequest(
            "POST", REPORTS_PATH,
            headers={"content-type": "application/json"},
            body=payload,
        ).encode())
        parser = HttpParser(is_server_side=False)
        responses = parser.feed(conn.recv_available())
        if not responses:
            raise IasError("no response from IAS")
        response = responses[0]
        if response.status in TRANSIENT_STATUSES:
            raise IasUnavailable(
                f"IAS returned {response.status}: "
                f"{response.body.decode(errors='replace')}"
            )
        if response.status != 200:
            raise IasError(
                f"IAS returned {response.status}: "
                f"{response.body.decode(errors='replace')}"
            )
        try:
            entries = json.loads(response.body.decode("utf-8"))["reports"]
        except (ValueError, KeyError) as exc:
            raise IasError(f"malformed batch response: {exc}") from exc
        if len(entries) != len(batch):
            raise IasError(
                f"batch response carries {len(entries)} AVRs "
                f"for {len(batch)} quotes"
            )
        avrs: List[AttestationVerificationReport] = []
        for entry, (_quote_bytes, nonce) in zip(entries, batch):
            avr = AttestationVerificationReport.from_json(
                entry.encode("utf-8"))
            avr.verify(self._report_signing_key)
            if nonce and avr.nonce != nonce:
                raise IasError("AVR nonce mismatch (replayed verdict?)")
            avrs.append(avr)
        return avrs

    def _verify_once(self, quote_bytes: bytes,
                     nonce: str) -> AttestationVerificationReport:
        conn = self._open_connection()
        try:
            return self._exchange_on(conn, quote_bytes, nonce)
        finally:
            conn.close()
