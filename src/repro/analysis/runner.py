"""The analysis runner: collect → fingerprint → baseline → report.

Exposed as ``repro lint`` (see :mod:`repro.cli`).  Exit codes follow the
strict/warn convention shared with ``tools/bench_compare.py``:

* default: unbaselined **errors** fail (exit 1); warnings are printed
  but do not fail the run;
* ``--strict``: *any* unbaselined finding fails (the CI gate);
* exit 2: the run itself is broken (unparseable module, malformed
  baseline) — a broken pipeline must never look green.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.base import Checker, ModuleContext, iter_package_modules
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    format_entry,
    load_baseline,
)
from repro.analysis.ct_checks import ConstantTimeChecker
from repro.analysis.findings import Finding, assign_ordinals
from repro.analysis.hygiene import HygieneChecker
from repro.analysis.lock_order import LockOrderChecker
from repro.analysis.secret_flow import SecretFlowChecker


def default_checkers() -> List[Checker]:
    """Fresh checker instances (the lock-order checker is stateful)."""
    return [
        SecretFlowChecker(),
        LockOrderChecker(),
        ConstantTimeChecker(),
        HygieneChecker(),
    ]


def all_rules() -> dict:
    rules = {}
    for checker in default_checkers():
        for rule_id, description in checker.rules.items():
            rules[rule_id] = (checker.name, description)
    # The runtime sanitizer's rules live outside the checker protocol
    # (they are produced by running code, not by parsing it) but share
    # the catalogue, the baseline, and --rule filtering.
    from repro.analysis.sanitizer import SANITIZER_RULES
    for rule_id, description in SANITIZER_RULES.items():
        rules[rule_id] = ("sanitizer", description)
    return rules


def package_root() -> Path:
    """The ``src/repro`` directory this installation runs from."""
    return Path(__file__).resolve().parent.parent


def repo_root() -> Path:
    """``src/repro`` → repository root (two levels up from the package)."""
    return package_root().parent.parent


@dataclass
class AnalysisReport:
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_entries: List[BaselineEntry] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


def run_checkers(
    modules: Iterable[ModuleContext],
    checkers: Optional[Sequence[Checker]] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run checkers over modules; returns ordinal-assigned findings."""
    active = list(checkers) if checkers is not None else default_checkers()
    findings: List[Finding] = []
    for ctx in modules:
        for checker in active:
            findings.extend(checker.check_module(ctx))
    for checker in active:
        findings.extend(checker.finalize())
    if rules:
        wanted = set(rules)
        findings = [f for f in findings if f.rule_id in wanted]
    return assign_ordinals(findings)


def analyze_tree(
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    root = root or package_root()
    baseline_path = baseline_path or (repo_root() / DEFAULT_BASELINE_NAME)
    findings = run_checkers(iter_package_modules(root), rules=rules)
    # RACE* entries belong to the runtime sanitizer's reports (see
    # _report_from_sanitizer); a static run can never match them, so
    # considering them here would mislabel every one as stale.
    entries = [e for e in load_baseline(baseline_path)
               if not e.rule_id.startswith("RACE")]
    if rules:
        wanted = set(rules)
        entries = [e for e in entries if e.rule_id in wanted]
    fresh, suppressed, stale = apply_baseline(findings, entries)
    return AnalysisReport(findings=fresh, suppressed=suppressed,
                          stale_entries=stale)


# --------------------------------------------------------------------------
# CLI surface (invoked from repro.cli)
# --------------------------------------------------------------------------

def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--strict", action="store_true",
                        help="fail on any unbaselined finding, warnings "
                             "included (the CI gate)")
    parser.add_argument("--rule", action="append", metavar="RULE_ID",
                        help="run only these rule ids (repeatable), "
                             "e.g. --rule LOCK001 --rule SEC002")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<repo>/{DEFAULT_BASELINE_NAME})")
    parser.add_argument("--root", type=Path, default=None,
                        help="package root to analyze (default: the "
                             "installed repro package)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--write-baseline", action="store_true",
                        help="print baseline lines for every unbaselined "
                             "finding (paste into the baseline after "
                             "review, adding a justification)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format; 'json' emits one "
                             "machine-readable object (findings, stale "
                             "entries, summary) for tooling")
    parser.add_argument("--sanitizer-report", type=Path, default=None,
                        metavar="FILE",
                        help="report RACE* findings from a sanitizer "
                             "JSON report (written by a REPRO_SANITIZE=1 "
                             "pytest run) instead of analyzing the tree")


def run_lint(args, out) -> int:
    if args.list_rules:
        for rule_id, (checker, description) in sorted(all_rules().items()):
            out.write(f"{rule_id}  [{checker}] {description}\n")
        return 0

    unknown = set(args.rule or ()) - set(all_rules())
    if unknown:
        out.write(f"error: unknown rule id(s): {', '.join(sorted(unknown))}\n")
        return 2

    try:
        if getattr(args, "sanitizer_report", None) is not None:
            report = _report_from_sanitizer(args)
        else:
            report = analyze_tree(root=args.root,
                                  baseline_path=args.baseline,
                                  rules=args.rule)
    except (BaselineError, SyntaxError, OSError, ValueError,
            KeyError) as exc:
        out.write(f"error: {exc}\n")
        return 2

    if args.write_baseline:
        for finding in report.findings:
            out.write(format_entry(finding, "TODO: justify") + "\n")
        return 0 if not report.findings else 1

    if getattr(args, "format", "text") == "json":
        _write_json_report(report, out)
    else:
        for finding in report.findings:
            out.write(finding.render() + "\n")
        for entry in report.stale_entries:
            out.write(f"stale baseline entry (finding fixed? delete the "
                      f"line): {entry.fingerprint} {entry.rule_id} "
                      f"{entry.location_hint} -- {entry.justification}\n")

        out.write(
            f"analysis: {len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s), "
            f"{len(report.suppressed)} baselined, "
            f"{len(report.stale_entries)} stale baseline entr"
            f"{'y' if len(report.stale_entries) == 1 else 'ies'}\n"
        )

    if args.strict:
        return 1 if report.findings else 0
    return 1 if report.errors else 0


def _report_from_sanitizer(args) -> AnalysisReport:
    """Baseline-filtered findings from a runtime-sanitizer JSON report.

    Only RACE* baseline entries participate: a sanitizer run covers a
    different (dynamic) rule family, so the static entries would all
    look stale here.
    """
    from repro.analysis.sanitizer import load_report

    findings = load_report(args.sanitizer_report)
    if args.rule:
        wanted = set(args.rule)
        findings = [f for f in findings if f.rule_id in wanted]
    baseline_path = args.baseline or (repo_root() / DEFAULT_BASELINE_NAME)
    entries = [e for e in load_baseline(baseline_path)
               if e.rule_id.startswith("RACE")]
    if args.rule:
        entries = [e for e in entries if e.rule_id in set(args.rule)]
    fresh, suppressed, stale = apply_baseline(findings, entries)
    return AnalysisReport(findings=fresh, suppressed=suppressed,
                          stale_entries=stale)


def _write_json_report(report: AnalysisReport, out) -> None:
    import json

    def encode(finding: Finding) -> dict:
        return {
            "fingerprint": finding.fingerprint,
            "rule_id": finding.rule_id,
            "severity": finding.severity,
            "path": finding.location.rsplit(":", 1)[0],
            "relpath": finding.relpath,
            "line": finding.line,
            "col": finding.col,
            "symbol": finding.symbol,
            "message": finding.message,
        }

    json.dump({
        "findings": [encode(f) for f in report.findings],
        "suppressed": [encode(f) for f in report.suppressed],
        "stale_baseline_entries": [
            {
                "fingerprint": entry.fingerprint,
                "rule_id": entry.rule_id,
                "location": entry.location_hint,
                "justification": entry.justification,
            }
            for entry in report.stale_entries
        ],
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "baselined": len(report.suppressed),
            "stale": len(report.stale_entries),
        },
    }, out, indent=2, sort_keys=True)
    out.write("\n")
