"""The analysis runner: collect → fingerprint → baseline → report.

Exposed as ``repro lint`` (see :mod:`repro.cli`).  Exit codes follow the
strict/warn convention shared with ``tools/bench_compare.py``:

* default: unbaselined **errors** fail (exit 1); warnings are printed
  but do not fail the run;
* ``--strict``: *any* unbaselined finding fails (the CI gate);
* exit 2: the run itself is broken (unparseable module, malformed
  baseline) — a broken pipeline must never look green.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.base import Checker, ModuleContext, iter_package_modules
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    format_entry,
    load_baseline,
)
from repro.analysis.ct_checks import ConstantTimeChecker
from repro.analysis.findings import Finding, assign_ordinals
from repro.analysis.hygiene import HygieneChecker
from repro.analysis.lock_order import LockOrderChecker
from repro.analysis.secret_flow import SecretFlowChecker


def default_checkers() -> List[Checker]:
    """Fresh checker instances (the lock-order checker is stateful)."""
    return [
        SecretFlowChecker(),
        LockOrderChecker(),
        ConstantTimeChecker(),
        HygieneChecker(),
    ]


def all_rules() -> dict:
    rules = {}
    for checker in default_checkers():
        for rule_id, description in checker.rules.items():
            rules[rule_id] = (checker.name, description)
    return rules


def package_root() -> Path:
    """The ``src/repro`` directory this installation runs from."""
    return Path(__file__).resolve().parent.parent


def repo_root() -> Path:
    """``src/repro`` → repository root (two levels up from the package)."""
    return package_root().parent.parent


@dataclass
class AnalysisReport:
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_entries: List[BaselineEntry] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


def run_checkers(
    modules: Iterable[ModuleContext],
    checkers: Optional[Sequence[Checker]] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run checkers over modules; returns ordinal-assigned findings."""
    active = list(checkers) if checkers is not None else default_checkers()
    findings: List[Finding] = []
    for ctx in modules:
        for checker in active:
            findings.extend(checker.check_module(ctx))
    for checker in active:
        findings.extend(checker.finalize())
    if rules:
        wanted = set(rules)
        findings = [f for f in findings if f.rule_id in wanted]
    return assign_ordinals(findings)


def analyze_tree(
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    root = root or package_root()
    baseline_path = baseline_path or (repo_root() / DEFAULT_BASELINE_NAME)
    findings = run_checkers(iter_package_modules(root), rules=rules)
    entries = load_baseline(baseline_path)
    if rules:
        wanted = set(rules)
        entries = [e for e in entries if e.rule_id in wanted]
    fresh, suppressed, stale = apply_baseline(findings, entries)
    return AnalysisReport(findings=fresh, suppressed=suppressed,
                          stale_entries=stale)


# --------------------------------------------------------------------------
# CLI surface (invoked from repro.cli)
# --------------------------------------------------------------------------

def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--strict", action="store_true",
                        help="fail on any unbaselined finding, warnings "
                             "included (the CI gate)")
    parser.add_argument("--rule", action="append", metavar="RULE_ID",
                        help="run only these rule ids (repeatable), "
                             "e.g. --rule LOCK001 --rule SEC002")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<repo>/{DEFAULT_BASELINE_NAME})")
    parser.add_argument("--root", type=Path, default=None,
                        help="package root to analyze (default: the "
                             "installed repro package)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--write-baseline", action="store_true",
                        help="print baseline lines for every unbaselined "
                             "finding (paste into the baseline after "
                             "review, adding a justification)")


def run_lint(args, out) -> int:
    if args.list_rules:
        for rule_id, (checker, description) in sorted(all_rules().items()):
            out.write(f"{rule_id}  [{checker}] {description}\n")
        return 0

    unknown = set(args.rule or ()) - set(all_rules())
    if unknown:
        out.write(f"error: unknown rule id(s): {', '.join(sorted(unknown))}\n")
        return 2

    try:
        report = analyze_tree(root=args.root, baseline_path=args.baseline,
                              rules=args.rule)
    except (BaselineError, SyntaxError) as exc:
        out.write(f"error: {exc}\n")
        return 2

    if args.write_baseline:
        for finding in report.findings:
            out.write(format_entry(finding, "TODO: justify") + "\n")
        return 0 if not report.findings else 1

    for finding in report.findings:
        out.write(finding.render() + "\n")
    for entry in report.stale_entries:
        out.write(f"stale baseline entry (finding fixed? delete the "
                  f"line): {entry.fingerprint} {entry.rule_id} "
                  f"{entry.location_hint}\n")

    out.write(
        f"analysis: {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s), "
        f"{len(report.suppressed)} baselined, "
        f"{len(report.stale_entries)} stale baseline entr"
        f"{'y' if len(report.stale_entries) == 1 else 'ies'}\n"
    )

    if args.strict:
        return 1 if report.findings else 0
    return 1 if report.errors else 0
