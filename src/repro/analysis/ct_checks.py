"""CT: constant-time discipline inside ``crypto/``.

Python gives no hard timing guarantees, but the protocol code relies on
one specific property — *no data-dependent early exit on secret bytes* —
and routes every secret comparison through
``repro.crypto.constant_time.ct_bytes_eq`` (the single audited site).
This checker keeps it that way:

============  ==========================================================
CT001         ``==``/``!=`` on a secret-looking byte value — use
              ``constant_time.ct_bytes_eq``
CT002         secret-dependent branch / early return (``if``/``while``
              on a secret value that did not pass through
              ``ct_bytes_eq``)
CT003         table lookup indexed by a secret byte
============  ==========================================================

Scope: ``crypto/`` only, excluding ``constant_time.py`` itself (it is
the sanitizer) and ``ec.py`` (the byte-frozen reference ladder plus the
fast-path engine — scalar recoding is inherently branch-on-scalar and is
covered by the module's own documentation, not by this rule family).

Secret-ness is name-driven: identifiers that name keys, tags, MACs,
digests, or secrets (see :func:`is_secret_identifier`), plus the results
of ``.digest()``/``.finalize()``.  ``len(…)`` and the blessed
``ct_bytes_eq``/``ct_select`` sanitize.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.base import (
    Checker,
    ModuleContext,
    call_func_name,
    walk_functions,
)
from repro.analysis.findings import Finding

#: Modules the rule family applies to.
CT_SCOPE_PREFIX = "crypto/"
#: The sanitizer module and the byte-frozen reference ladder are exempt.
CT_EXEMPT = {"crypto/constant_time.py", "crypto/ec.py"}

#: Exact identifiers treated as secret byte values.
_SECRET_EXACT = {"key", "tag", "mac", "digest", "secret", "expected"}
#: Suffixes that mark an identifier as secret-bearing.
_SECRET_SUFFIXES = ("_key", "_tag", "_mac", "_digest", "_secret")
#: Calls whose result is secret-bearing.
_SECRET_CALLS = {"digest", "finalize", "hexdigest"}
#: Calls that sanitize their argument (result is safe to branch on).
#: ``bool()`` is deliberately absent — truthiness of a secret is secret.
_SANITIZERS = {"len", "ct_bytes_eq", "ct_select", "isinstance", "type", "id"}


def is_secret_identifier(name: str) -> bool:
    lowered = name.lower().lstrip("_")
    return (lowered in _SECRET_EXACT
            or "secret" in lowered
            or any(lowered.endswith(s) for s in _SECRET_SUFFIXES))


class ConstantTimeChecker(Checker):
    name = "constant-time"
    rules = {
        "CT001": "variable-time '=='/'!=' on a secret byte value "
                 "(use crypto.constant_time.ct_bytes_eq)",
        "CT002": "secret-dependent branch or early return",
        "CT003": "table lookup indexed by a secret byte",
    }

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if (not ctx.relpath.startswith(CT_SCOPE_PREFIX)
                or ctx.relpath in CT_EXEMPT):
            return []
        findings: List[Finding] = []
        for qual, _cls, func in walk_functions(ctx.tree):
            findings.extend(_check_function(ctx, qual, func))
        return findings


def _expr_secret(node: ast.AST) -> bool:
    """Name-driven secret-ness of an expression (no assignment tracking:
    crypto code is small and names its secrets)."""
    if isinstance(node, ast.Name):
        return is_secret_identifier(node.id)
    if isinstance(node, ast.Attribute):
        return is_secret_identifier(node.attr) or _expr_secret(node.value)
    if isinstance(node, ast.Subscript):
        return _expr_secret(node.value)
    if isinstance(node, ast.BinOp):
        return _expr_secret(node.left) or _expr_secret(node.right)
    if isinstance(node, ast.UnaryOp):
        return _expr_secret(node.operand)
    if isinstance(node, ast.Call):
        fname = call_func_name(node)
        if fname in _SANITIZERS:
            return False
        if fname in _SECRET_CALLS:
            return True
        return False  # other calls sanitize (derivations are not secrets)
    if isinstance(node, ast.IfExp):
        return _expr_secret(node.body) or _expr_secret(node.orelse)
    return False


def _compare_is_length_check(node: ast.Compare) -> bool:
    """``len(tag) != 16``-style checks are public-length checks, fine."""
    sides = [node.left] + list(node.comparators)
    return any(isinstance(s, ast.Call) and call_func_name(s) == "len"
               for s in sides)


def _check_function(
    ctx: ModuleContext, qual: str, func: ast.AST,
) -> List[Finding]:
    findings: List[Finding] = []

    def finding(rule: str, node: ast.AST, detail: str) -> None:
        findings.append(Finding(
            rule_id=rule, severity="error" if rule != "CT003" else "warning",
            relpath=ctx.relpath, line=node.lineno, col=node.col_offset,
            symbol=qual,
            message=f"{ConstantTimeChecker.rules[rule]}: {detail}",
        ))

    def describe(node: ast.AST) -> str:
        return ast.unparse(node)[:60]

    flagged_compares: List[ast.Compare] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Compare):
            eqish = [op for op in node.ops
                     if isinstance(op, (ast.Eq, ast.NotEq))]
            if not eqish or _compare_is_length_check(node):
                continue
            sides = [node.left] + list(node.comparators)
            if any(_expr_secret(s) for s in sides):
                # Comparing against a literal int/None is a structural
                # check (``if key is None``, ``s == 0`` is out of scope
                # for *byte* secrets only when the secret side is a call
                # result or name we track) — still flag ``== b"..."``.
                if any(isinstance(s, ast.Constant)
                       and not isinstance(s.value, (bytes, str))
                       for s in sides):
                    continue
                finding("CT001", node, describe(node))
                flagged_compares.append(node)
        elif isinstance(node, (ast.If, ast.While)):
            test = node.test
            # Branching on ct_bytes_eq's verdict is the sanctioned
            # pattern; branching on a Compare is CT001's business.
            inner = test
            while isinstance(inner, ast.UnaryOp):
                inner = inner.operand
            if isinstance(inner, ast.Compare):
                continue
            if _expr_secret(inner):
                finding("CT002", node, describe(test))
        elif isinstance(node, ast.Subscript):
            index = node.slice
            if isinstance(index, ast.Slice):
                continue
            if _expr_secret(index):
                finding("CT003", node, describe(node))
    return findings
