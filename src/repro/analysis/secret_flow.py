"""SEC: the paper's invariant — credentials never leave the enclave.

The registry below names every secret-bearing identifier in the tree
(private keys, the EPID member secret, sealing keys, the TLS master and
session secrets, the VM's credential-derivation root).  Inside the enclave
boundary (``sgx/``, ``tls/``, the two ``core/*_enclave.py`` workloads —
see :data:`repro.analysis.base.ENCLAVE_PREFIXES`) those names may flow
anywhere.  *Outside* it, an intraprocedural taint walk flags every escape
to an observable channel:

============  ==========================================================
SEC001        tainted value returned from a function
SEC002        tainted value passed to a log/print/write call
SEC003        tainted value formatted (f-string, ``str.format``, ``%``,
              ``str()``/``repr()``)
SEC004        tainted value in a raised exception's arguments
SEC005        tainted value serialized (``json``/``pickle``/``base64``/
              ``.hex()``)
SEC006        tainted value handed to a cross-module transport sink
              (``send*``/``publish``/``record``/``emit``)
============  ==========================================================

Taint propagates through assignments, tuple packing/unpacking, attribute
and subscript loads, and byte concatenation; ordinary *calls sanitize*
(deriving a signature from a key is not leaking the key) except for the
known secret-producing derivations in :data:`SECRET_SOURCES`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.base import (
    Checker,
    ModuleContext,
    call_func_name,
    walk_functions,
)
from repro.analysis.findings import Finding

#: Identifiers (variable or attribute names) that *are* secrets.
SECRET_NAMES: Set[str] = {
    "member_secret", "_member_secret",
    "sealing_key", "_sealing_key",
    "master_secret", "_master_secret",
    "pre_master_secret", "premaster_secret",
    "session_key", "_session_key", "session_keys",
    "private_key", "_private_key", "private_key_bytes",
    "signing_key", "_signing_key",
    "credential_root", "_credential_root",
    "group_secret", "_group_secret",
    "mac_key", "_mac_key",
    "tenant_secret", "_tenant_secret",
    "token_key", "_token_key",
    "ratls_key", "_ratls_key",
    "ticket_key", "_ticket_key",
    "resumption_ticket", "_resumption_ticket",
}

#: Calls whose *result* is a secret even though calls normally sanitize.
SECRET_SOURCES: Set[str] = {
    "derive_member_secret",
    "sealing_key",
    "export_master_secret",
}

#: Call names that put their arguments on an observable channel.
LOG_SINKS: Set[str] = {
    "print", "log", "debug", "info", "warning", "error", "critical",
    "write", "writelines",
}
SERIALIZE_SINKS: Set[str] = {
    "dumps", "dump", "b64encode", "b16encode", "hexlify", "hex",
    "to_json",
}
TRANSPORT_SINKS: Set[str] = {
    "send", "send_json", "send_frame", "publish", "record", "emit",
    "put", "broadcast",
}
FORMAT_SINKS: Set[str] = {"format", "str", "repr", "format_map"}


class SecretFlowChecker(Checker):
    name = "secret-flow"
    rules = {
        "SEC001": "secret-bearing value returned outside the enclave "
                  "boundary",
        "SEC002": "secret-bearing value logged or printed",
        "SEC003": "secret-bearing value interpolated into a string",
        "SEC004": "secret-bearing value in an exception message",
        "SEC005": "secret-bearing value serialized",
        "SEC006": "secret-bearing value passed to a transport sink",
    }

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.in_enclave:
            return []
        findings: List[Finding] = []
        for qual, _cls, func in walk_functions(ctx.tree):
            findings.extend(_check_function(ctx, qual, func))
        return findings


# --------------------------------------------------------------------------
# Intraprocedural taint walk
# --------------------------------------------------------------------------

def _is_secret_name(name: Optional[str]) -> bool:
    return name is not None and name in SECRET_NAMES


class _Taint:
    """Tracks which local names are tainted inside one function."""

    def __init__(self) -> None:
        self.locals: Set[str] = set()

    def expr_tainted(self, node: ast.AST) -> bool:
        """Is this expression secret-bearing?"""
        if isinstance(node, ast.Name):
            return node.id in self.locals or _is_secret_name(node.id)
        if isinstance(node, ast.Attribute):
            return (_is_secret_name(node.attr)
                    or (self.expr_tainted(node.value)
                        and node.attr not in _SANITIZING_ATTRS))
        if isinstance(node, ast.Subscript):
            return self.expr_tainted(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return any(v is not None and self.expr_tainted(v)
                       for v in node.values)
        if isinstance(node, ast.BinOp):
            return self.expr_tainted(node.left) or self.expr_tainted(node.right)
        if isinstance(node, ast.Starred):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return (self.expr_tainted(node.body)
                    or self.expr_tainted(node.orelse))
        if isinstance(node, ast.Call):
            # Calls sanitize, except the known secret derivations.
            fname = call_func_name(node)
            return fname in SECRET_SOURCES
        if isinstance(node, ast.JoinedStr):
            # Handled as a sink (SEC003); the *result* is also tainted.
            return any(self.expr_tainted(v.value) for v in node.values
                       if isinstance(v, ast.FormattedValue))
        return False

    def assign(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.locals.add(target.id)
            else:
                self.locals.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, tainted)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, tainted)


#: Attribute loads that *stop* taint (metadata about a secret holder is
#: not the secret: a key's name, serial, or curve identifier is public).
_SANITIZING_ATTRS: Set[str] = {
    "name", "serial", "curve", "public", "public_key", "public_bytes",
    "subject", "issuer", "version",
}


def _check_function(
    ctx: ModuleContext, qual: str, func: ast.AST,
) -> List[Finding]:
    taint = _Taint()
    findings: List[Finding] = []

    def finding(rule: str, node: ast.AST, what: str) -> None:
        findings.append(Finding(
            rule_id=rule, severity="error", relpath=ctx.relpath,
            line=node.lineno, col=node.col_offset, symbol=qual,
            message=f"{SecretFlowChecker.rules[rule]} ({what})",
        ))

    def describe(node: ast.AST) -> str:
        return ast.unparse(node)[:60]

    def scan_sinks(node: ast.AST) -> None:
        """Flag sink expressions anywhere under ``node``."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.JoinedStr):
                for value in sub.values:
                    if (isinstance(value, ast.FormattedValue)
                            and taint.expr_tainted(value.value)):
                        finding("SEC003", sub, describe(value.value))
            elif isinstance(sub, ast.Call):
                fname = call_func_name(sub)
                if fname is None:
                    continue
                args = list(sub.args) + [kw.value for kw in sub.keywords]
                hot = [a for a in args if taint.expr_tainted(a)]
                if not hot:
                    # ``secret.hex()`` has the secret as the *receiver*.
                    if (fname in SERIALIZE_SINKS
                            and isinstance(sub.func, ast.Attribute)
                            and taint.expr_tainted(sub.func.value)):
                        finding("SEC005", sub, describe(sub.func.value))
                    continue
                if fname in LOG_SINKS:
                    finding("SEC002", sub, describe(hot[0]))
                elif fname in SERIALIZE_SINKS:
                    finding("SEC005", sub, describe(hot[0]))
                elif fname in TRANSPORT_SINKS:
                    finding("SEC006", sub, describe(hot[0]))
                elif fname in FORMAT_SINKS:
                    finding("SEC003", sub, describe(hot[0]))
            elif (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mod)
                    and isinstance(sub.left, (ast.Constant, ast.JoinedStr))
                    and taint.expr_tainted(sub.right)):
                finding("SEC003", sub, describe(sub.right))

    def visit_block(stmts) -> None:
        for stmt in stmts:
            visit_stmt(stmt)

    def visit_stmt(stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are walked separately
        if isinstance(stmt, ast.Assign):
            scan_sinks(stmt.value)
            tainted = taint.expr_tainted(stmt.value)
            for target in stmt.targets:
                taint.assign(target, tainted)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            scan_sinks(stmt.value)
            taint.assign(stmt.target, taint.expr_tainted(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            scan_sinks(stmt.value)
            if taint.expr_tainted(stmt.value):
                taint.assign(stmt.target, True)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                scan_sinks(stmt.value)
                if taint.expr_tainted(stmt.value):
                    finding("SEC001", stmt, describe(stmt.value))
            return
        if isinstance(stmt, ast.Raise):
            # f-strings inside exception args are SEC004, not SEC003, so
            # the generic sink scan is deliberately skipped here.
            if stmt.exc is not None:
                if isinstance(stmt.exc, ast.Call):
                    hot = [a for a in (list(stmt.exc.args)
                                       + [k.value for k in stmt.exc.keywords])
                           if taint.expr_tainted(a)]
                    if hot:
                        finding("SEC004", stmt, describe(hot[0]))
                elif taint.expr_tainted(stmt.exc):
                    finding("SEC004", stmt, describe(stmt.exc))
            return
        if isinstance(stmt, (ast.If, ast.While)):
            scan_sinks(stmt.test)
            visit_block(stmt.body)
            visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            scan_sinks(stmt.iter)
            taint.assign(stmt.target, taint.expr_tainted(stmt.iter))
            visit_block(stmt.body)
            visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                scan_sinks(item.context_expr)
            visit_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            visit_block(stmt.body)
            for handler in stmt.handlers:
                visit_block(handler.body)
            visit_block(stmt.orelse)
            visit_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Expr):
            scan_sinks(stmt.value)
            return
        # Fallback: still scan any expressions hanging off the statement.
        scan_sinks(stmt)

    body = getattr(func, "body", [])
    visit_block(body)
    return findings
