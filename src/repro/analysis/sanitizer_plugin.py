"""pytest plugin: run the whole session under the race sanitizer.

Loaded from the repository-root ``conftest.py``; inert unless
``REPRO_SANITIZE=1`` is set (the ``race-sanitizer`` CI job and the
nightly soak leg set it).  While armed it

* activates one :class:`~repro.analysis.sanitizer.Sanitizer` for the
  whole session, so ``make_lock``/``make_rlock`` sites and
  ``@shared_state`` classes are tracked across every test;
* at session end writes the machine-readable findings report to
  ``$REPRO_SANITIZE_REPORT`` (default ``.sanitizer-report.json``) —
  gated in CI by ``repro lint --sanitizer-report <file>``;
* prints a summary section in the terminal report, with both access
  stacks for every detected race.

The plugin never changes the test exit status: a race in code under
test is the lint gate's verdict to make, not a cryptic test failure.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.analysis.sanitizer import (
    ENV_SWITCH,
    REPORT_ENV,
    Sanitizer,
)

DEFAULT_REPORT = ".sanitizer-report.json"


def _armed() -> bool:
    return os.environ.get(ENV_SWITCH, "") == "1"


def pytest_configure(config) -> None:
    if not _armed():
        return
    sanitizer = Sanitizer()
    sanitizer.activate()
    config._repro_sanitizer = sanitizer
    config._repro_sanitizer_findings = None


def pytest_sessionfinish(session, exitstatus) -> None:
    config = session.config
    sanitizer: Optional[Sanitizer] = getattr(config, "_repro_sanitizer",
                                             None)
    if sanitizer is None:
        return
    sanitizer.deactivate()
    report_path = os.environ.get(REPORT_ENV, DEFAULT_REPORT)
    config._repro_sanitizer_findings = sanitizer.finalize()
    sanitizer.write_report(report_path)
    config._repro_sanitizer_report_path = report_path


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    sanitizer: Optional[Sanitizer] = getattr(config, "_repro_sanitizer",
                                             None)
    if sanitizer is None:
        return
    findings = config._repro_sanitizer_findings or []
    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity == "warning"]
    write = terminalreporter.write_line
    terminalreporter.section("race sanitizer")
    for race in sanitizer.races:
        for line in race.describe().splitlines():
            write(line)
    for finding in findings:
        write(finding.render())
    write(f"sanitizer: {len(sanitizer.races)} race(s), "
          f"{len(errors)} error finding(s), "
          f"{len(warnings)} warning(s); report written to "
          f"{getattr(config, '_repro_sanitizer_report_path', '?')} "
          f"(gate with: repro lint --sanitizer-report <file>)")
