"""RACE: the runtime race detector and lock-discipline sanitizer.

The static lock-order checker (:mod:`repro.analysis.lock_order`) proves
nesting *order* from hand-maintained tables, but it cannot see an access
to shared state that holds *no* lock at all, and nothing verifies the
tables still match what the code actually acquires at runtime.  This
module closes both gaps the way Eraser (Savage et al., SOSP'97) and
TSan do for native code — at runtime, opt-in, zero-cost when off:

* :func:`make_lock` / :func:`make_rlock` construct plain
  ``threading.Lock``/``RLock`` objects unless sanitization is enabled
  (``REPRO_SANITIZE=1`` in the environment, or an active
  :func:`sanitize` context), in which case they return
  :class:`TrackedLock`/:class:`TrackedRLock` wrappers that record
  per-thread locksets, acquisition sites, and a vector-clock
  happens-before order (lock release/acquire, ``Thread.start``/``join``
  edges).
* :func:`shared_state` / :func:`register_shared` annotate the classes
  whose attributes the documented locks guard.  While a sanitizer is
  active the classes' ``__getattribute__``/``__setattr__`` are patched
  and every access runs the Eraser lockset state machine
  (virgin → exclusive → shared/shared-modified), refined with
  happens-before: ownership transfers along start/join/lock edges, and
  a candidate lockset that empties *with* a happens-before edge is a
  phase change, not a race.  A candidate lockset that empties with no
  such edge is **RACE001**, reported with both access stacks.
* At teardown the observed acquisition graph is validated against the
  encoded chains from ``docs/CONCURRENCY.md`` by re-using the static
  checker's edge/cycle rules (**RACE002** wraps dynamic LOCK001–005 —
  orders the AST walker cannot see through indirection), and the
  observed construction sites are cross-checked against ``LOCK_SITES``
  (**RACE003**: an observed lock missing from the table is a coverage
  gap *error*; a table entry never observed is a stale-table
  *warning*).

Findings flow through the ordinary :class:`~repro.analysis.findings.
Finding` machinery; ``repro lint --sanitizer-report FILE`` applies the
baseline and the exit-code convention to a report written by the pytest
plugin (:mod:`repro.analysis.sanitizer_plugin`).  See
``docs/ANALYSIS.md`` for the rule catalogue and ``docs/CONCURRENCY.md``
for the lock model.
"""

from __future__ import annotations

import itertools
import os
import sys
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type,
)

__all__ = [
    "SANITIZER_RULES",
    "RaceReport",
    "Sanitizer",
    "TrackedLock",
    "TrackedRLock",
    "current_sanitizer",
    "load_report",
    "make_lock",
    "make_rlock",
    "register_shared",
    "sanitize",
    "shared_state",
]

#: Rule catalogue (merged into ``repro lint --list-rules`` by the runner).
SANITIZER_RULES: Dict[str, str] = {
    "RACE001": ("shared state accessed with an empty candidate lockset "
                "and no happens-before edge (Eraser)"),
    "RACE002": ("observed runtime lock acquisition violates the "
                "documented order (dynamic LOCK001-005)"),
    "RACE003": ("lock-table coverage drift: observed lock missing from "
                "LOCK_SITES (error) or table entry never observed "
                "(warning)"),
}

ENV_SWITCH = "REPRO_SANITIZE"
REPORT_ENV = "REPRO_SANITIZE_REPORT"

#: Frames kept per captured access/acquisition stack.
STACK_LIMIT = 10

_THIS_FILE = os.path.abspath(__file__)
_PKG_ROOT = os.path.dirname(os.path.dirname(_THIS_FILE))  # .../src/repro

# --------------------------------------------------------------------------
# Global sanitizer state
# --------------------------------------------------------------------------

#: One lock guards *all* sanitizer bookkeeping.  Record paths take it and
#: nothing else, so it can never participate in a deadlock with the locks
#: it observes.
_STATE_LOCK = threading.Lock()

_ACTIVE: Optional["Sanitizer"] = None
_ACTIVE_STACK: List["Sanitizer"] = []

_lock_uids = itertools.count(1)
_thread_uids = itertools.count(1)
#: Stable small ints per Thread object (``threading.get_ident`` recycles).
_thread_ids: "weakref.WeakKeyDictionary[threading.Thread, int]" = (
    weakref.WeakKeyDictionary())

#: class -> {attr: mutating?}; populated by @shared_state at import time.
_REGISTRY: Dict[type, Dict[str, bool]] = {}
#: classes currently carrying patched dunders -> (had_get, had_set, originals)
_INSTRUMENTED: Dict[type, Tuple[Optional[Any], Optional[Any]]] = {}

_orig_thread_start = None
_orig_thread_join = None
_fork_hook_installed = False


def current_sanitizer() -> Optional["Sanitizer"]:
    """The innermost active sanitizer, or ``None``."""
    return _ACTIVE


def _env_enabled() -> bool:
    return os.environ.get(ENV_SWITCH, "") == "1"


def _tracking_enabled() -> bool:
    return _ACTIVE is not None or _env_enabled()


def _thread_uid() -> int:
    """Stable id of the calling thread (callers hold ``_STATE_LOCK``)."""
    thread = threading.current_thread()
    uid = _thread_ids.get(thread)
    if uid is None:
        uid = next(_thread_uids)
        _thread_ids[thread] = uid
    return uid


def _capture_stack(skip: int = 2) -> Tuple[Tuple[str, int, str], ...]:
    """A cheap ``(filename, lineno, function)`` stack snapshot."""
    frames: List[Tuple[str, int, str]] = []
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stacks
        return ()
    while frame is not None and len(frames) < STACK_LIMIT:
        code = frame.f_code
        frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(frames)


def _relpath_of(filename: str) -> Optional[str]:
    """``src/repro``-relative path of a frame filename, or ``None``."""
    abspath = os.path.abspath(filename)
    if not abspath.startswith(_PKG_ROOT + os.sep):
        return None
    rel = os.path.relpath(abspath, _PKG_ROOT)
    return rel.replace(os.sep, "/")


def _user_frame(skip: int = 2) -> Tuple[Optional[str], int, str]:
    """First frame below the sanitizer itself: ``(relpath?, line, func)``.

    ``relpath`` is ``None`` when the frame lives outside ``src/repro``
    (e.g. a test body acquiring a tracked lock directly).
    """
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stacks
        return None, 0, "<unknown>"
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if filename != _THIS_FILE:
            return (_relpath_of(filename), frame.f_lineno,
                    frame.f_code.co_name)
        frame = frame.f_back
    return None, 0, "<unknown>"  # pragma: no cover


def _vc_join(target: Dict[int, int], other: Dict[int, int]) -> None:
    for tid, clock in other.items():
        if clock > target.get(tid, 0):
            target[tid] = clock


def _vc_leq(a: Dict[int, int], b: Dict[int, int]) -> bool:
    """Every event in ``a`` happened-before the point ``b``."""
    return all(clock <= b.get(tid, 0) for tid, clock in a.items())


# --------------------------------------------------------------------------
# Tracked locks + construction factories
# --------------------------------------------------------------------------

class TrackedLock:
    """A ``threading.Lock`` that reports to the active sanitizer.

    Constructed only when sanitization is enabled (see :func:`make_lock`);
    when no sanitizer is *active* each operation is one ``is None`` check
    away from the plain lock.
    """

    _reentrant = False

    def __init__(self, domain: str) -> None:
        self._inner = self._make_inner()
        self.domain = domain
        self.uid = next(_lock_uids)
        #: Construction site — matched against LOCK_SITES for coverage.
        relpath, line, _func = _user_frame(skip=2)
        self.site_relpath = relpath
        self.site_line = line
        #: Vector clock stored at release, joined at acquire (guarded by
        #: the sanitizer state lock, not by this lock itself).
        self.vc: Dict[int, int] = {}

    @staticmethod
    def _make_inner():
        return threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            sanitizer = _ACTIVE
            if sanitizer is not None:
                sanitizer._on_acquire(self)
        return got

    def release(self) -> None:
        sanitizer = _ACTIVE
        if sanitizer is not None:
            sanitizer._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} domain={self.domain!r} "
                f"site={self.site_relpath}:{self.site_line}>")


class TrackedRLock(TrackedLock):
    """Re-entrant flavour; recursion depth is tracked per holder."""

    _reentrant = True

    @staticmethod
    def _make_inner():
        return threading.RLock()

    def locked(self) -> bool:  # pragma: no cover - parity with RLock
        raise AttributeError("RLock has no locked()")


def make_lock(domain: str):
    """A ``threading.Lock`` — tracked under ``domain`` when sanitizing."""
    if _tracking_enabled():
        _install_fork_hook()
        return TrackedLock(domain)
    return threading.Lock()


def make_rlock(domain: str):
    """A ``threading.RLock`` — tracked under ``domain`` when sanitizing."""
    if _tracking_enabled():
        _install_fork_hook()
        return TrackedRLock(domain)
    return threading.RLock()


def _install_fork_hook() -> None:
    """Reset sanitizer state in forked children.

    ``KernelPool`` forks worker processes (sometimes while locks are
    held — that is what ``tests/concurrency/test_fork_safety.py``
    stresses).  A child must not inherit a held ``_STATE_LOCK`` or an
    active sanitizer: detection is meaningless there and a poisoned
    state lock would hang the first tracked operation.
    """
    global _fork_hook_installed
    if _fork_hook_installed or not hasattr(os, "register_at_fork"):
        return
    _fork_hook_installed = True

    def _in_child() -> None:
        global _STATE_LOCK, _ACTIVE
        _STATE_LOCK = threading.Lock()
        _ACTIVE_STACK.clear()
        _ACTIVE = None

    os.register_at_fork(after_in_child=_in_child)


# --------------------------------------------------------------------------
# Shared-state registration + class instrumentation
# --------------------------------------------------------------------------

def register_shared(cls: Type, attrs: Sequence[str],
                    mutating: bool = True) -> Type:
    """Track ``attrs`` of ``cls`` under the Eraser state machine.

    ``mutating=True`` (the default, and what :func:`shared_state` uses)
    treats *every* access as a write: the guarded attributes are
    containers and counters, where reading is almost always half of a
    check-then-act.  Attributes named in ``lock_order.ATTR_HINTS`` are
    additionally tracked with true read/write semantics on every
    registered class (a reference slot that is only ever read cannot
    race).
    """
    spec = _REGISTRY.setdefault(cls, {})
    for attr in attrs:
        spec[attr] = mutating
    if _ACTIVE is not None:
        _instrument_class(cls)
    return cls


def shared_state(*attrs: str):
    """Class decorator: ``@shared_state("_entries", "_order")``."""
    def decorate(cls: Type) -> Type:
        return register_shared(cls, attrs)
    return decorate


def _instrument_class(cls: Type) -> None:
    if cls in _INSTRUMENTED:
        return
    from repro.analysis.lock_order import ATTR_HINTS

    tracked: Dict[str, bool] = {name: False for name in ATTR_HINTS}
    tracked.update(_REGISTRY[cls])

    original_get = cls.__dict__.get("__getattribute__")
    original_set = cls.__dict__.get("__setattr__")
    real_get = cls.__getattribute__
    real_set = cls.__setattr__

    def __getattribute__(self: object, name: str) -> Any:
        if name in tracked:
            sanitizer = _ACTIVE
            if sanitizer is not None:
                sanitizer._record_access(self, name,
                                         is_write=tracked[name])
        return real_get(self, name)

    def __setattr__(self: object, name: str, value: Any) -> None:
        if name in tracked:
            sanitizer = _ACTIVE
            if sanitizer is not None:
                sanitizer._record_access(self, name, is_write=True)
        real_set(self, name, value)

    cls.__getattribute__ = __getattribute__  # type: ignore[assignment]
    cls.__setattr__ = __setattr__  # type: ignore[assignment]
    _INSTRUMENTED[cls] = (original_get, original_set)


def _deinstrument_all() -> None:
    for cls, (original_get, original_set) in list(_INSTRUMENTED.items()):
        if original_get is None:
            delattr(cls, "__getattribute__")
        else:  # pragma: no cover - no registered class overrides these
            cls.__getattribute__ = original_get
        if original_set is None:
            delattr(cls, "__setattr__")
        else:  # pragma: no cover
            cls.__setattr__ = original_set
    _INSTRUMENTED.clear()


_CLS_RELPATH_CACHE: Dict[type, str] = {}


def _class_relpath(cls: type) -> str:
    relpath = _CLS_RELPATH_CACHE.get(cls)
    if relpath is None:
        module = cls.__module__ or ""
        if module.startswith("repro."):
            relpath = module[len("repro."):].replace(".", "/") + ".py"
        else:  # pragma: no cover - fixture classes in tests
            relpath = "analysis/sanitizer.py"
        _CLS_RELPATH_CACHE[cls] = relpath
    return relpath


# --------------------------------------------------------------------------
# Per-run records
# --------------------------------------------------------------------------

@dataclass
class _Held:
    lock: TrackedLock
    depth: int = 1


@dataclass
class _EdgeObs:
    """One observed ``outer held while inner acquired`` pair."""

    outer: str
    inner: str
    relpath: str
    line: int
    symbol: str
    stack: Tuple[Tuple[str, int, str], ...]
    count: int = 1


#: Eraser states for one tracked attribute slot.
_EXCLUSIVE, _SHARED, _SHARED_MOD, _RACED = range(4)


@dataclass
class _VarState:
    cls_name: str
    attr: str
    relpath: str
    state: int
    owner: int
    access_vc: Dict[int, int] = field(default_factory=dict)
    write_vc: Dict[int, int] = field(default_factory=dict)
    candidates: Optional[Set[int]] = None
    last_stack: Tuple[Tuple[str, int, str], ...] = ()
    last_tid: int = 0
    last_domains: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RaceReport:
    """A RACE001 hit with both access stacks attached."""

    cls_name: str
    attr: str
    relpath: str
    first_tid: int
    second_tid: int
    first_stack: Tuple[Tuple[str, int, str], ...]
    second_stack: Tuple[Tuple[str, int, str], ...]
    first_locks: Tuple[str, ...]
    second_locks: Tuple[str, ...]

    def describe(self) -> str:
        lines = [f"race on {self.cls_name}.{self.attr} "
                 f"({self.relpath}): thread#{self.first_tid} "
                 f"(locks: {list(self.first_locks) or 'none'}) vs "
                 f"thread#{self.second_tid} "
                 f"(locks: {list(self.second_locks) or 'none'})"]
        for title, stack in (("first access", self.first_stack),
                             ("second access", self.second_stack)):
            lines.append(f"  {title}:")
            for filename, lineno, func in stack:
                lines.append(f"    {filename}:{lineno} in {func}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# The sanitizer
# --------------------------------------------------------------------------

class Sanitizer:
    """One sanitization run: recording, the state machine, teardown checks.

    ``lock_sites``/``check_order``/``check_coverage`` exist so tests can
    inject tables or silence the teardown passes; production use (the
    pytest plugin) runs with the defaults, i.e. against the live
    ``lock_order`` tables.
    """

    def __init__(self, *, check_order: bool = True,
                 check_coverage: bool = True,
                 lock_sites: Optional[Dict[Tuple[str, Optional[str], str],
                                           str]] = None) -> None:
        self.check_order = check_order
        self.check_coverage = check_coverage
        self._lock_sites = lock_sites
        self.races: List[RaceReport] = []
        self._race_keys: Set[Tuple[str, str]] = set()
        self._vc: Dict[int, Dict[int, int]] = {}
        self._locksets: Dict[int, List[_Held]] = {}
        self._vars: Dict[Tuple[int, str], _VarState] = {}
        self._var_refs: Dict[int, weakref.ref] = {}
        self._dead_ids: List[int] = []  # filled by GC callbacks, lock-free
        self._edges: Dict[Tuple[str, str], _EdgeObs] = {}
        self._observed_sites: Dict[Tuple[str, str], int] = {}
        self._snapshots: "weakref.WeakKeyDictionary[threading.Thread, Dict[int, int]]" = (
            weakref.WeakKeyDictionary())
        self._active = False

    # -- lifecycle ---------------------------------------------------------

    def activate(self) -> "Sanitizer":
        global _ACTIVE
        if self._active:
            raise RuntimeError("sanitizer already active")
        with _STATE_LOCK:
            _ACTIVE_STACK.append(self)
            _ACTIVE = self
            self._active = True
            if len(_ACTIVE_STACK) == 1:
                _install_thread_hooks()
            for cls in list(_REGISTRY):
                _instrument_class(cls)
        _install_fork_hook()
        return self

    def deactivate(self) -> None:
        global _ACTIVE
        if not self._active:
            return
        with _STATE_LOCK:
            self._active = False
            _ACTIVE_STACK.remove(self)
            _ACTIVE = _ACTIVE_STACK[-1] if _ACTIVE_STACK else None
            if not _ACTIVE_STACK:
                _remove_thread_hooks()
                _deinstrument_all()

    # -- vector clocks -----------------------------------------------------

    def _vc_current(self) -> Tuple[int, Dict[int, int]]:
        """(thread uid, its vector clock); callers hold ``_STATE_LOCK``."""
        tid = _thread_uid()
        vc = self._vc.get(tid)
        if vc is None:
            snapshot = self._snapshots.pop(threading.current_thread(), None)
            vc = dict(snapshot) if snapshot else {}
            vc[tid] = vc.get(tid, 0) + 1
            self._vc[tid] = vc
        return tid, vc

    def _on_thread_start(self, thread: threading.Thread) -> None:
        with _STATE_LOCK:
            tid, vc = self._vc_current()
            self._snapshots[thread] = dict(vc)
            vc[tid] = vc.get(tid, 0) + 1

    def _on_thread_join(self, thread: threading.Thread) -> None:
        with _STATE_LOCK:
            child_tid = _thread_ids.get(thread)
            if child_tid is None:
                return  # never touched tracked state
            child_vc = self._vc.get(child_tid)
            if child_vc is None:
                return
            _tid, vc = self._vc_current()
            _vc_join(vc, child_vc)

    # -- lock events -------------------------------------------------------

    def _on_acquire(self, lock: TrackedLock) -> None:
        with _STATE_LOCK:
            tid, vc = self._vc_current()
            held = self._locksets.setdefault(tid, [])
            for entry in held:
                if entry.lock is lock:
                    entry.depth += 1  # re-entrant RLock, same instance
                    return
            _vc_join(vc, lock.vc)
            if lock.site_relpath is not None:
                key = (lock.site_relpath, lock.domain)
                self._observed_sites[key] = (
                    self._observed_sites.get(key, 0) + 1)
            if held:
                relpath, line, symbol = _user_frame(skip=3)
                if relpath is None:
                    relpath = lock.site_relpath or "analysis/sanitizer.py"
                for entry in held:
                    edge_key = (entry.lock.domain, lock.domain)
                    obs = self._edges.get(edge_key)
                    if obs is None:
                        self._edges[edge_key] = _EdgeObs(
                            outer=entry.lock.domain, inner=lock.domain,
                            relpath=relpath, line=line, symbol=symbol,
                            stack=_capture_stack(skip=3),
                        )
                    else:
                        obs.count += 1
            held.append(_Held(lock=lock))

    def _on_release(self, lock: TrackedLock) -> None:
        with _STATE_LOCK:
            tid, vc = self._vc_current()
            held = self._locksets.get(tid)
            if not held:
                return  # acquired before activation — nothing to unwind
            for index in range(len(held) - 1, -1, -1):
                if held[index].lock is lock:
                    held[index].depth -= 1
                    if held[index].depth == 0:
                        del held[index]
                        # Snapshot *then* tick: the next acquirer is
                        # ordered after everything up to this release,
                        # but not after what this thread does next —
                        # post-release accesses must stay uncovered.
                        lock.vc = dict(vc)
                        vc[tid] = vc.get(tid, 0) + 1
                    return

    # -- shared-state events ----------------------------------------------

    def _record_access(self, obj: object, attr: str, is_write: bool) -> None:
        cls = type(obj)
        with _STATE_LOCK:
            if self._dead_ids:
                self._purge_dead()
            tid, vc = self._vc_current()
            key = (id(obj), attr)
            state = self._vars.get(key)
            if state is None:
                state = _VarState(
                    cls_name=cls.__name__, attr=attr,
                    relpath=_class_relpath(cls), state=_EXCLUSIVE,
                    owner=tid,
                )
                self._vars[key] = state
                self._watch(obj)
            self._step(state, tid, vc, is_write)

    def _watch(self, obj: object) -> None:
        oid = id(obj)
        if oid in self._var_refs:
            return
        dead = self._dead_ids

        def _purge(_ref: weakref.ref, oid: int = oid) -> None:
            # GC callback: may fire while _STATE_LOCK is held, so only
            # append (atomic under the GIL); draining happens lazily.
            dead.append(oid)

        try:
            self._var_refs[oid] = weakref.ref(obj, _purge)
        except TypeError:  # pragma: no cover - non-weakrefable instance
            pass

    def _purge_dead(self) -> None:
        dead: Set[int] = set()
        while self._dead_ids:
            dead.add(self._dead_ids.pop())
        for key in [k for k in self._vars if k[0] in dead]:
            del self._vars[key]
        for oid in dead:
            self._var_refs.pop(oid, None)

    def _step(self, state: _VarState, tid: int, vc: Dict[int, int],
              is_write: bool) -> None:
        """One transition of the happens-before-refined Eraser machine."""
        if state.state == _RACED:
            return

        held = self._locksets.get(tid) or ()
        if state.state == _EXCLUSIVE:
            if tid != state.owner:
                if _vc_leq(state.access_vc, vc):
                    # every prior access happened-before this one:
                    # ownership transfer, still the initialization phase.
                    state.owner = tid
                else:
                    # first genuinely concurrent access: candidates are
                    # the locks held *now* (Eraser's init-write exclusion).
                    state.candidates = {entry.lock.uid for entry in held}
                    state.state = _SHARED_MOD if is_write else _SHARED
                    if state.state == _SHARED_MOD and not state.candidates:
                        self._report_race(state, tid, held)
        else:
            if not is_write and _vc_leq(state.write_vc, vc):
                # A read ordered after every write so far cannot race and
                # must not erode the candidate set (e.g. a post-join
                # assert reading without the lock).
                pass
            elif _vc_leq(state.access_vc, vc):
                # Phase change: everything so far happened-before this
                # access — re-own, the machine restarts from here.
                state.state = _EXCLUSIVE
                state.owner = tid
                state.candidates = None
            else:
                assert state.candidates is not None
                state.candidates &= {entry.lock.uid for entry in held}
                if is_write:
                    state.state = _SHARED_MOD
                if state.state == _SHARED_MOD and not state.candidates:
                    self._report_race(state, tid, held)

        self._touch(state, tid, vc, is_write, held)

    def _touch(self, state: _VarState, tid: int, vc: Dict[int, int],
               is_write: bool, held: Sequence[_Held]) -> None:
        _vc_join(state.access_vc, vc)
        if is_write:
            _vc_join(state.write_vc, vc)
        if state.state != _RACED:
            state.last_stack = _capture_stack(skip=5)
            state.last_tid = tid
            state.last_domains = tuple(entry.lock.domain for entry in held)

    def _report_race(self, state: _VarState, tid: int,
                     held: Sequence[_Held]) -> None:
        key = (state.cls_name, state.attr)
        state.state = _RACED
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        self.races.append(RaceReport(
            cls_name=state.cls_name, attr=state.attr, relpath=state.relpath,
            first_tid=state.last_tid, second_tid=tid,
            first_stack=state.last_stack,
            second_stack=_capture_stack(skip=5),
            first_locks=state.last_domains,
            second_locks=tuple(entry.lock.domain for entry in held),
        ))

    # -- teardown checks ---------------------------------------------------

    def finalize(self) -> List["Finding"]:
        """Findings for everything observed; safe to call repeatedly."""
        from repro.analysis import lock_order
        from repro.analysis.findings import Finding, assign_ordinals

        findings: List[Finding] = []
        for race in self.races:
            findings.append(Finding(
                rule_id="RACE001", severity="error", relpath=race.relpath,
                line=1, col=0, symbol=f"{race.cls_name}.{race.attr}",
                message=(f"unsynchronized access to "
                         f"{race.cls_name}.{race.attr}: candidate lockset "
                         f"emptied with no happens-before edge "
                         f"(second access held "
                         f"{sorted(set(race.second_locks)) or 'no locks'})"),
            ))

        if self.check_order:
            edges = [
                lock_order.LockEdge(
                    outer=obs.outer, inner=obs.inner, relpath=obs.relpath,
                    line=obs.line, symbol=obs.symbol, via_call=False,
                )
                for _key, obs in sorted(self._edges.items())
            ]
            order_findings = [finding for edge in edges
                              for finding in lock_order._edge_findings(edge)]
            order_findings.extend(lock_order._cycle_findings(edges))
            for finding in order_findings:
                findings.append(Finding(
                    rule_id="RACE002", severity="error",
                    relpath=finding.relpath, line=finding.line, col=0,
                    symbol=finding.symbol,
                    message=(f"runtime order violation "
                             f"[{finding.rule_id}]: {finding.message}"),
                ))

        if self.check_coverage:
            sites = (self._lock_sites if self._lock_sites is not None
                     else lock_order.LOCK_SITES)
            expected = {(relpath, domain)
                        for (relpath, _cls, _attr), domain in sites.items()}
            observed = set(self._observed_sites)
            for relpath, domain in sorted(observed - expected):
                findings.append(Finding(
                    rule_id="RACE003", severity="error", relpath=relpath,
                    line=1, col=0, symbol="<lock-table>",
                    message=(f"coverage gap: lock domain '{domain}' "
                             f"constructed in {relpath} has no LOCK_SITES "
                             f"entry — extend the table in "
                             f"analysis/lock_order.py"),
                ))
            for relpath, domain in sorted(expected - observed):
                findings.append(Finding(
                    rule_id="RACE003", severity="warning", relpath=relpath,
                    line=1, col=0, symbol="<lock-table>",
                    message=(f"stale table entry: LOCK_SITES maps "
                             f"{relpath} to domain '{domain}' but no such "
                             f"lock was observed this run — dead entry or "
                             f"untested lock"),
                ))
        return assign_ordinals(findings)

    # -- reporting ---------------------------------------------------------

    def observed_edges(self) -> List[_EdgeObs]:
        return [obs for _key, obs in sorted(self._edges.items())]

    def observed_sites(self) -> Dict[Tuple[str, str], int]:
        return dict(self._observed_sites)

    def to_report(self) -> Dict[str, Any]:
        """JSON-serializable payload consumed by ``repro lint``."""
        findings = self.finalize()
        return {
            "version": 1,
            "findings": [
                {
                    "fingerprint": f.fingerprint, "rule_id": f.rule_id,
                    "severity": f.severity, "relpath": f.relpath,
                    "line": f.line, "col": f.col, "symbol": f.symbol,
                    "message": f.message, "ordinal": f.ordinal,
                }
                for f in findings
            ],
            "races": [
                {
                    "class": race.cls_name, "attr": race.attr,
                    "relpath": race.relpath,
                    "first_stack": [list(frame)
                                    for frame in race.first_stack],
                    "second_stack": [list(frame)
                                     for frame in race.second_stack],
                    "first_locks": list(race.first_locks),
                    "second_locks": list(race.second_locks),
                }
                for race in self.races
            ],
            "edges": [
                {
                    "outer": obs.outer, "inner": obs.inner,
                    "relpath": obs.relpath, "line": obs.line,
                    "symbol": obs.symbol, "count": obs.count,
                }
                for obs in self.observed_edges()
            ],
            "observed_sites": sorted(
                [relpath, domain]
                for relpath, domain in self._observed_sites
            ),
        }

    def write_report(self, path: str) -> None:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_report(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def load_report(path) -> List["Finding"]:
    """Findings from a :meth:`Sanitizer.write_report` JSON file."""
    import json

    from repro.analysis.findings import Finding

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != 1:
        raise ValueError(f"{path}: unsupported sanitizer report version "
                         f"{payload.get('version')!r}")
    return [
        Finding(
            rule_id=raw["rule_id"], severity=raw["severity"],
            relpath=raw["relpath"], line=raw["line"], col=raw["col"],
            symbol=raw["symbol"], message=raw["message"],
            ordinal=raw.get("ordinal", 0),
        )
        for raw in payload["findings"]
    ]


@contextmanager
def sanitize(**kwargs: Any) -> Iterable[Sanitizer]:
    """``with sanitize() as san: …`` — activate a fresh sanitizer."""
    sanitizer = Sanitizer(**kwargs)
    sanitizer.activate()
    try:
        yield sanitizer
    finally:
        sanitizer.deactivate()


# --------------------------------------------------------------------------
# Thread fork/join happens-before hooks
# --------------------------------------------------------------------------

def _install_thread_hooks() -> None:
    global _orig_thread_start, _orig_thread_join
    if _orig_thread_start is not None:
        return
    _orig_thread_start = threading.Thread.start
    _orig_thread_join = threading.Thread.join

    def start(thread: threading.Thread, *args: Any, **kwargs: Any):
        sanitizer = _ACTIVE
        if sanitizer is not None:
            sanitizer._on_thread_start(thread)
        return _orig_thread_start(thread, *args, **kwargs)

    def join(thread: threading.Thread, *args: Any, **kwargs: Any):
        result = _orig_thread_join(thread, *args, **kwargs)
        sanitizer = _ACTIVE
        if sanitizer is not None and not thread.is_alive():
            sanitizer._on_thread_join(thread)
        return result

    threading.Thread.start = start  # type: ignore[method-assign]
    threading.Thread.join = join  # type: ignore[method-assign]


def _remove_thread_hooks() -> None:
    global _orig_thread_start, _orig_thread_join
    if _orig_thread_start is None:
        return
    threading.Thread.start = _orig_thread_start  # type: ignore[method-assign]
    threading.Thread.join = _orig_thread_join  # type: ignore[method-assign]
    _orig_thread_start = None
    _orig_thread_join = None
