"""Checker framework: module contexts, the checker interface, shared AST
helpers.

Every checker is an AST walker over one module at a time
(:meth:`Checker.check_module`); whole-program checkers (the lock-order
graph) additionally implement :meth:`Checker.finalize`, which runs after
every module has been visited.

A :class:`ModuleContext` carries the module's *virtual* path relative to
the ``repro`` package (``"core/fleet.py"``), which is what path-sensitive
rules key on.  Tests exploit this: a fixture file from
``tests/analysis/fixtures/`` can be analyzed *as if* it lived at any
in-tree path, so seeded violations exercise the same path-scoping logic
the live tree sees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding


@dataclass
class ModuleContext:
    """One parsed module, addressed relative to the repro package root."""

    relpath: str                # posix path relative to src/repro/
    source: str
    tree: ast.Module = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.tree is None:
            self.tree = ast.parse(self.source, filename=self.relpath)

    @property
    def in_enclave(self) -> bool:
        """True for modules allowed to hold secrets (the TEE boundary)."""
        return module_in_enclave(self.relpath)


#: The enclave boundary, verbatim from the paper's invariant: credentials
#: may live in the SGX simulation, the two enclave workloads, and the
#: enclave-internal TLS stack.  Everything else is "outside" and the
#: secret-flow checker applies there.
ENCLAVE_PREFIXES: Tuple[str, ...] = ("sgx/", "tls/")
ENCLAVE_MODULES: Tuple[str, ...] = (
    "core/credential_enclave.py",
    "core/attestation_enclave.py",
    "core/kernels.py",
    "kms/shard.py",
)


def module_in_enclave(relpath: str) -> bool:
    return relpath.startswith(ENCLAVE_PREFIXES) or relpath in ENCLAVE_MODULES


class Checker:
    """Base class for one analysis domain (a family of rules)."""

    #: Short name used by ``repro lint --rule`` selection.
    name: str = "base"
    #: rule-id -> one-line description; the CLI renders this catalogue.
    rules: Dict[str, str] = {}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finalize(self) -> Iterable[Finding]:
        """Whole-program findings, emitted after the last module."""
        return ()


def iter_package_modules(package_root: Path) -> Iterator[ModuleContext]:
    """Yield a :class:`ModuleContext` for every ``.py`` under the package.

    ``package_root`` is the directory that *is* the ``repro`` package
    (i.e. ``src/repro``).  The analysis package itself is skipped — the
    checkers' own registries of secret names and lock attributes would
    otherwise self-flag.
    """
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relpath = path.relative_to(package_root).as_posix()
        if relpath.startswith("analysis/"):
            continue
        yield ModuleContext(relpath=relpath, source=path.read_text())


# --------------------------------------------------------------------------
# Shared AST helpers
# --------------------------------------------------------------------------

def walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
    """Yield ``(qualname, class_name, func_node)`` for every function.

    ``qualname`` is ``Class.method`` or a bare function name; nested
    functions get dotted names.  Module-level statements are not yielded —
    callers that care wrap them in a synthetic ``<module>`` scope.
    """
    def visit(node: ast.AST, prefix: str, cls: Optional[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, cls, child
                yield from visit(child, qual + ".", cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.", child.name)

    yield from visit(tree, "", None)


def enclosing_map(tree: ast.Module) -> Dict[int, str]:
    """Map each source line to the qualname of its enclosing function."""
    spans: List[Tuple[int, int, str]] = []
    for qual, _cls, func in walk_functions(tree):
        end = getattr(func, "end_lineno", func.lineno)
        spans.append((func.lineno, end, qual))
    # Inner (later, more deeply nested) spans override outer ones.
    lines: Dict[int, str] = {}
    for start, end, qual in sorted(spans, key=lambda s: (s[0], -s[1])):
        for line in range(start, end + 1):
            lines[line] = qual
    return lines


def symbol_at(line_map: Dict[int, str], line: int) -> str:
    return line_map.get(line, "<module>")


def name_of(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def call_func_name(node: ast.Call) -> Optional[str]:
    return name_of(node.func)
