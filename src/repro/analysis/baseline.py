"""The reviewed-suppressions baseline.

Policy (see ``docs/ANALYSIS.md``): every entry is a *reviewed acceptance*
of one finding, and every entry must carry a one-line justification.  The
file is line-oriented so diffs review well::

    # comment / blank lines are ignored
    <fingerprint> <rule_id> <location-hint> -- <justification>

The fingerprint (see :mod:`repro.analysis.findings`) is what matches; the
rule id and location hint are redundancy for the human reader, and the
runner cross-checks the rule id so a stale copy-paste is caught.  Entries
whose fingerprint no longer matches any finding are reported as *stale*
(the finding was fixed — delete the line), but stale entries never fail a
run: a baseline may only ever shrink the set of accepted findings, so
rot is visible without turning a cleanup into a red build.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE_NAME = ".analysis-baseline"


class BaselineError(ValueError):
    """A malformed baseline file (bad syntax or missing justification)."""


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule_id: str
    location_hint: str
    justification: str
    lineno: int


def parse_baseline(text: str, origin: str = "<baseline>") -> List[BaselineEntry]:
    entries: List[BaselineEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, sep, justification = line.partition(" -- ")
        justification = justification.strip()
        if not sep or not justification:
            raise BaselineError(
                f"{origin}:{lineno}: baseline entry needs a "
                f"' -- <justification>' suffix: {raw!r}"
            )
        parts = head.split(None, 2)
        if len(parts) != 3:
            raise BaselineError(
                f"{origin}:{lineno}: expected "
                f"'<fingerprint> <rule_id> <location> -- <why>': {raw!r}"
            )
        fingerprint, rule_id, location_hint = parts
        entries.append(BaselineEntry(fingerprint, rule_id, location_hint,
                                     justification, lineno))
    return entries


def load_baseline(path: Path) -> List[BaselineEntry]:
    if not path.exists():
        return []
    return parse_baseline(path.read_text(), origin=str(path))


def apply_baseline(
    findings: Iterable[Finding], entries: Iterable[BaselineEntry],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Partition findings into (unbaselined, suppressed, stale-entries)."""
    by_fingerprint: Dict[str, BaselineEntry] = {}
    for entry in entries:
        if entry.fingerprint in by_fingerprint:
            raise BaselineError(
                f"duplicate baseline fingerprint {entry.fingerprint} "
                f"(lines {by_fingerprint[entry.fingerprint].lineno} "
                f"and {entry.lineno})"
            )
        by_fingerprint[entry.fingerprint] = entry

    fresh: List[Finding] = []
    suppressed: List[Finding] = []
    matched = set()
    for finding in findings:
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is not None and entry.rule_id == finding.rule_id:
            suppressed.append(finding)
            matched.add(entry.fingerprint)
        else:
            fresh.append(finding)
    stale = [entry for fp, entry in sorted(by_fingerprint.items())
             if fp not in matched]
    return fresh, suppressed, stale


def format_entry(finding: Finding, justification: str) -> str:
    """Render one baseline line for a finding (used by ``--write-baseline``)."""
    return (f"{finding.fingerprint} {finding.rule_id} "
            f"{finding.location} -- {justification}")
