"""The ``Finding`` record every checker emits.

A finding is a *located, fingerprinted* diagnostic: ``rule_id`` names the
invariant that was violated, ``relpath:line`` points at the code, and the
``fingerprint`` is a stable identity used by the baseline file so that an
accepted finding stays suppressed across unrelated edits (fingerprints
deliberately exclude line numbers — they hash the rule, the module, the
enclosing symbol, and the message instead).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

#: Severity levels, in increasing order of importance.  ``error`` findings
#: fail a default run; ``warning`` findings only fail ``--strict`` runs.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker."""

    rule_id: str          # e.g. "SEC001"
    severity: str         # "error" | "warning"
    relpath: str          # module path relative to the repro package
    line: int             # 1-based source line
    col: int              # 0-based column
    symbol: str           # enclosing qualname ("Class.method" or "<module>")
    message: str          # human-readable, deterministic (no line numbers)
    ordinal: int = field(default=0, compare=False)  # de-dup index, see below

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        return f"src/repro/{self.relpath}:{self.line}"

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Line/column are excluded on purpose: inserting a docstring above a
        baselined finding must not un-suppress it.  When several findings in
        one symbol share rule and message, ``ordinal`` (assigned in source
        order by :func:`assign_ordinals`) disambiguates them.
        """
        seed = "|".join(
            (self.rule_id, self.relpath, self.symbol, self.message,
             str(self.ordinal))
        )
        return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:12]

    def render(self) -> str:
        return (f"{self.location}: {self.severity} {self.rule_id} "
                f"[{self.symbol}] {self.message}")


def assign_ordinals(findings: Iterable[Finding]) -> List[Finding]:
    """Return findings with ordinals set so fingerprints are unique.

    Findings that would otherwise collide (same rule, module, symbol, and
    message — e.g. two bare ``except:`` blocks in one function) are numbered
    0, 1, 2… in (line, col) order, which keeps fingerprints stable as long
    as the *relative* order of the duplicates does not change.
    """
    ordered = sorted(findings, key=lambda f: (f.relpath, f.line, f.col,
                                              f.rule_id))
    seen: Dict[str, int] = {}
    out: List[Finding] = []
    for finding in ordered:
        key = "|".join((finding.rule_id, finding.relpath, finding.symbol,
                        finding.message))
        ordinal = seen.get(key, 0)
        seen[key] = ordinal + 1
        if ordinal != finding.ordinal:
            finding = Finding(
                rule_id=finding.rule_id, severity=finding.severity,
                relpath=finding.relpath, line=finding.line, col=finding.col,
                symbol=finding.symbol, message=finding.message,
                ordinal=ordinal,
            )
        out.append(finding)
    return out
