"""Domain-invariant static analysis for the repro tree.

Four rule families turn the repo's prose invariants into mechanical
checks (see ``docs/ANALYSIS.md`` for the catalogue and baseline policy):

* ``secret-flow`` (SEC*): credentials never leave the enclave boundary —
  the paper's central claim, checked as a taint analysis.
* ``lock-order`` (LOCK*): the documented VM → CA → cache and
  registry → family → child nesting orders from ``docs/CONCURRENCY.md``,
  plus leaf-innermost and cycle-freedom.
* ``constant-time`` (CT*): no variable-time comparison/branching on
  secret bytes inside ``crypto/``.
* ``hygiene`` (HYG*): bare excepts, mutable defaults, and wall-clock /
  ambient-entropy bypasses of the deterministic simulation.

Run via ``repro lint [--strict] [--rule RULE]``.
"""

from repro.analysis.base import (
    Checker,
    ModuleContext,
    iter_package_modules,
    module_in_enclave,
)
from repro.analysis.baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    parse_baseline,
)
from repro.analysis.ct_checks import ConstantTimeChecker
from repro.analysis.findings import Finding, assign_ordinals
from repro.analysis.hygiene import HygieneChecker
from repro.analysis.lock_order import LockOrderChecker
from repro.analysis.runner import (
    AnalysisReport,
    all_rules,
    analyze_tree,
    default_checkers,
    run_checkers,
)
from repro.analysis.sanitizer import (
    SANITIZER_RULES,
    RaceReport,
    Sanitizer,
    TrackedLock,
    TrackedRLock,
    make_lock,
    make_rlock,
    register_shared,
    sanitize,
    shared_state,
)
from repro.analysis.secret_flow import SecretFlowChecker

__all__ = [
    "SANITIZER_RULES",
    "RaceReport",
    "Sanitizer",
    "TrackedLock",
    "TrackedRLock",
    "make_lock",
    "make_rlock",
    "register_shared",
    "sanitize",
    "shared_state",
    "AnalysisReport",
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "ConstantTimeChecker",
    "Finding",
    "HygieneChecker",
    "LockOrderChecker",
    "ModuleContext",
    "SecretFlowChecker",
    "all_rules",
    "analyze_tree",
    "apply_baseline",
    "assign_ordinals",
    "default_checkers",
    "iter_package_modules",
    "load_baseline",
    "module_in_enclave",
    "parse_baseline",
    "run_checkers",
]
