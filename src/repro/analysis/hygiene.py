"""HYG: failure-handling and determinism hygiene across the whole tree.

============  ==========================================================
HYG001        bare ``except:`` (swallows ``KeyboardInterrupt`` and masks
              programming errors — name the exception or use
              ``except Exception`` with a justification comment)
HYG002        mutable default argument (shared across calls)
HYG003        wall-clock or ambient entropy that bypasses the simulation
              (``time.*`` except ``perf_counter``, ``random.*``,
              ``datetime.now``/``utcnow``, ``os.urandom`` outside
              ``crypto/rng.py``) — use ``VirtualClock`` / the HMAC-DRBG
HYG004        ``TlsConfig(...)`` constructed without a ``now=`` time
              source — a peer-validating config silently froze the
              clock at 0 once (expired/not-yet-valid certificates and
              CRL windows never fired); every construction site must
              thread the deployment clock
HYG005        ``ProcessPoolExecutor`` / ``multiprocessing`` outside
              ``repro.core.kernels`` — process pools fork, and a fork
              while another thread holds a lock replicates that lock in
              the held state forever.  All process-level parallelism
              funnels through :class:`~repro.core.kernels.KernelPool`,
              which registers fork handlers and ships only pickled
              bytes (see ``docs/PARALLELISM.md``)
============  ==========================================================

The determinism rule exists because the whole repo is a simulation: test
reproducibility and byte-identical fleet enrollment both depend on every
time source being the ``VirtualClock`` and every random bit coming from
a seeded DRBG.  ``time.perf_counter`` is allowed everywhere — wall-clock
*measurement* (bench harness, fleet reports) is deliberate and documented
in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.analysis.base import Checker, ModuleContext, enclosing_map, symbol_at
from repro.analysis.findings import Finding

#: ``time`` module attributes allowed everywhere (wall-time measurement).
ALLOWED_TIME_ATTRS = {"perf_counter", "perf_counter_ns"}
#: Modules allowed to touch ambient entropy (the DRBG's own seeding).
ENTROPY_MODULES = {"crypto/rng.py"}

MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}

#: The one module allowed to spawn worker processes (HYG005).
KERNEL_POOL_MODULES = {"core/kernels.py"}


class HygieneChecker(Checker):
    name = "hygiene"
    rules = {
        "HYG001": "bare 'except:' clause",
        "HYG002": "mutable default argument",
        "HYG003": "nondeterministic time/entropy source bypasses "
                  "VirtualClock/DRBG",
        "HYG004": "TlsConfig() without a now= time source",
        "HYG005": "process pool / multiprocessing outside "
                  "repro.core.kernels",
    }

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        line_map = enclosing_map(ctx.tree)

        def finding(rule: str, node: ast.AST, detail: str,
                    severity: str = "error") -> None:
            findings.append(Finding(
                rule_id=rule, severity=severity, relpath=ctx.relpath,
                line=node.lineno, col=node.col_offset,
                symbol=symbol_at(line_map, node.lineno),
                message=f"{self.rules[rule]}: {detail}",
            ))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                finding("HYG001", node,
                        "catch a named exception class instead")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in (list(node.args.defaults)
                                + [d for d in node.args.kw_defaults
                                   if d is not None]):
                    if _is_mutable_default(default):
                        finding("HYG002", default,
                                f"in signature of {node.name}(); use None "
                                f"and create inside the body")
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                findings.extend(
                    _process_pool_findings(self, ctx, line_map, node))
            elif isinstance(node, ast.Attribute):
                if (node.attr == "ProcessPoolExecutor"
                        and ctx.relpath not in KERNEL_POOL_MODULES):
                    finding("HYG005", node,
                            "route the work through "
                            "repro.core.kernels.KernelPool")
                findings.extend(
                    _entropy_findings(self, ctx, line_map, node))
            elif _is_clockless_tls_config(node):
                finding("HYG004", node,
                        "pass now=<deployment clock>.now_seconds (or the "
                        "relevant clock callable) so certificate validity "
                        "and CRL windows are checked against simulated "
                        "time")
        return findings


def _is_clockless_tls_config(node: ast.AST) -> bool:
    """A ``TlsConfig(...)`` call with neither ``now=`` nor ``**kwargs``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None)
    if name != "TlsConfig":
        return False
    return not any(kw.arg is None or kw.arg == "now"
                   for kw in node.keywords)


def _process_pool_findings(
    checker: HygieneChecker, ctx: ModuleContext,
    line_map: Dict[int, str], node: ast.AST,
) -> Iterable[Finding]:
    """HYG005: only ``repro.core.kernels`` may import process machinery."""
    if ctx.relpath in KERNEL_POOL_MODULES:
        return

    def hit(detail: str) -> Finding:
        return Finding(
            rule_id="HYG005", severity="error", relpath=ctx.relpath,
            line=node.lineno, col=node.col_offset,
            symbol=symbol_at(line_map, node.lineno),
            message=f"{checker.rules['HYG005']}: {detail} — route the "
                    f"work through repro.core.kernels.KernelPool",
        )

    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] == "multiprocessing":
                yield hit(f"import {alias.name}")
    elif isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module.split(".")[0] == "multiprocessing":
            yield hit(f"from {module} import ...")
        else:
            for alias in node.names:
                if alias.name == "ProcessPoolExecutor":
                    yield hit(f"from {module} import ProcessPoolExecutor")


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_FACTORIES
    return False


def _entropy_findings(
    checker: HygieneChecker, ctx: ModuleContext,
    line_map: Dict[int, str], node: ast.Attribute,
) -> Iterable[Finding]:
    if not isinstance(node.value, ast.Name):
        return
    module, attr = node.value.id, node.attr

    def hit(detail: str) -> Finding:
        return Finding(
            rule_id="HYG003", severity="warning", relpath=ctx.relpath,
            line=node.lineno, col=node.col_offset,
            symbol=symbol_at(line_map, node.lineno),
            message=f"{checker.rules['HYG003']}: {detail}",
        )

    if module == "time" and attr not in ALLOWED_TIME_ATTRS:
        yield hit(f"time.{attr} — charge the VirtualClock instead")
    elif module == "random":
        yield hit(f"random.{attr} — draw from the seeded HMAC-DRBG")
    elif module == "datetime" and attr in {"now", "utcnow", "today"}:
        yield hit(f"datetime.{attr} — derive timestamps from the "
                  f"VirtualClock")
    elif (module == "os" and attr == "urandom"
          and ctx.relpath not in ENTROPY_MODULES):
        yield hit("os.urandom — only crypto/rng.py may seed from the OS")
