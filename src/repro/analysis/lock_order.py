"""LOCK: the documented lock-nesting order, checked statically.

``docs/CONCURRENCY.md`` fixes two ordered chains —

* **core:**    VM lock → CA lock → cache locks
* **metrics:** registry lock → family lock → child lock

— plus a set of *leaf* locks (clock, audit, per-host fleet locks, the
keystore lock, the pooled-IAS lock, the agent-channel lock, …) that must
be innermost: a thread holding a leaf may not take any chain lock.

The checker reconstructs the static lock graph in two steps per function:

1. every ``with <lock>:`` / ``<lock>.acquire()`` is mapped to a *domain*
   via :data:`LOCK_SITES` (which lock attribute, in which module/class,
   guards what — the table mirrors the catalogue in CONCURRENCY.md);
2. while a domain is held, both directly nested acquisitions *and* calls
   through domain-hinted attributes (``self._ca.issue(…)`` while holding
   the VM lock ⇒ edge ``vm → ca``) contribute edges.

Edges are validated against the chain ranks (LOCK001), the leaf rule
(LOCK002), the chain-direction rule (LOCK003), and — after all modules
have been folded into one graph — cycle-freedom (LOCK004).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Checker, ModuleContext, walk_functions
from repro.analysis.findings import Finding

# --------------------------------------------------------------------------
# The documented order (keep in sync with docs/CONCURRENCY.md)
# --------------------------------------------------------------------------

#: Ordered chains: a lock may only be taken while holding locks strictly
#: *earlier* in its own chain.
ORDER_CHAINS: Dict[str, Tuple[str, ...]] = {
    "core": ("vm", "ca", "cache"),
    "metrics": ("registry", "family", "child"),
}

#: Leaf locks are innermost: taking any chain lock while holding one is a
#: violation.  (``AuditLog`` observers are the canonical case — they may
#: take the VM lock, which is exactly why ``record`` invokes them *after*
#: releasing the audit lock.)
LEAF_DOMAINS: Set[str] = {
    "clock", "audit", "tracer", "simnet", "agent",
    "ias_pool", "ias_batch", "kernel_pool", "ec_stats",
    "kms_shard", "kms_ns", "keystore_entries", "rng",
    "ec_curves",
    "ratls", "fabric", "fabric_log", "fabric_keystore",
}

#: Chains that never call *out* (LOCK003 forbids them nesting anything),
#: which makes them safe to enter even while a leaf lock is held: a
#: metric update under the pooled-IAS lock cannot deadlock because the
#: metrics chain is terminal.  The runtime sanitizer observes exactly
#: this nesting (the IAS service increments verdict counters while the
#: pooled client's leaf lock is held across the inline sim-network
#: exchange), so the static rule and the dynamic rule share the
#: exemption.
TERMINAL_CHAINS: Set[str] = {"metrics"}

#: Individually audited (outer, inner) nestings that the generic rules
#: would flag but cannot deadlock.  The connection-wrapper locks
#: (``ias_pool``, ``agent``) are held across a whole inline sim-network
#: exchange, and the TLS stack underneath stores/looks up resumable
#: sessions — so a session-/verdict-cache acquisition happens beneath
#: them.  Safe because the ``cache`` domain only ever calls *down*
#: (clock reads), never back into a wrapper lock.  Every entry here
#: needs a justification in ``docs/CONCURRENCY.md``; the runtime
#: sanitizer applies the same table to observed edges (RACE002).
SAFE_NESTINGS: Set[Tuple[str, str]] = {
    ("ias_pool", "cache"),
    ("agent", "cache"),
}

#: Fleet-outer locks wrap whole operations *before* the core machinery
#: runs: the per-host single-flight lock is held across the entire host
#: attestation (VM lock included — that is the mechanism, not an
#: accident), and the keystore lock wraps a VM certificate lookup.
#: They may nest chain locks inside, but never each other and never a
#: second instance of themselves (see LOCK005).
OUTER_DOMAINS: Set[str] = {"host", "keystore"}

#: Domains guarded by a non-reentrant ``threading.Lock`` (or, for
#: ``host``, by per-instance leaf locks where a second acquisition means
#: a *second host's* lock).  A same-domain edge here is a self-deadlock
#: or a forbidden two-instance hold.
NON_REENTRANT_DOMAINS: Set[str] = {
    "clock", "audit", "ec_stats", "host", "keystore", "cache",
    "kms_shard", "kms_ns", "keystore_entries", "rng",
    "ratls", "ias_batch", "kernel_pool",
    "fabric", "fabric_log", "fabric_keystore",
}

#: Cross-chain nesting: holding a ``core`` lock while updating a metric
#: (registry → family → child) is legitimate; a metric child calling back
#: into the core chain is not.
CHAIN_MAY_NEST: Dict[str, Set[str]] = {
    "core": {"metrics"},
    "metrics": set(),
}

#: (module relpath, class name or None=any, lock attribute) -> domain.
#: This is the machine-readable version of the "what each lock guards"
#: table in docs/CONCURRENCY.md.
LOCK_SITES: Dict[Tuple[str, Optional[str], str], str] = {
    ("core/verification_manager.py", None, "_lock"): "vm",
    ("pki/ca.py", None, "_lock"): "ca",
    ("core/verification_cache.py", None, "_lock"): "cache",
    ("tls/session.py", None, "_lock"): "cache",
    ("crypto/ec.py", "EcEngineStats", "_lock"): "ec_stats",
    ("crypto/ec.py", None, "_lock"): "ec_curves",
    ("core/events.py", None, "_lock"): "audit",
    ("net/clock.py", None, "_lock"): "clock",
    ("net/simnet.py", None, "_lock"): "simnet",
    ("obs/tracing.py", None, "_lock"): "tracer",
    # The agent client renamed its lock to ``_exchange_lock``; the old
    # ``_lock`` row sat stale in this table until the runtime
    # sanitizer's coverage cross-check (RACE003) caught the drift.
    ("core/host_agent.py", None, "_exchange_lock"): "agent",
    ("crypto/rng.py", None, "_lock"): "rng",
    ("crypto/rng.py", None, "_default_lock"): "rng",
    ("core/fleet.py", None, "_pool_lock"): "ias_pool",
    ("core/fleet.py", None, "_batch_lock"): "ias_batch",
    ("core/kernels.py", None, "_lock"): "kernel_pool",
    ("core/fleet.py", None, "_keystore_lock"): "keystore",
    ("core/fleet.py", None, "_host_locks"): "host",
    ("obs/registry.py", "MetricsRegistry", "_lock"): "registry",
    ("obs/registry.py", None, "_family_lock"): "family",
    ("obs/registry.py", "CounterChild", "_lock"): "child",
    ("obs/registry.py", "GaugeChild", "_lock"): "child",
    ("obs/registry.py", "HistogramChild", "_lock"): "child",
    ("kms/shard.py", None, "_lock"): "kms_shard",
    ("kms/tenancy.py", None, "_lock"): "kms_ns",
    ("kms/service.py", None, "_trails_lock"): "kms_ns",
    ("pki/keystore.py", None, "_lock"): "keystore_entries",
    ("tls/ratls.py", None, "_lock"): "ratls",
    ("sdn/replication.py", "ReplicationLog", "_lock"): "fabric_log",
    ("sdn/replication.py", "FabricKeystore", "_lock"): "fabric_keystore",
    ("sdn/fabric.py", None, "_lock"): "fabric",
}

#: Attribute-name hints used to resolve *calls made while holding a lock*
#: to the domain the callee will lock.  ``self._ca.issue(…)`` inside a
#: VM-locked region adds the edge vm → ca even though the CA's own
#: ``with self._lock`` lives in another module.
ATTR_HINTS: Dict[str, str] = {
    "_ca": "ca", "ca": "ca",
    "_cache": "cache", "_verification_cache": "cache",
    "verification_cache": "cache",
    "_session_cache": "cache", "session_cache": "cache",
    "_vm": "vm", "vm": "vm",
    "_registry": "registry",
    "_clock": "clock", "clock": "clock",
    "_audit": "audit", "audit": "audit",
    "_tracer": "tracer", "tracer": "tracer",
    "stats": "ec_stats",
    "_kernel_pool": "kernel_pool",
    "_shards": "kms_shard",
    "_namespaces": "kms_ns",
}

_RANK: Dict[str, Tuple[str, int]] = {
    domain: (chain, rank)
    for chain, domains in ORDER_CHAINS.items()
    for rank, domain in enumerate(domains)
}


@dataclass(frozen=True)
class LockEdge:
    """``outer`` was held when ``inner`` was acquired (or implied)."""

    outer: str
    inner: str
    relpath: str
    line: int
    symbol: str
    via_call: bool  # edge inferred from a hinted call, not a nested with


class LockOrderChecker(Checker):
    name = "lock-order"
    rules = {
        "LOCK001": "lock acquired against its chain's documented order",
        "LOCK002": "chain lock acquired while holding a leaf lock",
        "LOCK003": "cross-chain lock nesting in a forbidden direction",
        "LOCK004": "cycle in the static lock graph",
        "LOCK005": "non-reentrant lock domain re-acquired while held",
    }

    def __init__(self) -> None:
        self._edges: List[LockEdge] = []

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        edges: List[LockEdge] = []
        for qual, cls, func in walk_functions(ctx.tree):
            collector = _FunctionLockWalker(ctx.relpath, cls, qual)
            collector.walk(func)
            edges.extend(collector.edges)
        self._edges.extend(edges)
        return [f for edge in edges for f in _edge_findings(edge)]

    def finalize(self) -> Iterable[Finding]:
        findings = list(_cycle_findings(self._edges))
        self._edges = []
        return findings


# --------------------------------------------------------------------------
# Per-function extraction
# --------------------------------------------------------------------------

def _lock_domain_for_site(
    relpath: str, cls: Optional[str], attr: str,
) -> Optional[str]:
    if cls is not None:
        domain = LOCK_SITES.get((relpath, cls, attr))
        if domain is not None:
            return domain
    return LOCK_SITES.get((relpath, None, attr))


class _FunctionLockWalker:
    """Extract lock-nesting edges from one function body."""

    def __init__(self, relpath: str, cls: Optional[str], qual: str) -> None:
        self.relpath = relpath
        self.cls = cls
        self.qual = qual
        self.edges: List[LockEdge] = []
        #: local variable -> lock domain (``lock = self._host_locks[h]``)
        self.lock_aliases: Dict[str, str] = {}

    # -- resolution --------------------------------------------------------

    def _acquired_domain(self, expr: ast.AST) -> Optional[str]:
        """Domain of the lock object in ``with <expr>`` / ``<expr>.acquire()``."""
        if isinstance(expr, ast.Attribute):
            domain = _lock_domain_for_site(self.relpath, self.cls, expr.attr)
            if domain is not None:
                return domain
        if isinstance(expr, ast.Subscript):
            return self._acquired_domain(expr.value)
        if isinstance(expr, ast.Name):
            return self.lock_aliases.get(expr.id)
        return None

    def _called_domain(self, call: ast.Call) -> Optional[str]:
        """Domain a call will lock, resolved through attribute hints."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        hint: Optional[str] = None
        if isinstance(receiver, ast.Attribute):
            hint = receiver.attr
        elif isinstance(receiver, ast.Name) and receiver.id != "self":
            hint = receiver.id
        if hint is None:
            return None
        return ATTR_HINTS.get(hint)

    # -- walking -----------------------------------------------------------

    def walk(self, func: ast.AST) -> None:
        self._walk_block(getattr(func, "body", []), held=())

    def _note_alias(self, stmt: ast.Assign) -> None:
        domain = self._acquired_domain(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                if domain is not None:
                    self.lock_aliases[target.id] = domain
                else:
                    self.lock_aliases.pop(target.id, None)

    def _add_edges(self, held: Sequence[str], inner: str, line: int,
                   via_call: bool) -> None:
        for outer in held:
            if outer == inner:
                if inner in NON_REENTRANT_DOMAINS and not via_call:
                    # Direct re-acquisition of a Lock-guarded domain (or
                    # a second per-host/keystore instance): LOCK005.
                    # Hinted *calls* back into the same domain are almost
                    # always a sibling instance's public API and RLock
                    # domains re-enter fine, so only direct nesting fires.
                    self.edges.append(LockEdge(
                        outer=outer, inner=inner, relpath=self.relpath,
                        line=line, symbol=self.qual, via_call=via_call,
                    ))
                continue  # re-entrant RLock on the same domain
            self.edges.append(LockEdge(
                outer=outer, inner=inner, relpath=self.relpath,
                line=line, symbol=self.qual, via_call=via_call,
            ))

    def _scan_calls(self, node: ast.AST, held: Sequence[str]) -> None:
        if not held:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                domain = self._called_domain(sub)
                if domain is not None:
                    self._add_edges(held, domain, sub.lineno, via_call=True)

    def _walk_block(self, stmts, held: Tuple[str, ...]) -> None:
        # ``x.acquire()`` extends the held set for the rest of the block
        # (until a matching ``x.release()`` at the same nesting level).
        block_held = held
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                self._note_alias(stmt)
                self._scan_calls(stmt.value, block_held)
                continue
            if isinstance(stmt, ast.With):
                inner_held = block_held
                for item in stmt.items:
                    domain = self._acquired_domain(item.context_expr)
                    if domain is not None:
                        self._add_edges(inner_held, domain,
                                        item.context_expr.lineno,
                                        via_call=False)
                        inner_held = inner_held + (domain,)
                    else:
                        self._scan_calls(item.context_expr, block_held)
                self._walk_block(stmt.body, inner_held)
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                verb = (call.func.attr
                        if isinstance(call.func, ast.Attribute) else None)
                if verb == "acquire":
                    domain = self._acquired_domain(call.func.value)
                    if domain is not None:
                        self._add_edges(block_held, domain, call.lineno,
                                        via_call=False)
                        block_held = block_held + (domain,)
                        continue
                if verb == "release":
                    domain = self._acquired_domain(call.func.value)
                    if domain is not None and domain in block_held:
                        idx = len(block_held) - 1 - tuple(
                            reversed(block_held)).index(domain)
                        block_held = block_held[:idx] + block_held[idx + 1:]
                        continue
                self._scan_calls(stmt, block_held)
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                self._scan_calls(stmt.test, block_held)
                self._walk_block(stmt.body, block_held)
                self._walk_block(stmt.orelse, block_held)
                continue
            if isinstance(stmt, ast.For):
                self._scan_calls(stmt.iter, block_held)
                self._walk_block(stmt.body, block_held)
                self._walk_block(stmt.orelse, block_held)
                continue
            if isinstance(stmt, ast.Try):
                self._walk_block(stmt.body, block_held)
                for handler in stmt.handlers:
                    self._walk_block(handler.body, block_held)
                self._walk_block(stmt.orelse, block_held)
                self._walk_block(stmt.finalbody, block_held)
                continue
            self._scan_calls(stmt, block_held)


# --------------------------------------------------------------------------
# Edge validation + cycle detection
# --------------------------------------------------------------------------

def _edge_findings(edge: LockEdge) -> Iterable[Finding]:
    how = "call into" if edge.via_call else "acquisition of"
    if (edge.outer, edge.inner) in SAFE_NESTINGS:
        return
    outer_info = _RANK.get(edge.outer)
    inner_info = _RANK.get(edge.inner)

    if edge.outer == edge.inner:
        yield Finding(
            rule_id="LOCK005", severity="error", relpath=edge.relpath,
            line=edge.line, col=0, symbol=edge.symbol,
            message=(f"'{edge.inner}' re-acquired while already held — "
                     f"self-deadlock on a non-reentrant lock, or a second "
                     f"instance of a single-flight lock"),
        )
        return
    if edge.outer in LEAF_DOMAINS and (
            (inner_info is not None and inner_info[0] not in TERMINAL_CHAINS)
            or edge.inner in OUTER_DOMAINS):
        yield Finding(
            rule_id="LOCK002", severity="error", relpath=edge.relpath,
            line=edge.line, col=0, symbol=edge.symbol,
            message=(f"leaf lock '{edge.outer}' held during {how} "
                     f"lock '{edge.inner}' — leaf locks must be innermost"),
        )
        return
    if edge.inner in OUTER_DOMAINS:
        yield Finding(
            rule_id="LOCK002", severity="error", relpath=edge.relpath,
            line=edge.line, col=0, symbol=edge.symbol,
            message=(f"fleet-outer lock '{edge.inner}' acquired while "
                     f"holding '{edge.outer}' — outer locks wrap whole "
                     f"operations and must be taken first"),
        )
        return
    if edge.outer in OUTER_DOMAINS:
        return  # outer locks may wrap chain and leaf locks (single-flight)
    if outer_info is None or inner_info is None:
        return  # leaf→leaf or chain→leaf nesting is allowed
    outer_chain, outer_rank = outer_info
    inner_chain, inner_rank = inner_info
    if outer_chain == inner_chain:
        if inner_rank <= outer_rank:
            chain = " → ".join(ORDER_CHAINS[outer_chain])
            yield Finding(
                rule_id="LOCK001", severity="error", relpath=edge.relpath,
                line=edge.line, col=0, symbol=edge.symbol,
                message=(f"{how} '{edge.inner}' lock while holding "
                         f"'{edge.outer}' violates the documented "
                         f"{chain} order"),
            )
    elif inner_chain not in CHAIN_MAY_NEST.get(outer_chain, set()):
        yield Finding(
            rule_id="LOCK003", severity="error", relpath=edge.relpath,
            line=edge.line, col=0, symbol=edge.symbol,
            message=(f"{how} '{edge.inner}' ({inner_chain} chain) while "
                     f"holding '{edge.outer}' ({outer_chain} chain) — "
                     f"only {outer_chain} → "
                     f"{sorted(CHAIN_MAY_NEST.get(outer_chain, set()))} "
                     f"nesting is documented"),
        )


def _cycle_findings(edges: Sequence[LockEdge]) -> Iterable[Finding]:
    graph: Dict[str, Set[str]] = {}
    samples: Dict[Tuple[str, str], LockEdge] = {}
    for edge in edges:
        if edge.outer == edge.inner:
            continue  # self-edges are LOCK005's business, not a cycle
        graph.setdefault(edge.outer, set()).add(edge.inner)
        graph.setdefault(edge.inner, set())
        samples.setdefault((edge.outer, edge.inner), edge)

    # Iterative DFS cycle detection with path recovery.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    reported: Set[Tuple[str, ...]] = set()

    def dfs(start: str) -> None:
        stack: List[Tuple[str, Iterable[str]]] = [(start, iter(sorted(graph[start])))]
        path = [start]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:
                    cycle = tuple(path[path.index(nxt):] + [nxt])
                    key = tuple(sorted(set(cycle)))
                    if key not in reported:
                        reported.add(key)
                        sample = samples[(node, nxt)]
                        yield_cycles.append((cycle, sample))
                elif color[nxt] == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                if path and path[-1] == node:
                    path.pop()

    yield_cycles: List[Tuple[Tuple[str, ...], LockEdge]] = []
    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)
    for cycle, sample in yield_cycles:
        yield Finding(
            rule_id="LOCK004", severity="error", relpath=sample.relpath,
            line=sample.line, col=0, symbol=sample.symbol,
            message=("static lock graph contains a cycle: "
                     + " → ".join(cycle)),
        )
