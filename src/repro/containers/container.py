"""Container instances and their lifecycle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.containers.image import ContainerImage
from repro.errors import ContainerStateError

STATE_CREATED = "created"
STATE_RUNNING = "running"
STATE_STOPPED = "stopped"
STATE_REMOVED = "removed"

_TRANSITIONS = {
    STATE_CREATED: {STATE_RUNNING, STATE_REMOVED},
    STATE_RUNNING: {STATE_STOPPED},
    STATE_STOPPED: {STATE_RUNNING, STATE_REMOVED},
    STATE_REMOVED: set(),
}


@dataclass
class Container:
    """One deployed container."""

    container_id: str
    image: ContainerImage
    state: str = STATE_CREATED
    labels: Dict[str, str] = field(default_factory=dict)
    root_path: str = ""

    def _transition(self, new_state: str) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise ContainerStateError(
                f"container {self.container_id}: cannot go "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state

    def mark_running(self) -> None:
        """created/stopped -> running."""
        self._transition(STATE_RUNNING)

    def mark_stopped(self) -> None:
        """running -> stopped."""
        self._transition(STATE_STOPPED)

    def mark_removed(self) -> None:
        """created/stopped -> removed."""
        self._transition(STATE_REMOVED)

    @property
    def running(self) -> bool:
        """True while the container runs."""
        return self.state == STATE_RUNNING

    def __repr__(self) -> str:
        return (
            f"<Container {self.container_id} image={self.image.reference} "
            f"state={self.state}>"
        )
