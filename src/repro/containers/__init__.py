"""A Docker-like container substrate.

The paper deploys VNFs "inside containers" (Docker 1.12 on Ubuntu 16.04).
This subpackage models the parts of that stack the attestation story
touches: content-addressed layered images (:mod:`repro.containers.image`),
a registry (:mod:`repro.containers.registry`), a runtime that materializes
container filesystems onto the host where IMA measures them
(:mod:`repro.containers.runtime`), and the container host itself, which
composes the filesystem, the IMA agent, the SGX platform, and optionally a
TPM (:mod:`repro.containers.host`).
"""

from repro.containers.image import ContainerImage, Layer
from repro.containers.registry import Registry
from repro.containers.container import Container
from repro.containers.runtime import ContainerRuntime
from repro.containers.host import ContainerHost

__all__ = [
    "ContainerImage",
    "Layer",
    "Registry",
    "Container",
    "ContainerRuntime",
    "ContainerHost",
]
