"""An image registry with digest verification on pull."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.containers.image import ContainerImage
from repro.errors import ContainerError, ImageNotFound


class Registry:
    """Push/pull images by ``name:tag``; digests pin content."""

    def __init__(self) -> None:
        self._images: Dict[str, ContainerImage] = {}
        self._digests: Dict[str, bytes] = {}

    def push(self, image: ContainerImage) -> bytes:
        """Store an image; returns its manifest digest."""
        digest = image.digest()
        self._images[image.reference] = image
        self._digests[image.reference] = digest
        return digest

    def pull(self, reference: str,
             expected_digest: Optional[bytes] = None) -> ContainerImage:
        """Fetch an image, optionally verifying a pinned digest.

        Raises:
            ImageNotFound: unknown reference.
            ContainerError: digest mismatch (supply-chain tamper).
        """
        image = self._images.get(reference)
        if image is None:
            raise ImageNotFound(f"no image {reference!r} in registry")
        if expected_digest is not None and image.digest() != expected_digest:
            raise ContainerError(
                f"digest mismatch for {reference!r}: registry content does "
                "not match the pinned digest"
            )
        return image

    def digest_of(self, reference: str) -> bytes:
        """The stored digest for ``reference``."""
        try:
            return self._digests[reference]
        except KeyError as exc:
            raise ImageNotFound(f"no image {reference!r} in registry") from exc

    def catalog(self) -> List[str]:
        """All stored references, sorted."""
        return sorted(self._images)

    def __len__(self) -> int:
        return len(self._images)
