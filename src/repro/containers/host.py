"""The container host: the machine under attestation.

Composes everything the paper's "Container Host" box in Figure 1 contains:
an OS image on a filesystem, IMA with an administrator policy, a container
runtime, an SGX platform for the enclaves, and (in the future-work
configuration) a TPM anchoring the measurement log.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.containers.container import Container
from repro.containers.registry import Registry
from repro.containers.runtime import ContainerRuntime
from repro.crypto.rng import HmacDrbg, default_rng
from repro.ima.filesystem import SimulatedFilesystem
from repro.ima.measure import MeasurementAgent
from repro.ima.policy import ImaPolicy
from repro.net.clock import VirtualClock
from repro.sgx.ecall import CostModel
from repro.sgx.platform import SgxPlatform
from repro.tpm.tpm import TpmDevice

DEFAULT_OS_FILES = {
    "/boot/vmlinuz-4.4.0-51-generic": b"linux-kernel-4.4.0-51",
    "/usr/bin/dockerd": b"docker-engine-1.12.2",
    "/usr/bin/docker-containerd": b"containerd-0.2.4",
    "/usr/bin/runc": b"runc-1.0.0-rc2",
    "/usr/sbin/sshd": b"openssh-7.2p2",
    "/usr/lib/libc.so.6": b"glibc-2.23",
    "/usr/lib/libssl.so.1.0.0": b"openssl-1.0.2g",
    "/usr/bin/aesm_service": b"sgx-aesm-1.7",
}


class ContainerHost:
    """One attestable machine running containerized VNFs.

    Args:
        name: host name on the simulated network.
        clock: the deployment's virtual clock.
        rng: randomness source.
        policy: IMA policy (defaults to the library's host policy).
        with_tpm: enable the TPM-anchored IMA configuration (paper §4).
        cost_model: SGX transition cost parameters.
        os_files: initial filesystem content (defaults to an Ubuntu
            16.04 + Docker 1.12-flavoured file set, as in the prototype).
    """

    def __init__(self, name: str, clock: Optional[VirtualClock] = None,
                 rng: Optional[HmacDrbg] = None,
                 policy: Optional[ImaPolicy] = None,
                 with_tpm: bool = False,
                 cost_model: Optional[CostModel] = None,
                 os_files: Optional[Dict[str, bytes]] = None) -> None:
        self.name = name
        self.clock = clock
        self._rng = rng or default_rng()
        self.filesystem = SimulatedFilesystem()
        self.tpm: Optional[TpmDevice] = TpmDevice(self._rng) if with_tpm else None
        self.ima = MeasurementAgent(
            self.filesystem,
            policy or ImaPolicy.default_host_policy(),
            tpm=self.tpm,
        )
        self.runtime = ContainerRuntime(
            self.filesystem, on_file_written=self.ima.on_file_accessed
        )
        self.platform = SgxPlatform(
            name, clock=clock, rng=self._rng, cost_model=cost_model
        )
        self._booted = False
        self._os_files = dict(DEFAULT_OS_FILES if os_files is None else os_files)

    # ----------------------------------------------------------------- boot

    def boot(self) -> None:
        """Install the OS files and run the boot-time measurement sweep."""
        if self._booted:
            return
        for path, content in sorted(self._os_files.items()):
            self.filesystem.write_file(path, content)
        self.ima.measure_all()
        self._booted = True

    @property
    def booted(self) -> bool:
        """True after :meth:`boot`."""
        return self._booted

    # ----------------------------------------------------------- containers

    def deploy(self, registry: Registry, reference: str,
               expected_digest: Optional[bytes] = None,
               labels: Optional[Dict[str, str]] = None) -> Container:
        """Pull, create and start a container (files get measured)."""
        image = registry.pull(reference, expected_digest)
        container = self.runtime.create(image, labels=labels)
        self.runtime.start(container)
        return container

    # ----------------------------------------------------- adversarial API

    def tamper_file(self, path: str, new_content: bytes,
                    re_measure: bool = True) -> None:
        """Root adversary: replace a file on disk.

        With ``re_measure`` (the realistic case: the file is executed after
        modification) the change lands in the IML as a new entry; without
        it the stale measurement hides the change until next access.
        """
        self.filesystem.write_file(path, new_content)
        if re_measure:
            self.ima.on_file_accessed(path)

    def tamper_iml(self, path: str, fake_hash: bytes,
                   make_consistent: bool = True) -> None:
        """Root adversary: rewrite the measurement log itself (paper §4).

        ``make_consistent`` recomputes the software aggregate so the list
        passes internal-consistency appraisal; only a TPM-anchored
        deployment detects this.
        """
        self.ima.iml.replace_entry(path, fake_hash)
        if make_consistent:
            self.ima.iml.rewrite()

    def hide_measurement(self, path: str) -> None:
        """Root adversary: scrub every IML entry for ``path`` and recompute
        the software aggregate so the log looks internally consistent.

        This is the canonical §4 attack: modify a file, let the kernel
        measure it (hardware PCR extends irreversibly if a TPM exists),
        then sanitize the in-memory log.  Without a TPM the sanitized log
        passes appraisal; with one, the quoted PCR exposes the rewrite.
        """
        self.ima.iml.remove_entry(path)
        self.ima.iml.rewrite()

    def __repr__(self) -> str:
        tpm = "tpm" if self.tpm is not None else "no-tpm"
        return (
            f"<ContainerHost {self.name} booted={self._booted} "
            f"iml={len(self.ima.iml)} {tpm}>"
        )
