"""Content-addressed, layered container images."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.sha256 import sha256
from repro.errors import ContainerError
from repro.pki import der


@dataclass(frozen=True)
class Layer:
    """One image layer: a set of files it adds or overrides."""

    files: Tuple[Tuple[str, bytes], ...]

    @classmethod
    def from_dict(cls, files: Dict[str, bytes]) -> "Layer":
        """Build a layer from a path->content mapping (sorted, canonical)."""
        return cls(tuple(sorted(files.items())))

    def digest(self) -> bytes:
        """Content digest of the layer."""
        return sha256(der.encode([[path, content]
                                  for path, content in self.files]))


@dataclass(frozen=True)
class ContainerImage:
    """A named, tagged stack of layers."""

    name: str
    tag: str
    layers: Tuple[Layer, ...]
    entrypoint: str = "/usr/bin/vnf"

    def __post_init__(self) -> None:
        if not self.name or not self.tag:
            raise ContainerError("image name and tag must be non-empty")
        if not self.layers:
            raise ContainerError("image needs at least one layer")

    @property
    def reference(self) -> str:
        """``name:tag`` reference string."""
        return f"{self.name}:{self.tag}"

    def digest(self) -> bytes:
        """Manifest digest over all layer digests (the image identity)."""
        return sha256(der.encode(
            [self.name, self.tag, self.entrypoint,
             [layer.digest() for layer in self.layers]]
        ))

    def flatten(self) -> Dict[str, bytes]:
        """The merged filesystem view (later layers win)."""
        merged: Dict[str, bytes] = {}
        for layer in self.layers:
            for path, content in layer.files:
                merged[path] = content
        return merged


def build_image(name: str, tag: str, files: Dict[str, bytes],
                entrypoint: str = "/usr/bin/vnf") -> ContainerImage:
    """Convenience single-layer image builder."""
    return ContainerImage(
        name=name, tag=tag, layers=(Layer.from_dict(files),),
        entrypoint=entrypoint,
    )
