"""The container runtime: materializes images onto the host filesystem.

Starting a container writes its (flattened) image content under
``/var/lib/containers/<id>/`` and notifies the host's IMA agent about every
file — which is how deployed VNF code ends up in the integrity measurement
list the Verification Manager appraises.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.containers.container import Container
from repro.containers.image import ContainerImage
from repro.errors import ContainerError

CONTAINER_ROOT = "/var/lib/containers"


class ContainerRuntime:
    """Docker-like lifecycle management bound to one host filesystem.

    Args:
        filesystem: the host's :class:`repro.ima.SimulatedFilesystem`.
        on_file_written: hook called with each materialized path (the host
            wires this to the IMA agent's measure-on-access).
    """

    def __init__(self, filesystem,
                 on_file_written: Optional[Callable[[str], None]] = None) -> None:
        self._fs = filesystem
        self._on_file_written = on_file_written
        self._containers: Dict[str, Container] = {}
        self._counter = 0

    # ------------------------------------------------------------ lifecycle

    def create(self, image: ContainerImage,
               labels: Optional[Dict[str, str]] = None) -> Container:
        """Create a container from ``image`` (no files materialized yet)."""
        self._counter += 1
        container_id = f"ctr-{self._counter:04d}"
        container = Container(
            container_id=container_id,
            image=image,
            labels=dict(labels or {}),
            root_path=f"{CONTAINER_ROOT}/{container_id}",
        )
        self._containers[container_id] = container
        return container

    def start(self, container: Container) -> None:
        """Materialize the image and mark the container running."""
        container.mark_running()
        for rel_path, content in sorted(container.image.flatten().items()):
            host_path = container.root_path + rel_path
            self._fs.write_file(host_path, content)
            if self._on_file_written is not None:
                self._on_file_written(host_path)

    def stop(self, container: Container) -> None:
        """Stop a running container (files stay on disk, as in Docker)."""
        container.mark_stopped()

    def remove(self, container: Container) -> None:
        """Remove a stopped/created container and its files."""
        container.mark_removed()
        for path in self._fs.list_files(container.root_path + "/"):
            self._fs.delete_file(path)
        del self._containers[container.container_id]

    # -------------------------------------------------------------- queries

    def get(self, container_id: str) -> Container:
        """Look up a container by id."""
        try:
            return self._containers[container_id]
        except KeyError as exc:
            raise ContainerError(f"no container {container_id!r}") from exc

    def list_containers(self, running_only: bool = False) -> List[Container]:
        """All (or only running) containers."""
        containers = list(self._containers.values())
        if running_only:
            containers = [c for c in containers if c.running]
        return containers

    def __len__(self) -> int:
        return len(self._containers)
