"""The SGX-capable platform (one per container host).

Owns the hardware root secrets (sealing fuse key, report-key secret), the
transition cost accountant, the quoting enclave, and the registry of
launched enclaves.  The Verification Manager never touches these secrets;
it only sees quotes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.crypto.rng import HmacDrbg, default_rng
from repro.net.clock import VirtualClock
from repro.sgx.ecall import CostModel, TransitionAccountant
from repro.sgx.enclave import Enclave, EnclaveImage
from repro.sgx.epid import EpidMemberKey
from repro.sgx.quote import QuotingEnclave, qe_image
from repro.sgx.sigstruct import SigStruct


class SgxPlatform:
    """One SGX-capable CPU package and its architectural enclaves.

    Args:
        name: platform label (diagnostics and IAS registration).
        clock: virtual clock that transition costs are charged to
            (``None`` disables cost accounting).
        rng: randomness source (fuse keys, report keys, quote nonces).
        cost_model: the enclave-transition cost parameters.
    """

    def __init__(self, name: str, clock: Optional[VirtualClock] = None,
                 rng: Optional[HmacDrbg] = None,
                 cost_model: Optional[CostModel] = None) -> None:
        self.name = name
        self.clock = clock
        self._rng = rng or default_rng()
        self.cost_model = cost_model or CostModel()
        self.accountant = TransitionAccountant(self.cost_model, clock)
        # Hardware root secrets: unique per CPU package, never leave it.
        self._fuse_key = self._rng.random_bytes(32)
        self._report_secret = self._rng.random_bytes(32)
        self._enclaves: Dict[str, Enclave] = {}
        self._quoting_enclave: Optional[QuotingEnclave] = None
        self._enclave_counter = 0

    # ------------------------------------------------------------ enclaves

    def create_enclave(self, image: EnclaveImage,
                       sigstruct: SigStruct,
                       label: Optional[str] = None) -> Enclave:
        """ECREATE..EINIT: measure, verify SIGSTRUCT, and launch.

        Raises:
            repro.errors.LaunchError: bad SIGSTRUCT or measurement mismatch.
        """
        self._enclave_counter += 1
        label = label or f"{self.name}/{image.name}#{self._enclave_counter}"
        enclave = Enclave(
            label=label,
            image=image,
            sigstruct=sigstruct,
            accountant=self.accountant,
            report_secret=self._report_secret,
            fuse_key=self._fuse_key,
            rng=self._rng,
        )
        self._enclaves[label] = enclave
        return enclave

    def destroy_enclave(self, enclave: Enclave) -> None:
        """Tear an enclave down and remove it from the registry."""
        enclave.destroy()
        self._enclaves.pop(enclave.label, None)

    def enclaves(self) -> Dict[str, Enclave]:
        """Currently launched enclaves by label."""
        return dict(self._enclaves)

    # -------------------------------------------------------------- quoting

    @property
    def quoting_enclave(self) -> QuotingEnclave:
        """The platform's QE (launched lazily)."""
        if self._quoting_enclave is None:
            image, sigstruct = qe_image()
            enclave = self.create_enclave(image, sigstruct,
                                          label=f"{self.name}/qe")
            self._quoting_enclave = QuotingEnclave(enclave)
        return self._quoting_enclave

    def provision_epid(self, member_key: EpidMemberKey,
                       sealing_key: bytes) -> None:
        """Install the EPID member key into the QE (IAS registration)."""
        self.quoting_enclave.provision(member_key, sealing_key)

    @property
    def epid_provisioned(self) -> bool:
        """True once the QE holds an EPID member key."""
        if self._quoting_enclave is None:
            return False
        memory = self._quoting_enclave.enclave.memory
        # Host-visible metadata only: whether the slot is populated.
        return len(memory) > 0

    # ------------------------------------------------------------- plumbing

    @property
    def rng(self) -> HmacDrbg:
        """The platform's randomness source."""
        return self._rng

    def __repr__(self) -> str:
        return (
            f"<SgxPlatform {self.name} enclaves={len(self._enclaves)} "
            f"epid={'yes' if self.epid_provisioned else 'no'}>"
        )
