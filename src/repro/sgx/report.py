"""Local attestation: EREPORT structures.

An enclave asks the CPU to produce a report *targeted* at another enclave
on the same platform; the report is MACed with a key only the target (and
the CPU) can derive.  In this model the per-target report key is derived
from a platform secret and the target's MRENCLAVE.  The quoting enclave
consumes these reports when producing remotely verifiable quotes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.crypto.constant_time import ct_bytes_eq
from repro.crypto.hmac import hmac_sha256
from repro.errors import QuoteError
from repro.pki import der

REPORT_DATA_SIZE = 64


@dataclass(frozen=True)
class TargetInfo:
    """Identifies the enclave a report is aimed at."""

    mrenclave: bytes


@dataclass(frozen=True)
class Report:
    """An EREPORT output: source identity + user data, MACed for the target.

    ``report_data`` is the 64-byte user field; protocols put nonces and
    key-binding hashes here, exactly as on real SGX.
    """

    mrenclave: bytes
    mrsigner: bytes
    isv_prod_id: int
    isv_svn: int
    report_data: bytes
    target: TargetInfo
    attributes: int = 0
    mac: bytes = b""

    def body_bytes(self) -> bytes:
        """The MACed portion."""
        return der.encode([
            self.mrenclave, self.mrsigner, self.isv_prod_id, self.isv_svn,
            self.report_data, self.target.mrenclave, self.attributes,
        ])

    def to_bytes(self) -> bytes:
        """Serialized report."""
        return der.encode([
            self.mrenclave, self.mrsigner, self.isv_prod_id, self.isv_svn,
            self.report_data, self.target.mrenclave, self.attributes,
            self.mac,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "Report":
        """Parse a serialized report."""
        (mrenclave, mrsigner, isv_prod_id, isv_svn, report_data,
         target_mrenclave, attributes, mac) = der.decode(data)
        return cls(mrenclave, mrsigner, isv_prod_id, isv_svn, report_data,
                   TargetInfo(target_mrenclave), attributes, mac)


def create_report(platform_report_secret: bytes, source_identity,
                  target: TargetInfo, report_data: bytes) -> Report:
    """The CPU's EREPORT: build and MAC a report for ``target``.

    Args:
        platform_report_secret: the per-platform key-derivation secret.
        source_identity: the calling enclave's identity (duck-typed:
            ``mrenclave``/``mrsigner``/``isv_prod_id``/``isv_svn``).
        target: the report's destination enclave.
        report_data: exactly 64 bytes of user data.
    """
    if len(report_data) != REPORT_DATA_SIZE:
        raise QuoteError(
            f"report_data must be {REPORT_DATA_SIZE} bytes, "
            f"got {len(report_data)}"
        )
    unsigned = Report(
        mrenclave=source_identity.mrenclave,
        mrsigner=source_identity.mrsigner,
        isv_prod_id=source_identity.isv_prod_id,
        isv_svn=source_identity.isv_svn,
        report_data=report_data,
        target=target,
        attributes=getattr(source_identity, "attributes", 0),
    )
    key = derive_report_key(platform_report_secret, target.mrenclave)
    return dataclasses.replace(
        unsigned, mac=hmac_sha256(key, unsigned.body_bytes())
    )


def derive_report_key(platform_report_secret: bytes,
                      target_mrenclave: bytes) -> bytes:
    """EGETKEY(REPORT_KEY) for a given target."""
    return hmac_sha256(platform_report_secret, b"report-key" + target_mrenclave)


def verify_report(platform_report_secret: bytes, report: Report) -> None:
    """Verify a report's MAC (only the target enclave can do this, because
    only it can ask EGETKEY for its own report key).

    Raises:
        QuoteError: when the MAC does not verify.
    """
    key = derive_report_key(platform_report_secret, report.target.mrenclave)
    expected = hmac_sha256(key, report.body_bytes())
    if not ct_bytes_eq(expected, report.mac):
        raise QuoteError("report MAC verification failed")
