"""The quoting enclave: local reports in, EPID-signed quotes out.

The QE is itself an enclave (its image is measured and launched like any
other); its private memory holds the platform's EPID member key, provisioned
by the IAS model during platform registration.  ``get_quote`` verifies the
local report's MAC — proving the reported enclave really runs on this
platform — then signs the quote body with the group key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import EcPrivateKey, generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import QuoteError
from repro.pki import der
from repro.sgx.epid import EpidMemberKey, EpidSignature, epid_sign
from repro.sgx.report import Report
from repro.sgx.sigstruct import sign_image

QE_VENDOR = "Intel-QE-model"
QE_PROD_ID = 1
QE_SVN = 2

# The QE vendor signing key is a process-wide constant (the model's stand-in
# for Intel's architectural-enclave signing key).
_QE_SIGNING_KEY: EcPrivateKey = generate_keypair(HmacDrbg(b"intel-qe-vendor-key"))


@dataclass(frozen=True)
class Quote:
    """A remotely verifiable attestation quote."""

    mrenclave: bytes
    mrsigner: bytes
    isv_prod_id: int
    isv_svn: int
    report_data: bytes
    qe_svn: int
    basename: bytes
    attributes: int = 0
    epid_signature: bytes = b""

    @property
    def debug(self) -> bool:
        """True when the quoted enclave runs in DEBUG mode (host-readable
        memory) — production verifiers must reject such quotes."""
        from repro.sgx.enclave import ATTRIBUTE_DEBUG

        return bool(self.attributes & ATTRIBUTE_DEBUG)

    def body_bytes(self) -> bytes:
        """The EPID-signed portion."""
        return der.encode([
            self.mrenclave, self.mrsigner, self.isv_prod_id, self.isv_svn,
            self.report_data, self.qe_svn, self.basename, self.attributes,
        ])

    def to_bytes(self) -> bytes:
        """Serialized quote (what travels to the Verification Manager/IAS)."""
        return der.encode([
            self.mrenclave, self.mrsigner, self.isv_prod_id, self.isv_svn,
            self.report_data, self.qe_svn, self.basename, self.attributes,
            self.epid_signature,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "Quote":
        """Parse a serialized quote."""
        (mrenclave, mrsigner, isv_prod_id, isv_svn, report_data, qe_svn,
         basename, attributes, epid_signature) = der.decode(data)
        return cls(mrenclave, mrsigner, isv_prod_id, isv_svn, report_data,
                   qe_svn, basename, attributes, epid_signature)

    def signature(self) -> EpidSignature:
        """The decoded EPID signature."""
        return EpidSignature.from_bytes(self.epid_signature)


class QeBehavior:
    """The quoting enclave's measured code."""

    ECALLS = ("provision_member", "get_quote")

    def __init__(self, api) -> None:
        self._api = api

    def provision_member(self, member_key: EpidMemberKey,
                         sealing_key: bytes) -> None:
        """Store the platform's EPID member key in enclave-private memory."""
        self._api.memory.write("epid_member", member_key)
        self._api.memory.write("epid_sealing_key", sealing_key)

    def get_quote(self, report_bytes: bytes, basename: bytes) -> bytes:
        """Verify a local report aimed at the QE; return a signed quote."""
        report = Report.from_bytes(report_bytes)
        self._api.verify_report(report)
        if not self._api.memory.contains("epid_member"):
            raise QuoteError("platform has no EPID member key provisioned")
        member: EpidMemberKey = self._api.memory.read("epid_member")
        sealing_key: bytes = self._api.memory.read("epid_sealing_key")
        quote = Quote(
            mrenclave=report.mrenclave,
            mrsigner=report.mrsigner,
            isv_prod_id=report.isv_prod_id,
            isv_svn=report.isv_svn,
            report_data=report.report_data,
            qe_svn=QE_SVN,
            basename=basename,
            attributes=report.attributes,
        )
        signature = epid_sign(member, sealing_key, quote.body_bytes(),
                              basename, self._api.rng)
        import dataclasses

        return dataclasses.replace(
            quote, epid_signature=signature.to_bytes()
        ).to_bytes()


def qe_image():
    """The QE's image and vendor-signed SIGSTRUCT."""
    from repro.sgx.enclave import EnclaveImage

    image = EnclaveImage.from_behavior_class(QeBehavior, "quoting-enclave")
    sigstruct = sign_image(_QE_SIGNING_KEY, image.code, QE_VENDOR,
                           isv_prod_id=QE_PROD_ID, isv_svn=QE_SVN)
    return image, sigstruct


class QuotingEnclave:
    """Host-side handle to the platform's QE."""

    def __init__(self, enclave) -> None:
        self._enclave = enclave

    @property
    def enclave(self):
        """The underlying enclave instance."""
        return self._enclave

    def target_info(self):
        """TargetInfo application enclaves aim their reports at."""
        return self._enclave.target_info()

    def provision(self, member_key: EpidMemberKey, sealing_key: bytes) -> None:
        """Install the EPID member key (called during IAS registration)."""
        self._enclave.ecall("provision_member", member_key, sealing_key)

    def generate(self, report: Report, basename: bytes) -> Quote:
        """Turn a local report into a signed quote."""
        quote_bytes = self._enclave.ecall(
            "get_quote", report.to_bytes(), basename
        )
        return Quote.from_bytes(quote_bytes)
