"""Sealed storage: persisting secrets outside the enclave, safely.

EGETKEY(SEAL_KEY) derives an AES key from the platform's fuse key and the
enclave's identity — the full MRENCLAVE under MRENCLAVE policy, or the
(MRSIGNER, product id) pair under MRSIGNER policy, in both cases mixed with
the ISV SVN so that secrets sealed by version *n* stay unsealable by
version *n+1* but not vice versa.  The VNF credential enclave seals its
provisioned credentials across restarts (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.gcm import AesGcm
from repro.crypto.hkdf import hkdf
from repro.crypto.rng import HmacDrbg, default_rng
from repro.errors import InvalidTag, SealingError
from repro.pki import der

POLICY_MRENCLAVE = "mrenclave"
POLICY_MRSIGNER = "mrsigner"


@dataclass(frozen=True)
class SealedBlob:
    """A sealed secret: policy + derivation inputs + AEAD ciphertext."""

    policy: str
    key_id: bytes
    isv_svn: int
    nonce: bytes
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        """Serialized blob (host-visible, safe to store anywhere)."""
        return der.encode([
            self.policy, self.key_id, self.isv_svn, self.nonce,
            self.ciphertext,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedBlob":
        """Parse a serialized blob."""
        policy, key_id, isv_svn, nonce, ciphertext = der.decode(data)
        if policy not in (POLICY_MRENCLAVE, POLICY_MRSIGNER):
            raise SealingError(f"unknown sealing policy {policy!r}")
        return cls(policy, key_id, isv_svn, nonce, ciphertext)


def _derive_seal_key(fuse_key: bytes, identity, policy: str, key_id: bytes,
                     svn: int) -> bytes:
    if policy == POLICY_MRENCLAVE:
        identity_bytes = identity.mrenclave
    elif policy == POLICY_MRSIGNER:
        identity_bytes = identity.mrsigner + identity.isv_prod_id.to_bytes(4, "big")
    else:
        raise SealingError(f"unknown sealing policy {policy!r}")
    info = b"seal-key|" + policy.encode() + b"|" + identity_bytes + svn.to_bytes(4, "big")
    return hkdf(fuse_key, key_id, info, 16)


def seal(fuse_key: bytes, identity, plaintext: bytes,
         policy: str = POLICY_MRENCLAVE,
         rng: Optional[HmacDrbg] = None) -> SealedBlob:
    """Seal ``plaintext`` to the calling enclave's identity.

    Args:
        fuse_key: the platform's sealing fuse key (model of the hardware
            root key; only :class:`repro.sgx.platform.SgxPlatform` holds it).
        identity: the sealing enclave's identity.
        plaintext: secret bytes.
        policy: ``POLICY_MRENCLAVE`` or ``POLICY_MRSIGNER``.
    """
    rng = rng or default_rng()
    key_id = rng.random_bytes(16)
    nonce = rng.random_bytes(12)
    return seal_deterministic(fuse_key, identity, plaintext, policy,
                              key_id, nonce)


def seal_deterministic(fuse_key: bytes, identity, plaintext: bytes,
                       policy: str, key_id: bytes, nonce: bytes) -> SealedBlob:
    """:func:`seal` with caller-supplied ``key_id``/``nonce``.

    The split lets a process-pool seal kernel (``repro.core.kernels``)
    draw randomness under the shard lock, in DRBG order, and do the AEAD
    work in a worker — producing blobs byte-identical to :func:`seal`.
    """
    key = _derive_seal_key(fuse_key, identity, policy, key_id,
                           identity.isv_svn)
    ciphertext = AesGcm(key).encrypt(nonce, plaintext, policy.encode())
    return SealedBlob(policy, key_id, identity.isv_svn, nonce, ciphertext)


def unseal(fuse_key: bytes, identity, blob: SealedBlob) -> bytes:
    """Unseal a blob; fails on the wrong platform, identity, or SVN rollback.

    Raises:
        SealingError: when the key cannot be derived (downgraded enclave)
            or authentication fails (wrong platform/identity/tamper).
    """
    if blob.isv_svn > identity.isv_svn:
        raise SealingError(
            f"blob sealed at SVN {blob.isv_svn} but enclave runs SVN "
            f"{identity.isv_svn} (anti-rollback)"
        )
    key = _derive_seal_key(fuse_key, identity, blob.policy, blob.key_id,
                           blob.isv_svn)
    try:
        return AesGcm(key).decrypt(blob.nonce, blob.ciphertext,
                                   blob.policy.encode())
    except InvalidTag as exc:
        raise SealingError(
            "unsealing failed: wrong platform, wrong enclave identity, "
            "or tampered blob"
        ) from exc
