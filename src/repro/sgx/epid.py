"""A simulated EPID group-signature scheme.

Real EPID lets a member sign anonymously on behalf of a group, with
per-basename linkability (pseudonyms) and two revocation mechanisms
(private-key and signature based).  This model reproduces those
*semantics* with symmetric primitives:

- Each member holds ``member_secret`` derived by the group manager.
- A signature carries a fresh-nonce encryption of the member id readable
  only by the manager (unlinkability to everyone else), a ``pseudonym``
  ``HMAC(member_secret, basename)`` (per-basename linkability, the hook
  signature-based revocation needs), and a tag binding the message.
- Verification is manager-only — which matches the paper's deployment,
  where quotes are verified by the Intel Attestation Service, never by
  third parties directly.

The substitution is documented in DESIGN.md; every protocol above this
module only needs exactly the properties listed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.constant_time import ct_bytes_eq
from repro.crypto.gcm import AesGcm
from repro.crypto.hkdf import hkdf
from repro.crypto.hmac import hmac_sha256
from repro.crypto.rng import HmacDrbg, default_rng
from repro.errors import CryptoError, InvalidTag, QuoteError
from repro.pki import der


@dataclass(frozen=True)
class EpidMemberKey:
    """A member's private key material (lives inside the quoting enclave)."""

    group_id: bytes
    member_id: bytes
    member_secret: bytes


@dataclass(frozen=True)
class EpidSignature:
    """One group signature."""

    group_id: bytes
    basename: bytes
    pseudonym: bytes
    sealed_member: bytes  # member id, encrypted to the group manager
    nonce: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialized signature."""
        return der.encode([
            self.group_id, self.basename, self.pseudonym,
            self.sealed_member, self.nonce, self.tag,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "EpidSignature":
        """Parse a serialized signature."""
        group_id, basename, pseudonym, sealed_member, nonce, tag = (
            der.decode(data)
        )
        return cls(group_id, basename, pseudonym, sealed_member, nonce, tag)


class EpidGroup:
    """The group manager's view: issues member keys, verifies signatures.

    Instantiated inside the IAS model.
    """

    def __init__(self, group_id: bytes, master_secret: bytes) -> None:
        if len(master_secret) < 16:
            raise CryptoError("EPID master secret too short")
        self.group_id = group_id
        self._master = master_secret
        self._sealing_key = hkdf(master_secret, b"", b"epid-seal" + group_id, 16)

    # ------------------------------------------------------------ issuance

    def derive_member_secret(self, member_id: bytes) -> bytes:
        """The member secret for ``member_id`` (manager-side derivation)."""
        return hmac_sha256(self._master, b"member" + member_id)

    def issue_member(self, rng: Optional[HmacDrbg] = None) -> EpidMemberKey:
        """Provision a new member key (SGX's EPID provisioning protocol)."""
        rng = rng or default_rng()
        member_id = rng.random_bytes(16)
        return EpidMemberKey(
            group_id=self.group_id,
            member_id=member_id,
            member_secret=self.derive_member_secret(member_id),
        )

    # ---------------------------------------------------------- verification

    def open_signature(self, signature: EpidSignature) -> bytes:
        """Recover the signing member's id (group manager privilege)."""
        aead = AesGcm(self._sealing_key)
        try:
            return aead.decrypt(signature.nonce, signature.sealed_member,
                                signature.group_id)
        except InvalidTag as exc:
            raise QuoteError("cannot open EPID signature") from exc

    def verify(self, signature: EpidSignature, message: bytes) -> bytes:
        """Verify a signature; returns the member id on success.

        Raises:
            QuoteError: on any verification failure.
        """
        if signature.group_id != self.group_id:
            raise QuoteError("signature from a different EPID group")
        member_id = self.open_signature(signature)
        member_secret = self.derive_member_secret(member_id)
        expected_pseudonym = pseudonym(member_secret, signature.basename)
        if not ct_bytes_eq(expected_pseudonym, signature.pseudonym):
            raise QuoteError("EPID pseudonym mismatch")
        expected_tag = _tag(member_secret, signature.basename, message)
        if not ct_bytes_eq(expected_tag, signature.tag):
            raise QuoteError("EPID signature tag mismatch")
        return member_id

    def sealing_key(self) -> bytes:
        """The member-id sealing key (needed by signers)."""
        return self._sealing_key

    def export_secret(self) -> bytes:
        """The group manager secret, for snapshotting verification state
        into a process-pool kernel (manager-internal — a snapshot grants
        full verification *and* issuance power for the group)."""
        return self._master


def pseudonym(member_secret: bytes, basename: bytes) -> bytes:
    """The per-basename pseudonym (linkable within one basename)."""
    return hmac_sha256(member_secret, b"pseudonym" + basename)


def _tag(member_secret: bytes, basename: bytes, message: bytes) -> bytes:
    return hmac_sha256(member_secret, b"tag" + basename + message)


def epid_sign(member: EpidMemberKey, sealing_key: bytes, message: bytes,
              basename: bytes, rng: Optional[HmacDrbg] = None) -> EpidSignature:
    """Produce a group signature over ``message``.

    ``sealing_key`` is distributed to members at provisioning time so they
    can encrypt their identity to the manager.
    """
    rng = rng or default_rng()
    nonce = rng.random_bytes(12)
    sealed = AesGcm(sealing_key).encrypt(nonce, member.member_id,
                                         member.group_id)
    return EpidSignature(
        group_id=member.group_id,
        basename=basename,
        pseudonym=pseudonym(member.member_secret, basename),
        sealed_member=sealed,
        nonce=nonce,
        tag=_tag(member.member_secret, basename, message),
    )
