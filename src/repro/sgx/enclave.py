"""Enclave lifecycle, the ECALL boundary, and the in-enclave API.

An :class:`EnclaveImage` pairs the measured code bytes with a behavior
factory (the Python class standing in for the compiled enclave binary — by
default the class's own source *is* the measured image, so editing the code
changes MRENCLAVE, just like rebuilding a real enclave).  Launch verifies
the SIGSTRUCT and compares the computed measurement against it; after
initialization the image is immutable, matching the paper's note that
"after [measurement] the enclave becomes immutable".

All interaction goes through :meth:`Enclave.ecall`, which charges the
transition cost model and opens the enclave-memory gate for the duration of
the call.  Enclave code receives an :class:`EnclaveApi` granting access to
private memory, sealing, EREPORT, randomness, and OCALLs — and nothing
else.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.rng import HmacDrbg
from repro.errors import (
    EcallError,
    EnclaveLifecycleError,
    LaunchError,
)
from repro.sgx.ecall import TransitionAccountant
from repro.sgx.measurement import measure_image
from repro.sgx.memory import EnclaveMemory
from repro.sgx.report import Report, TargetInfo, create_report, verify_report
from repro.sgx.sealing import POLICY_MRENCLAVE, SealedBlob, seal, unseal
from repro.sgx.sigstruct import SigStruct


ATTRIBUTE_DEBUG = 0x02  # the SGX DEBUG attribute bit


@dataclass(frozen=True)
class EnclaveIdentity:
    """The identity tuple attestation and sealing key derivation use."""

    mrenclave: bytes
    mrsigner: bytes
    isv_prod_id: int
    isv_svn: int
    attributes: int = 0

    @property
    def debug(self) -> bool:
        """True for a debug-mode enclave (inspectable by the host —
        production relying parties must reject its quotes)."""
        return bool(self.attributes & ATTRIBUTE_DEBUG)


@dataclass(frozen=True)
class EnclaveImage:
    """A loadable enclave: measured code plus the behavior factory."""

    name: str
    version: str
    code: bytes
    behavior_factory: Callable[["EnclaveApi"], object]

    @classmethod
    def from_behavior_class(cls, behavior_class: type, name: str,
                            version: str = "1.0") -> "EnclaveImage":
        """Build an image whose measured bytes are the class's source code.

        Editing the behavior class (or tampering with the returned image's
        ``code``) changes MRENCLAVE — the property integrity verification
        rests on.  When source is unavailable (REPL-defined classes), the
        image falls back to a deterministic serialization of the class's
        compiled methods.
        """
        try:
            code = inspect.getsource(behavior_class).encode("utf-8")
        except (OSError, TypeError):
            parts = [behavior_class.__qualname__.encode("utf-8")]
            for attr_name in sorted(vars(behavior_class)):
                attr = vars(behavior_class)[attr_name]
                func_code = getattr(attr, "__code__", None)
                if func_code is not None:
                    parts.append(attr_name.encode("utf-8"))
                    parts.append(func_code.co_code)
                    parts.append(repr(func_code.co_consts).encode("utf-8"))
            code = b"\x00".join(parts)
        return cls(name=name, version=version, code=code,
                   behavior_factory=behavior_class)

    def tampered(self, extra: bytes = b"\x90") -> "EnclaveImage":
        """A copy with modified code — same behavior, different measurement.

        Used by tests and the E2 benchmark to model a compromised image.
        """
        return EnclaveImage(
            name=self.name, version=self.version,
            code=self.code + extra,
            behavior_factory=self.behavior_factory,
        )


class EnclaveApi:
    """The surface enclave code can touch (the in-enclave SDK)."""

    def __init__(self, enclave: "Enclave", report_secret: bytes,
                 fuse_key: bytes, rng: HmacDrbg) -> None:
        self._enclave = enclave
        self._report_secret = report_secret
        self._fuse_key = fuse_key
        self.rng = rng

    @property
    def memory(self) -> EnclaveMemory:
        """The enclave's private memory."""
        return self._enclave.memory

    @property
    def identity(self) -> EnclaveIdentity:
        """The enclave's own identity."""
        return self._enclave.identity

    # ------------------------------------------------------------- sealing

    def seal(self, plaintext: bytes,
             policy: str = POLICY_MRENCLAVE) -> SealedBlob:
        """Seal data to this enclave's identity."""
        return seal(self._fuse_key, self.identity, plaintext, policy,
                    self.rng)

    def unseal(self, blob: SealedBlob) -> bytes:
        """Unseal data previously sealed on this platform/identity."""
        return unseal(self._fuse_key, self.identity, blob)

    # ---------------------------------------------------------- attestation

    def create_report(self, target: TargetInfo, report_data: bytes) -> Report:
        """EREPORT: produce a local-attestation report for ``target``."""
        return create_report(self._report_secret, self.identity, target,
                             report_data)

    def verify_report(self, report: Report) -> None:
        """Verify a report targeted at *this* enclave.

        Raises:
            repro.errors.QuoteError: target mismatch or bad MAC.
        """
        from repro.errors import QuoteError

        if report.target.mrenclave != self.identity.mrenclave:
            raise QuoteError("report targeted at a different enclave")
        verify_report(self._report_secret, report)

    # --------------------------------------------------------------- ocalls

    def ocall(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Leave the enclave to run ``fn`` (untrusted), then re-enter.

        While the OCALL runs, enclave memory is inaccessible — untrusted
        code invoked this way cannot read secrets even though it executes
        within the same Python process.
        """
        payload = _estimate_payload(args)
        self._enclave.accountant.charge_ocall(payload)
        self._enclave.memory.exit()
        try:
            return fn(*args)
        finally:
            self._enclave.memory.enter()


class Enclave:
    """A launched enclave instance on one platform."""

    def __init__(self, label: str, image: EnclaveImage, sigstruct: SigStruct,
                 accountant: TransitionAccountant, report_secret: bytes,
                 fuse_key: bytes, rng: HmacDrbg) -> None:
        sigstruct.verify()
        mrenclave = measure_image(image.code, attributes=sigstruct.attributes)
        if mrenclave != sigstruct.enclave_hash:
            raise LaunchError(
                f"measurement mismatch for {label}: image measures "
                f"{mrenclave.hex()[:16]}..., SIGSTRUCT expects "
                f"{sigstruct.enclave_hash.hex()[:16]}..."
            )
        self.label = label
        self.image = image
        self.identity = EnclaveIdentity(
            mrenclave=mrenclave,
            mrsigner=sigstruct.mrsigner,
            isv_prod_id=sigstruct.isv_prod_id,
            isv_svn=sigstruct.isv_svn,
            attributes=sigstruct.attributes,
        )
        self.memory = EnclaveMemory(label)
        self.memory.attach_accountant(accountant)
        self.accountant = accountant
        self._api = EnclaveApi(self, report_secret, fuse_key, rng)
        self._state = "initialized"
        # The behavior object is constructed inside the enclave so its
        # constructor may populate private memory.
        self.memory.enter()
        try:
            self._behavior = image.behavior_factory(self._api)
        finally:
            self.memory.exit()
        self._entrypoints = frozenset(getattr(self._behavior, "ECALLS", ()))

    # ------------------------------------------------------------- queries

    @property
    def mrenclave(self) -> bytes:
        """The enclave's measurement."""
        return self.identity.mrenclave

    def target_info(self) -> TargetInfo:
        """TargetInfo other enclaves use to aim reports at this one."""
        return TargetInfo(self.identity.mrenclave)

    @property
    def entrypoints(self) -> frozenset:
        """The declared ECALL names."""
        return self._entrypoints

    # --------------------------------------------------------------- ecall

    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke an enclave entry point across the boundary."""
        if self._state != "initialized":
            raise EnclaveLifecycleError(
                f"ecall on {self.label} in state {self._state}"
            )
        if name not in self._entrypoints:
            raise EcallError(
                f"{self.label} has no ECALL {name!r} "
                f"(declared: {sorted(self._entrypoints)})"
            )
        payload = _estimate_payload(args) + _estimate_payload(
            tuple(kwargs.values())
        )
        self.accountant.charge_ecall(payload)
        self.memory.enter()
        try:
            return getattr(self._behavior, name)(*args, **kwargs)
        finally:
            self.memory.exit()

    # ------------------------------------------------------------- teardown

    def destroy(self) -> None:
        """EREMOVE: wipe private memory and refuse further ECALLs."""
        self.memory.wipe()
        self._state = "destroyed"

    @property
    def destroyed(self) -> bool:
        """True once the enclave has been torn down."""
        return self._state == "destroyed"

    def __repr__(self) -> str:
        return (
            f"<Enclave {self.label} mrenclave={self.mrenclave.hex()[:12]} "
            f"state={self._state}>"
        )


def _estimate_payload(args: tuple) -> int:
    """Rough byte count crossing the boundary, for the cost model."""
    total = 0
    for arg in args:
        if isinstance(arg, (bytes, bytearray, memoryview)):
            total += len(arg)
        elif isinstance(arg, str):
            total += len(arg)
        else:
            total += 64  # envelope for scalars/objects
    return total
