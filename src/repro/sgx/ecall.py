"""The enclave transition cost model.

Crossing the enclave boundary costs on the order of 8 000 cycles each way
on real hardware (the TLB flush, register scrubbing and EPC access checks),
and data copied across the boundary pays a marshalling cost.  Experiment E4
("TLS inside vs. outside the enclave") is driven entirely by these charges,
and the ECALL cycle cost is a swept parameter in the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.clock import VirtualClock

ACCOUNT = "enclave-transitions"


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of enclave operations.

    Attributes:
        ecall_cycles: cycles for one ECALL entry + exit pair.
        ocall_cycles: cycles for one OCALL exit + re-entry pair.
        bytes_per_cycle: boundary-crossing copy throughput.
        epc_page_fault_cycles: cost of one EPC paging event.
        cpu_hz: clock frequency used to convert cycles to seconds.
    """

    ecall_cycles: int = 8000
    ocall_cycles: int = 8300
    bytes_per_cycle: float = 8.0
    epc_page_fault_cycles: int = 40000
    cpu_hz: float = 2.6e9

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to simulated seconds."""
        return cycles / self.cpu_hz

    def ecall_cost(self, payload_bytes: int) -> float:
        """Simulated seconds for an ECALL round trip moving ``payload_bytes``."""
        return self.seconds(self.ecall_cycles + payload_bytes / self.bytes_per_cycle)

    def ocall_cost(self, payload_bytes: int) -> float:
        """Simulated seconds for an OCALL round trip."""
        return self.seconds(self.ocall_cycles + payload_bytes / self.bytes_per_cycle)


class TransitionAccountant:
    """Counts transitions and charges their cost to the virtual clock."""

    def __init__(self, model: CostModel, clock: Optional[VirtualClock]) -> None:
        self.model = model
        self._clock = clock
        self.ecalls = 0
        self.ocalls = 0
        self.bytes_crossed = 0
        # Telemetry children, bound by instrument(); None = disabled.
        self._ecall_metric = None
        self._ocall_metric = None
        self._bytes_metric = None

    def instrument(self, telemetry, platform: str = "") -> None:
        """Mirror transition counts into telemetry counters, labelled with
        the platform name.  Pass ``telemetry=None`` to detach."""
        if telemetry is None:
            self._ecall_metric = self._ocall_metric = self._bytes_metric = None
            return
        self._ecall_metric = telemetry.ecalls.labels(platform=platform)
        self._ocall_metric = telemetry.ocalls.labels(platform=platform)
        self._bytes_metric = telemetry.boundary_bytes.labels(platform=platform)

    def charge_ecall(self, payload_bytes: int) -> None:
        """Record one ECALL round trip."""
        self.ecalls += 1
        self.bytes_crossed += payload_bytes
        if self._ecall_metric is not None:
            self._ecall_metric.inc()
            self._bytes_metric.inc(payload_bytes)
        if self._clock is not None:
            self._clock.advance(self.model.ecall_cost(payload_bytes), ACCOUNT)

    def charge_ocall(self, payload_bytes: int) -> None:
        """Record one OCALL round trip."""
        self.ocalls += 1
        self.bytes_crossed += payload_bytes
        if self._ocall_metric is not None:
            self._ocall_metric.inc()
            self._bytes_metric.inc(payload_bytes)
        if self._clock is not None:
            self._clock.advance(self.model.ocall_cost(payload_bytes), ACCOUNT)

    def charge_page_fault(self, count: int = 1) -> None:
        """Record EPC paging events."""
        if self._clock is not None:
            self._clock.advance(
                self.model.seconds(self.model.epc_page_fault_cycles * count),
                ACCOUNT,
            )
