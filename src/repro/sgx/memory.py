"""Enclave-private memory with an enforced isolation boundary.

The EPC (enclave page cache) abstraction here is a guarded key/value store:
reads and writes succeed only while the owning enclave is executing (i.e.
between the ECALL entry and exit managed by :class:`repro.sgx.enclave.Enclave`).
Anything else — host code, another enclave, test code playing adversary —
gets :class:`repro.errors.EnclaveMemoryViolation`.  Security invariant I1
("provisioned keys are unreadable from outside the enclave") is enforced
here and tested by attempting exactly that access.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.errors import EnclaveMemoryViolation


class EnclaveMemory:
    """A key/value EPC region owned by one enclave.

    The EPC is a scarce resource on real hardware (128 MiB-class); an
    enclave whose working set exceeds its share pays paging costs.  The
    model charges one page fault per resident-set slot beyond
    ``epc_slots`` (see :meth:`attach_accountant`).
    """

    def __init__(self, owner_label: str, epc_slots: int = 64) -> None:
        self._owner_label = owner_label
        self._store: Dict[str, Any] = {}
        self._inside = 0  # re-entrancy depth of enclave execution
        self._epc_slots = epc_slots
        self._accountant = None
        self.page_faults = 0

    def attach_accountant(self, accountant) -> None:
        """Wire the transition accountant that paging costs charge to."""
        self._accountant = accountant

    def _maybe_page_fault(self) -> None:
        if len(self._store) > self._epc_slots:
            self.page_faults += 1
            if self._accountant is not None:
                self._accountant.charge_page_fault()

    # ------------------------------------------------------------ the gate

    def enter(self) -> None:
        """Mark execution as inside the enclave (called on ECALL entry)."""
        self._inside += 1

    def exit(self) -> None:
        """Mark execution as back outside (called on ECALL return)."""
        if self._inside == 0:
            raise EnclaveMemoryViolation(
                f"{self._owner_label}: unbalanced enclave exit"
            )
        self._inside -= 1

    @property
    def accessible(self) -> bool:
        """True while the owning enclave is executing."""
        return self._inside > 0

    def _check(self, operation: str) -> None:
        if not self.accessible:
            raise EnclaveMemoryViolation(
                f"{operation} on enclave-private memory of "
                f"{self._owner_label} from outside the enclave"
            )

    # ---------------------------------------------------------- kv interface

    def read(self, key: str) -> Any:
        """Read a private value (inside the enclave only)."""
        self._check("read")
        if key not in self._store:
            raise KeyError(key)
        return self._store[key]

    def write(self, key: str, value: Any) -> None:
        """Write a private value (inside the enclave only)."""
        self._check("write")
        self._store[key] = value
        self._maybe_page_fault()

    def delete(self, key: str) -> None:
        """Delete a private value (inside the enclave only)."""
        self._check("delete")
        self._store.pop(key, None)

    def contains(self, key: str) -> bool:
        """Membership test (inside the enclave only)."""
        self._check("contains")
        return key in self._store

    def keys(self) -> Iterator[str]:
        """Iterate private keys (inside the enclave only)."""
        self._check("keys")
        return iter(list(self._store.keys()))

    def wipe(self) -> None:
        """Destroy all contents (enclave teardown; allowed from outside
        because EREMOVE is a host-side operation that destroys, never
        discloses)."""
        self._store.clear()

    def __len__(self) -> int:
        # Size is host-visible metadata (the OS sees EPC allocation).
        return len(self._store)
