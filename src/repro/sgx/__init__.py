"""A software model of Intel SGX.

The model reproduces the *trust structure* of SGX rather than its silicon:

- **Measurement** — an enclave's MRENCLAVE is built exactly the way the
  hardware builds it: an ECREATE seed extended page by page over the
  enclave's code image, finalized at EINIT (:mod:`repro.sgx.measurement`).
- **Identity** — SIGSTRUCT binds the expected measurement to a vendor
  signing key; MRSIGNER is the hash of that key
  (:mod:`repro.sgx.sigstruct`).
- **Isolation** — enclave-private memory is guarded: any access while
  execution is not inside the enclave raises
  :class:`repro.errors.EnclaveMemoryViolation` (:mod:`repro.sgx.memory`).
  This is the invariant "credentials never leave the enclave" is tested
  against.
- **Sealing** — keys derived from a per-platform fuse key and the enclave
  identity, with MRENCLAVE or MRSIGNER policy (:mod:`repro.sgx.sealing`).
- **Local attestation** — EREPORT structures MACed with a per-target
  report key (:mod:`repro.sgx.report`).
- **Remote attestation** — a quoting enclave converts local reports into
  EPID-signed quotes (:mod:`repro.sgx.quote`, :mod:`repro.sgx.epid`)
  verifiable by the IAS model in :mod:`repro.ias`.
- **Cost model** — ECALL/OCALL transitions and EPC paging charge cycles to
  the virtual clock (:mod:`repro.sgx.ecall`), reproducing the performance
  shape of enclave-terminated TLS (experiment E4).
"""

from repro.sgx.platform import SgxPlatform
from repro.sgx.enclave import Enclave, EnclaveImage
from repro.sgx.sigstruct import SigStruct, sign_image
from repro.sgx.measurement import measure_image
from repro.sgx.sealing import seal, unseal, POLICY_MRENCLAVE, POLICY_MRSIGNER
from repro.sgx.quote import Quote, QuotingEnclave
from repro.sgx.ecall import CostModel

__all__ = [
    "SgxPlatform",
    "Enclave",
    "EnclaveImage",
    "SigStruct",
    "sign_image",
    "measure_image",
    "seal",
    "unseal",
    "POLICY_MRENCLAVE",
    "POLICY_MRSIGNER",
    "Quote",
    "QuotingEnclave",
    "CostModel",
]
