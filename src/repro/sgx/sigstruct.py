"""SIGSTRUCT: the vendor's signed enclave manifest.

EINIT accepts an enclave only if the SIGSTRUCT's signature verifies and its
``enclave_hash`` matches the freshly computed MRENCLAVE.  MRSIGNER — the
hash of the vendor's public key — becomes part of the enclave's identity
and selects the key space for MRSIGNER-policy sealing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import EcPrivateKey, EcPublicKey
from repro.crypto.sha256 import sha256
from repro.errors import InvalidSignature, LaunchError
from repro.pki import der
from repro.sgx.measurement import measure_image


@dataclass(frozen=True)
class SigStruct:
    """The signed enclave manifest.

    Attributes:
        enclave_hash: expected MRENCLAVE of the image.
        vendor: human-readable vendor string.
        isv_prod_id: product id within the vendor's key space.
        isv_svn: security version number (monotonic per product).
        attributes: enclave attribute flags.
        signer_public: the vendor public key (SEC1 bytes).
        signature: vendor signature over the body.
    """

    enclave_hash: bytes
    vendor: str
    isv_prod_id: int
    isv_svn: int
    attributes: int
    signer_public: bytes
    signature: bytes

    def _body(self) -> bytes:
        return der.encode([
            self.enclave_hash, self.vendor, self.isv_prod_id,
            self.isv_svn, self.attributes, self.signer_public,
        ])

    @property
    def mrsigner(self) -> bytes:
        """SHA-256 of the vendor public key."""
        return sha256(self.signer_public)

    def verify(self) -> None:
        """Check the vendor's signature.

        Raises:
            LaunchError: when the signature is invalid.
        """
        try:
            EcPublicKey.from_bytes(self.signer_public).verify(
                self._body(), self.signature
            )
        except InvalidSignature as exc:
            raise LaunchError("SIGSTRUCT signature invalid") from exc

    def to_bytes(self) -> bytes:
        """Serialized form (transported alongside enclave images)."""
        return der.encode([
            self.enclave_hash, self.vendor, self.isv_prod_id, self.isv_svn,
            self.attributes, self.signer_public, self.signature,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "SigStruct":
        """Parse a serialized SIGSTRUCT."""
        (enclave_hash, vendor, isv_prod_id, isv_svn, attributes,
         signer_public, signature) = der.decode(data)
        return cls(enclave_hash, vendor, isv_prod_id, isv_svn, attributes,
                   signer_public, signature)


def sign_image(signing_key: EcPrivateKey, code: bytes, vendor: str,
               isv_prod_id: int = 0, isv_svn: int = 1,
               attributes: int = 0) -> SigStruct:
    """Measure ``code`` and produce the vendor-signed SIGSTRUCT for it."""
    unsigned = SigStruct(
        enclave_hash=measure_image(code, attributes=attributes),
        vendor=vendor,
        isv_prod_id=isv_prod_id,
        isv_svn=isv_svn,
        attributes=attributes,
        signer_public=signing_key.public.to_bytes(),
        signature=b"",
    )
    return SigStruct(
        enclave_hash=unsigned.enclave_hash,
        vendor=vendor,
        isv_prod_id=isv_prod_id,
        isv_svn=isv_svn,
        attributes=attributes,
        signer_public=unsigned.signer_public,
        signature=signing_key.sign(unsigned._body()),
    )
