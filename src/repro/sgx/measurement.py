"""MRENCLAVE computation — the SGX measurement chain.

The hardware builds MRENCLAVE as a running SHA-256: ECREATE contributes the
enclave's size/attributes, each EADD contributes a page's metadata and each
EEXTEND its contents (256 bytes at a time), and EINIT finalizes.  The same
chain is reproduced here over an :class:`EnclaveImage`'s code bytes, so two
images differing in a single byte — or in page layout — measure differently,
exactly like the hardware.
"""

from __future__ import annotations

import struct

from repro.crypto.sha256 import SHA256

PAGE_SIZE = 4096
EXTEND_CHUNK = 256

_ECREATE_TAG = b"\x45\x43\x52\x45\x41\x54\x45\x00"  # "ECREATE\0"
_EADD_TAG = b"\x45\x41\x44\x44\x00\x00\x00\x00"      # "EADD\0\0\0\0"
_EEXTEND_TAG = b"\x45\x45\x58\x54\x45\x4e\x44\x00"   # "EEXTEND\0"


def _paginate(code: bytes) -> list:
    """Split code into zero-padded 4 KiB pages (at least one page)."""
    if not code:
        code = b"\x00"
    pages = []
    for offset in range(0, len(code), PAGE_SIZE):
        page = code[offset:offset + PAGE_SIZE]
        pages.append(page.ljust(PAGE_SIZE, b"\x00"))
    return pages


def measure_image(code: bytes, ssa_frame_size: int = 1,
                  attributes: int = 0) -> bytes:
    """Compute the MRENCLAVE of an enclave image.

    Args:
        code: the enclave's code/data image bytes.
        ssa_frame_size: save-state-area frames (part of ECREATE's input).
        attributes: enclave attribute flags (DEBUG, 64-bit, ...).

    Returns:
        The 32-byte measurement.
    """
    pages = _paginate(code)
    running = SHA256()
    running.update(
        _ECREATE_TAG
        + struct.pack("<IQ", ssa_frame_size, len(pages) * PAGE_SIZE)
        + struct.pack("<Q", attributes)
        + b"\x00" * 36
    )
    for index, page in enumerate(pages):
        offset = index * PAGE_SIZE
        # EADD measures the page's offset and security info (RWX for a
        # regular page in this model).
        running.update(
            _EADD_TAG + struct.pack("<Q", offset) + b"REG:RWX-" * 6
        )
        # EEXTEND measures the page contents 256 bytes at a time.
        for chunk_start in range(0, PAGE_SIZE, EXTEND_CHUNK):
            running.update(
                _EEXTEND_TAG
                + struct.pack("<Q", offset + chunk_start)
                + b"\x00" * 48
            )
            running.update(page[chunk_start:chunk_start + EXTEND_CHUNK])
    # EINIT finalizes the measurement.
    return running.digest()
