"""Consistent hashing: stable secret placement over a changing shard set.

Each shard contributes ``vnodes`` points to a hash ring (SHA-256 over
``"<shard>#<vnode>"``); a key is placed on the shard owning the first
point at or after the key's own hash, wrapping at the top.  Placement is
a pure function of the shard identifiers and the key, so equal
deployments place equally (the determinism the KMS tests gate on), and
adding or removing one shard moves only the keys whose successor point
changed — about ``1/N`` of the keyspace instead of nearly all of it,
which is what makes shard rebalancing affordable at fleet scale.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crypto.sha256 import sha256
from repro.errors import KmsError

#: Virtual nodes per shard.  More points smooth the per-shard load (the
#: E13 scaling gate needs the maximum shard fraction close to 1/N).
DEFAULT_VNODES = 128


def _point(data: str) -> int:
    return int.from_bytes(sha256(data.encode("utf-8"))[:8], "big")


class HashRing:
    """A consistent-hash ring over named shards.

    Args:
        shard_ids: initial shard identifiers (order-insensitive).
        vnodes: virtual nodes per shard.
    """

    def __init__(self, shard_ids: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise KmsError("vnodes must be positive")
        self._vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._shards: List[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)
        if not self._shards:
            raise KmsError("a hash ring needs at least one shard")

    # ------------------------------------------------------------ topology

    def add_shard(self, shard_id: str) -> None:
        """Add ``shard_id``'s points to the ring."""
        if shard_id in self._shards:
            raise KmsError(f"shard {shard_id!r} is already on the ring")
        self._shards.append(shard_id)
        for vnode in range(self._vnodes):
            entry = (_point(f"{shard_id}#{vnode}"), shard_id)
            bisect.insort(self._points, entry)

    def remove_shard(self, shard_id: str) -> None:
        """Remove ``shard_id``'s points from the ring."""
        if shard_id not in self._shards:
            raise KmsError(f"shard {shard_id!r} is not on the ring")
        if len(self._shards) == 1:
            raise KmsError("cannot remove the last shard")
        self._shards.remove(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    def shard_ids(self) -> List[str]:
        """Shards currently on the ring, in insertion order."""
        return list(self._shards)

    # ----------------------------------------------------------- placement

    def shard_for(self, key: str) -> str:
        """The shard owning ``key`` (first ring point clockwise of it)."""
        index = bisect.bisect_right(self._points, (_point(key), "￿"))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def placement(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: shard}`` for a batch of keys."""
        return {key: self.shard_for(key) for key in keys}

    def moved_keys(self, keys: Iterable[str],
                   other: "HashRing") -> List[str]:
        """Keys whose owner differs between this ring and ``other``."""
        return [key for key in keys
                if self.shard_for(key) != other.shard_for(key)]

    def __len__(self) -> int:
        return len(self._shards)
