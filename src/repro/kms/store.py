"""The sharded secret store: consistent hashing over sealed shards.

The store owns N :class:`~repro.kms.shard.SecretShard` instances and a
:class:`~repro.kms.hashring.HashRing` that maps ``tenant/name`` keys to
shards.  Costs follow the shard-pipeline model: the front end charges
only its serialized per-request dispatch to the global
:class:`~repro.net.clock.VirtualClock`, while seal/unseal work occupies
the owning shard's private timeline (shards run on separate enclave
cores, so their work overlaps).  :meth:`ShardedSecretStore.quiesce`
drains the pipeline by advancing the clock to the latest shard
completion — with N shards the sealing work divides N ways, which is the
scaling experiment E13 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import KmsError
from repro.kms.hashring import DEFAULT_VNODES, HashRing
from repro.kms.shard import SecretShard
from repro.net.clock import VirtualClock


@dataclass(frozen=True)
class KmsCostModel:
    """Simulated costs of KMS operations.

    ``dispatch_seconds`` is serialized front-end work (routing, auth,
    audit) charged to the global clock per request; the rest is enclave
    work charged to the owning shard's pipeline.
    """

    dispatch_seconds: float = 2e-6
    seal_seconds: float = 800e-6
    unseal_seconds: float = 600e-6
    delete_seconds: float = 50e-6


class ShardedSecretStore:
    """Route ``tenant/name`` keys onto sealed shards.

    Args:
        shards: the shard set (ring membership == shard labels).
        clock: the deployment's virtual clock.
        cost_model: simulated operation costs.
        vnodes: virtual nodes per shard on the ring.
    """

    def __init__(self, shards: Sequence[SecretShard], clock: VirtualClock,
                 cost_model: KmsCostModel = KmsCostModel(),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not shards:
            raise KmsError("the store needs at least one shard")
        self._shards: Dict[str, SecretShard] = {s.label: s for s in shards}
        if len(self._shards) != len(shards):
            raise KmsError("shard labels must be unique")
        self._ring = HashRing(list(self._shards.keys()), vnodes=vnodes)
        self._clock = clock
        self.cost_model = cost_model

    # ------------------------------------------------------------- routing

    @staticmethod
    def storage_key(tenant: str, name: str) -> str:
        """The ring key for one tenant secret."""
        return f"{tenant}/{name}"

    def shard_for(self, tenant: str, name: str) -> SecretShard:
        """The shard owning ``tenant``'s secret ``name``."""
        label = self._ring.shard_for(self.storage_key(tenant, name))
        return self._shards[label]

    def ring(self) -> HashRing:
        """The routing ring (read-only use)."""
        return self._ring

    def shards(self) -> List[SecretShard]:
        """The shard set, in label order."""
        return [self._shards[label] for label in sorted(self._shards)]

    # ---------------------------------------------------------- operations

    def _dispatch(self) -> float:
        self._clock.advance(self.cost_model.dispatch_seconds,
                            account="kms-dispatch")
        return self._clock.now()

    def store(self, tenant: str, name: str, value: bytes) -> bool:
        """Seal ``value`` into the owning shard; ``True`` if the key is
        new (replacements return ``False``)."""
        now = self._dispatch()
        shard = self.shard_for(tenant, name)
        return shard.store(self.storage_key(tenant, name), value, now,
                           self.cost_model.seal_seconds)

    def exists(self, tenant: str, name: str) -> bool:
        """True if ``tenant``'s secret ``name`` is stored (metadata
        probe: no unseal, no dispatch charge)."""
        shard = self.shard_for(tenant, name)
        return shard.has(self.storage_key(tenant, name))

    def fetch(self, tenant: str, name: str) -> bytes:
        """Unseal and return ``tenant``'s secret ``name``.

        Raises:
            SecretNotFound: nothing stored under that name.
        """
        now = self._dispatch()
        shard = self.shard_for(tenant, name)
        return shard.fetch(self.storage_key(tenant, name), now,
                           self.cost_model.unseal_seconds)

    def delete(self, tenant: str, name: str) -> None:
        """Remove ``tenant``'s secret ``name``.

        Raises:
            SecretNotFound: nothing stored under that name.
        """
        now = self._dispatch()
        shard = self.shard_for(tenant, name)
        shard.delete(self.storage_key(tenant, name), now,
                     self.cost_model.delete_seconds)

    def names(self, tenant: str) -> List[str]:
        """All secret names in ``tenant``'s namespace, sorted."""
        prefix = f"{tenant}/"
        found: List[str] = []
        for shard in self._shards.values():
            for key in shard.keys(prefix=prefix):
                found.append(key[len(prefix):])
        return sorted(found)

    # ---------------------------------------------------------- accounting

    def quiesce(self) -> float:
        """Advance the clock past every shard's pipeline (the simulated
        completion time of all outstanding enclave work) and return the
        new ``now``."""
        horizon = max(s.busy_until() for s in self._shards.values())
        now = self._clock.now()
        if horizon > now:
            self._clock.advance(horizon - now, account="kms-shards")
        return self._clock.now()

    def secret_counts(self) -> Dict[str, int]:
        """``{shard label: stored secrets}`` — the observed placement."""
        return {label: len(shard)
                for label, shard in sorted(self._shards.items())}
